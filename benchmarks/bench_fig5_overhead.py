"""Figure 5: DetTrace slowdown vs syscall rate, plus the SS7.4 aggregate
3.49x claim (shape: positive correlation, threaded packages slower)."""
import numpy as np

from repro.analysis import PAPER_BUILD_AGGREGATE, format_scatter
from repro.repro_tools import first_build_host
from repro.workloads.debian import build_dettrace, build_native, generate_population

from .conftest import scaled

SAMPLE = scaled(40)


def measure_overheads():
    specs = [s for s in generate_population(SAMPLE * 2, seed=13)
             if not s.expect_dt_unsupported and not s.syscall_storm][:SAMPLE]
    points = []
    for spec in specs:
        base = build_native(spec, host=first_build_host())
        det = build_dettrace(spec, host=first_build_host())
        if base.status != "built" or det.status != "built":
            continue
        rate = base.result.syscall_count / base.result.wall_time
        slowdown = det.result.wall_time / base.result.wall_time
        points.append((rate, slowdown, base.result.wall_time,
                       spec.uses_threads))
    return points


def test_fig5(benchmark, capsys):
    points = benchmark.pedantic(measure_overheads, rounds=1, iterations=1)
    rates = np.array([p[0] for p in points])
    slows = np.array([p[1] for p in points])
    walls = np.array([p[2] for p in points])
    threaded = np.array([p[3] for p in points])
    corr = float(np.corrcoef(rates, slows)[0, 1])
    aggregate = float((slows * walls).sum() / walls.sum())

    with capsys.disabled():
        print()
        print(format_scatter([(r, s) for r, s, _, _ in points],
                             title="Figure 5: DetTrace slowdown vs "
                                   "syscalls/sec (%d packages)" % len(points)))
        print("rate/slowdown correlation: %.2f (paper: 'positive correlation')"
              % corr)
        print("aggregate slowdown: %.2fx (paper: %.2fx)"
              % (aggregate, PAPER_BUILD_AGGREGATE))
        if threaded.any() and (~threaded).any():
            print("threaded mean %.2fx vs non-threaded %.2fx "
                  "(paper: threaded packages slower)"
                  % (slows[threaded].mean(), slows[~threaded].mean()))

    assert corr > 0.6
    assert 1.5 < aggregate < 6.0
    assert slows.min() >= 1.0
