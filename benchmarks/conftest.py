"""Benchmark harness configuration.

Population sizes are scaled for laptop runtimes; set REPRO_BENCH_SCALE=2
(or more) for larger samples.  Every bench prints the paper-style table
next to the paper's own numbers — the claim being reproduced is the
*shape* (who wins, by what factor), not the absolute values, since the
substrate is a simulator with scaled-down package sizes (see DESIGN.md).
"""

import os

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def scaled(n: int) -> int:
    return max(4, int(n * SCALE))


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE
