"""Checkpoint cost: snapshot overhead vs barrier interval, full vs delta.

Three claims get numbers here.  First, snapshotting is pay-as-you-go:
the wall-time overhead scales with barrier frequency, and every
interval/mode still produces the byte-identical output tree
(checkpointing must never perturb the run it protects).  Second,
dirty-tracked delta snapshots make dense checkpointing affordable: each
interval is measured in ``full`` mode (``full_every=1``, every snapshot
a complete image) and ``delta`` mode (``full_every=16``, dirty-set
deltas chained on periodic fulls), and at the densest interval the
delta journal must stay under 40% of the full journal — that ratio is
deterministic, so it is a hard gate here and in ``check.sh ckpt``.
Third, the disabled path is free: with ``ContainerConfig.checkpoint``
unset the kernel only ever evaluates an ``is not None`` guard, so
disabled throughput is the trend-tracked number — ``check.sh ckpt``
gates fresh runs against the committed ``BENCH_ckpt.json`` baseline the
same way the hotpath stage does.

Run as a module with a baseline path to apply the regression gate::

    python -m benchmarks.bench_ckpt /path/to/baseline.json
"""
import json
import os
import shutil
import sys
import tempfile
import time

import pytest

from repro.core import ContainerConfig, DetTrace, Image
from repro.core.config import CheckpointConfig
from repro.cpu.machine import HostEnvironment
from repro.repro_tools.hashing import tree_digest

from .conftest import scaled

ROUNDS = scaled(5)
INTERVALS = (200, 50, 10)
#: (row label, CheckpointConfig.full_every): every snapshot a complete
#: image vs dirty-set deltas chained on periodic fulls.  The delta row
#: uses a longer chain than the config default (16 vs 4): dense
#: checkpointing is exactly the regime where amortizing the full-image
#: cost (capture + fsync durability barrier) over more deltas pays, and
#: the row records its cadence.
MODES = (("full", 1), ("delta", 16))
OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                        "BENCH_ckpt.json")


def _child(sys_):
    yield from sys_.write_file("child.txt", b"from child\n")
    return 0


def _workload(sys_):
    yield from sys_.mkdir_p("out")
    for i in range(120):
        yield from sys_.write_file("out/f%d.txt" % i, b"x" * (10 + i))
    for i in range(0, 120, 7):
        data = yield from sys_.read_file("out/f%d.txt" % i)
        yield from sys_.write_file("out/c%d.bin" % i, data)
    names = yield from sys_.listdir("out")
    yield from sys_.println("%d entries" % len(names))
    res = yield from sys_.run("/bin/child")
    yield from sys_.println("child exit %d" % res.status)
    return 0


def _image() -> Image:
    image = Image()
    image.add_binary("/bin/main", _workload)
    image.add_binary("/bin/child", _child)
    return image


def _run(cfg: ContainerConfig):
    return DetTrace(cfg).run(_image(), "/bin/main",
                             host=HostEnvironment(entropy_seed=7))


def _calibration_ops_per_sec() -> float:
    """Throughput of a fixed pure-Python loop on this machine right now.

    Dividing the bench numbers by this cancels most machine-load and
    interpreter-speed variation, so the cross-run regression gate
    compares work-per-event rather than the host's mood."""
    best = 0.0
    for _ in range(3):
        t0 = time.perf_counter()
        x = 0
        for i in range(200_000):
            x += i & 7
        best = max(best, 200_000 / (time.perf_counter() - t0))
    return best


def _measure_case(every, full_every):
    """Best-of-ROUNDS wall time plus (deterministic) journal shape for
    one (interval, mode) cell; ``every=None`` is the disabled path."""
    from repro.ckpt import scan

    walls = []
    digests = set()
    syscalls = 0
    snapshots = journal_bytes = fulls = deltas = 0
    for _ in range(ROUNDS):
        directory = tempfile.mkdtemp(prefix="bench-ckpt-")
        try:
            if every is None:
                cfg = ContainerConfig()
            else:
                cfg = ContainerConfig(checkpoint=CheckpointConfig(
                    directory=directory, every=every, keep=0,
                    full_every=full_every))
            t0 = time.perf_counter()
            result = _run(cfg)
            walls.append(time.perf_counter() - t0)
            assert result.exit_code == 0, (result.status, result.error)
            digests.add(tree_digest(result.output_tree))
            syscalls = result.syscall_count
            if every is not None:
                infos = scan(directory)
                snapshots += len(infos)
                journal_bytes += sum(i.payload_len for i in infos)
                fulls += sum(1 for i in infos if i.snapshot_kind == "full")
                deltas += sum(1 for i in infos if i.snapshot_kind == "delta")
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    # min() is the least-noise estimator for a deterministic run.
    row = {
        "wall_s": round(min(walls), 6),
        "snapshots": snapshots // ROUNDS,
        "journal_bytes": journal_bytes // ROUNDS,
    }
    if every is not None:
        row["full_every"] = full_every
        row["full_snapshots"] = fulls // ROUNDS
        row["delta_snapshots"] = deltas // ROUNDS
    return row, digests, syscalls


def measure_ckpt_cost():
    digests = set()
    disabled, d, syscalls = _measure_case(None, 1)
    digests |= d
    intervals = {}
    for every in INTERVALS:
        cell = {}
        for mode, full_every in MODES:
            row, d, _ = _measure_case(every, full_every)
            digests |= d
            row["overhead_ratio"] = round(
                row["wall_s"] / disabled["wall_s"], 4)
            cell[mode] = row
        # The journal-compression ratio is deterministic (payload bytes,
        # not wall time), so it is gate-able.
        cell["delta"]["journal_vs_full"] = round(
            cell["delta"]["journal_bytes"] / cell["full"]["journal_bytes"], 4)
        intervals[str(every)] = cell
    assert len(digests) == 1, "checkpointing perturbed the output tree"
    calibration = _calibration_ops_per_sec()
    per_sec = syscalls / disabled["wall_s"]
    report = {
        "rounds": ROUNDS,
        "workload_syscalls": syscalls,
        "calibration_ops_per_sec": round(calibration, 1),
        "disabled_wall_s": disabled["wall_s"],
        "disabled_syscalls_per_sec": round(per_sec, 1),
        "disabled_normalized": round(per_sec / calibration, 6),
        "intervals": intervals,
    }
    return report


@pytest.mark.ckpt
def test_ckpt_overhead(benchmark, capsys):
    report = benchmark.pedantic(measure_ckpt_cost, rounds=1, iterations=1)
    with open(OUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with capsys.disabled():
        print()
        print("ckpt: disabled %.1f syscalls/s (%.3fs)"
              % (report["disabled_syscalls_per_sec"],
                 report["disabled_wall_s"]))
        for every in sorted(report["intervals"], key=int):
            for mode, _ in MODES:
                row = report["intervals"][every][mode]
                print("  every %4s %-5s: %.2fx wall, %d snapshots "
                      "(%d full + %d delta), %d KiB journal"
                      % (every, mode, row["overhead_ratio"],
                         row["snapshots"], row["full_snapshots"],
                         row["delta_snapshots"],
                         row["journal_bytes"] // 1024))
        print("-> %s" % os.path.basename(OUT_PATH))
    for every, cell in report["intervals"].items():
        for mode, _ in MODES:
            assert cell[mode]["snapshots"] > 0, \
                "interval %s/%s never snapshotted" % (every, mode)
        assert cell["full"]["delta_snapshots"] == 0
        assert cell["delta"]["delta_snapshots"] > 0, \
            "interval %s delta mode wrote no deltas" % every
    # Sparse checkpointing must stay cheap (measured ~1.4x); the densest
    # interval is a stress case and is reported, not wall-gated in full
    # mode.
    assert report["intervals"][str(max(INTERVALS))]["full"][
        "overhead_ratio"] < 3.0
    dense = report["intervals"][str(min(INTERVALS))]
    # The delta-compression contract: at the densest interval the delta
    # journal carries < 40% of the full journal's bytes (deterministic),
    # and the wall overhead stays below the 3x line the full mode blows
    # through (~5.7x measured).
    assert dense["delta"]["journal_vs_full"] < 0.40, dense
    assert dense["delta"]["overhead_ratio"] < 3.0, dense


def gate_against_baseline(baseline_path: str, tolerance: float = 0.40) -> int:
    """Compare a fresh BENCH_ckpt.json against the committed baseline:
    the *disabled* path regressing more than *tolerance* fails — that is
    the "checkpointing off costs nothing" contract, enforced as a trend.
    The tolerance is wide because even the load-normalized metric swings
    ~25% between a quiet and a saturated host; the gate exists to catch
    gross mistakes (e.g. tape recording running with checkpointing off,
    a 2x+ hit), not single-digit drift.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(OUT_PATH) as fh:
        fresh = json.load(fh)
    # Load-normalized when both sides have the calibration (cancels
    # machine-load swings); raw throughput for old baselines.
    key = ("disabled_normalized" if "disabled_normalized" in baseline
           else "disabled_syscalls_per_sec")
    base = baseline[key]
    now = fresh[key]
    floor = base * (1.0 - tolerance)
    print("ckpt gate: disabled %s %.6g vs baseline %.6g (floor %.6g)"
          % (key, now, base, floor))
    if now < floor:
        print("ckpt gate: FAIL — disabled-path regression > %d%%"
              % int(tolerance * 100))
        return 1
    print("ckpt gate: OK")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        raise SystemExit("usage: python -m benchmarks.bench_ckpt "
                         "<baseline BENCH_ckpt.json>")
    raise SystemExit(gate_against_baseline(sys.argv[1]))
