"""Checkpoint cost: snapshot overhead vs barrier interval.

Two claims get numbers here.  First, snapshotting is pay-as-you-go: the
wall-time overhead scales with barrier frequency, and every interval
still produces the byte-identical output tree (checkpointing must never
perturb the run it protects).  Second, the disabled path is free: with
``ContainerConfig.checkpoint`` unset the kernel only ever evaluates an
``is not None`` guard, so disabled throughput is the trend-tracked
number — ``check.sh ckpt`` gates fresh runs against the committed
``BENCH_ckpt.json`` baseline the same way the hotpath stage does.

Run as a module with a baseline path to apply the regression gate::

    python -m benchmarks.bench_ckpt /path/to/baseline.json
"""
import json
import os
import shutil
import sys
import tempfile
import time

import pytest

from repro.core import ContainerConfig, DetTrace, Image
from repro.core.config import CheckpointConfig
from repro.cpu.machine import HostEnvironment
from repro.repro_tools.hashing import tree_digest

from .conftest import scaled

ROUNDS = scaled(5)
INTERVALS = (200, 50, 10)
OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                        "BENCH_ckpt.json")


def _child(sys_):
    yield from sys_.write_file("child.txt", b"from child\n")
    return 0


def _workload(sys_):
    yield from sys_.mkdir_p("out")
    for i in range(120):
        yield from sys_.write_file("out/f%d.txt" % i, b"x" * (10 + i))
    for i in range(0, 120, 7):
        data = yield from sys_.read_file("out/f%d.txt" % i)
        yield from sys_.write_file("out/c%d.bin" % i, data)
    names = yield from sys_.listdir("out")
    yield from sys_.println("%d entries" % len(names))
    res = yield from sys_.run("/bin/child")
    yield from sys_.println("child exit %d" % res.status)
    return 0


def _image() -> Image:
    image = Image()
    image.add_binary("/bin/main", _workload)
    image.add_binary("/bin/child", _child)
    return image


def _run(cfg: ContainerConfig):
    return DetTrace(cfg).run(_image(), "/bin/main",
                             host=HostEnvironment(entropy_seed=7))


def _calibration_ops_per_sec() -> float:
    """Throughput of a fixed pure-Python loop on this machine right now.

    Dividing the bench numbers by this cancels most machine-load and
    interpreter-speed variation, so the cross-run regression gate
    compares work-per-event rather than the host's mood."""
    best = 0.0
    for _ in range(3):
        t0 = time.perf_counter()
        x = 0
        for i in range(200_000):
            x += i & 7
        best = max(best, 200_000 / (time.perf_counter() - t0))
    return best


def measure_ckpt_cost():
    from repro.ckpt import scan

    digests = set()
    syscalls = 0
    rows = {}
    for every in (None,) + INTERVALS:
        walls = []
        snapshots = journal_bytes = 0
        for _ in range(ROUNDS):
            directory = tempfile.mkdtemp(prefix="bench-ckpt-")
            try:
                if every is None:
                    cfg = ContainerConfig()
                else:
                    cfg = ContainerConfig(checkpoint=CheckpointConfig(
                        directory=directory, every=every, keep=0))
                t0 = time.perf_counter()
                result = _run(cfg)
                walls.append(time.perf_counter() - t0)
                assert result.exit_code == 0, (result.status, result.error)
                digests.add(tree_digest(result.output_tree))
                syscalls = result.syscall_count
                if every is not None:
                    infos = scan(directory)
                    snapshots += len(infos)
                    journal_bytes += sum(i.payload_len for i in infos)
            finally:
                shutil.rmtree(directory, ignore_errors=True)
        # min() is the least-noise estimator for a deterministic run.
        rows[every] = {
            "wall_s": round(min(walls), 6),
            "snapshots": snapshots // ROUNDS,
            "journal_bytes": journal_bytes // ROUNDS,
        }
    assert len(digests) == 1, "checkpointing perturbed the output tree"
    disabled = rows.pop(None)
    calibration = _calibration_ops_per_sec()
    per_sec = syscalls / disabled["wall_s"]
    report = {
        "rounds": ROUNDS,
        "workload_syscalls": syscalls,
        "calibration_ops_per_sec": round(calibration, 1),
        "disabled_wall_s": disabled["wall_s"],
        "disabled_syscalls_per_sec": round(per_sec, 1),
        "disabled_normalized": round(per_sec / calibration, 6),
        "intervals": {
            str(every): dict(row, overhead_ratio=round(
                row["wall_s"] / disabled["wall_s"], 4))
            for every, row in rows.items()
        },
    }
    return report


@pytest.mark.ckpt
def test_ckpt_overhead(benchmark, capsys):
    report = benchmark.pedantic(measure_ckpt_cost, rounds=1, iterations=1)
    with open(OUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with capsys.disabled():
        print()
        print("ckpt: disabled %.1f syscalls/s (%.3fs)"
              % (report["disabled_syscalls_per_sec"],
                 report["disabled_wall_s"]))
        for every in sorted(report["intervals"], key=int):
            row = report["intervals"][every]
            print("  every %4s: %.2fx wall, %d snapshots, %d KiB journal"
                  % (every, row["overhead_ratio"], row["snapshots"],
                     row["journal_bytes"] // 1024))
        print("-> %s" % os.path.basename(OUT_PATH))
    for every, row in report["intervals"].items():
        assert row["snapshots"] > 0, "interval %s never snapshotted" % every
    # Sparse checkpointing must stay cheap (measured ~1.4x); the densest
    # interval is a stress case and is reported, not gated.
    assert report["intervals"][str(max(INTERVALS))]["overhead_ratio"] < 3.0


def gate_against_baseline(baseline_path: str, tolerance: float = 0.40) -> int:
    """Compare a fresh BENCH_ckpt.json against the committed baseline:
    the *disabled* path regressing more than *tolerance* fails — that is
    the "checkpointing off costs nothing" contract, enforced as a trend.
    The tolerance is wide because even the load-normalized metric swings
    ~25% between a quiet and a saturated host; the gate exists to catch
    gross mistakes (e.g. tape recording running with checkpointing off,
    a 2x+ hit), not single-digit drift.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(OUT_PATH) as fh:
        fresh = json.load(fh)
    # Load-normalized when both sides have the calibration (cancels
    # machine-load swings); raw throughput for old baselines.
    key = ("disabled_normalized" if "disabled_normalized" in baseline
           else "disabled_syscalls_per_sec")
    base = baseline[key]
    now = fresh[key]
    floor = base * (1.0 - tolerance)
    print("ckpt gate: disabled %s %.6g vs baseline %.6g (floor %.6g)"
          % (key, now, base, floor))
    if now < floor:
        print("ckpt gate: FAIL — disabled-path regression > %d%%"
              % int(tolerance * 100))
        return 1
    print("ckpt gate: OK")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        raise SystemExit("usage: python -m benchmarks.bench_ckpt "
                         "<baseline BENCH_ckpt.json>")
    raise SystemExit(gate_against_baseline(sys.argv[1]))
