"""Run-cache payoff: cold package sweep vs warm memoized sweep.

The cache's one number that matters: a warm sweep over N already-built
packages must re-execute **zero** guests — every job resolves to a
``hit`` with ``executed=False`` — and finish at least 5x faster than the
cold sweep that populated the store.  Both sweeps run the same N
distinct "package" images through :func:`repro.parallel.run_jobs`
sharing one cache directory, exactly the §7 package-sweep shape, and the
warm results must be byte-identical to the cold ones (a hit reproduces
every deterministic surface).  A third sweep in ``--cache=verify`` mode
re-executes everything and must come back all ``verify_ok`` — the
store's contents agree with reality.

The warm-lookup rate (keys resolved per second, load-normalized the same
way as the hotpath bench) is the trend-tracked number: it prices the
fingerprint + CAS read path, which is pure overhead on every hit.

Run as a module with a baseline path to apply the regression gate::

    python -m benchmarks.bench_cache /path/to/baseline.json
"""
import json
import os
import shutil
import sys
import tempfile
import time

import pytest

from repro.core import CacheConfig, ContainerConfig, DetTrace, Image
from repro.cpu.machine import HostEnvironment
from repro.parallel import Job, cache_tally, run_jobs
from repro.repro_tools.hashing import tree_digest

from .conftest import scaled

ROUNDS = scaled(5)
#: Distinct package images per sweep; each gets its own run key.
PACKAGES = scaled(6)
#: Files each "package build" writes — enough guest work that execution
#: dwarfs the key computation the warm path still pays.
FILES = 100
OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                        "BENCH_cache.json")


def _pkg_guest(sys_):
    name = yield from sys_.read_file("/etc/package")
    tag = name.strip()
    yield from sys_.mkdir_p("out")
    for i in range(FILES):
        yield from sys_.write_file("out/f%d.txt" % i,
                                   tag + b":" + b"x" * (10 + i))
    for i in range(0, FILES, 9):
        data = yield from sys_.read_file("out/f%d.txt" % i)
        yield from sys_.write_file("out/c%d.bin" % i, data)
    names = yield from sys_.listdir("out")
    yield from sys_.println("%s built %d entries"
                            % (tag.decode("utf-8"), len(names)))
    return 0


def _pkg_image(index: int) -> Image:
    image = Image()
    image.add_binary("/bin/build", _pkg_guest)
    image.add_file("/etc/package", "pkg-%03d\n" % index)
    return image


def _build_package(index: int, cache_dir: str, mode: str):
    """Module-level (picklable) worker: one package build, reduced to a
    record the pool can ship home."""
    cfg = ContainerConfig(cache=CacheConfig(directory=cache_dir, mode=mode))
    result = DetTrace(cfg).run(_pkg_image(index), "/bin/build",
                               host=HostEnvironment(entropy_seed=11))
    assert result.exit_code == 0, (result.status, result.error)
    return {
        "index": index,
        "tree": tree_digest(result.output_tree),
        "stdout": result.stdout,
        "syscalls": result.syscall_count,
        "cache": ({"outcome": result.cache["outcome"],
                   "key": result.cache["key"],
                   "executed": result.cache["executed"]}
                  if result.cache else None),
    }


def _sweep(cache_dir: str, mode: str):
    """One fan-out over every package; returns (wall_s, records)."""
    jobs = [Job(key=i, fn=_build_package, args=(i, cache_dir, mode))
            for i in range(PACKAGES)]
    t0 = time.perf_counter()
    results = run_jobs(jobs, workers=1)
    wall = time.perf_counter() - t0
    return wall, [record for _key, record in results]


def _calibration_ops_per_sec() -> float:
    """Throughput of a fixed pure-Python loop on this machine right now;
    dividing by it cancels machine-load swings in the trend gate."""
    best = 0.0
    for _ in range(3):
        t0 = time.perf_counter()
        x = 0
        for i in range(200_000):
            x += i & 7
        best = max(best, 200_000 / (time.perf_counter() - t0))
    return best


def measure_cache_payoff():
    cold_walls, warm_walls = [], []
    cold_tally = warm_tally = verify_tally = {}
    warm_executed = 0
    syscalls = 0
    for _ in range(ROUNDS):
        directory = tempfile.mkdtemp(prefix="bench-cache-")
        try:
            cold_wall, cold = _sweep(directory, "write")
            warm_wall, warm = _sweep(directory, "write")
            cold_walls.append(cold_wall)
            warm_walls.append(warm_wall)
            cold_tally = cache_tally(cold)
            warm_tally = cache_tally(warm)
            warm_executed = sum(1 for rec in warm if rec["cache"]["executed"])
            syscalls = sum(rec["syscalls"] for rec in cold)
            # A hit reproduces every deterministic surface bytewise.
            for a, b in zip(cold, warm):
                assert (a["tree"], a["stdout"], a["syscalls"]) \
                    == (b["tree"], b["stdout"], b["syscalls"]), a["index"]
            _wall, verified = _sweep(directory, "verify")
            verify_tally = cache_tally(verified)
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    # min() is the least-noise estimator for a deterministic run.
    cold_wall = min(cold_walls)
    warm_wall = min(warm_walls)
    calibration = _calibration_ops_per_sec()
    lookups_per_sec = PACKAGES / warm_wall
    return {
        "rounds": ROUNDS,
        "packages": PACKAGES,
        "workload_syscalls": syscalls,
        "calibration_ops_per_sec": round(calibration, 1),
        "cold_wall_s": round(cold_wall, 6),
        "warm_wall_s": round(warm_wall, 6),
        "speedup": round(cold_wall / warm_wall, 2),
        "warm_reexecutions": warm_executed,
        "warm_lookups_per_sec": round(lookups_per_sec, 1),
        "warm_normalized": round(lookups_per_sec / calibration, 6),
        "cold_tally": cold_tally,
        "warm_tally": warm_tally,
        "verify_tally": verify_tally,
    }


@pytest.mark.cache
def test_cache_payoff(benchmark, capsys):
    report = benchmark.pedantic(measure_cache_payoff, rounds=1, iterations=1)
    with open(OUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with capsys.disabled():
        print()
        print("cache: %d packages cold %.3fs -> warm %.3fs (%.1fx), "
              "%d re-executions"
              % (report["packages"], report["cold_wall_s"],
                 report["warm_wall_s"], report["speedup"],
                 report["warm_reexecutions"]))
        print("  cold %r  warm %r  verify %r"
              % (report["cold_tally"], report["warm_tally"],
                 report["verify_tally"]))
        print("-> %s" % os.path.basename(OUT_PATH))
    # The memoization contract, as hard gates:
    assert report["cold_tally"] == {"store": PACKAGES}
    assert report["warm_tally"] == {"hit": PACKAGES}
    assert report["warm_reexecutions"] == 0, \
        "warm sweep re-executed a guest"
    assert report["verify_tally"] == {"verify_ok": PACKAGES}
    assert report["speedup"] >= 5.0, report


def gate_against_baseline(baseline_path: str, tolerance: float = 0.40) -> int:
    """Compare a fresh BENCH_cache.json against the committed baseline.

    Two gates: the absolute memoization contract (warm sweep >= 5x with
    zero re-executions — same bar as the pytest gate), and a trend gate
    on the load-normalized warm-lookup rate, wide for the same reason as
    the ckpt gate: it exists to catch a grossly regressed hit path (e.g.
    re-executing on hits), not single-digit drift.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(OUT_PATH) as fh:
        fresh = json.load(fh)
    print("cache gate: speedup %.2fx, %d warm re-executions"
          % (fresh["speedup"], fresh["warm_reexecutions"]))
    if fresh["speedup"] < 5.0 or fresh["warm_reexecutions"] != 0:
        print("cache gate: FAIL — memoization contract broken")
        return 1
    base = baseline["warm_normalized"]
    now = fresh["warm_normalized"]
    floor = base * (1.0 - tolerance)
    print("cache gate: warm_normalized %.6g vs baseline %.6g (floor %.6g)"
          % (now, base, floor))
    if now < floor:
        print("cache gate: FAIL — warm-lookup regression > %d%%"
              % int(tolerance * 100))
        return 1
    print("cache gate: OK")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        raise SystemExit("usage: python -m benchmarks.bench_cache "
                         "<baseline BENCH_cache.json>")
    raise SystemExit(gate_against_baseline(sys.argv[1]))
