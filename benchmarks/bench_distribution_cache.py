"""§2's motivation, quantified: reproducible builds enable artifact
caching across a dependency DAG.

Google's cited problem: "spurious changes due to irreproducibility
causing massive additional downstream rebuilds".  We build a 12-package
dependency chain twice (simulating two nodes of a build farm) and count
how many artifacts compare bitwise-equal — i.e., how many downstream
rebuilds a content-addressed cache would avoid.  Natively: zero cache
hits.  Under DetTrace: everything hits; and after a real one-line source
change in one mid-chain package, only that package and its dependents
rebuild.
"""

import hashlib

from repro.analysis import format_table
from repro.repro_tools import first_build_host, second_build_host
from repro.workloads.debian import PackageSpec, build_chain


def make_dag():
    """A layered DAG: 3 base libs, 5 mid libs, 4 apps."""
    base = [PackageSpec(name="base%d" % i, n_sources=2,
                        embeds_timestamp=(i == 0),
                        embeds_random_symbols=(i == 1))
            for i in range(3)]
    mid = [PackageSpec(name="mid%d" % i, n_sources=2,
                       build_depends=("base%d" % (i % 3),))
           for i in range(5)]
    apps = [PackageSpec(name="app%d" % i, n_sources=2,
                        build_depends=("mid%d" % (i % 5), "base0"))
            for i in range(4)]
    return base + mid + apps


def measure_cache_hits():
    dag = make_dag()
    results = {}
    for mode, dettrace in (("native", False), ("dettrace", True)):
        first = build_chain(dag, dettrace=dettrace,
                            host_for=lambda i: first_build_host(seed=i))
        second = build_chain(dag, dettrace=dettrace,
                             host_for=lambda i: second_build_host(seed=i))
        hits = sum(1 for name in first if first[name] == second[name])
        results[mode] = (hits, len(dag))
    # Incremental scenario: change one mid-chain package's source.
    changed = [p if p.name != "mid0"
               else PackageSpec(name="mid0", n_sources=2, loc_per_source=250,
                                build_depends=("base0",))
               for p in dag]
    baseline = build_chain(dag, dettrace=True,
                           host_for=lambda i: first_build_host(seed=i))
    after = build_chain(changed, dettrace=True,
                        host_for=lambda i: second_build_host(seed=i))
    rebuilt = [name for name in baseline if baseline[name] != after[name]]
    return results, rebuilt, [p.name for p in dag]


def test_distribution_cache(benchmark, capsys):
    results, rebuilt, names = benchmark.pedantic(measure_cache_hits,
                                                 rounds=1, iterations=1)
    with capsys.disabled():
        print()
        rows = [[mode, "%d/%d" % hits] for mode, hits in results.items()]
        print(format_table(["build mode", "bitwise cache hits across farm nodes"],
                           rows, title="§2: artifact-cache effectiveness "
                                       "over a 12-package DAG"))
        print()
        print("after changing mid0's sources, rebuilt artifacts: %s"
              % ", ".join(sorted(rebuilt)))

    native_hits, total = results["native"]
    dt_hits, _ = results["dettrace"]
    assert native_hits < total * 0.5      # native: cache mostly useless
    assert dt_hits == total               # DetTrace: full hit rate
    # Only mid0 and its transitive dependents changed.
    assert "mid0" in rebuilt
    assert "base0" not in rebuilt and "base1" not in rebuilt
    for name in rebuilt:
        assert name == "mid0" or name.startswith("app"), name
