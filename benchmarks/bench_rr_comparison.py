"""SS7.1.3: the record-and-replay baseline — crash rate on exotic ioctls,
runtime overhead, trace storage, and replay fidelity."""
import numpy as np

from repro.analysis import PAPER_RR, format_table
from repro.repro_tools import first_build_host
from repro.rnr import record, replay
from repro.workloads.debian import (
    TOOLS,
    build_native,
    generate_population,
    package_image,
)

from .conftest import scaled

SAMPLE = scaled(25)


def measure_rr():
    specs = [s for s in generate_population(SAMPLE * 3, seed=29)
             if not s.syscall_storm and not s.busy_waits
             and not s.uses_threads and s.language != "java"][:SAMPLE]
    crashes, overheads, sizes, replays_ok = 0, [], [], 0
    for spec in specs:
        base = build_native(spec, host=first_build_host())
        if base.status != "built":
            continue
        rec = record(package_image(spec), TOOLS["driver"],
                     argv=["dpkg-buildpackage", spec.name],
                     host=first_build_host())
        if rec.status == "crash":
            crashes += 1
            continue
        overheads.append(rec.wall_time / base.result.wall_time)
        sizes.append(rec.recording.storage_size())
        if replay(package_image(spec), TOOLS["driver"], rec.recording,
                  argv=["dpkg-buildpackage", spec.name],
                  host=first_build_host(seed=999)):
            replays_ok += 1
    return len(specs), crashes, np.array(overheads), sizes, replays_ok


def test_rr_comparison(benchmark, capsys):
    total, crashes, overheads, sizes, replays_ok = benchmark.pedantic(
        measure_rr, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        rows = [
            ["crash fraction", "%.0f%%" % (100 * crashes / total),
             "%.0f%% (46/81)" % (100 * PAPER_RR["crash_fraction"])],
            ["mean overhead", "%.2fx" % overheads.mean(),
             "%.1fx" % PAPER_RR["mean_overhead"]],
            ["overhead range", "%.1f-%.1fx" % (overheads.min(), overheads.max()),
             "%.1f-%.1fx" % (PAPER_RR["min_overhead"], PAPER_RR["max_overhead"])],
            ["replays completed", "%d/%d" % (replays_ok, len(overheads)), "n/a"],
            ["mean trace size", "%.0f KB" % (np.mean(sizes) / 1024),
             "'much more than source'"],
        ]
        print(format_table(["metric", "measured", "paper"], rows,
                           title="SS7.1.3: Mozilla rr baseline"))

    assert 0.3 < crashes / total < 0.85
    assert overheads.mean() > 2.0          # slower than DetTrace's builds
    assert replays_ok == len(overheads)    # replay is faithful
    assert min(sizes) > 0
