"""Ablation bench: every SS5 mechanism's contribution, measured.

For each mechanism, build a package population with that single mechanism
disabled and count how many DetTrace builds stop being reproducible —
showing each design choice in DESIGN.md is load-bearing.  Also quantifies
the seccomp-bpf optimization (SS5.11) and the scheduler variants.
"""
import dataclasses

from repro.analysis import format_table
from repro.core import ContainerConfig, ablated
from repro.repro_tools import first_build_host, reprotest_dettrace
from repro.workloads.debian import PackageSpec, build_dettrace, build_native, generate_population

from .conftest import scaled

SAMPLE = scaled(12)

MECHANISMS = [
    "virtualize_time", "patch_vdso", "deterministic_randomness",
    "virtualize_inodes", "sort_getdents", "deterministic_pids",
    "disable_aslr", "canonical_env", "mask_machine", "trap_rdtsc",
]


def population():
    return [s for s in generate_population(SAMPLE * 4, seed=37)
            if not s.expect_dt_unsupported and not s.syscall_storm][:SAMPLE]


def measure_ablations():
    specs = population()
    broken = {}
    for mechanism in MECHANISMS:
        cfg = ablated(mechanism)
        broken[mechanism] = sum(
            1 for spec in specs
            if reprotest_dettrace(spec, config=cfg).verdict != "reproducible")
    full = sum(1 for spec in specs
               if reprotest_dettrace(spec).verdict != "reproducible")
    return len(specs), full, broken


def measure_seccomp_and_scheduler():
    spec = PackageSpec(name="perf", n_sources=6, parallel_jobs=2,
                       include_probes=30, embeds_timestamp=True)
    base = build_native(spec, host=first_build_host()).result.wall_time
    out = {}
    for label, cfg in (
            ("seccomp on (default)", ContainerConfig()),
            ("seccomp off (plain ptrace)", ablated("use_seccomp")),
            ("old kernel (<4.8 double stops)", ContainerConfig())):
        host = first_build_host()
        if "old kernel" in label:
            from repro.cpu.machine import OLD_KERNEL_SKYLAKE
            host = first_build_host(machine=OLD_KERNEL_SKYLAKE)
        rec = build_dettrace(spec, config=cfg, host=host, timeout=30.0)
        out[label] = rec.result.wall_time / base

    # The strict Figure-3 queues only let the *front* of the Parallel
    # queue transition, so a compute-heavy front gates everyone else's
    # syscalls: visible on a fork-join of long pure-compute workers.
    from repro.core import DetTrace, Image
    from repro.cpu.machine import HASWELL_XEON, HostEnvironment

    def worker(sys):
        yield from sys.compute(0.05)   # long compute, zero syscalls
        yield from sys.write_file("done", b"1")
        return 0

    def driver(sys):
        for _ in range(8):
            yield from sys.spawn("/bin/worker")
        for _ in range(8):
            yield from sys.waitpid(-1)
        return 0

    img = Image()
    img.add_binary("/bin/worker", worker)
    img.add_binary("/bin/driver", driver)
    host = HostEnvironment(machine=HASWELL_XEON, entropy_seed=3)
    logical = DetTrace(ContainerConfig()).run(
        img, "/bin/driver", host=host).wall_time
    strict = DetTrace(ContainerConfig(scheduler="strict", timeout=600.0)).run(
        img, "/bin/driver", host=host).wall_time
    out["fork-join@8: logical scheduler wall (s)"] = logical
    out["fork-join@8: strict Figure-3 wall (s)"] = strict
    return out


def test_mechanism_ablations(benchmark, capsys):
    total, full, broken = benchmark.pedantic(measure_ablations,
                                             rounds=1, iterations=1)
    with capsys.disabled():
        print()
        rows = [["(full DetTrace)", "%d/%d" % (full, total)]]
        rows += [[m, "%d/%d" % (b, total)] for m, b in sorted(
            broken.items(), key=lambda kv: -kv[1])]
        print(format_table(["mechanism disabled", "irreproducible builds"],
                           rows, title="Ablations over %d packages" % total))
    assert full == 0
    # At least the big-ticket mechanisms must visibly matter.
    assert broken["virtualize_time"] > 0
    assert broken["virtualize_inodes"] > 0
    assert sum(broken.values()) >= 5


def test_seccomp_and_scheduler_overheads(benchmark, capsys):
    out = benchmark.pedantic(measure_seccomp_and_scheduler,
                             rounds=1, iterations=1)
    with capsys.disabled():
        print()
        rows = [[label, "%.2f" % v] for label, v in out.items()]
        print(format_table(["configuration", "slowdown / wall (s)"], rows,
                           title="SS5.11 seccomp optimization / SS5.6 "
                                 "scheduler variants"))
    assert out["seccomp off (plain ptrace)"] >= out["seccomp on (default)"]
    assert out["old kernel (<4.8 double stops)"] >= out["seccomp on (default)"]
    # The literal Figure-3 queues serialize process-parallel compute.
    assert (out["fork-join@8: strict Figure-3 wall (s)"]
            > 1.5 * out["fork-join@8: logical scheduler wall (s)"])
