"""SS7.6: TensorFlow slowdowns (DetTrace vs parallel / serialized native)
and loss-curve reproducibility."""
from repro.analysis import PAPER_TF, format_table
from repro.cpu.machine import HASWELL_XEON, HostEnvironment
from repro.workloads.ml import (
    ALEXNET,
    CIFAR10,
    losses_of,
    run_dettrace,
    run_parallel_native,
    run_serial_native,
)


def host(seed, boot=0.0):
    return HostEnvironment(machine=HASWELL_XEON, entropy_seed=seed,
                           boot_epoch=1.7e9 + boot)


def measure_tf():
    rows = {}
    for cfg in (ALEXNET, CIFAR10):
        par = run_parallel_native(cfg, host=host(1))
        ser = run_serial_native(cfg, host=host(2))
        det = run_dettrace(cfg, host=host(3))
        det2 = run_dettrace(cfg, host=host(4, boot=500.0))
        par2 = run_parallel_native(cfg, host=host(5, boot=900.0))
        rows[cfg.name] = {
            "vs_parallel": det.wall_time / par.wall_time,
            "vs_serial": det.wall_time / ser.wall_time,
            "dt_reproducible": losses_of(det) == losses_of(det2),
            "native_reproducible": losses_of(par) == losses_of(par2),
        }
    return rows


def test_tensorflow(benchmark, capsys):
    rows = benchmark.pedantic(measure_tf, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table = [[name,
                  "%.2fx" % r["vs_parallel"], "%.2fx" % PAPER_TF[name]["vs_parallel"],
                  "%.2fx" % r["vs_serial"], "%.2fx" % PAPER_TF[name]["vs_serial"],
                  r["dt_reproducible"], r["native_reproducible"]]
                 for name, r in rows.items()]
        print(format_table(
            ["model", "DT/par", "paper", "DT/serial", "paper",
             "DT losses repro", "native repro"],
            table, title="SS7.6: TensorFlow slowdowns and reproducibility"))

    for name, r in rows.items():
        assert r["dt_reproducible"], name
        assert not r["native_reproducible"], name
        assert r["vs_parallel"] > 6.0
        assert r["vs_serial"] < 2.5
    assert rows["alexnet"]["vs_parallel"] > rows["cifar10"]["vs_parallel"]
