"""Observability overhead: obs-on vs obs-off host wall time.

The observer-effect invariant (tests/obs) guarantees the event stream
never changes *virtual* behaviour — same output hashes, same schedules.
This bench quantifies what observability costs in *host* time: the same
package sample is built with ``observe=False`` and ``observe=True`` and
the wall-clock ratio is reported, plus a machine-readable
``BENCH_obs_overhead.json`` at the repo root for trend tracking.

The diagnosis plane rides the same budget: a run-pair diff
(``diff_captures``) and a checkpoint bisection over the known-leak
harness are timed as well, so a slow alignment or an extra bisection
probe shows up in the same trend file.
"""
import json
import os
import time

from repro.core import ContainerConfig
from repro.diag import bisect_divergence, content_leak_pair, diff_captures
from repro.repro_tools import first_build_host
from repro.repro_tools.hashing import tree_digest
from repro.workloads.debian import build_dettrace, generate_population

from .conftest import scaled

SAMPLE = scaled(12)
OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                        "BENCH_obs_overhead.json")


def measure_obs_overhead():
    specs = [s for s in generate_population(SAMPLE * 2, seed=21)
             if not s.expect_dt_unsupported and not s.syscall_storm][:SAMPLE]
    off_s = on_s = 0.0
    built = 0
    events = 0
    for spec in specs:
        t0 = time.perf_counter()
        off = build_dettrace(spec, config=ContainerConfig(observe=False),
                             host=first_build_host())
        t1 = time.perf_counter()
        on = build_dettrace(spec, config=ContainerConfig(observe=True),
                            host=first_build_host())
        t2 = time.perf_counter()
        if off.status != "built" or on.status != "built":
            continue
        # The observer effect must be nil: identical trees either way.
        assert (tree_digest(off.result.output_tree)
                == tree_digest(on.result.output_tree))
        built += 1
        off_s += t1 - t0
        on_s += t2 - t1
        if on.result.trace is not None:
            events += len(on.result.trace)
    return {
        "packages": built,
        "obs_off_wall_s": round(off_s, 6),
        "obs_on_wall_s": round(on_s, 6),
        "overhead_ratio": round(on_s / off_s, 4) if off_s else None,
        "trace_events": events,
    }


def measure_diag_cost():
    """Wall cost of the diagnosis plane on the known-leak harness."""
    spec_a, spec_b = content_leak_pair()
    cap_a, cap_b = spec_a.capture(), spec_b.capture()
    t0 = time.perf_counter()
    report = diff_captures(cap_a, cap_b)
    t1 = time.perf_counter()
    assert report.diverged
    t2 = time.perf_counter()
    result = bisect_divergence(*content_leak_pair(), coarse=16)
    t3 = time.perf_counter()
    assert result.diverged and result.hi - result.lo == 1
    return {
        "diff_wall_s": round(t1 - t0, 6),
        "bisect_wall_s": round(t3 - t2, 6),
        "bisect_probes": result.probes,
    }


def test_obs_overhead(benchmark, capsys):
    row = benchmark.pedantic(measure_obs_overhead, rounds=1, iterations=1)
    row.update(measure_diag_cost())
    with open(OUT_PATH, "w") as fh:
        json.dump(row, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with capsys.disabled():
        print()
        print("obs overhead: %d packages, off %.3fs vs on %.3fs "
              "(ratio %.2fx, %d trace events) -> %s"
              % (row["packages"], row["obs_off_wall_s"], row["obs_on_wall_s"],
                 row["overhead_ratio"] or 0.0, row["trace_events"],
                 os.path.basename(OUT_PATH)))
        print("diag cost: diff %.3fs, bisect %.3fs (%d probes)"
              % (row["diff_wall_s"], row["bisect_wall_s"],
                 row["bisect_probes"]))
    assert row["packages"] >= SAMPLE * 0.8
    assert row["trace_events"] > 0
    # Collecting the stream should stay cheap relative to the run itself.
    assert row["overhead_ratio"] is not None and row["overhead_ratio"] < 3.0
    # Diffing an already-captured pair is pure alignment — no reruns.
    assert row["diff_wall_s"] < row["bisect_wall_s"]
