"""Table 2: per-package average tracer event counts.

Our packages are ~300x smaller than Debian's (hundreds of syscalls per
build instead of 843k), so the table reports measured averages alongside
the paper's; the *mix* (syscalls >> memory reads >> rdtsc >> scheduling
>> replays >> spawns >> retries) is the reproduced shape.

The counts come straight from the observability plane: every run already
carries a :class:`repro.obs.metrics.Metrics` snapshot, so the bench
aggregates ``ContainerResult.metrics`` with :meth:`Metrics.add` instead
of recomputing event totals from raw counters.
"""
from repro.analysis import PAPER_TABLE2, format_table2  # noqa: F401
from repro.obs.metrics import Metrics
from repro.repro_tools import first_build_host
from repro.workloads.debian import build_dettrace, generate_population

from .conftest import scaled

SAMPLE = scaled(40)


def measure_events():
    specs = [s for s in generate_population(SAMPLE * 2, seed=7)
             if not s.expect_dt_unsupported and not s.syscall_storm][:SAMPLE]
    aggregate = None
    built = 0
    for spec in specs:
        rec = build_dettrace(spec, host=first_build_host())
        if rec.status != "built" or rec.result.metrics is None:
            continue
        built += 1
        if aggregate is None:
            aggregate = rec.result.metrics
        else:
            aggregate.add(rec.result.metrics)
    averages = (aggregate or Metrics()).table2_averages()
    return built, averages


def test_table2(benchmark, capsys):
    built, averages = benchmark.pedantic(measure_events, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table2(
            averages,
            scale_note="(%d packages; our builds are ~10^3x smaller than "
                       "Debian's, so compare shape not magnitude)" % built))
    assert built >= SAMPLE * 0.8
    # The dominance ordering of Table 2's large rows.
    assert averages["System call events"] > averages["User process memory reads"]
    assert averages["User process memory reads"] > averages["rdtsc intercepted"]
    assert averages["System call events"] > 100 * averages["read retries"]
    assert averages["/dev/urandom opens"] >= 0
