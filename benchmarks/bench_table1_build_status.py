"""Table 1: build-status transitions from baseline to DetTrace, plus the
SS6.1 baseline numbers (0% without the tar workaround) and the SS7.1.1
unsupported-cause breakdown."""
from collections import Counter

from repro.analysis import PAPER_TABLE1_TOP, format_table, format_table1
from repro.repro_tools import reprotest_dettrace, reprotest_native
from repro.workloads.debian import generate_population

from .conftest import scaled

POPULATION = scaled(80)


def classify_population():
    specs = generate_population(POPULATION, seed=42)
    matrix = Counter()
    causes = Counter()
    stock_reproducible = 0
    for spec in specs:
        bl = reprotest_native(spec)
        dt = reprotest_dettrace(spec)
        matrix[(bl.verdict, dt.verdict)] += 1
        if dt.verdict == "unsupported":
            causes[tuple(spec.unsupported_causes)] += 1
        stock = reprotest_native(spec, apply_tar_workaround=False)
        if stock.verdict == "reproducible":
            stock_reproducible += 1
    return specs, matrix, causes, stock_reproducible


def test_table1(benchmark, capsys):
    specs, matrix, causes, stock = benchmark.pedantic(
        classify_population, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(format_table1(matrix))

        total = len(specs)
        bl_irr = sum(v for (b, _), v in matrix.items() if b == "irreproducible")
        dt_rep = sum(v for (_, d), v in matrix.items() if d == "reproducible")
        rendered = matrix.get(("irreproducible", "reproducible"), 0)
        print()
        print("SS6.1 stock system (no tar-mtime workaround): "
              "%d/%d reproducible (paper: 0%%)" % (stock, total))
        print("SS6.1 with workaround: %.1f%% BL-reproducible (paper: 24.1%%)"
              % (100 * (total - bl_irr) / total))
        print("DetTrace renders %.1f%% of BL-irreproducible packages "
              "reproducible (paper: 72.65%%)" % (100 * rendered / max(1, bl_irr)))
        print()
        rows = [[("+".join(k) or "?"), v] for k, v in causes.most_common()]
        print(format_table(["unsupported cause", "count"], rows,
                           title="SS7.1.1 unsupported breakdown "
                                 "(paper: busy-wait 45.8%, sockets 15.8%, "
                                 "signals 4%, misc tail)"))

    # Shape assertions: the paper's headline claims.
    assert stock == 0
    assert matrix.get(("reproducible", "irreproducible"), 0) == 0
    assert matrix.get(("irreproducible", "irreproducible"), 0) == 0
    assert rendered / max(1, bl_irr) > 0.6
