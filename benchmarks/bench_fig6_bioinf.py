"""Figure 6: bioinformatics speedups at 1/4/16 processes, native vs
DetTrace, normalized to sequential native."""
from repro.analysis import PAPER_FIG6, format_fig6
from repro.cpu.machine import HASWELL_XEON, HostEnvironment
from repro.workloads.bioinf import ALL_TOOLS, run_dettrace, run_native, tool_image


def measure_speedups():
    speedups = {}
    for tool, spec in ALL_TOOLS.items():
        img = tool_image(spec)
        seq = None
        speedups[tool] = {"native": [], "dettrace": []}
        for mode, runner in (("native", run_native), ("dettrace", run_dettrace)):
            for nprocs in (1, 4, 16):
                host = HostEnvironment(machine=HASWELL_XEON,
                                       entropy_seed=nprocs * 7)
                result = runner(img, tool, nprocs, host=host)
                assert result.succeeded, (tool, mode, result.error)
                if mode == "native" and nprocs == 1:
                    seq = result.wall_time
                speedups[tool][mode].append(seq / result.wall_time)
    return speedups


def test_fig6(benchmark, capsys):
    speedups = benchmark.pedantic(measure_speedups, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_fig6(speedups))

    # Shape assertions from SS7.5.
    clustal, hmmer, raxml = (speedups[t] for t in ("clustal", "hmmer", "raxml"))
    # clustal is compute-bound: DetTrace nearly free at 16 procs.
    assert clustal["dettrace"][2] > 0.75 * clustal["native"][2]
    # raxml is syscall-bound: big sequential hit, recovers with procs.
    assert raxml["dettrace"][0] < 0.5
    assert raxml["dettrace"][2] > raxml["dettrace"][0] * 2
    # hmmer sits between.
    assert clustal["dettrace"][0] > hmmer["dettrace"][0] > raxml["dettrace"][0]
    # native scaling is monotone for all three.
    for tool in speedups.values():
        assert tool["native"][0] < tool["native"][1] < tool["native"][2]
