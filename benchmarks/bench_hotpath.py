"""Hot-path engine throughput: scheduler, dispatch caches, fan-out.

Wraps :mod:`repro.hotpath` as a pytest bench (``pytest -m perf``),
emitting ``BENCH_hotpath.json`` at the repo root for trend tracking
(the ``perf`` stage of scripts/check.sh gates on it).

The determinism contract is asserted, not sampled: the O(log n)
scheduler must produce the *identical* decision sequence as the
``logical-ref`` oracle, and the parallel fan-out must produce
byte-identical per-run digests versus the serial sweep.  Throughput
assertions that depend on the host (the fan-out speedup) are gated on
the reported core count — on a single-core CI runner only the identity
property is checked.
"""
import json
import os

import pytest

from repro.hotpath import format_report, run_hotpath_bench

from .conftest import SCALE

OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                        "BENCH_hotpath.json")


@pytest.mark.perf
def test_hotpath(capsys):
    report = run_hotpath_bench(scale=SCALE, out_path=OUT_PATH)
    with capsys.disabled():
        print()
        print(format_report(report))
        print("-> %s" % os.path.basename(OUT_PATH))

    sched = report["scheduler"]
    served = report["serviced"]
    fan = report["fanout"]

    # Identity first: speed never at the cost of the schedule.
    assert sched["orders_identical"] is True
    assert fan["digests_identical"] is True

    # The heap scheduler must beat the quadratic reference decisively
    # at 16 threads (acceptance: >= 5x decision throughput).
    assert sched["threads"] == 16
    assert sched["speedup"] >= 5.0

    # End-to-end throughput sanity: the sample built and was serviced.
    assert served["packages"] >= 2
    assert served["serviced_syscalls_per_s"] > 0
    assert served["resolve_hit_rate"] is not None

    # Fan-out speedup is physically bounded by the host's core count;
    # only assert it where the hardware can deliver it.
    if fan["host_cores"] >= 2 and fan["runs"] >= 4:
        assert fan["speedup"] >= 2.0


def regression_check(baseline_path: str, current_path: str = OUT_PATH,
                     tolerance: float = 0.30) -> str:
    """Compare serviced-syscalls/sec against a committed baseline.

    Returns a human-readable verdict line; raises ``SystemExit`` when
    throughput regressed more than *tolerance* (scripts/check.sh perf
    stage calls this).  Scheduler decision throughput is reported but
    not gated here — it is asserted against its own 5x floor above.
    """
    with open(baseline_path) as fh:
        base = json.load(fh)
    with open(current_path) as fh:
        cur = json.load(fh)
    old = base["serviced"]["serviced_syscalls_per_s"]
    new = cur["serviced"]["serviced_syscalls_per_s"]
    ratio = new / old if old else 1.0
    line = ("serviced syscalls/s: baseline %.0f -> current %.0f (%.2fx)"
            % (old, new, ratio))
    if ratio < 1.0 - tolerance:
        raise SystemExit("perf regression: %s exceeds the %d%% budget"
                         % (line, int(tolerance * 100)))
    return line


if __name__ == "__main__":
    import sys

    print(regression_check(sys.argv[1]))
