"""SS7.3: cross-machine bitwise reproducibility, including the
directory-size extension ablation."""
from repro.analysis import format_table
from repro.core import ablated
from repro.cpu.machine import BROADWELL_XEON, SKYLAKE_CLOUDLAB
from repro.repro_tools import reprotest_portability
from repro.workloads.debian import generate_population

from .conftest import scaled

SAMPLE = scaled(20)


def measure_portability():
    specs = [s for s in generate_population(SAMPLE * 3, seed=31)
             if not s.expect_dt_unsupported and not s.syscall_storm][:SAMPLE]
    identical = 0
    broken_without_extension = 0
    for spec in specs:
        result = reprotest_portability(spec, SKYLAKE_CLOUDLAB, BROADWELL_XEON)
        if result.verdict == "reproducible":
            identical += 1
        ablated_result = reprotest_portability(
            spec, SKYLAKE_CLOUDLAB, BROADWELL_XEON,
            config=ablated("deterministic_dir_sizes"))
        if ablated_result.verdict != "reproducible":
            broken_without_extension += 1
    return len(specs), identical, broken_without_extension


def test_portability(benchmark, capsys):
    total, identical, broken = benchmark.pedantic(
        measure_portability, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        rows = [
            ["bitwise identical across machines", "%d/%d" % (identical, total),
             "1,000/1,000"],
            ["broken without the dir-size extension", "%d/%d" % (broken, total),
             "'one extension required'"],
        ]
        print(format_table(["metric", "measured", "paper"], rows,
                           title="SS7.3: Skylake/Ubuntu-18.04 vs "
                                 "Broadwell/Ubuntu-18.10 package builds"))
    assert identical == total
    assert broken >= 1  # the extension is load-bearing for some packages
