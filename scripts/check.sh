#!/bin/sh
# CI gate: byte-compile the tree, run the tier-1 suite, then the fault
# matrix as its own smoke stage (`-m faults` selects it).
#
#   ./scripts/check.sh          # full gate
#   ./scripts/check.sh faults   # just the fault-injection smoke stage
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

stage="${1:-all}"

if [ "$stage" = "all" ]; then
    echo "== compileall =="
    python -m compileall -q src
    echo "== tier-1 tests =="
    python -m pytest -x -q
fi

echo "== fault-injection smoke stage (-m faults) =="
python -m pytest -x -q -m faults

echo "check.sh: OK"
