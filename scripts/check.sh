#!/bin/sh
# CI gate: byte-compile the tree, run the tier-1 suite, then the fault
# matrix and the observability plane as their own smoke stages.
#
#   ./scripts/check.sh          # full gate
#   ./scripts/check.sh faults   # just the fault-injection smoke stage
#   ./scripts/check.sh obs      # just the observability smoke stage
#   ./scripts/check.sh perf     # just the hot-path perf stage
#   ./scripts/check.sh fuzz     # just the differential-fuzz smoke stage
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

stage="${1:-all}"

obs_tmp=""
perf_tmp=""
trap 'rm -rf ${obs_tmp:+"$obs_tmp"} ${perf_tmp:+"$perf_tmp"}' EXIT

if [ "$stage" = "all" ]; then
    echo "== compileall =="
    python -m compileall -q src
    echo "== tier-1 tests =="
    python -m pytest -x -q
fi

if [ "$stage" = "all" ] || [ "$stage" = "faults" ]; then
    echo "== fault-injection smoke stage (-m faults) =="
    python -m pytest -x -q -m faults
fi

if [ "$stage" = "all" ] || [ "$stage" = "obs" ]; then
    echo "== observability smoke stage (-m obs) =="
    python -m pytest -x -q -m obs
    echo "== metrics-identity gate (two runs -> identical trace JSON) =="
    obs_tmp="$(mktemp -d)"
    python -m repro run --trace-out "$obs_tmp/a.json" -- ls -l /bin \
        > "$obs_tmp/a.out" 2> /dev/null
    python -m repro run --trace-out "$obs_tmp/b.json" -- ls -l /bin \
        > "$obs_tmp/b.out" 2> /dev/null
    cmp "$obs_tmp/a.json" "$obs_tmp/b.json"
    cmp "$obs_tmp/a.out" "$obs_tmp/b.out"
    echo "trace JSON and stdout byte-identical across reruns"
fi

if [ "$stage" = "all" ] || [ "$stage" = "fuzz" ]; then
    echo "== differential-fuzz smoke stage (-m fuzz) =="
    python -m pytest -x -q -m fuzz
    echo "== fixed-seed 60s fuzz walk (full matrix, zero divergences) =="
    python -m repro fuzz --seed 0 --budget 100000 --seconds 60
    echo "== regression corpus replay =="
    python -m repro fuzz --replay-corpus tests/fuzz/corpus
fi

if [ "$stage" = "all" ] || [ "$stage" = "perf" ]; then
    echo "== hot-path perf stage (-m perf) =="
    # Stash the committed baseline, run the bench (which rewrites
    # BENCH_hotpath.json), then gate: >30% serviced-syscalls/sec
    # regression vs the baseline fails the stage.  The bench itself
    # asserts the determinism identities (schedule + digest) and the
    # 5x scheduler-decision floor.
    perf_tmp="$(mktemp -d)"
    if [ -f BENCH_hotpath.json ]; then
        cp BENCH_hotpath.json "$perf_tmp/baseline.json"
    fi
    python -m pytest -x -q -m perf benchmarks/bench_hotpath.py
    if [ -f "$perf_tmp/baseline.json" ]; then
        python -m benchmarks.bench_hotpath "$perf_tmp/baseline.json"
    else
        echo "no committed BENCH_hotpath.json baseline; skipping regression gate"
    fi
fi

echo "check.sh: OK"
