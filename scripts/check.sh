#!/bin/sh
# CI gate: byte-compile the tree, run the tier-1 suite, then the fault
# matrix and the observability plane as their own smoke stages.
#
#   ./scripts/check.sh          # full gate
#   ./scripts/check.sh faults   # just the fault-injection smoke stage
#   ./scripts/check.sh obs      # just the observability smoke stage
#   ./scripts/check.sh perf     # just the hot-path perf stage
#   ./scripts/check.sh fuzz     # just the differential-fuzz smoke stage
#   ./scripts/check.sh ckpt     # just the checkpoint/resume smoke stage
#   ./scripts/check.sh diag     # just the divergence-diagnosis stage
#   ./scripts/check.sh sockets  # just the deterministic-networking stage
#   ./scripts/check.sh cache    # just the run-cache stage
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

stage="${1:-all}"

obs_tmp=""
perf_tmp=""
ckpt_tmp=""
diag_tmp=""
sock_tmp=""
cache_tmp=""
trap 'rm -rf ${obs_tmp:+"$obs_tmp"} ${perf_tmp:+"$perf_tmp"} ${ckpt_tmp:+"$ckpt_tmp"} ${diag_tmp:+"$diag_tmp"} ${sock_tmp:+"$sock_tmp"} ${cache_tmp:+"$cache_tmp"}' EXIT

if [ "$stage" = "all" ]; then
    echo "== compileall =="
    python -m compileall -q src
    echo "== tier-1 tests =="
    python -m pytest -x -q
fi

if [ "$stage" = "all" ] || [ "$stage" = "faults" ]; then
    echo "== fault-injection smoke stage (-m faults) =="
    python -m pytest -x -q -m faults
fi

if [ "$stage" = "all" ] || [ "$stage" = "obs" ]; then
    echo "== observability smoke stage (-m obs) =="
    python -m pytest -x -q -m obs
    echo "== metrics-identity gate (two runs -> identical trace JSON) =="
    obs_tmp="$(mktemp -d)"
    python -m repro run --trace-out "$obs_tmp/a.json" -- ls -l /bin \
        > "$obs_tmp/a.out" 2> /dev/null
    python -m repro run --trace-out "$obs_tmp/b.json" -- ls -l /bin \
        > "$obs_tmp/b.out" 2> /dev/null
    cmp "$obs_tmp/a.json" "$obs_tmp/b.json"
    cmp "$obs_tmp/a.out" "$obs_tmp/b.out"
    echo "trace JSON and stdout byte-identical across reruns"
fi

if [ "$stage" = "all" ] || [ "$stage" = "fuzz" ]; then
    echo "== differential-fuzz smoke stage (-m fuzz) =="
    python -m pytest -x -q -m fuzz
    echo "== fixed-seed 60s fuzz walk (full matrix, zero divergences) =="
    python -m repro fuzz --seed 0 --budget 100000 --seconds 60
    echo "== regression corpus replay =="
    python -m repro fuzz --replay-corpus tests/fuzz/corpus
fi

if [ "$stage" = "all" ] || [ "$stage" = "ckpt" ]; then
    echo "== checkpoint/restore smoke stage (-m ckpt) =="
    python -m pytest -x -q -m ckpt tests/ckpt
    echo "== crash-resume-identity smoke (kill -> resume -> diff traces) =="
    ckpt_tmp="$(mktemp -d)"
    cat > "$ckpt_tmp/plan.json" <<'PLAN'
{"rules": [{"fault": "kill", "at_tick": 40, "transient": true}]}
PLAN
    # Crashed run (exit 70 is the point), then resume, then the
    # uninterrupted reference; resumed trace/stdout must be identical.
    python -m repro run --checkpoint-dir "$ckpt_tmp/journal" \
        --checkpoint-every 9 --checkpoint-full-every 3 \
        --faults "$ckpt_tmp/plan.json" \
        --trace-out "$ckpt_tmp/crash.json" -- ls -l /bin \
        > "$ckpt_tmp/crash.out" 2> /dev/null && exit 1 || true
    python -m repro run --checkpoint-dir "$ckpt_tmp/journal" \
        --checkpoint-every 9 --faults "$ckpt_tmp/plan.json" --resume \
        --trace-out "$ckpt_tmp/resumed.json" -- ls -l /bin \
        > "$ckpt_tmp/resumed.out" 2> /dev/null
    python -m repro run --trace-out "$ckpt_tmp/base.json" -- ls -l /bin \
        > "$ckpt_tmp/base.out" 2> /dev/null
    cmp "$ckpt_tmp/resumed.json" "$ckpt_tmp/base.json"
    cmp "$ckpt_tmp/resumed.out" "$ckpt_tmp/base.out"
    echo "resumed trace and stdout byte-identical to uninterrupted run"
    python -m repro ckpt verify "$ckpt_tmp/journal"
    echo "== ckpt overhead bench + disabled-path regression gate =="
    if [ -f BENCH_ckpt.json ]; then
        cp BENCH_ckpt.json "$ckpt_tmp/baseline.json"
    fi
    python -m pytest -x -q benchmarks/bench_ckpt.py
    if [ -f "$ckpt_tmp/baseline.json" ]; then
        python -m benchmarks.bench_ckpt "$ckpt_tmp/baseline.json"
    else
        echo "no committed BENCH_ckpt.json baseline; skipping regression gate"
    fi
    echo "== delta-compression gate (interval 10: delta journal < 40% of full) =="
    python - <<'GATE'
import json
report = json.load(open("BENCH_ckpt.json"))
cell = report["intervals"]["10"]
full = cell["full"]["journal_bytes"]
delta = cell["delta"]["journal_bytes"]
ratio = delta / full
print("delta gate: interval-10 journal %d bytes vs full %d (%.1f%%)"
      % (delta, full, 100 * ratio))
raise SystemExit(0 if ratio < 0.40 else 1)
GATE
fi

if [ "$stage" = "all" ] || [ "$stage" = "diag" ]; then
    echo "== divergence-diagnosis stage (-m diag) =="
    python -m pytest -x -q -m diag
    echo "== self-diff identity gate (repro diff on byte-identical traces) =="
    diag_tmp="$(mktemp -d)"
    python -m repro run --trace-out "$diag_tmp/a.json" -- ls -l /bin \
        > /dev/null 2> /dev/null
    python -m repro run --trace-out "$diag_tmp/b.json" -- ls -l /bin \
        > /dev/null 2> /dev/null
    cmp "$diag_tmp/a.json" "$diag_tmp/b.json"
    python -m repro diff "$diag_tmp/a.json" "$diag_tmp/b.json"
    echo "== diag demo gate (leak localization + single-tick bisection) =="
    python -m repro diag demo --workdir "$diag_tmp/demo"
    echo "== corpus-entry divergence localization smoke =="
    # The banked entry replays clean within the matrix but must produce
    # a localized divergence (exit 1) across container PRNG seeds.
    python -m repro diag fuzz \
        --entry tests/fuzz/corpus/prng-seed-sensitivity.json \
        --seed-b 1 --report "$diag_tmp/divergence.json" && exit 1 || \
        [ $? -eq 1 ]
    grep -q '"classification": "stream-content"' "$diag_tmp/divergence.json"
    echo "cross-seed divergence localized and banked"
fi

if [ "$stage" = "all" ] || [ "$stage" = "sockets" ]; then
    echo "== deterministic-networking stage (kernel socket tests) =="
    python -m pytest -x -q tests/kernel/test_sockets.py tests/ckpt/test_sockets_ckpt.py
    echo "== two-boot byte-identity gate (client/server example) =="
    # Two different boots (entropy, boot epoch, pid/inode bases) of the
    # echo pipeline: stdout, both logs, the tree digest and the full
    # Chrome trace must all be byte-identical.
    sock_tmp="$(mktemp -d)"
    python examples/client_server.py --dump "$sock_tmp/a" --boot-seed 1
    python examples/client_server.py --dump "$sock_tmp/b" --boot-seed 2
    for f in stdout.txt server.log client.log digest.txt trace.json; do
        cmp "$sock_tmp/a/$f" "$sock_tmp/b/$f"
    done
    echo "client/server runs byte-identical across boots (incl. trace JSON)"
fi

if [ "$stage" = "all" ] || [ "$stage" = "cache" ]; then
    echo "== run-cache stage (-m cache) =="
    python -m pytest -x -q -m cache tests/cache
    echo "== cold/warm sweep identity gate =="
    cache_tmp="$(mktemp -d)"
    python -m repro run --cache-dir "$cache_tmp/cas" -- ls -l /bin \
        > "$cache_tmp/cold.out" 2> "$cache_tmp/cold.err"
    python -m repro run --cache-dir "$cache_tmp/cas" -- ls -l /bin \
        > "$cache_tmp/warm.out" 2> "$cache_tmp/warm.err"
    cmp "$cache_tmp/cold.out" "$cache_tmp/warm.out"
    grep -q '\[cache store ' "$cache_tmp/cold.err"
    grep -q '\[cache hit ' "$cache_tmp/warm.err"
    echo "warm run served from cache, stdout byte-identical to cold run"
    python -m repro cache stats "$cache_tmp/cas"
    python -m repro cache verify "$cache_tmp/cas"
    echo "== verify-mode gate (re-execute and compare against the entry) =="
    python -m repro run --cache-dir "$cache_tmp/cas" --cache verify \
        -- ls -l /bin > /dev/null 2> "$cache_tmp/verify.err"
    grep -q '\[cache verify_ok ' "$cache_tmp/verify.err"
    echo "== perturbed-entry divergence gate (tampered outcome -> exit 70) =="
    # Re-store a validly-checksummed but mutated outcome through the
    # repro.cache API (a byte-flip would just read as torn -> miss; a
    # *plausible* wrong entry is the case verify mode exists for).
    python - "$cache_tmp/cas" <<'PERTURB'
import os
import sys

from repro.cache import CacheStore, RunKey

store = CacheStore(sys.argv[1])
names = [n for n in os.listdir(store.keys_dir) if n.endswith(".key")]
assert len(names) == 1, names
key = RunKey(digest=names[0][: -len(".key")])
outcome = store.get(key)
assert outcome is not None
outcome.stdout += "tampered line\n"
store.put(key, outcome)
print("perturbed entry %s..." % key.digest[:16])
PERTURB
    python -m repro run --cache-dir "$cache_tmp/cas" --cache verify \
        -- ls -l /bin > /dev/null 2> "$cache_tmp/tamper.err" && exit 1 || \
        [ $? -eq 70 ]
    grep -q 'verify_mismatch' "$cache_tmp/tamper.err"
    echo "tampered entry detected as divergence (exit 70)"
    echo "== cache payoff bench + warm-lookup regression gate =="
    if [ -f BENCH_cache.json ]; then
        cp BENCH_cache.json "$cache_tmp/baseline.json"
    fi
    python -m pytest -x -q benchmarks/bench_cache.py
    if [ -f "$cache_tmp/baseline.json" ]; then
        python -m benchmarks.bench_cache "$cache_tmp/baseline.json"
    else
        echo "no committed BENCH_cache.json baseline; skipping regression gate"
    fi
fi

if [ "$stage" = "all" ] || [ "$stage" = "perf" ]; then
    echo "== hot-path perf stage (-m perf) =="
    # Stash the committed baseline, run the bench (which rewrites
    # BENCH_hotpath.json), then gate: >30% serviced-syscalls/sec
    # regression vs the baseline fails the stage.  The bench itself
    # asserts the determinism identities (schedule + digest) and the
    # 5x scheduler-decision floor.
    perf_tmp="$(mktemp -d)"
    if [ -f BENCH_hotpath.json ]; then
        cp BENCH_hotpath.json "$perf_tmp/baseline.json"
    fi
    python -m pytest -x -q -m perf benchmarks/bench_hotpath.py
    if [ -f "$perf_tmp/baseline.json" ]; then
        python -m benchmarks.bench_hotpath "$perf_tmp/baseline.json"
    else
        echo "no committed BENCH_hotpath.json baseline; skipping regression gate"
    fi
fi

echo "check.sh: OK"
