#!/usr/bin/env python3
"""Cost-model calibration report.

Prints how the virtual-time constants in ``repro.kernel.costs`` map onto
the paper's measured overheads, by sweeping the two main knobs and
showing where the current configuration sits.  Useful when retuning after
substrate changes:

    python scripts/calibrate.py            # report current fit
    python scripts/calibrate.py --sweep    # sensitivity sweep
"""

from __future__ import annotations

import argparse

import numpy as np


def current_fit():
    """Where the current constants land vs the paper targets."""
    from repro.analysis import PAPER_FIG6
    from repro.cpu.machine import HASWELL_XEON, HostEnvironment
    from repro.repro_tools import first_build_host
    from repro.workloads.bioinf import ALL_TOOLS, run_dettrace, run_native, tool_image
    from repro.workloads.debian import build_dettrace, build_native, generate_population

    print("== Figure 6 fit (speedups at 1/4/16 procs) ==")
    for tool, spec in ALL_TOOLS.items():
        img = tool_image(spec)
        seq = None
        for mode, runner in (("native", run_native), ("dettrace", run_dettrace)):
            vals = []
            for nprocs in (1, 4, 16):
                host = HostEnvironment(machine=HASWELL_XEON, entropy_seed=nprocs)
                r = runner(img, tool, nprocs, host=host)
                if mode == "native" and nprocs == 1:
                    seq = r.wall_time
                vals.append(seq / r.wall_time)
            paper = PAPER_FIG6[tool][mode]
            err = max(abs(a - b) / max(b, 0.1) for a, b in zip(vals, paper))
            print("  %-8s %-9s ours %s  paper %s  (max rel err %.0f%%)" % (
                tool, mode, ["%.2f" % v for v in vals],
                ["%.2f" % v for v in paper], 100 * err))

    print()
    print("== Figure 5 fit (build slowdowns) ==")
    specs = [s for s in generate_population(60, seed=13)
             if not s.expect_dt_unsupported and not s.syscall_storm][:30]
    rates, slows, walls = [], [], []
    for spec in specs:
        base = build_native(spec, host=first_build_host())
        det = build_dettrace(spec, host=first_build_host())
        if base.status != "built" or det.status != "built":
            continue
        rates.append(base.result.syscall_count / base.result.wall_time)
        slows.append(det.result.wall_time / base.result.wall_time)
        walls.append(base.result.wall_time)
    rates, slows, walls = map(np.array, (rates, slows, walls))
    print("  correlation %.2f (target: positive)"
          % np.corrcoef(rates, slows)[0, 1])
    print("  aggregate %.2fx (paper 3.49x)"
          % ((slows * walls).sum() / walls.sum()))
    print("  per-syscall effective overhead: %.0f us (median)"
          % np.median((slows - 1) * walls / (rates * walls) * 1e6))


def sweep():
    """Sensitivity of the headline numbers to the two big constants."""
    import repro.kernel.costs as costs
    from repro.cpu.machine import HASWELL_XEON, HostEnvironment
    from repro.workloads.bioinf import RAXML, run_dettrace, run_native, tool_image

    img = tool_image(RAXML)
    host = HostEnvironment(machine=HASWELL_XEON, entropy_seed=1)
    seq = run_native(img, "raxml", 1, host=host).wall_time

    original = costs.TRACEE_WAKEUP_LATENCY
    print("== raxml DT@1 speedup vs TRACEE_WAKEUP_LATENCY "
          "(paper: 0.29) ==")
    try:
        for latency_us in (20, 40, 65, 90, 120):
            costs.TRACEE_WAKEUP_LATENCY = latency_us * 1e-6
            # the tracer module binds the constant at import; reload its copy
            import repro.core.tracer as tracer_mod
            tracer_mod.TRACEE_WAKEUP_LATENCY = costs.TRACEE_WAKEUP_LATENCY
            dt = run_dettrace(img, "raxml", 1, host=host).wall_time
            print("  latency %3d us -> speedup %.2f" % (latency_us, seq / dt))
    finally:
        costs.TRACEE_WAKEUP_LATENCY = original
        import repro.core.tracer as tracer_mod
        tracer_mod.TRACEE_WAKEUP_LATENCY = original


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--sweep", action="store_true")
    args = parser.parse_args()
    current_fit()
    if args.sweep:
        print()
        sweep()


if __name__ == "__main__":
    main()
