#!/usr/bin/env python3
"""Run the full evaluation and (re)generate EXPERIMENTS.md.

Usage:  python scripts/run_experiments.py [--scale N] [--out FILE]

The implementation lives in :mod:`repro.analysis.experiments` so the test
suite can smoke it at a tiny scale.
"""

import argparse

from repro.analysis.experiments import generate


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args()
    generate(scale=args.scale, out=args.out)


if __name__ == "__main__":
    main()
