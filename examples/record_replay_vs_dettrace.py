#!/usr/bin/env python3
"""Record-and-replay vs reproducible containers (paper §7.1.3).

Builds the same package under Mozilla-rr-style record/replay and under
DetTrace, contrasting the two approaches the way the paper does:

* rr faithfully replays ONE recorded (irreproducible) execution — two
  recordings of the same package still differ, and the trace is an
  opaque artifact with real storage cost;
* rr's interception surface is fragile (the unsupported-ioctl crash the
  paper hit on 46 of 81 packages);
* DetTrace needs no recording at all: the build is a pure function of
  its inputs, with a human-readable audit trail (the source tree).

Run:  python examples/record_replay_vs_dettrace.py
"""

from repro.repro_tools import first_build_host, reprotest_dettrace, tree_digest
from repro.rnr import record, replay
from repro.workloads.debian import PackageSpec, TOOLS, package_image

SPEC = PackageSpec(name="curl", n_sources=4, parallel_jobs=2,
                   embeds_timestamp=True, embeds_random_symbols=True)

CRASHY = PackageSpec(name="x11-utils", n_sources=2, exotic_ioctl=True)


def main():
    image = package_image(SPEC)

    print("== rr: record the build twice ==")
    recordings = []
    for seed in (0, 1):
        res = record(image, TOOLS["driver"], argv=["dpkg-buildpackage"],
                     host=first_build_host(seed=seed))
        assert res.status == "ok", res.error
        recordings.append(res)
        print("recording %d: %6d events, %6.1f KB trace, deb digest %s" % (
            seed, res.recording.event_count,
            res.recording.storage_size() / 1024,
            tree_digest(res.output_tree)[:12]))
    print("two recordings identical:",
          tree_digest(recordings[0].output_tree)
          == tree_digest(recordings[1].output_tree))
    print()

    print("== rr: replay recording 0 on a different host ==")
    ok = replay(image, TOOLS["driver"], recordings[0].recording,
                argv=["dpkg-buildpackage"], host=first_build_host(seed=77))
    print("replay completed without divergence:", ok)
    print()

    print("== rr: the unsupported-ioctl crash ==")
    res = record(package_image(CRASHY), TOOLS["driver"],
                 argv=["dpkg-buildpackage"], host=first_build_host())
    print("recording %s: %s (%s)" % (CRASHY.name, res.status, res.error))
    print()

    print("== DetTrace: no recording, just reproducibility ==")
    verdict = reprotest_dettrace(SPEC)
    print("double-build verdict:", verdict.verdict)
    print("trace storage required: 0 bytes "
          "(the audit trail is the source tree itself)")


if __name__ == "__main__":
    main()
