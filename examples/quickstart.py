#!/usr/bin/env python3
"""Quickstart: the same program, natively irreproducible, bitwise
reproducible inside a DetTrace container.

The guest below touches every classic irreproducibility vector the paper
catalogues — wall-clock time, OS entropy, the cycle counter, PIDs, host
identity, directory order, inode numbers — and writes them into a build
artifact.  Run it twice natively and the artifact differs; run it twice
under DetTrace (even on two different "machines") and it is identical.

Run:  python examples/quickstart.py
"""

from repro import DetTrace, Image, NativeRunner
from repro.cpu.machine import BROADWELL_XEON, SKYLAKE_CLOUDLAB, HostEnvironment
from repro.repro_tools import tree_digest


def buildish_program(sys):
    """A miniature 'build': deterministic inputs, tainted outputs."""
    t = yield from sys.time()
    rand = yield from sys.urandom(8)
    tsc = yield from sys.rdtsc()
    pid = yield from sys.getpid()
    un = yield from sys.uname()

    yield from sys.mkdir_p("out")
    for name in ("gamma", "alpha", "beta"):
        yield from sys.write_file("out/" + name, name.upper().encode())
    listing = yield from sys.listdir("out")        # raw readdir order!
    st = yield from sys.stat("out/alpha")          # raw inode number!

    artifact = (
        "built-at: %d\n"
        "rand-seed: %s\n"
        "tsc: %d\n"
        "builder-pid: %d\n"
        "host: %s %s\n"
        "link-order: %s\n"
        "alpha-inode: %d\n"
    ) % (t, rand.hex(), tsc, pid, un.nodename, un.release,
         ",".join(listing), st.st_ino)
    yield from sys.write_file("artifact.txt", artifact)
    yield from sys.println("artifact built")
    return 0


def boot(seed, machine=SKYLAKE_CLOUDLAB):
    """A fresh 'machine boot': new entropy, clock, pid space, fs salt."""
    return HostEnvironment(machine=machine, entropy_seed=seed,
                           boot_epoch=1.6e9 + seed * 1000.0,
                           pid_start=1000 + seed * 17,
                           inode_start=100_000 + seed * 999,
                           dirent_hash_salt=seed)


def main():
    image = Image()
    image.add_binary("/bin/build", buildish_program)

    print("== native: two runs on two boots of the same machine ==")
    for seed in (1, 2):
        result = NativeRunner().run(image, "/bin/build", host=boot(seed))
        print("run %d digest: %s" % (seed, tree_digest(result.output_tree)[:16]))
        if seed == 1:
            print(result.output_tree["artifact.txt"].decode())

    print("== DetTrace: same two boots, plus a different machine ==")
    digests = []
    for seed, machine in ((1, SKYLAKE_CLOUDLAB), (2, SKYLAKE_CLOUDLAB),
                          (3, BROADWELL_XEON)):
        result = DetTrace().run(image, "/bin/build",
                                host=boot(seed, machine))
        digest = tree_digest(result.output_tree)
        digests.append(digest)
        print("run %d (%s) digest: %s" % (seed, machine.microarch, digest[:16]))
    print()
    print(result.output_tree["artifact.txt"].decode())
    assert len(set(digests)) == 1, "DetTrace runs must be bitwise identical"
    print("all DetTrace runs bitwise identical — a pure function of the image.")


if __name__ == "__main__":
    main()
