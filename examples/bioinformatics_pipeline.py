#!/usr/bin/env python3
"""Reproducible data analytics: the bioinformatics workflows of §7.5.

Runs the raxml analog (phylogenetic trees with time-seeded random
starting points) natively and under DetTrace, demonstrating

* the §6.1 hashdeep finding — native outputs differ across runs;
* DetTrace's reproducibility without code changes;
* the §7.5 performance picture — heavy sequential overhead that
  recovers with process-level parallelism.

Run:  python examples/bioinformatics_pipeline.py
"""

from repro.cpu.machine import HASWELL_XEON, HostEnvironment
from repro.repro_tools import hashdeep, tree_digest
from repro.workloads.bioinf import RAXML, run_dettrace, run_native, tool_image


def boot(seed):
    return HostEnvironment(machine=HASWELL_XEON, entropy_seed=seed,
                           boot_epoch=1.55e9 + seed * 777.0)


def main():
    image = tool_image(RAXML)

    print("== hashdeep over consecutive native runs (4 workers) ==")
    digests = []
    for seed in (1, 2):
        result = run_native(image, "raxml", 4, host=boot(seed))
        digest = tree_digest(result.output_tree)
        digests.append(digest)
        print("run %d: %s" % (seed, digest[:20]))
    print("native reproducible:", digests[0] == digests[1])
    print()

    print("== the same workflow under DetTrace ==")
    digests = []
    for seed in (3, 4):
        result = run_dettrace(image, "raxml", 4, host=boot(seed))
        digest = tree_digest(result.output_tree)
        digests.append(digest)
        print("run %d: %s" % (seed, digest[:20]))
    print("DetTrace reproducible:", digests[0] == digests[1])
    print()
    per_file = hashdeep(result.output_tree)
    print("per-file digests of the DetTrace output tree:")
    for path, digest in list(per_file.items())[:4]:
        print("  %-16s %s" % (path, digest[:24]))
    print()

    print("== scaling (speedup over sequential native) ==")
    seq = run_native(image, "raxml", 1, host=boot(9)).wall_time
    print("  procs   native  dettrace")
    for nprocs in (1, 4, 16):
        nat = run_native(image, "raxml", nprocs, host=boot(10 + nprocs))
        det = run_dettrace(image, "raxml", nprocs, host=boot(20 + nprocs))
        print("  %5d   %5.2fx  %7.2fx" % (
            nprocs, seq / nat.wall_time, seq / det.wall_time))
    print()
    print("(paper Figure 6, raxml: native 1.00/2.76/6.88, "
          "DetTrace 0.29/0.86/1.11)")


if __name__ == "__main__":
    main()
