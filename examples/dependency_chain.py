#!/usr/bin/env python3
"""Distribution-scale reproducibility: dependency chains and caching.

Builds a three-package chain (libfoo -> libbar -> app) the way a distro
build farm does — each package's build-dependencies installed from an
on-disk mirror with apt-get (paper SS6.1) — and shows the SS2 motivation:

* natively, ONE timestamp in libfoo taints every downstream artifact;
* under DetTrace the whole chain is bitwise reproducible, so a
  content-addressed artifact cache would hit on every package.

Run:  python examples/dependency_chain.py
"""

from repro.repro_tools import first_build_host, second_build_host, tree_digest
from repro.workloads.debian import PackageSpec, build_chain

CHAIN = [
    PackageSpec(name="libfoo", n_sources=2, embeds_timestamp=True),
    PackageSpec(name="libbar", n_sources=2, build_depends=("libfoo",)),
    PackageSpec(name="app", n_sources=3, build_depends=("libfoo", "libbar")),
]


def farm_node(which):
    return (lambda i: first_build_host(seed=i)) if which == "a" \
        else (lambda i: second_build_host(seed=i))


def digest(deb):
    return tree_digest({"deb": deb})[:14]


def main():
    for mode, dettrace in (("native", False), ("DetTrace", True)):
        print("== %s: the chain on two build-farm nodes ==" % mode)
        node_a = build_chain(CHAIN, dettrace=dettrace, host_for=farm_node("a"))
        node_b = build_chain(CHAIN, dettrace=dettrace, host_for=farm_node("b"))
        hits = 0
        for spec in CHAIN:
            same = node_a[spec.name] == node_b[spec.name]
            hits += same
            print("  %-8s node-a %s  node-b %s  cache-hit=%s" % (
                spec.name, digest(node_a[spec.name]),
                digest(node_b[spec.name]), same))
        print("  -> %d/%d artifacts reusable across nodes" % (hits, len(CHAIN)))
        print()
    print("note: libbar and app carry no irreproducibility of their own —")
    print("natively they diverge purely because libfoo's bytes differ")
    print("(the cascade the Debian Reproducible Builds project fights).")


if __name__ == "__main__":
    main()
