#!/usr/bin/env python3
"""Reproducible Debian-style package builds (paper §6.1, §7.1).

Builds one heavily-tainted synthetic package the way the paper's
evaluation does: reprotest double-builds it under an adversarial set of
environment variations (time shifted 400 days, different build path,
locale, timezone, ASLR, core count, ...), then compares the .deb
bitwise with the diffoscope analog.

Run:  python examples/reproducible_build.py
"""

from repro.repro_tools import reprotest_dettrace, reprotest_native
from repro.workloads.debian import PackageSpec

# A package exercising most irreproducibility vectors at once.
SPEC = PackageSpec(
    name="blender",
    version="2.79-1",
    n_sources=6,
    parallel_jobs=4,
    has_tests=True,
    uses_threads=True,
    embeds_timestamp=True,        # __DATE__ / Build-Date
    embeds_build_path=True,       # absolute __FILE__ paths
    embeds_random_symbols=True,   # /dev/urandom symbol seeds
    embeds_tmpnames=True,         # rdtsc temp names in debug info
    embeds_fileorder=True,        # links in readdir order
    embeds_parallel_order=True,   # parallel compilers append to an index
    embeds_uname=True,            # configure caches the host
    embeds_pid=True,              # builder pid in a header
    embeds_locale_date=True,      # localized doc dates
    embeds_cpu_count=True,        # nproc cached by configure
)


def main():
    print("package: %s  (irreproducibility vectors: %s)" % (
        SPEC.name, ", ".join(SPEC.irreproducibility_features)))
    print()

    print("== baseline: reprotest double-build (varied env) ==")
    baseline = reprotest_native(SPEC)
    print("verdict:", baseline.verdict)
    if baseline.diff is not None and not baseline.diff.identical:
        print("diffoscope explanation:")
        print(baseline.diff.summary(limit=8))
    print()

    print("== DetTrace: same variations, no workarounds ==")
    dettrace = reprotest_dettrace(SPEC)
    print("verdict:", dettrace.verdict)
    if dettrace.diff is not None:
        print("diffoscope:", dettrace.diff.summary(limit=4))
    print()
    counters = dettrace.first.result.counters
    print("tracer events for the first build:")
    for label, value in counters.as_table2_rows():
        print("  %-42s %d" % (label, value))
    base_wall = baseline.first.result.wall_time
    det_wall = dettrace.first.result.wall_time
    print()
    print("build wall time: native %.1f ms, DetTrace %.1f ms (%.2fx)" % (
        base_wall * 1e3, det_wall * 1e3, det_wall / base_wall))


if __name__ == "__main__":
    main()
