#!/usr/bin/env python3
"""Reproducible machine learning (paper §7.6).

Trains the TensorFlow-analog models in the paper's three configurations
and prints the per-step loss curves:

1. parallel native   — 16 threads, futex-locked float32 gradient
                       accumulation: loss curves vary run to run;
2. serialized native — one thread: STILL irreproducible, because the
                       training batch is sampled from urandom + the clock;
3. DetTrace          — bit-identical loss curves, no code changes.

Run:  python examples/ml_training.py
"""

from repro.cpu.machine import HASWELL_XEON, HostEnvironment
from repro.workloads.ml import (
    ALEXNET,
    CIFAR10,
    losses_of,
    run_dettrace,
    run_parallel_native,
    run_serial_native,
)


def boot(seed):
    return HostEnvironment(machine=HASWELL_XEON, entropy_seed=seed,
                           boot_epoch=1.7e9 + seed * 333.0)


def show(label, runner, cfg, seeds):
    runs = [runner(cfg, host=boot(s)) for s in seeds]
    for r in runs:
        assert r.succeeded, (r.status, r.error)
    same = losses_of(runs[0]) == losses_of(runs[1])
    print("%-18s reproducible=%s" % (label, same))
    for i, r in enumerate(runs):
        head = "; ".join(losses_of(r)[:2])
        print("   run %d: %s ..." % (i + 1, head))
    return runs[0]


def main():
    for cfg in (ALEXNET, CIFAR10):
        print("== model: %s (%d steps, %d shards/step, %d threads) ==" % (
            cfg.name, cfg.steps, cfg.shards_per_step, cfg.threads))
        par = show("parallel native", run_parallel_native, cfg, (1, 2))
        ser = show("serialized native", run_serial_native, cfg, (3, 4))
        det = show("DetTrace", run_dettrace, cfg, (5, 6))
        print("   slowdown vs parallel native: %.2fx  (paper: %s)" % (
            det.wall_time / par.wall_time,
            "17.49x" if cfg.name == "alexnet" else "11.94x"))
        print("   slowdown vs serialized native: %.2fx  (paper: %s)" % (
            det.wall_time / ser.wall_time,
            "1.51x" if cfg.name == "alexnet" else "1.08x"))
        print()


if __name__ == "__main__":
    main()
