#!/usr/bin/env python3
"""Deterministic in-container networking: a loopback TCP-style echo
pipeline whose trace, output tree and socket addresses are bitwise
identical across boots and machines.

The server binds 127.0.0.1:8080, the client connects from a
deterministic ephemeral port (the per-container monotonic counter,
§5.9's "container-internal resources stay inside the container"), and
the two exchange several request/response rounds over the simulated
stream — so checkpoints can land mid-connection and still resume to the
identical result.

Run:  python examples/client_server.py
      python examples/client_server.py --dump DIR --boot-seed N
                          # one boot; write stdout/logs/trace for cmp(1)
"""

from repro import DetTrace, Image
from repro.core import ContainerConfig
from repro.cpu.machine import BROADWELL_XEON, SKYLAKE_CLOUDLAB, HostEnvironment
from repro.guest import libc
from repro.repro_tools import tree_digest

ADDRESS = "127.0.0.1:8080"
ROUNDS = 5


def server_main(sys):
    """Accept one client and echo each request uppercased."""
    lfd = yield from libc.sock_stream_server(sys, ADDRESS, backlog=4)
    bound = yield from sys.getsockname(lfd)
    pid = yield from sys.spawn("/bin/client", close_fds=[lfd])
    conn, peer = yield from sys.accept(lfd)
    yield from sys.println("server: %s accepted %s" % (bound, peer))
    served = 0
    while True:
        head = yield from libc.recv_exact(sys, conn, 4)
        if not head:
            break                      # orderly shutdown from the client
        body = yield from libc.recv_exact(sys, conn, int(head))
        yield from libc.send_all(sys, conn, body.upper())
        served += 1
    yield from sys.close(conn)
    yield from sys.close(lfd)
    res = yield from sys.waitpid(pid)
    yield from sys.write_file(
        "server.log", b"served=%d client=%s exit=%d\n"
        % (served, peer.encode(), res.status))
    return res.status


def client_main(sys):
    fd = yield from libc.sock_stream_client(sys, ADDRESS)
    local = yield from sys.getsockname(fd)
    lines = []
    for i in range(ROUNDS):
        msg = b"round %d from %s" % (i, local.encode())
        yield from libc.send_all(sys, fd, b"%04d" % len(msg) + msg)
        reply = yield from libc.recv_exact(sys, fd, len(msg))
        lines.append(reply)
    yield from sys.shutdown(fd, 1)     # SHUT_WR: EOF to the server
    tail = yield from sys.recv(fd, 64)
    yield from sys.close(fd)
    yield from sys.write_file("client.log",
                              b"\n".join(lines) + b"\ntail=%r\n" % tail)
    return 0


def build_image() -> Image:
    image = Image()
    image.add_binary("/bin/server", server_main)
    image.add_binary("/bin/client", client_main)
    return image


def boot(seed, machine=SKYLAKE_CLOUDLAB):
    return HostEnvironment(machine=machine, entropy_seed=seed,
                           boot_epoch=1.6e9 + seed * 1000.0,
                           pid_start=1000 + seed * 17,
                           inode_start=100_000 + seed * 999,
                           dirent_hash_salt=seed)


def run_once(seed, machine=SKYLAKE_CLOUDLAB, observe=False):
    config = ContainerConfig(deterministic_loopback=True, observe=observe)
    return DetTrace(config).run(build_image(), "/bin/server",
                                host=boot(seed, machine))


def dump(seed, out_dir):
    """One boot's full observable surface as files, for cmp(1) gates."""
    import json
    import os

    result = run_once(seed, observe=True)
    assert result.exit_code == 0, (result.status, result.error)
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "stdout.txt"), "w") as fh:
        fh.write(result.stdout)
    for name in ("server.log", "client.log"):
        with open(os.path.join(out_dir, name), "wb") as fh:
            fh.write(result.output_tree[name])
    with open(os.path.join(out_dir, "trace.json"), "w") as fh:
        json.dump(result.trace.to_chrome(), fh, sort_keys=True, indent=1)
    with open(os.path.join(out_dir, "digest.txt"), "w") as fh:
        fh.write(tree_digest(result.output_tree) + "\n")


def main():
    print("== DetTrace: two boots, plus a different machine ==")
    digests = []
    for seed, machine in ((1, SKYLAKE_CLOUDLAB), (2, SKYLAKE_CLOUDLAB),
                          (3, BROADWELL_XEON)):
        result = run_once(seed, machine)
        assert result.exit_code == 0, (result.status, result.error)
        digest = tree_digest(result.output_tree)
        digests.append(digest)
        print("boot %d (%s) digest: %s" % (seed, machine.microarch,
                                           digest[:16]))
    print()
    print(result.stdout, end="")
    print(result.output_tree["client.log"].decode())
    assert len(set(digests)) == 1, "socket runs must be bitwise identical"
    print("all runs bitwise identical — ports, traffic and logs included.")


if __name__ == "__main__":
    import sys as _sys

    if "--dump" in _sys.argv:
        out = _sys.argv[_sys.argv.index("--dump") + 1]
        seed = (int(_sys.argv[_sys.argv.index("--boot-seed") + 1])
                if "--boot-seed" in _sys.argv else 1)
        dump(seed, out)
    else:
        main()
