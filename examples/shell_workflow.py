#!/usr/bin/env python3
"""Arbitrary shell workflows, reproducibly (the artifact-appendix UX).

The paper's container takes *whatever* you run in it — here a shell
script using ordinary tools (`date`, `mktemp`, `stat`, `sha256sum`) —
and makes the whole run a pure function of the image.  The same flow is
available from the command line:

    python -m repro script myjob.sh --show-tree
    python -m repro run date

Run:  python examples/shell_workflow.py
"""

from repro.core import DetTrace, Image, NativeRunner
from repro.cpu.machine import HostEnvironment
from repro.guest.coreutils import install_coreutils
from repro.repro_tools import tree_digest

SCRIPT = b"""\
# a nightly-job-style pipeline
mkdir out
date > out/started.txt
SCRATCH=$(mktemp)
echo intermediate > $SCRATCH
for shard in alpha beta gamma; do
  echo processing $shard
  echo result-$shard >> out/results.txt
done
stat out/results.txt | head -n 3 > out/metadata.txt
sha256sum out/results.txt > out/checksums.txt
if [ -e out/results.txt ]; then echo ok > out/status; else echo fail > out/status; fi
cat out/status
"""


def image():
    img = Image()
    install_coreutils(img)
    img.on_setup(lambda kernel, build_dir: kernel.fs.write_file(
        build_dir + "/job.sh", SCRIPT, now=kernel.host.boot_epoch))
    return img


def boot(seed):
    return HostEnvironment(entropy_seed=seed,
                           boot_epoch=1.62e9 + seed * 3601.5,
                           inode_start=10_000 * seed + 3,
                           dirent_hash_salt=seed)


def run(runner, seed):
    result = runner.run(image(), "/bin/sh", argv=["sh", "job.sh"],
                        host=boot(seed))
    assert result.exit_code == 0, (result.status, result.stderr)
    tree = {k: v for k, v in result.output_tree.items() if k != "job.sh"}
    return tree


def main():
    print("== native: two boots ==")
    trees = [run(NativeRunner(), seed) for seed in (1, 2)]
    for i, tree in enumerate(trees, 1):
        print("boot %d digest %s" % (i, tree_digest(tree)[:16]))
    print("identical:", trees[0] == trees[1])
    print()
    print("differences live in the metadata the job recorded:")
    print((trees[0]["out/metadata.txt"]).decode().splitlines()[2])
    print((trees[1]["out/metadata.txt"]).decode().splitlines()[2])
    print()

    print("== DetTrace: same two boots ==")
    trees = [run(DetTrace(), seed) for seed in (1, 2)]
    for i, tree in enumerate(trees, 1):
        print("boot %d digest %s" % (i, tree_digest(tree)[:16]))
    print("identical:", trees[0] == trees[1])
    print()
    print("out/started.txt:", trees[0]["out/started.txt"].decode().strip())
    print("out/checksums.txt:", trees[0]["out/checksums.txt"].decode().strip())


if __name__ == "__main__":
    main()
