"""The grammar must be a pure function of the seed — a corpus entry
names a program by (seed, ops) and that naming must hold on any
machine."""
import json

from repro.fuzz.grammar import (
    DIR_POOL,
    FILE_POOL,
    ProgramSpec,
    generate_program,
)


class TestGeneration:
    def test_same_seed_same_program(self):
        for seed in range(30):
            assert generate_program(seed) == generate_program(seed)

    def test_different_seeds_differ(self):
        specs = {generate_program(s).digest for s in range(30)}
        assert len(specs) > 25  # near-universal uniqueness

    def test_every_program_ends_with_audit(self):
        for seed in range(30):
            assert generate_program(seed).ops[-1]["op"] == "audit"

    def test_ops_within_bounds(self):
        for seed in range(30):
            spec = generate_program(seed, min_ops=4, max_ops=18)
            # +audit and the seeding prologue may exceed max_ops slightly,
            # but the program stays small.
            assert 2 <= len(spec.ops) <= 18 + 6

    def test_paths_come_from_the_shared_pools(self):
        pool = set(DIR_POOL) | set(FILE_POOL) | {"."}
        for seed in range(30):
            for op in generate_program(seed).ops:
                for key in ("path", "old", "new", "target"):
                    if key in op:
                        assert op[key] in pool


class TestSpec:
    def test_json_round_trip(self):
        spec = generate_program(7)
        assert ProgramSpec.from_json(spec.to_json()) == spec

    def test_digest_stable_under_round_trip(self):
        spec = generate_program(11)
        assert ProgramSpec.from_json(spec.to_json()).digest == spec.digest

    def test_json_is_canonical(self):
        spec = generate_program(3)
        parsed = json.loads(spec.to_json())
        assert parsed == spec.to_dict()

    def test_uses_threads(self):
        plain = ProgramSpec(seed=0, ops=({"op": "audit"},))
        threaded = ProgramSpec(seed=0, ops=(
            {"op": "threads", "bodies": [[{"op": "time"}]]},))
        assert not plain.uses_threads()
        assert threaded.uses_threads()

    def test_with_ops_keeps_seed(self):
        spec = generate_program(5)
        cut = spec.with_ops(spec.ops[:2])
        assert cut.seed == 5 and len(cut.ops) == 2
