"""Socket-era fuzz coverage: the sock/dup2pipe/sigpipe grammar ops,
their rnr-axis gating, and the PR-convention proof that the banked
corpus entries *catch their bugs when re-introduced*.

Cross-cell comparison cannot see a bug that is present in every cell,
so each corpus entry carries an in-guest oracle (a ``VIOLATION`` line,
or a hang the kernel surfaces as a deadlock).  The re-introduction
tests below monkeypatch the fixed kernel paths back to their pre-fix
behaviour and assert the corpus program actually fails.
"""
import os

import pytest

from repro.fuzz.grammar import ProgramSpec, generate_program
from repro.fuzz.runner import MATRIX, check_program, run_cell
from repro.kernel.errors import Errno, SyscallError
from repro.kernel.fds import FDTable
from repro.kernel.syscalls import SyscallTable

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


def _load(filename: str) -> ProgramSpec:
    import json

    with open(os.path.join(CORPUS_DIR, filename)) as fh:
        from repro.fuzz.corpus import CorpusEntry

        return CorpusEntry.from_dict(json.load(fh)).spec


class TestSocketMatrix:
    def test_sock_ops_clean_across_cell_matrix(self):
        """Acceptance: the socket fuzz axis is clean in the 5-cell
        matrix at a fixed seed, and every cell logs the same
        deterministic ephemeral ports."""
        spec = _load("sock-echo-deterministic-ports.json")
        report = check_program(spec, workers=1, rnr=False, ckpt=False)
        assert report.ok, report.failures
        assert len(report.records) == len(MATRIX) == 5
        base = report.records[0]
        # The port-0 draw and the unnamed-client peers resolve to the
        # monotonic ephemeral counter, identically in every cell.
        assert "127.0.0.1:32768" in base["stdout"]
        for rec in report.records[1:]:
            assert rec["stdout"] == base["stdout"]

    def test_sock_ops_are_rnr_compatible(self):
        spec = _load("sock-echo-deterministic-ports.json")
        assert spec.rnr_compatible()

    def test_signal_and_dup2_ops_are_excluded_from_rnr(self):
        """Pure-injection replay cannot reproduce kernel-side SIGPIPE
        delivery or pass-through dup2 aliasing; the axis gate must
        exclude exactly those programs (mirroring uses_threads())."""
        assert not _load("sigpipe-ignored-writer.json").rnr_compatible()
        assert not _load("dup2-over-pipe.json").rnr_compatible()
        # Vanilla programs stay on the axis.
        assert generate_program(0).rnr_compatible()


class TestGrammarGeneratesSocketOps:
    def test_walk_reaches_every_new_op(self):
        seen = set()
        for seed in range(60):
            for op in generate_program(seed).ops:
                seen.add(op["op"])
        assert {"sock", "dup2pipe", "sigpipe"} <= seen


class TestBugReintroduction:
    """PR 5 convention: each banked reproducer must fail again when its
    bug is put back."""

    def test_dup2_plain_decrement_hangs_the_reader(self, monkeypatch):
        """Revert FDTable.dup2 to the bare refcount decrement: the
        displaced write fd leaks its writer count, the guest's EOF read
        blocks forever, and the kernel reports a deadlock."""
        original = FDTable.dup2

        def plain_decrement(self, oldfd, newfd, dropper=None):
            return original(self, oldfd, newfd, dropper=None)

        monkeypatch.setattr(FDTable, "dup2", plain_decrement)
        spec = _load("dup2-over-pipe.json")
        record = run_cell(spec.to_dict(), MATRIX[0].to_dict())
        assert record["status"] == "deadlock"

    def test_epipe_without_signal_trips_the_oracle(self, monkeypatch):
        """Revert _broken_pipe to the bare-EPIPE behaviour (no SIGPIPE
        posted): the counting handler never fires and the guest prints
        the sigpipe-not-delivered violation."""

        def epipe_only(self, t, name):
            raise SyscallError(Errno.EPIPE, name)

        monkeypatch.setattr(SyscallTable, "_broken_pipe", epipe_only)
        spec = _load("sigpipe-ignored-writer.json")
        record = run_cell(spec.to_dict(), MATRIX[0].to_dict())
        assert any("sigpipe-not-delivered fired=0" in line
                   for line in record["violations"])

    def test_fixed_tree_passes_both_reproducers(self):
        """The same two programs on the unpatched tree: clean."""
        for filename in ("dup2-over-pipe.json", "sigpipe-ignored-writer.json"):
            record = run_cell(_load(filename).to_dict(), MATRIX[0].to_dict())
            assert record["status"] == "ok", (filename, record["stderr"])
            assert record["violations"] == [], (filename,
                                                record["violations"])
