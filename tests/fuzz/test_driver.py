"""The repro-fuzz loop: deterministic walk, banking, reporting."""
import pytest

from repro.fuzz.driver import format_report, run_fuzz
from repro.fuzz.corpus import load_corpus
from repro.fuzz.runner import MATRIX, Cell


class TestRunFuzz:
    def test_clean_walk(self):
        report = run_fuzz(seed=0, budget=3, workers=1, rnr=False)
        assert report.ok
        assert report.programs_run == 3
        assert report.divergences == [] and report.saved_paths == []

    def test_seconds_budget_cuts_walk_short(self):
        report = run_fuzz(seed=0, budget=10_000, seconds=0.5, workers=1,
                          rnr=False)
        assert report.programs_run < 10_000

    def test_divergence_is_shrunk_and_banked(self, tmp_path, monkeypatch):
        import repro.fuzz.driver as driver_mod

        real = driver_mod.check_program
        bad = (MATRIX[0], Cell("otherseed", prng_seed=7))

        def sabotaged(spec, workers=2, rnr=True, diagnose=False):
            return real(spec, workers=workers, rnr=False, matrix=bad,
                        diagnose=diagnose)

        monkeypatch.setattr(driver_mod, "check_program", sabotaged)
        # seed 10's generated program contains a `random` op, so the
        # sabotaged matrix diverges on it.
        report = run_fuzz(seed=10, budget=1, workers=1, rnr=False,
                          corpus_dir=str(tmp_path))
        assert not report.ok
        assert len(report.saved_paths) == 1
        [entry] = load_corpus(str(tmp_path))
        assert entry.original_failures
        # shrunk: far fewer ops than the generated program
        assert len(entry.spec.ops) <= 3
        # A localized divergence report is banked beside the entry.
        assert entry.divergence_report
        report_path = tmp_path / entry.divergence_report
        assert report_path.is_file()
        import json

        banked = json.loads(report_path.read_text())
        assert banked["kind"].startswith("repro.diag.divergence/")
        assert banked["classification"] != "none"

    def test_format_report_mentions_outcome(self):
        report = run_fuzz(seed=1, budget=1, workers=1, rnr=False)
        text = format_report(report)
        assert "1 programs" in text and "no divergences" in text


@pytest.mark.fuzz
class TestFuzzSmoke:
    def test_fixed_seed_smoke_budget(self):
        """The check.sh smoke stage in miniature: a fixed-seed walk with
        the full axis set must come back clean."""
        report = run_fuzz(seed=0, budget=25, workers=2, rnr=True)
        assert report.ok, format_report(report)
