"""Shrinking must be deterministic, minimal on synthetic predicates,
and able to reduce a real divergence end to end."""
from repro.fuzz.grammar import ProgramSpec, generate_program
from repro.fuzz.runner import MATRIX, Cell, check_program
from repro.fuzz.shrinker import shrink


def _noise(n):
    return [{"op": "write", "path": "f%d" % (i % 3), "data": "noise"}
            for i in range(n)]


class TestDdmin:
    def test_reduces_to_the_single_guilty_op(self):
        ops = _noise(6) + [{"op": "random", "count": 8}] + _noise(5)
        spec = ProgramSpec(seed=0, ops=tuple(ops))

        def fails(candidate):
            return any(op["op"] == "random" for op in candidate.ops)

        small = shrink(spec, fails)
        assert [op["op"] for op in small.ops] == ["random"]

    def test_keeps_a_required_pair(self):
        ops = (_noise(4) + [{"op": "open", "path": "f0", "slot": 0,
                             "mode": "w"}]
               + _noise(4) + [{"op": "fstat", "slot": 0}] + _noise(3))
        spec = ProgramSpec(seed=0, ops=tuple(ops))

        def fails(candidate):
            kinds = [op["op"] for op in candidate.ops]
            return "open" in kinds and "fstat" in kinds

        small = shrink(spec, fails)
        assert sorted(op["op"] for op in small.ops) == ["fstat", "open"]

    def test_deterministic(self):
        spec = generate_program(9)

        def fails(candidate):
            return sum(op["op"] == "write" for op in candidate.ops) >= 1

        assert shrink(spec, fails) == shrink(spec, fails)

    def test_never_returns_empty(self):
        spec = ProgramSpec(seed=0, ops=({"op": "time"},))
        small = shrink(spec, lambda c: True)
        assert len(small.ops) == 1

    def test_respects_check_budget(self):
        spec = ProgramSpec(seed=0, ops=tuple(_noise(12)))
        calls = [0]

        def fails(candidate):
            calls[0] += 1
            return True

        shrink(spec, fails, max_checks=10)
        assert calls[0] <= 10


class TestSimplify:
    def test_data_payloads_simplify(self):
        spec = ProgramSpec(seed=0, ops=(
            {"op": "write", "path": "f0", "data": "x" * 64},))
        small = shrink(spec, lambda c: len(c.ops) == 1)
        assert small.ops[0]["data"] == "a"

    def test_thread_bodies_thin_out(self):
        spec = ProgramSpec(seed=0, ops=(
            {"op": "threads", "bodies": [[{"op": "time"}, {"op": "time"}],
                                         [{"op": "time"}]]},))

        def fails(candidate):
            return any(op["op"] == "threads" for op in candidate.ops)

        small = shrink(spec, fails)
        assert small.ops[0]["bodies"] == [[{"op": "time"}]]


class TestEndToEnd:
    def test_shrinks_a_real_divergence(self):
        """Against a sabotaged matrix (different PRNG seed per cell) a
        generated program containing a `random` op diverges; the default
        matrix-check predicate shrinks it down to that op."""
        bad = (MATRIX[0], Cell("otherseed", prng_seed=7))
        spec = ProgramSpec(seed=0, ops=tuple(
            [{"op": "mkdir", "path": "d0"},
             {"op": "write", "path": "f0", "data": "alpha"},
             {"op": "random", "count": 4},
             {"op": "stat", "path": "f0"},
             {"op": "audit"}]))

        def fails(candidate):
            return not check_program(candidate, workers=1, rnr=False,
                                     matrix=bad).ok

        assert fails(spec)
        small = shrink(spec, fails)
        assert [op["op"] for op in small.ops] == ["random"]
