"""The corpus is the fuzzer's long-term memory: every checked-in
reproducer must replay clean on the current tree, forever."""
import json
import os

import pytest

from repro.fuzz.corpus import (
    CorpusEntry,
    load_corpus,
    replay_corpus,
    save_entry,
)
from repro.fuzz.grammar import ProgramSpec, generate_program

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


class TestPersistence:
    def test_round_trip(self, tmp_path):
        entry = CorpusEntry(spec=generate_program(5), reason="why",
                            original_failures=("a", "b"))
        path = save_entry(entry, str(tmp_path))
        [loaded] = load_corpus(str(tmp_path))
        assert loaded.spec == entry.spec
        assert loaded.reason == "why"
        assert loaded.original_failures == ("a", "b")
        assert os.path.basename(path) == entry.name + ".json"

    def test_load_is_sorted_and_filtered(self, tmp_path):
        for seed in (3, 1, 2):
            save_entry(CorpusEntry(spec=generate_program(seed)),
                       str(tmp_path), filename="s%d" % seed)
        (tmp_path / "notes.txt").write_text("ignore me")
        loaded = load_corpus(str(tmp_path))
        assert [e.spec.seed for e in loaded] == [1, 2, 3]

    def test_missing_dir_is_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "absent")) == []


class TestCheckedInCorpus:
    def test_corpus_is_not_empty(self):
        entries = load_corpus(CORPUS_DIR)
        assert len(entries) >= 6
        for entry in entries:
            assert entry.reason  # every entry documents its bug

    def test_entries_are_canonical_json(self):
        for fname in sorted(os.listdir(CORPUS_DIR)):
            if not fname.endswith(".json"):
                continue
            with open(os.path.join(CORPUS_DIR, fname)) as fh:
                data = json.load(fh)
            assert CorpusEntry.from_dict(data).spec.ops

    def test_full_corpus_replays_clean(self):
        """The regression gate: every reproducer runs the full matrix
        (cells, hosts, serial-vs-parallel, rnr where applicable) and
        must report zero divergences on the current tree."""
        failed = replay_corpus(CORPUS_DIR, workers=2, rnr=True)
        assert failed == [], [r.summary() for r in failed]


@pytest.mark.fuzz
class TestReplayFailurePath:
    def test_replay_reports_divergent_entries(self, tmp_path, monkeypatch):
        """replay_corpus must *report* a failing entry, not hide it."""
        import repro.fuzz.corpus as corpus_mod
        import repro.fuzz.runner as runner_mod
        from repro.fuzz.runner import Cell, MATRIX

        save_entry(CorpusEntry(
            spec=ProgramSpec(seed=0, ops=({"op": "random", "count": 4},
                                          {"op": "audit"}))), str(tmp_path))
        real = runner_mod.check_program

        def sabotaged(spec, workers=2, rnr=True, matrix=None):
            return real(spec, workers=workers, rnr=rnr,
                        matrix=(MATRIX[0], Cell("bad", prng_seed=9)))

        monkeypatch.setattr(runner_mod, "check_program", sabotaged)
        failed = corpus_mod.replay_corpus(str(tmp_path), workers=1,
                                          rnr=False)
        assert len(failed) == 1 and not failed[0].ok
