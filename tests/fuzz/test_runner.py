"""The matrix harness itself: identical runs pass, a genuinely
different config surface is detected, the parallel axis equals serial,
and the guest oracle fails a program on its own."""
import pytest

from repro.fuzz.grammar import ProgramSpec, generate_program
from repro.fuzz.runner import (
    COMPARED_FIELDS,
    MATRIX,
    Cell,
    _check_ckpt_resume,
    check_program,
    run_cell,
)


def _spec(*ops):
    return ProgramSpec(seed=0, ops=tuple(ops))


class TestRunCell:
    def test_fingerprint_fields_present(self):
        rec = run_cell(_spec({"op": "audit"}).to_dict(),
                       MATRIX[0].to_dict())
        for field in COMPARED_FIELDS:
            assert field in rec
        assert rec["status"] == "ok" and rec["exit_code"] == 0

    def test_trace_only_under_observe(self):
        spec = _spec({"op": "time"}, {"op": "audit"}).to_dict()
        plain = run_cell(spec, Cell("base").to_dict())
        observed = run_cell(spec, Cell("obs", observe=True).to_dict())
        assert plain["trace"] is None
        assert observed["trace"] is not None

    def test_same_cell_is_reproducible(self):
        spec = generate_program(1).to_dict()
        assert run_cell(spec, MATRIX[0].to_dict()) == \
            run_cell(spec, MATRIX[0].to_dict())


class TestCheckProgram:
    def test_generated_programs_deterministic(self):
        for seed in (1, 4):
            report = check_program(generate_program(seed), workers=2)
            assert report.ok, report.failures

    def test_threaded_program_deterministic(self):
        spec = _spec(
            {"op": "mkdir", "path": "d0"},
            {"op": "threads", "bodies": [
                [{"op": "write", "path": "d0/f0", "data": "a"}],
                [{"op": "write", "path": "d0/f1", "data": "b"}]]},
            {"op": "listdir", "path": "d0"},
            {"op": "audit"})
        report = check_program(spec, workers=2, rnr=True)
        assert report.ok, report.failures

    def test_divergent_cell_detected(self):
        """A cell with a different PRNG seed is a *different container*;
        the harness must flag it on any randomness-reading program."""
        spec = _spec({"op": "random", "count": 8}, {"op": "audit"})
        bad = (MATRIX[0], Cell("otherseed", prng_seed=7))
        report = check_program(spec, workers=1, rnr=False, matrix=bad)
        assert not report.ok
        assert any("stdout" in f for f in report.failures)

    def test_oracle_violation_fails_even_when_cells_agree(self):
        """VIOLATION lines are failures in their own right.  All cells
        print them identically (deterministically buggy!), so only the
        oracle catches this class."""
        # rename of a missing source "succeeding" can't happen in a
        # healthy tree; instead force a violation through the auditor by
        # constructing a program whose audit is clean, then check the
        # failure path with a stdout-level probe: the auditor's own
        # formatting keeps "VIOLATION" out of healthy output.
        report = check_program(generate_program(2), workers=1, rnr=False)
        assert report.ok
        for rec in report.records:
            assert "VIOLATION" not in rec["stdout"]

    def test_serial_matches_parallel_axis(self):
        spec = generate_program(3)
        serial = check_program(spec, workers=1, rnr=False)
        pooled = check_program(spec, workers=2, rnr=False)
        assert serial.ok and pooled.ok
        assert serial.records == pooled.records

    def test_ckpt_resume_axis_clean_on_deterministic_program(self):
        """The crash/resume axis kills the run on a mid-chain delta
        checkpoint and resumes; a healthy program reproduces the
        straight base record exactly."""
        spec = generate_program(2)
        base = run_cell(spec.to_dict(), MATRIX[0].to_dict())
        assert base["totals"]["events_processed"] >= 8
        assert _check_ckpt_resume(spec, MATRIX[0], base) == []

    def test_ckpt_resume_axis_detects_divergence(self):
        """Negative control: a resumed run that differs from the base
        record on any compared field must be flagged."""
        spec = generate_program(2)
        base = run_cell(spec.to_dict(), MATRIX[0].to_dict())
        tampered = dict(base)
        tampered["stdout"] = base["stdout"] + "tampered\n"
        failures = _check_ckpt_resume(spec, MATRIX[0], tampered)
        assert failures and "stdout" in failures[0]

    def test_rnr_axis_runs_for_thread_free_programs(self):
        spec = _spec({"op": "write", "path": "f0", "data": "a"},
                     {"op": "time"}, {"op": "random", "count": 4},
                     {"op": "audit"})
        assert not spec.uses_threads()
        report = check_program(spec, workers=1, rnr=True)
        assert report.ok, report.failures


@pytest.mark.fuzz
class TestSmoke:
    def test_twenty_seeds_full_matrix(self):
        for seed in range(20):
            report = check_program(generate_program(seed), workers=2)
            assert report.ok, (seed, report.failures)
