"""The CAS layer: atomic entries, torn-write detection, refcounted gc."""
import os

import pytest

from repro.cache import CachedOutcome, CacheStore, RunKey

pytestmark = pytest.mark.cache


def outcome(stdout="hello\n", tree=None) -> CachedOutcome:
    return CachedOutcome(
        status="ok", exit_code=0, error="", stdout=stdout, stderr="",
        output_tree=tree if tree is not None else {"out.txt": b"artifact\n"},
        syscall_count=12, wall_time=0.5,
        digests={"tree": "t", "stdout_sha256": "s", "stderr_sha256": "e"})


def key(n=0) -> RunKey:
    return RunKey(digest="%064x" % (0xABC0 + n))


@pytest.fixture
def store(tmp_path):
    return CacheStore(str(tmp_path))


class TestRoundTrip:
    def test_put_get(self, store):
        store.put(key(), outcome())
        got = store.get(key())
        assert got is not None
        assert got.stdout == "hello\n"
        assert got.output_tree == {"out.txt": b"artifact\n"}
        assert got.exit_code == 0

    def test_missing_key_is_none(self, store):
        assert store.get(key(9)) is None

    def test_overwrite_replaces(self, store):
        store.put(key(), outcome(stdout="v1\n"))
        store.put(key(), outcome(stdout="v2\n"))
        assert store.get(key()).stdout == "v2\n"

    def test_identical_outcomes_share_one_object(self, store):
        store.put(key(0), outcome())
        store.put(key(1), outcome())
        stats = store.stats()
        assert stats.keys == 2
        assert stats.objects == 1
        assert stats.deduplicated_keys == 2


class TestTornEntries:
    def _flip_last_byte(self, path):
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(data))

    def test_corrupt_object_reads_as_miss(self, store):
        store.put(key(), outcome())
        obj = os.path.join(store.objects_dir,
                           os.listdir(store.objects_dir)[0])
        self._flip_last_byte(obj)
        assert store.get(key()) is None

    def test_truncated_object_reads_as_miss(self, store):
        store.put(key(), outcome())
        obj = os.path.join(store.objects_dir,
                           os.listdir(store.objects_dir)[0])
        with open(obj, "r+b") as fh:
            fh.truncate(os.path.getsize(obj) - 10)
        assert store.get(key()) is None

    def test_corrupt_key_reads_as_miss(self, store):
        store.put(key(), outcome())
        with open(store.key_path(key().digest), "wb") as fh:
            fh.write(b"not json")
        assert store.get(key()) is None

    def test_dangling_key_reads_as_miss(self, store):
        store.put(key(), outcome())
        for name in os.listdir(store.objects_dir):
            os.remove(os.path.join(store.objects_dir, name))
        assert store.get(key()) is None

    def test_future_format_reads_as_miss(self, store):
        store.put(key(), outcome())
        path = store.key_path(key().digest)
        text = open(path, "rb").read().decode()
        with open(path, "w") as fh:
            fh.write(text.replace('"format": 1', '"format": 99'))
        assert store.get(key()) is None


class TestGc:
    def test_gc_keeps_live_entries(self, store):
        store.put(key(), outcome())
        removed = store.gc()
        assert removed == {"torn": [], "unreferenced": []}
        assert store.get(key()) is not None

    def test_gc_removes_torn_and_dangling(self, store):
        store.put(key(0), outcome(stdout="a\n"))
        store.put(key(1), outcome(stdout="b\n"))
        with open(store.key_path(key(0).digest), "wb") as fh:
            fh.write(b"garbage")
        removed = store.gc()
        assert len(removed["torn"]) == 1
        # The now-unreferenced object of key 0 goes with it.
        assert len(removed["unreferenced"]) == 1
        assert store.get(key(1)) is not None
        assert store.stats().unreferenced_objects == 0

    def test_gc_sweeps_leftover_tmp_files(self, store):
        store.put(key(), outcome())
        tmp = os.path.join(store.keys_dir, ".tmp-interrupted.key")
        with open(tmp, "wb") as fh:
            fh.write(b"half-written")
        store.gc()
        assert not os.path.exists(tmp)
        assert store.get(key()) is not None

    def test_verify_store_reports_problems(self, store):
        store.put(key(), outcome())
        assert store.verify_store() == []
        obj = os.path.join(store.objects_dir,
                           os.listdir(store.objects_dir)[0])
        with open(obj, "r+b") as fh:
            fh.truncate(os.path.getsize(obj) - 4)
        problems = store.verify_store()
        assert problems and any("torn" in p for p in problems)


class TestStats:
    def test_empty_store(self, store):
        stats = store.stats()
        assert stats.keys == 0 and stats.objects == 0

    def test_counts_and_bytes(self, store):
        store.put(key(0), outcome(stdout="a\n"))
        store.put(key(1), outcome(stdout="b\n"))
        stats = store.stats()
        assert stats.keys == 2
        assert stats.objects == 2
        assert stats.object_bytes > 0
        assert stats.deduplicated_keys == 0
