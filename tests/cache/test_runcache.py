"""Run-key semantics and the memoized DetTrace run path."""
import pytest

from repro.cache import RunCache, run_key
from repro.core import CacheConfig, ContainerConfig, DetTrace, Image, ablated
from repro.core.config import CheckpointConfig
from repro.cpu.machine import HASWELL_XEON, HostEnvironment

pytestmark = pytest.mark.cache


def _main(sys):
    yield from sys.println("hello")
    yield from sys.write_file("out.txt", b"artifact\n")
    return 0


def _image(program=_main) -> Image:
    image = Image()
    image.add_binary("/bin/main", program)
    return image


def _key(image=None, config=None, command="/bin/main", argv=None, host=None):
    return run_key(image if image is not None else _image(),
                   config or ContainerConfig(), command, argv,
                   host or HostEnvironment()).digest


class TestRunKey:
    def test_same_inputs_same_key(self):
        assert _key() == _key()

    def test_argv_changes_key(self):
        assert _key(argv=["main"]) != _key(argv=["main", "-v"])

    def test_config_seed_changes_key(self):
        assert (_key(config=ContainerConfig(prng_seed=1))
                != _key(config=ContainerConfig(prng_seed=2)))

    def test_image_content_changes_key(self):
        a = _image()
        a.add_file("/etc/extra", "one\n")
        b = _image()
        b.add_file("/etc/extra", "two\n")
        assert _key(image=a) != _key(image=b)

    def test_guest_program_edit_changes_key(self):
        def other(sys):
            yield from sys.println("HELLO")  # one byte of behaviour moved
            yield from sys.write_file("out.txt", b"artifact\n")
            return 0

        assert _key(image=_image(_main)) != _key(image=_image(other))

    def test_operational_knobs_do_not_change_key(self):
        # checkpoint + cache placement never changes what a run computes,
        # so neither may move its content address.
        plain = _key(config=ContainerConfig())
        assert plain == _key(config=ContainerConfig(
            cache=CacheConfig(directory="/somewhere", mode="verify")))
        assert plain == _key(config=ContainerConfig(
            checkpoint=CheckpointConfig(directory="/elsewhere", every=5)))

    def test_determinized_run_keys_ignore_the_boot(self):
        boot_a = HostEnvironment(entropy_seed=1, boot_epoch=1.6e9,
                                 pid_start=1000, inode_start=100_000)
        boot_b = HostEnvironment(entropy_seed=2, boot_epoch=1.7e9,
                                 pid_start=4321, inode_start=900_000)
        assert _key(host=boot_a) == _key(host=boot_b)

    def test_ablated_run_keys_include_the_boot(self):
        # With a determinism mechanism off the run may observe the boot:
        # the key must keep distinct boots apart.
        cfg = ablated("virtualize_time")
        boot_a = HostEnvironment(entropy_seed=1, boot_epoch=1.6e9)
        boot_b = HostEnvironment(entropy_seed=2, boot_epoch=1.7e9)
        assert _key(config=cfg, host=boot_a) != _key(config=cfg, host=boot_b)

    def test_machine_spec_always_in_key(self):
        assert (_key(host=HostEnvironment())
                != _key(host=HostEnvironment(machine=HASWELL_XEON)))


class TestMemoizedRun:
    def _cfg(self, directory, mode="write"):
        return ContainerConfig(cache=CacheConfig(directory=str(directory),
                                                 mode=mode))

    def test_store_then_hit_with_zero_execution(self, tmp_path):
        cfg = self._cfg(tmp_path)
        first = DetTrace(cfg).run(_image(), "/bin/main")
        assert first.cache["outcome"] == "store"
        assert first.cache["executed"] is True
        second = DetTrace(cfg).run(_image(), "/bin/main")
        assert second.cache["outcome"] == "hit"
        assert second.cache["executed"] is False
        assert second.cache["key"] == first.cache["key"]
        # The hit reproduces every deterministic surface bytewise.
        assert second.stdout == first.stdout
        assert second.stderr == first.stderr
        assert second.output_tree == first.output_tree
        assert second.exit_code == first.exit_code
        assert second.syscall_count == first.syscall_count

    def test_hit_metrics_carry_the_producing_runs_counters(self, tmp_path):
        cfg = self._cfg(tmp_path)
        first = DetTrace(cfg).run(_image(), "/bin/main")
        second = DetTrace(cfg).run(_image(), "/bin/main")
        assert second.metrics is not None
        # Disposition counters describe *this* lookup, not the stored run:
        assert second.metrics.counters.get("cache/hit") == 1
        assert "cache/store" not in second.metrics.counters
        # everything else is the producing run's deterministic snapshot.
        stripped = {name: n for name, n in first.metrics.counters.items()
                    if not name.startswith("cache/")}
        hit_stripped = {name: n for name, n in second.metrics.counters.items()
                        if not name.startswith("cache/")}
        assert hit_stripped == stripped

    def test_read_mode_never_stores(self, tmp_path):
        cfg = self._cfg(tmp_path, mode="read")
        result = DetTrace(cfg).run(_image(), "/bin/main")
        assert result.cache["outcome"] == "miss"
        assert result.cache["executed"] is True
        assert RunCache(str(tmp_path)).store.stats().keys == 0

    def test_read_mode_serves_hits(self, tmp_path):
        DetTrace(self._cfg(tmp_path)).run(_image(), "/bin/main")
        result = DetTrace(self._cfg(tmp_path, mode="read")).run(
            _image(), "/bin/main")
        assert result.cache["outcome"] == "hit"

    def test_off_mode_leaves_no_trace(self, tmp_path):
        result = DetTrace(self._cfg(tmp_path, mode="off")).run(
            _image(), "/bin/main")
        assert result.cache is None
        assert RunCache(str(tmp_path)).store.stats().keys == 0

    def test_failed_runs_are_not_cached(self, tmp_path):
        def spin(sys):
            while True:
                yield from sys.compute(1.0)

        cfg = ContainerConfig(timeout=0.5, busy_wait_budget=None,
                              cache=CacheConfig(directory=str(tmp_path)))
        result = DetTrace(cfg).run(_image(spin), "/bin/main")
        assert result.status != "ok"
        assert result.cache["outcome"] == "uncacheable"
        assert RunCache(str(tmp_path)).store.stats().keys == 0

    def test_verify_ok_re_executes_and_compares_clean(self, tmp_path):
        DetTrace(self._cfg(tmp_path)).run(_image(), "/bin/main")
        result = DetTrace(self._cfg(tmp_path, mode="verify")).run(
            _image(), "/bin/main")
        assert result.cache["outcome"] == "verify_ok"
        assert result.cache["executed"] is True

    def test_verify_miss_stores(self, tmp_path):
        result = DetTrace(self._cfg(tmp_path, mode="verify")).run(
            _image(), "/bin/main")
        assert result.cache["outcome"] == "store"
        assert RunCache(str(tmp_path)).store.stats().keys == 1

    def test_perturbed_entry_reported_as_divergence(self, tmp_path):
        cfg = self._cfg(tmp_path)
        DetTrace(cfg).run(_image(), "/bin/main")
        # Re-store a validly-checksummed but mutated outcome under the
        # same key — the supply-chain scenario verify mode exists for.
        rc = RunCache(str(tmp_path))
        key = rc.key_for(_image(), cfg, "/bin/main", None, HostEnvironment())
        entry = rc.lookup(key)
        entry.output_tree["out.txt"] = b"tampered\n"
        rc.store.put(key, entry)

        result = DetTrace(self._cfg(tmp_path, mode="verify")).run(
            _image(), "/bin/main")
        assert result.cache["outcome"] == "verify_mismatch"
        assert result.cache["differs"] == ["tree"]
        report = result.cache["report"]
        assert report.diverged
        assert report.classification == "fs-content"
        assert "out.txt" in report.format()
        # The fresh (correct) result is what the caller gets back.
        assert result.output_tree["out.txt"] == b"artifact\n"
        assert result.metrics.counters.get("cache/verify_mismatch") == 1

    def test_torn_entry_degrades_to_miss_then_restore(self, tmp_path):
        import os

        cfg = self._cfg(tmp_path)
        DetTrace(cfg).run(_image(), "/bin/main")
        objects = os.path.join(str(tmp_path), "objects")
        for name in os.listdir(objects):
            path = os.path.join(objects, name)
            with open(path, "r+b") as fh:
                fh.truncate(os.path.getsize(path) - 8)
        result = DetTrace(cfg).run(_image(), "/bin/main")
        assert result.cache["outcome"] == "store"  # miss → re-store
        assert DetTrace(cfg).run(_image(), "/bin/main").cache["outcome"] == "hit"

    def test_retry_attempts_bypass_the_cache(self, tmp_path):
        from repro.faults.plan import FaultPlan, FaultRule

        cfg = ContainerConfig(
            fault_plan=FaultPlan(rules=(
                FaultRule(fault="kill", at_tick=3, transient=True),)),
            cache=CacheConfig(directory=str(tmp_path)))
        result = DetTrace(cfg).run_supervised(_image(), "/bin/main")
        assert result.status == "retried"
        assert result.exit_code == 0
