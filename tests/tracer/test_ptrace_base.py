from repro.cpu.machine import HostEnvironment
from repro.kernel.kernel import Kernel
from repro.tracer.ptrace import TracerBase


class TestSerialTimeline:
    def test_charges_serialize(self):
        tracer = TracerBase()
        tracer.kernel = Kernel(HostEnvironment())
        t1 = tracer.charge(10e-6)
        t2 = tracer.charge(5e-6)
        assert t2 == t1 + 5e-6  # second charge queues behind the first

    def test_charge_starts_at_now_when_idle(self):
        tracer = TracerBase()
        kernel = Kernel(HostEnvironment())
        tracer.kernel = kernel
        kernel.clock.advance_to(1.0)
        assert tracer.charge(1e-6) == 1.0 + 1e-6

    def test_memory_accounting(self):
        tracer = TracerBase()
        tracer.kernel = Kernel(HostEnvironment())
        cost = tracer.peek_memory(4)
        assert tracer.counters.memory_reads == 4
        assert cost > 0
        tracer.poke_memory(2)
        assert tracer.counters.memory_writes == 2
