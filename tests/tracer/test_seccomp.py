from repro.kernel.costs import (
    LEGACY_DOUBLE_STOP_COST,
    PTRACE_STOP_COST,
    SECCOMP_COMBINED_STOP_COST,
)
from repro.tracer.seccomp import NATURALLY_REPRODUCIBLE, SeccompFilter


class TestFilter:
    def test_naturally_reproducible_pass_through(self):
        f = SeccompFilter()
        assert not f.intercepts("getpid")
        assert not f.intercepts("getcwd")
        assert not f.intercepts("sched_yield")

    def test_everything_else_intercepted(self):
        f = SeccompFilter()
        for name in ("open", "read", "write", "stat", "time", "getrandom",
                     "wait4", "spawn_process", "futex", "socket"):
            assert f.intercepts(name), name

    def test_disabled_filter_intercepts_everything(self):
        f = SeccompFilter(enabled=False)
        assert f.intercepts("getpid")

    def test_shared_state_never_allowed(self):
        # Nothing touching the fs, pipes, time or randomness may skip
        # serialization, or cross-process determinism would break.
        for risky in ("open", "read", "write", "close", "unlink", "rename",
                      "stat", "getdents", "time", "getrandom", "wait4"):
            assert risky not in NATURALLY_REPRODUCIBLE


class TestStopCosts:
    def test_modern_kernel_single_event(self):
        f = SeccompFilter(kernel_version=(4, 15))
        assert f.stop_cost == SECCOMP_COMBINED_STOP_COST

    def test_old_kernel_double_event(self):
        f = SeccompFilter(kernel_version=(4, 4))
        assert f.stop_cost == LEGACY_DOUBLE_STOP_COST
        assert f.stop_cost > SECCOMP_COMBINED_STOP_COST

    def test_plain_ptrace_two_stops(self):
        f = SeccompFilter(enabled=False)
        assert f.stop_cost == 2 * PTRACE_STOP_COST
