"""Which events reach which tracer — the SS4 taxonomy, executable."""
import pytest

from repro.core import ContainerConfig
from repro.cpu.machine import SANDY_BRIDGE, SKYLAKE_CLOUDLAB, HostEnvironment
from tests.conftest import dettrace_run


class TestInterceptionMatrix:
    def test_vdso_timing_counted_as_syscalls_only_when_patched(self):
        def prog(sys):
            for _ in range(5):
                yield from sys.gettimeofday()
            return 0

        r = dettrace_run(prog)
        # patched vDSO: every timing call became a traced syscall
        assert r.syscall_count >= 5

        from repro.core import ablated
        r2 = dettrace_run(prog, config=ablated("patch_vdso"))
        assert r2.syscall_count < 5

    def test_naturally_reproducible_syscalls_skip_stops(self):
        def prog(sys):
            for _ in range(20):
                yield from sys.getpid()     # seccomp-allowed
            yield from sys.write_file("f", b"")  # intercepted
            return 0

        r = dettrace_run(prog)
        # 20 getpid calls executed but produced no tracer events
        assert r.syscall_count >= 21
        assert r.counters.syscall_events <= r.syscall_count - 20

    def test_rdtsc_counted(self):
        def prog(sys):
            for _ in range(7):
                yield from sys.rdtsc()
            return 0

        r = dettrace_run(prog)
        assert r.counters.rdtsc_intercepted == 7

    def test_cpuid_interception_depends_on_microarch(self):
        def prog(sys):
            yield from sys.instr("cpuid")
            return 0

        modern = dettrace_run(prog, host=HostEnvironment(machine=SKYLAKE_CLOUDLAB))
        assert modern.counters.cpuid_intercepted == 1
        old = dettrace_run(prog, host=HostEnvironment(machine=SANDY_BRIDGE))
        assert old.counters.cpuid_intercepted == 0  # no faulting pre-IvyBridge

    def test_vdso_patch_counted_per_exec(self):
        def child(sys):
            yield from sys.getpid()
            return 0

        def main(sys):
            for _ in range(3):
                yield from sys.run("/bin/child")
            return 0

        r = dettrace_run(main, extra_binaries={"/bin/child": child})
        assert r.counters.vdso_patches == 4  # init + 3 children
