from repro.tracer.events import TraceCounters


class TestTraceCounters:
    def test_table2_rows_order(self):
        c = TraceCounters(syscall_events=10, read_retries=2)
        rows = c.as_table2_rows()
        assert rows[0] == ("System call events", 10)
        assert ("read retries", 2) in rows
        # The paper's nine Table-2 rows plus the in-container socket pair.
        assert len(rows) == 11
        assert ("Socket connects (in-container)", 0) in rows
        assert ("Socket accepts (in-container)", 0) in rows

    def test_add_accumulates(self):
        a = TraceCounters(syscall_events=5, rdtsc_intercepted=1)
        b = TraceCounters(syscall_events=7, write_retries=3)
        a.add(b)
        assert a.syscall_events == 12
        assert a.rdtsc_intercepted == 1
        assert a.write_retries == 3
