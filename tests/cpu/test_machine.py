import dataclasses

from repro.cpu.machine import (
    ALL_MACHINES,
    BROADWELL_XEON,
    SANDY_BRIDGE,
    SKYLAKE_CLOUDLAB,
    HostEnvironment,
)


class TestMachineSpec:
    def test_paper_machines_exist(self):
        assert "cloudlab-c220g5" in ALL_MACHINES
        assert SKYLAKE_CLOUDLAB.cores == 20
        assert SKYLAKE_CLOUDLAB.kernel_version == (4, 15)

    def test_sandy_bridge_lacks_modern_features(self):
        assert not SANDY_BRIDGE.has_tsx
        assert not SANDY_BRIDGE.has_rdrand
        assert not SANDY_BRIDGE.cpuid_faulting

    def test_directory_size_models_differ(self):
        for n in (5, 20, 100):
            assert (SKYLAKE_CLOUDLAB.directory_size(n)
                    != BROADWELL_XEON.directory_size(n)) or n < 10

    def test_kernel_version_check(self):
        assert SKYLAKE_CLOUDLAB.kernel_version_at_least(4, 12)
        assert not SANDY_BRIDGE.kernel_version_at_least(4, 12)


class TestHostEnvironment:
    def test_entropy_is_seed_deterministic(self):
        a = HostEnvironment(entropy_seed=5)
        b = HostEnvironment(entropy_seed=5)
        assert a.entropy_bytes(16) == b.entropy_bytes(16)

    def test_entropy_differs_across_seeds(self):
        a = HostEnvironment(entropy_seed=5)
        b = HostEnvironment(entropy_seed=6)
        assert a.entropy_bytes(16) != b.entropy_bytes(16)

    def test_entropy_stream_advances(self):
        h = HostEnvironment()
        assert h.entropy_bytes(8) != h.entropy_bytes(8)

    def test_aslr_disabled_is_fixed(self):
        h = HostEnvironment(aslr_enabled=False)
        assert h.aslr_base() == h.aslr_base()

    def test_aslr_enabled_varies(self):
        h = HostEnvironment(aslr_enabled=True)
        bases = {h.aslr_base() for _ in range(8)}
        assert len(bases) > 1
        for base in bases:
            assert base % 4096 == 0

    def test_sched_jitter_bounded(self):
        h = HostEnvironment()
        for _ in range(100):
            j = h.sched_jitter(0.5)
            assert 0.0 <= j < 0.5

    def test_replace_reseeds_streams(self):
        h1 = HostEnvironment(entropy_seed=1)
        h2 = dataclasses.replace(h1, entropy_seed=2)
        assert h1.entropy_bytes(8) != h2.entropy_bytes(8)
