import pytest

from repro.cpu import instructions as insn
from repro.cpu.machine import HASWELL_XEON, SANDY_BRIDGE, SKYLAKE_CLOUDLAB, HostEnvironment
from repro.kernel.errors import GuestCrash


def cpu_for(machine=SKYLAKE_CLOUDLAB, seed=0):
    return insn.Cpu(HostEnvironment(machine=machine, entropy_seed=seed))


class TestRdtsc:
    def test_tracks_elapsed_cycles(self):
        cpu = cpu_for()
        t1 = cpu.rdtsc(1.0)
        expected = SKYLAKE_CLOUDLAB.freq_ghz * 1e9
        assert abs(t1 - expected) < 1e4  # within noise

    def test_noisy_across_reads(self):
        cpu = cpu_for()
        assert len({cpu.rdtsc(1.0) for _ in range(10)}) > 1


class TestRdrand:
    def test_returns_entropy(self):
        cpu = cpu_for()
        assert cpu.rdrand() != cpu.rdrand()

    def test_sigill_without_feature(self):
        cpu = cpu_for(machine=SANDY_BRIDGE)
        with pytest.raises(GuestCrash) as exc:
            cpu.rdrand()
        assert exc.value.signum == 4  # SIGILL


class TestCpuid:
    def test_reports_real_machine(self):
        cpu = cpu_for()
        res = cpu.cpuid()
        assert res.cores == SKYLAKE_CLOUDLAB.cores
        assert res.has_feature("rtm")
        assert "4114" in res.brand

    def test_trappable_only_with_faulting_and_new_kernel(self):
        assert insn.trappable(insn.CPUID, SKYLAKE_CLOUDLAB)
        assert not insn.trappable(insn.CPUID, SANDY_BRIDGE)
        assert insn.trappable(insn.RDTSC, SANDY_BRIDGE)
        assert not insn.trappable(insn.RDRAND, SKYLAKE_CLOUDLAB)
        assert not insn.trappable(insn.XBEGIN, SKYLAKE_CLOUDLAB)


class TestTsx:
    def test_aborts_are_nondeterministic(self):
        cpu = cpu_for()
        results = {cpu.xbegin() for _ in range(64)}
        assert insn.TSX_STARTED in results
        assert len(results) > 1  # some aborts occurred

    def test_sigill_without_tsx(self):
        cpu = cpu_for(machine=SANDY_BRIDGE)
        with pytest.raises(GuestCrash):
            cpu.xbegin()


class TestDispatch:
    def test_execute_all_known(self):
        cpu = cpu_for(machine=HASWELL_XEON)
        for name in (insn.RDTSC, insn.RDTSCP, insn.RDRAND, insn.CPUID,
                     insn.XBEGIN, insn.XEND, insn.RDPMC):
            cpu.execute(name, 0.5)

    def test_illegal_instruction_crashes(self):
        cpu = cpu_for()
        with pytest.raises(GuestCrash):
            cpu.execute("movbe_bogus", 0.0)


class TestTrapConfig:
    def test_flags(self):
        cfg = insn.TrapConfig(trap_rdtsc=True, trap_cpuid=False)
        assert cfg.traps(insn.RDTSC)
        assert cfg.traps(insn.RDTSCP)
        assert not cfg.traps(insn.CPUID)
        assert cfg.traps(insn.RDPMC)
        assert not cfg.traps(insn.RDRAND)
