"""Round-trip properties of the archive formats."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.debian.archive import TarEntry, deb_pack, deb_unpack, tar_pack, tar_unpack

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                           whitelist_characters="._-/"),
    min_size=1, max_size=24).filter(lambda s: " " not in s)

entries = st.lists(
    st.builds(
        TarEntry,
        name=names,
        mode=st.integers(min_value=0, max_value=0o777),
        uid=st.integers(min_value=0, max_value=65534),
        gid=st.integers(min_value=0, max_value=65534),
        mtime=st.floats(min_value=0, max_value=2e9, allow_nan=False),
        content=st.binary(max_size=256),
    ),
    max_size=8,
)


@settings(max_examples=60)
@given(entries=entries)
def test_tar_roundtrip(entries):
    unpacked = tar_unpack(tar_pack(entries))
    assert len(unpacked) == len(entries)
    for a, b in zip(entries, unpacked):
        assert (a.name, a.mode, a.uid, a.gid, a.content) == \
            (b.name, b.mode, b.uid, b.gid, b.content)
        assert abs(a.mtime - b.mtime) < 1e-6


@settings(max_examples=40)
@given(entries=entries,
       package=names,
       fields=st.dictionaries(
           st.text(alphabet="ABCDEFGHIJK-", min_size=1, max_size=10),
           st.text(alphabet="abcdefghij0123456789.", max_size=12),
           max_size=4))
def test_deb_roundtrip(entries, package, fields):
    data_tar = tar_pack(entries)
    deb = deb_pack(package, "1.0", fields, data_tar)
    out_fields, out_tar = deb_unpack(deb)
    assert out_tar == data_tar
    assert out_fields["Package"] == package
    for key, value in fields.items():
        if value:
            assert out_fields.get(key) == value


@settings(max_examples=40)
@given(entries=entries)
def test_pack_is_injective_on_mtime(entries):
    if not entries:
        return
    bumped = [TarEntry(e.name, e.mode, e.uid, e.gid, e.mtime + 1.0, e.content)
              for e in entries]
    assert tar_pack(entries) != tar_pack(bumped)
