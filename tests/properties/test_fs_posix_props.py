"""POSIX bookkeeping invariants under random fs-op storms.

Two layers:

* directly against :class:`repro.kernel.filesystem.Filesystem` — after
  any sequence of create/link/unlink/rmdir/rename (including cross-
  directory directory moves and rename-over-existing), every inode's
  ``nlink`` equals its reachable-name count (+2+subdirs for dirs) and an
  unlinked-but-open inode keeps its number until the last close;
* through a full DetTrace container — the fuzz interpreter's in-guest
  auditor must stay silent with the namei/dirent caches on *and* off,
  and both runs must be byte-identical.
"""
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ContainerConfig
from repro.core.container import DetTrace
from repro.cpu.machine import HostEnvironment
from repro.fuzz.grammar import ProgramSpec, _gen_op
from repro.fuzz.guest import build_image
from repro.kernel.errors import SyscallError
from repro.kernel.filesystem import Filesystem

names_st = st.sampled_from(["a", "b", "c", "d"])
dirs_st = st.sampled_from(["", "d1", "d2"])  # "" = root
op_st = st.lists(
    st.tuples(
        st.sampled_from(["write", "mkdir", "link", "unlink", "rmdir",
                         "rename", "open", "close"]),
        dirs_st, names_st, dirs_st, names_st),
    max_size=50)


def _parent(fs, dirname):
    if not dirname:
        return fs.root
    node = fs.root.lookup(dirname)
    return node if node is not None and node.is_dir else fs.root


def _apply(fs, ops):
    """Apply ops; returns the list of (node, names-at-open) still open."""
    open_nodes = []
    for kind, d1, n1, d2, n2 in ops:
        p1, p2 = _parent(fs, d1), _parent(fs, d2)
        try:
            if kind == "write":
                path = ("/" + d1 + "/" + n1) if d1 else ("/" + n1)
                fs.write_file(path, b"x", now=1.0)
            elif kind == "mkdir":
                fs.create_dir(p1, n1, now=1.0)
            elif kind == "link":
                target = p2.lookup(n2)
                if target is not None and not target.is_dir:
                    fs.hard_link(p1, n1, target, now=1.0)
            elif kind == "unlink":
                fs.unlink(p1, n1, now=1.0)
            elif kind == "rmdir":
                fs.rmdir(p1, n1, now=1.0)
            elif kind == "rename":
                fs.rename(p1, n1, p2, n2, now=1.0)
            elif kind == "open":
                node = p1.lookup(n1)
                if node is not None and node.is_regular:
                    fs.inode_opened(node)
                    open_nodes.append(node)
            elif kind == "close":
                if open_nodes:
                    fs.inode_closed(open_nodes.pop())
        except SyscallError:
            pass  # rejected sequences are fine; invariants must hold anyway
    return open_nodes


def _name_counts(fs):
    """id(node) -> number of reachable names, plus dir subdir counts."""
    file_names = {}
    dir_subdirs = {}
    for path, node in fs.walk():
        if node.is_dir:
            dir_subdirs[id(node)] = (
                node, sum(1 for child in node.entries.values()
                          if child.is_dir))
        else:
            entry = file_names.setdefault(id(node), [node, 0])
            entry[1] += 1
    return file_names, dir_subdirs


@settings(max_examples=60, deadline=None)
@given(ops=op_st)
def test_nlink_equals_reachable_name_count(ops):
    fs = Filesystem(HostEnvironment())
    fs.create_dir(fs.root, "d1", now=0.0)
    fs.create_dir(fs.root, "d2", now=0.0)
    _apply(fs, ops)
    file_names, dir_subdirs = _name_counts(fs)
    for node, count in file_names.values():
        if not node.is_regular:
            continue  # symlinks/devices: names count, but keep it simple
        assert node.nlink == count, (node.ino, node.nlink, count)
    for node, subdirs in dir_subdirs.values():
        assert node.nlink == 2 + subdirs, (node.ino, node.nlink, subdirs)


@settings(max_examples=60, deadline=None)
@given(ops=op_st)
def test_live_and_open_inode_numbers_stay_unique(ops):
    """No two live inodes — reachable *or* merely held open — may share
    an inode number; an orphan's number is only recycled after its last
    close."""
    fs = Filesystem(HostEnvironment())
    fs.create_dir(fs.root, "d1", now=0.0)
    fs.create_dir(fs.root, "d2", now=0.0)
    open_nodes = _apply(fs, ops)
    live = {}
    for _path, node in fs.walk():
        live.setdefault(id(node), node)
    for node in open_nodes:
        live.setdefault(id(node), node)
    inos = [node.ino for node in live.values()]
    assert len(inos) == len(set(inos)), sorted(inos)
    # Closing every orphan frees its number for reuse.
    for node in list(open_nodes):
        fs.inode_closed(node)
    before = fs.create_file(fs.root, "fresh-after-close", now=2.0)
    assert before.ino not in \
        [n.ino for n in live.values() if n is not before and n.nlink > 0]


# -- guest-level: the auditor under both cache settings ----------------------

_FS_MENU = (("write", 5), ("mkdir", 4), ("rename", 6), ("link", 4),
            ("unlink", 4), ("rmdir", 3), ("stat", 2), ("listdir", 2),
            ("open", 3), ("close", 2), ("fstat", 2))


def _fs_program(seed):
    rng = random.Random(seed)
    ops = [{"op": "mkdir", "path": "d0"}, {"op": "mkdir", "path": "d1"},
           {"op": "write", "path": "f0", "data": "alpha"}]
    menu = [name for name, weight in _FS_MENU for _ in range(weight)]
    for _ in range(rng.randint(6, 16)):
        ops.append(_gen_op(rng, rng.choice(menu)))
        if rng.random() < 0.25:
            ops.append({"op": "audit"})
    ops.append({"op": "audit"})
    return ProgramSpec(seed=seed, ops=tuple(ops))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_guest_audit_clean_with_and_without_fs_caches(seed):
    spec = _fs_program(seed)
    host = HostEnvironment(entropy_seed=seed)
    runs = []
    for caches in (True, False):
        result = DetTrace(ContainerConfig(fs_caches=caches)).run(
            build_image(spec), "/bin/fuzz", host=host)
        assert result.status == "ok" and result.exit_code == 0
        assert "VIOLATION" not in result.stdout, result.stdout
        runs.append(result)
    assert runs[0].stdout == runs[1].stdout
    assert runs[0].output_tree == runs[1].output_tree
