"""Invariants of the virtual inode table under arbitrary op sequences."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inode_table import InodeTable

ops = st.lists(
    st.tuples(st.sampled_from(["lookup", "create"]),
              st.integers(min_value=1, max_value=20)),
    max_size=60)


@settings(max_examples=60)
@given(ops=ops)
def test_virtual_inos_unique_per_generation(ops):
    table = InodeTable()
    live = {}
    for op, real in ops:
        if op == "lookup":
            v = table.virtual_ino(real)
            if real in live:
                assert v == live[real]  # stable while live
            live[real] = v
        else:
            old = live.get(real)
            v = table.register_new_file(real)
            if old is not None:
                assert v != old  # recycling always re-identifies
            live[real] = v
    assert len(set(live.values())) == len(live)  # injective over live


@settings(max_examples=60)
@given(ops=ops)
def test_mtime_clock_monotone(ops):
    table = InodeTable()
    last = 0
    for op, real in ops:
        if op == "create":
            table.register_new_file(real)
            assert table.mtime_clock > last or table.mtime_clock == last + 1
            last = table.mtime_clock
        else:
            table.virtual_ino(real)
            assert table.mtime_clock == last
