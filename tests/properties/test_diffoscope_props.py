"""Comparator properties."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.repro_tools import compare

trees = st.dictionaries(
    st.text(alphabet="abcdef/.", min_size=1, max_size=12),
    st.binary(max_size=64),
    max_size=6)


@settings(max_examples=60)
@given(tree=trees)
def test_reflexive(tree):
    assert compare(tree, dict(tree)).identical


@settings(max_examples=60)
@given(a=trees, b=trees)
def test_symmetric_verdict(a, b):
    assert compare(a, b).identical == compare(b, a).identical


@settings(max_examples=60)
@given(a=trees, b=trees)
def test_verdict_matches_equality(a, b):
    assert compare(a, b).identical == (a == b)


@settings(max_examples=40)
@given(tree=trees, path=st.text(alphabet="xyz", min_size=1, max_size=4),
       payload=st.binary(min_size=1, max_size=16))
def test_detects_any_single_insertion(tree, path, payload):
    if path in tree:
        return
    modified = dict(tree)
    modified[path] = payload
    report = compare(tree, modified)
    assert not report.identical
    assert any(d.path == path for d in report.differences)
