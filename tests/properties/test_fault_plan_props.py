"""Property-based tests: FaultPlan/FaultRule are pure, deterministic data.

Everything the injector consults — window membership, attempt scoping,
disk caps, serialization — must be a pure function of the rule fields, so
that a plan alone pins down every injection point.
"""
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ALL_FAULT_KINDS,
    DISK_FULL_FAULT,
    ERRNO_FAULTS,
    KILL_FAULT,
    FaultPlan,
    FaultPlanError,
    FaultRule,
)

kinds = st.sampled_from(ALL_FAULT_KINDS)
small = st.integers(min_value=0, max_value=64)
positive = st.integers(min_value=1, max_value=64)


@st.composite
def rules(draw):
    fault = draw(kinds)
    syscall = draw(st.none() | st.tuples(
        *[st.sampled_from(["read", "write", "open", "spawn_process"])] *
        draw(st.integers(min_value=1, max_value=3))))
    return FaultRule(
        fault=fault,
        pid=draw(st.none() | st.integers(min_value=1, max_value=5000)),
        syscall=syscall,
        path_prefix=draw(st.none() | st.sampled_from(["/build", "/tmp", "/"])),
        start=draw(small),
        stride=draw(positive),
        count=draw(positive),
        signum=draw(st.integers(min_value=1, max_value=31)),
        keep_bytes=draw(st.integers(min_value=0, max_value=16)),
        # `bytes` is serialized for disk_full rules only; keep others at
        # the default so round-trips are exact.
        bytes=(draw(st.integers(min_value=1, max_value=1 << 20))
               if fault == DISK_FULL_FAULT else 0),
        # `at_tick` is mandatory for kill rules and forbidden elsewhere.
        at_tick=(draw(st.integers(min_value=0, max_value=1 << 20))
                 if fault == KILL_FAULT else None),
        transient=draw(st.booleans()),
        attempts=draw(positive),
    )


plans = st.builds(lambda rs: FaultPlan(rules=tuple(rs)),
                  st.lists(rules(), max_size=6))


# -- serialization ----------------------------------------------------------

@given(rule=rules())
def test_rule_round_trips_through_dict(rule):
    assert FaultRule.from_dict(rule.to_dict()) == rule


@given(plan=plans)
def test_plan_round_trips_through_json(plan):
    assert FaultPlan.from_json(plan.to_json()) == plan


@given(plan=plans)
def test_json_form_is_canonical(plan):
    """Serialization is itself deterministic: same plan, same bytes."""
    assert plan.to_json() == FaultPlan.from_json(plan.to_json()).to_json()


def test_bare_list_and_wrapped_forms_agree():
    raw = [{"fault": "eio", "syscall": "write", "count": 2}]
    assert FaultPlan.from_dict(raw) == FaultPlan.from_dict({"rules": raw})


@pytest.mark.parametrize("raw", [
    {"fault": "no_such_kind"},
    {"fault": "eio", "stride": 0},
    {"fault": "eio", "count": 0},
    {"fault": "eio", "start": -1},
    {"fault": "disk_full"},
    {"fault": "disk_full", "bytes": 0},
    {"fault": "eio", "surprise_field": 1},
    {"syscall": "read"},
    "not an object",
])
def test_malformed_rules_raise_fault_plan_error(raw):
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"rules": [raw]})


def test_malformed_json_raises_fault_plan_error():
    with pytest.raises(FaultPlanError):
        FaultPlan.from_json("{not json")
    with pytest.raises(FaultPlanError):
        FaultPlan.from_json('"a string"')


# -- window arithmetic ------------------------------------------------------

@given(rule=rules(), index=small, fired=small)
def test_in_window_is_pure_arithmetic(rule, index, fired):
    expected = (fired < rule.count and index >= rule.start
                and (index - rule.start) % rule.stride == 0)
    assert rule.in_window(index, fired) == expected


@given(rule=rules(), index=small)
def test_window_closes_after_count_firings(rule, index):
    assert not rule.in_window(index, rule.count)


@given(rule=rules(), attempt=small)
def test_attempt_scoping(rule, attempt):
    if not rule.transient:
        assert rule.active_on_attempt(attempt)
    else:
        assert rule.active_on_attempt(attempt) == (attempt < rule.attempts)


@given(plan=plans, attempt=st.integers(min_value=0, max_value=4))
def test_disk_cap_is_tightest_active_rule(plan, attempt):
    caps = [r.bytes for r in plan.rules
            if r.fault == DISK_FULL_FAULT and r.active_on_attempt(attempt)]
    assert plan.disk_cap(attempt) == (min(caps) if caps else None)


@given(rule=rules())
def test_errno_mapping_matches_kind(rule):
    if rule.fault in ERRNO_FAULTS:
        assert rule.errno is ERRNO_FAULTS[rule.fault]
    else:
        assert rule.errno is None


# -- injector determinism ---------------------------------------------------

class _FakeFdTable:
    def has(self, fd):
        return False

    def get(self, fd):
        raise KeyError(fd)


class _FakeProc:
    def __init__(self, nspid):
        self.nspid = nspid
        self.cwd_path = "/build"
        self.fdtable = _FakeFdTable()


class _FakeThread:
    def __init__(self, nspid):
        self.process = _FakeProc(nspid)
        self.armed_fault = None


class _FakeCall:
    def __init__(self, name):
        self.name = name
        self.args = {}


@given(plan=plans,
       dispatches=st.lists(
           st.tuples(st.sampled_from([1, 2, 3]),
                     st.sampled_from(["read", "write", "open", "getpid"])),
           max_size=40))
def test_injector_trace_is_a_pure_function_of_the_dispatch_sequence(
        plan, dispatches):
    """Two injectors fed the identical dispatch sequence arm identically
    (signal rules excluded here: they need a live kernel to deliver)."""
    plan = FaultPlan(rules=tuple(r for r in plan.rules
                                 if r.fault != "signal"))

    def replay():
        injector = FaultInjector(plan)
        threads = {}
        indices = {}
        armed = []
        for nspid, name in dispatches:
            thread = threads.setdefault(nspid, _FakeThread(nspid))
            index = indices.get(nspid, 0)
            indices[nspid] = index + 1
            injector.on_dispatch(None, thread, _FakeCall(name), index)
            slot = thread.armed_fault
            armed.append(None if slot is None else
                         (slot.rule.fault, slot.pid, slot.index))
            thread.armed_fault = None
        return armed, injector.trace

    assert replay() == replay()
