"""Filesystem invariants under random operation sequences."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.machine import HostEnvironment
from repro.kernel.errors import SyscallError
from repro.kernel.filesystem import Filesystem

name_st = st.sampled_from(["a", "b", "c", "d", "e", "f"])
op_st = st.lists(
    st.one_of(
        st.tuples(st.just("write"), name_st, st.binary(max_size=32)),
        st.tuples(st.just("unlink"), name_st, st.just(b"")),
        st.tuples(st.just("mkdir"), name_st, st.just(b"")),
        st.tuples(st.just("rename"), name_st, st.sampled_from([b"a", b"b", b"x"])),
    ),
    max_size=40)


def apply_ops(fs, ops):
    for op, name, payload in ops:
        try:
            if op == "write":
                fs.write_file("/" + name, payload, now=1.0)
            elif op == "unlink":
                fs.unlink(fs.root, name, now=2.0)
            elif op == "mkdir":
                fs.create_dir(fs.root, name, now=3.0)
            elif op == "rename":
                fs.rename(fs.root, name, fs.root, payload.decode(), now=4.0)
        except SyscallError:
            pass  # invalid sequences are fine; invariants must still hold


@settings(max_examples=60)
@given(ops=op_st)
def test_snapshot_agrees_with_walk(ops):
    fs = Filesystem(HostEnvironment())
    apply_ops(fs, ops)
    snap = fs.snapshot()
    walked = {path for path, node in fs.walk() if node.is_regular}
    assert walked == set(snap)


@settings(max_examples=60)
@given(ops=op_st)
def test_live_inode_numbers_unique(ops):
    fs = Filesystem(HostEnvironment())
    apply_ops(fs, ops)
    inos = [node.ino for _, node in fs.walk()]
    assert len(inos) == len(set(inos))


@settings(max_examples=60)
@given(ops=op_st)
def test_dirent_order_is_permutation_of_entries(ops):
    fs = Filesystem(HostEnvironment(dirent_hash_salt=123))
    apply_ops(fs, ops)
    order = [d.d_name for d in fs.dirent_order(fs.root)]
    assert sorted(order) == sorted(fs.root.entries)


@settings(max_examples=40)
@given(ops=op_st)
def test_same_ops_same_tree(ops):
    a = Filesystem(HostEnvironment(entropy_seed=1))
    b = Filesystem(HostEnvironment(entropy_seed=1))
    apply_ops(a, ops)
    apply_ops(b, ops)
    assert a.snapshot(include_metadata=True) == b.snapshot(include_metadata=True)
