"""Property-based observer-effect and trace-identity tests (repro.obs).

For random guest programs, hosts, and fault plans:

* observability on/off yields identical output hashes, statuses and
  exit codes (the collector is passive — no clocks, no charges);
* two observed runs yield byte-identical Chrome trace JSON, even on
  different simulated machine boots.
"""
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ContainerConfig
from repro.faults.plan import FaultPlan, FaultRule
from repro.repro_tools.hashing import tree_digest
from tests.conftest import dettrace_run
from tests.properties.test_determinism_props import (
    action_st,
    host_st,
    program_for,
)

pytestmark = pytest.mark.obs

#: Small fault plans that perturb but do not kill the run: errno and
#: short-IO faults scoped to read/write with bounded windows.
fault_rule_st = st.builds(
    FaultRule,
    fault=st.sampled_from(["eio", "eintr", "eagain", "short_write"]),
    syscall=st.sampled_from([("write",), ("read",), ("read", "write")]),
    start=st.integers(min_value=0, max_value=4),
    stride=st.integers(min_value=1, max_value=3),
    count=st.integers(min_value=1, max_value=2),
    transient=st.just(True),
)
plan_st = st.none() | st.builds(
    lambda rs: FaultPlan(rules=tuple(rs)),
    st.lists(fault_rule_st, min_size=1, max_size=2))


def _run(actions, host, plan, observe):
    main, child = program_for(actions)
    cfg = ContainerConfig(observe=observe, fault_plan=plan)
    return dettrace_run(main, host=host, config=cfg,
                        extra_binaries={"/bin/kid": child})


@settings(max_examples=15, deadline=None)
@given(actions=action_st, host=host_st, plan=plan_st)
def test_observability_is_invisible_to_the_guest(actions, host, plan):
    off = _run(actions, host, plan, observe=False)
    on = _run(actions, host, plan, observe=True)
    assert off.status == on.status
    assert off.exit_code == on.exit_code
    assert off.stdout == on.stdout
    assert tree_digest(off.output_tree) == tree_digest(on.output_tree)
    # The deterministic aggregates agree too: same virtual schedule.
    if off.metrics is not None and on.metrics is not None:
        assert off.metrics.to_dict() == on.metrics.to_dict()


@settings(max_examples=15, deadline=None)
@given(actions=action_st, host_a=host_st, host_b=host_st, plan=plan_st)
def test_trace_json_byte_identical_across_runs(actions, host_a, host_b, plan):
    ra = _run(actions, host_a, plan, observe=True)
    rb = _run(actions, host_b, plan, observe=True)
    assert ra.trace is not None and rb.trace is not None
    assert ra.trace.to_json() == rb.trace.to_json()
