"""Logical clock properties."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.logical_time import LogicalClock

calls = st.lists(st.tuples(st.integers(min_value=1, max_value=5),
                           st.sampled_from(["time", "tod", "mono"])),
                 max_size=60)


@settings(max_examples=60)
@given(calls=calls)
def test_per_process_strict_monotonicity(calls):
    clock = LogicalClock()
    last = {}
    for pid, kind in calls:
        if kind == "time":
            value = clock.next_time(pid)
        elif kind == "tod":
            value = clock.next_timeofday(pid)
        else:
            value = clock.next_monotonic(pid) + clock.epoch
        if pid in last:
            assert value > last[pid] - 1e-9
        last[pid] = value


@settings(max_examples=60)
@given(calls=calls)
def test_processes_isolated(calls):
    clock_a = LogicalClock()
    clock_b = LogicalClock()
    # interleaving other pids' calls must not affect pid 1's sequence
    seq_a = []
    for pid, _ in calls:
        clock_a.next_time(pid)
    for _ in range(5):
        seq_a.append(clock_a.next_time(999))
    seq_b = [clock_b.next_time(999) for _ in range(5)]
    assert seq_a == seq_b


@settings(max_examples=30)
@given(pid=st.integers(min_value=1, max_value=1000),
       n=st.integers(min_value=1, max_value=50))
def test_rdtsc_exactly_linear(pid, n):
    from repro.core.logical_time import RDTSC_BASE, RDTSC_STEP

    clock = LogicalClock()
    values = [clock.next_rdtsc(pid) for _ in range(n)]
    assert values == [RDTSC_BASE + i * RDTSC_STEP for i in range(n)]
