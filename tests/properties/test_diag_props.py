"""Diagnosis-plane properties.

Two invariants:

* **self-alignment identity** — diffing a run against a rerun of itself
  reports zero divergences, across the whole internal-knob matrix
  (scheduler implementation × fs caches × observe) and config pairs
  that differ only in knobs the determinism contract says are
  invisible;
* **seeded-leak localization** — an injected host-RNG leak (the guest
  consumes getrandom and the two sides run different container PRNG
  seeds) is localized by bisection to exactly the tick window of the
  leaking write, for every snapshot granularity.
"""

import pytest

from repro.core.config import ContainerConfig
from repro.core.image import Image
from repro.cpu.machine import HostEnvironment
from repro.diag import RunSpec, bisect_divergence, diff_captures
from repro.diag.harness import leak_spec

pytestmark = pytest.mark.diag

SCHEDULERS = ("logical", "logical-ref")
FS_CACHES = (True, False)
OBSERVE = (True, False)


def _spec(scheduler, fs_caches, label, seed=0):
    return leak_spec(b"S" * 8, label,
                     config=ContainerConfig(scheduler=scheduler,
                                            fs_caches=fs_caches,
                                            prng_seed=seed))


class TestSelfAlignmentIdentity:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("fs_caches", FS_CACHES)
    def test_self_diff_reports_zero_divergences(self, scheduler,
                                                fs_caches):
        spec_a = _spec(scheduler, fs_caches, "a")
        spec_b = _spec(scheduler, fs_caches, "b")
        report = diff_captures(spec_a.capture(), spec_b.capture())
        assert not report.diverged, report.format()
        assert report.counter_deltas == {}

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_cache_knob_is_invisible(self, scheduler):
        """Configs differing only in fs_caches must still self-align:
        the caches are an internal optimization, not config surface."""
        report = diff_captures(_spec(scheduler, True, "cache").capture(),
                               _spec(scheduler, False, "nocache").capture())
        assert not report.diverged, report.format()

    def test_scheduler_knob_is_invisible(self):
        report = diff_captures(_spec("logical", True, "log").capture(),
                               _spec("logical-ref", True, "ref").capture())
        assert not report.diverged, report.format()

    @pytest.mark.parametrize("observe", OBSERVE)
    def test_observe_knob_invisible_on_shared_surface(self, observe):
        """observe=False produces no trace, so compare the remaining
        surface: a bare run equals an observed run everywhere else."""
        spec = _spec("logical", True, "x")
        bare = spec.run(observe=observe)
        observed = spec.run(observe=True)
        assert bare.stdout == observed.stdout
        assert bare.output_tree == observed.output_tree
        assert bare.exit_code == observed.exit_code


def _rng_leak_spec(seed, label):
    """A guest whose single nondeterministic input is getrandom: pre/post
    padding writes flank one randomness-dependent write."""

    def _main(sys_):
        yield from sys_.mkdir_p("out")
        for i in range(10):
            yield from sys_.write_file("out/pre%02d" % i, b"p" * 8)
        noise = yield from sys_.urandom(8)
        yield from sys_.write_file("out/rng.bin", noise)
        for i in range(10):
            yield from sys_.write_file("out/post%02d" % i, b"q" * 8)
        yield from sys_.println("done")
        return 0

    image = Image()
    image.add_binary("/bin/main", _main)
    return RunSpec(image_factory=lambda: image, command="/bin/main",
                   config=ContainerConfig(prng_seed=seed),
                   host=HostEnvironment(entropy_seed=7), label=label)


class TestSeededLeakLocalization:
    @pytest.fixture(scope="class")
    def leak_tick(self):
        """Ground truth: the tick of the rng-dependent write, read off a
        maximally fine bisection."""
        result = bisect_divergence(_rng_leak_spec(0, "a"),
                                   _rng_leak_spec(5, "b"), coarse=4)
        assert result.diverged and result.hi is not None
        assert result.hi - result.lo == 1
        return result.hi

    @pytest.mark.parametrize("coarse", (4, 8, 16))
    def test_bisection_localizes_to_leak_tick(self, coarse, leak_tick):
        result = bisect_divergence(_rng_leak_spec(0, "a"),
                                   _rng_leak_spec(5, "b"), coarse=coarse)
        assert result.diverged
        assert result.hi is not None
        assert result.hi - result.lo == 1
        assert result.hi == leak_tick
        # The window brackets the leak strictly inside the run: padding
        # writes exist on both flanks.
        assert result.lo > 0

    def test_same_seed_never_flagged(self):
        result = bisect_divergence(_rng_leak_spec(3, "a"),
                                   _rng_leak_spec(3, "b"), coarse=8)
        assert not result.diverged

    def test_leak_classified_as_fs_content(self):
        """Same-length random payloads: trace-invisible, state-visible."""
        report = diff_captures(_rng_leak_spec(0, "a").capture(),
                               _rng_leak_spec(5, "b").capture())
        assert report.diverged
        assert report.classification == "fs-content"
        assert report.first_path == "out/rng.bin"
