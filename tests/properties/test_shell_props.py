"""Property tests: randomly generated shell scripts are reproducible
under DetTrace (arbitrary-program coverage for the shell path)."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DetTrace, Image
from repro.cpu.machine import HostEnvironment
from repro.guest.coreutils import install_coreutils

#: Random script lines drawn from irreproducibility-heavy commands.
LINE_TEMPLATES = [
    "date >> log",
    "mktemp >> log",
    "echo word{i} >> log",
    "stat log | head -n 3 >> meta",
    "ls . >> listing",
    "touch file{i}",
    "sha256sum log >> sums",
    "X{i}=$(nproc); echo $X{i} >> log",
    "if [ -e log ]; then echo have >> log; fi",
    "for w in p q; do echo $w{i} >> loop; done",
    "uname -a >> log",
    "echo pid=$$ >> log",
]

script_st = st.lists(
    st.sampled_from(LINE_TEMPLATES), min_size=1, max_size=12)


def run_script(lines, seed):
    text = "touch log\n" + "\n".join(
        line.replace("{i}", str(i)) for i, line in enumerate(lines)) + "\n"
    image = Image()
    install_coreutils(image)
    image.on_setup(lambda k, bd: k.fs.write_file(
        bd + "/s.sh", text.encode(), now=k.host.boot_epoch))
    host = HostEnvironment(entropy_seed=seed,
                           boot_epoch=1.6e9 + seed * 313.77,
                           inode_start=1000 + seed * 37,
                           dirent_hash_salt=seed)
    return DetTrace().run(image, "/bin/sh", argv=["sh", "s.sh"], host=host)


@settings(max_examples=20, deadline=None)
@given(lines=script_st,
       seed_a=st.integers(min_value=0, max_value=50),
       seed_b=st.integers(min_value=51, max_value=100))
def test_random_scripts_reproducible(lines, seed_a, seed_b):
    a = run_script(lines, seed_a)
    b = run_script(lines, seed_b)
    assert a.exit_code == b.exit_code
    assert a.stdout == b.stdout
    assert a.output_tree == b.output_tree
