"""THE Table 1 invariant as a hypothesis property: for ARBITRARY package
specifications, a DetTrace double-build is never 'irreproducible' — it is
reproducible, or it fails with a reproducible unsupported/timeout error.
(The paper: 'Reassuringly, packages that are reproducible in the baseline
never become irreproducible under DetTrace' — and of the 12,130 supported
packages, every single one was rendered reproducible.)"""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.repro_tools import reprotest_dettrace
from repro.workloads.debian import PackageSpec

feature_flags = st.fixed_dictionaries({}, optional={
    name: st.booleans() for name in PackageSpec.FEATURE_FIELDS})

spec_st = st.builds(
    lambda idx, n_sources, jobs, probes, tests, threads, features: PackageSpec(
        name="prop%d" % idx,
        n_sources=n_sources,
        parallel_jobs=jobs,
        include_probes=probes,
        has_tests=tests,
        uses_threads=threads,
        loc_per_source=150,
        compute_per_kloc=2e-3,
        **features),
    idx=st.integers(min_value=0, max_value=10_000),
    n_sources=st.integers(min_value=1, max_value=6),
    jobs=st.integers(min_value=1, max_value=4),
    probes=st.integers(min_value=0, max_value=12),
    tests=st.booleans(),
    threads=st.booleans(),
    features=feature_flags,
)


@settings(max_examples=15, deadline=None)
@given(spec=spec_st, seed=st.integers(min_value=0, max_value=1000))
def test_dettrace_never_irreproducible(spec, seed):
    result = reprotest_dettrace(spec, seed=seed)
    assert result.verdict != "irreproducible", result.diff.summary() \
        if result.diff else result.verdict
    assert result.verdict in ("reproducible", "unsupported", "timeout",
                              "failed")
