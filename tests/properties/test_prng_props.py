"""Property-based tests for the container PRNG."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prng import Lfsr


@given(seed=st.integers(min_value=0, max_value=2**64 - 1),
       n=st.integers(min_value=0, max_value=512))
def test_bytes_length_exact(seed, n):
    assert len(Lfsr(seed).bytes(n)) == n


@given(seed=st.integers(min_value=0, max_value=2**64 - 1))
def test_determinism(seed):
    assert Lfsr(seed).bytes(64) == Lfsr(seed).bytes(64)


@given(seed=st.integers(min_value=0, max_value=2**64 - 1))
def test_stream_never_stuck(seed):
    gen = Lfsr(seed)
    window = [gen.next_u64() for _ in range(8)]
    assert len(set(window)) > 1


@given(seed=st.integers(min_value=0, max_value=2**64 - 1),
       n=st.integers(min_value=1, max_value=10_000))
def test_randrange_in_bounds(seed, n):
    assert 0 <= Lfsr(seed).randrange(n) < n


@settings(max_examples=30)
@given(a=st.integers(min_value=0, max_value=2**63),
       b=st.integers(min_value=0, max_value=2**63))
def test_distinct_seeds_distinct_streams(a, b):
    if a == b:
        return
    assert Lfsr(a).bytes(32) != Lfsr(b).bytes(32)
