"""Every metadata-mutating syscall stamps ``Inode.dirty_epoch``.

The incremental-checkpoint delta (repro.ckpt) serializes exactly the
inodes in ``Filesystem.dirty_nodes()``; a mutator that forgets
``Filesystem.note`` silently drops its change from every delta snapshot
— the restored run then diverges only when resumed across that window,
the nastiest kind of heisenbug.  This property drives random
metadata-mutating syscalls through the real syscall table *after* a
``clear_dirty()`` fence and asserts the touched inode is re-stamped
with the current mutation epoch, creation sites included (creations
must be dirty so the new ``(ino, generation)`` key exists in the
snapshot at all)."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.errors import SyscallError
from repro.kernel.types import O_CREAT, O_WRONLY
from tests.conftest import run_guest

#: (op name, needs pre-existing file).  Each op both mutates metadata
#: and must stamp the target inode.
_MUTATORS = st.sampled_from([
    "chmod", "chown", "utime", "truncate", "write",
    "create", "mkdir", "mkfifo",
])

name_st = st.sampled_from(["a", "b", "c", "d"])
ops_st = st.lists(st.tuples(_MUTATORS, name_st), min_size=1, max_size=20)


def _fresh_kernel():
    """A finished kernel with a live thread to issue syscalls from and a
    few seed files, dirty state fenced."""
    def prog(sys):
        yield from sys.write_file("a", b"seed")
        yield from sys.write_file("b", b"seed")
        return 0

    k, proc = run_guest(prog)
    assert proc.exit_status == 0
    k.fs.clear_dirty()
    assert not k.fs.dirty_nodes()
    return k, proc.main_thread


def _apply(table, thread, op, name):
    if op == "chmod":
        table.sys_chmod(thread, name, 0o640)
    elif op == "chown":
        table.sys_chown(thread, name, 7, 8)
    elif op == "utime":
        table.sys_utime(thread, name, times=(5.0, 6.0))
    elif op == "truncate":
        table.sys_truncate(thread, name, 2)
    elif op == "write":
        fd = table.sys_open(thread, name, O_WRONLY)
        try:
            table.sys_write(thread, fd, b"mut")
        finally:
            table.sys_close(thread, fd)
    elif op == "create":
        fd = table.sys_open(thread, name + ".new", O_WRONLY | O_CREAT, 0o666)
        table.sys_close(thread, fd)
        name = name + ".new"
    elif op == "mkdir":
        table.sys_mkdir(thread, name + ".dir")
        name = name + ".dir"
    elif op == "mkfifo":
        table.sys_mkfifo(thread, name + ".fifo")
        name = name + ".fifo"
    return name


@settings(max_examples=60, deadline=None)
@given(ops=ops_st)
def test_metadata_mutators_stamp_dirty_epoch(ops):
    kernel, thread = _fresh_kernel()
    table = kernel.table
    for op, name in ops:
        tick_before = kernel.fs._mclock.tick
        try:
            touched = _apply(table, thread, op, name)
        except SyscallError:
            continue  # e.g. truncate on a dir created earlier: fine
        node = kernel.fs.resolve(kernel.fs.root, thread.process.cwd, touched)
        assert node.dirty_epoch == tick_before, (op, touched)
        assert kernel.fs.key_of(node) in kernel.fs.dirty_nodes(), (op, touched)


@settings(max_examples=30, deadline=None)
@given(ops=ops_st)
def test_clear_dirty_fences_every_epoch(ops):
    """After a fence, only post-fence mutations are dirty — and they all
    are, regardless of how the pre-fence history interleaved."""
    kernel, thread = _fresh_kernel()
    table = kernel.table
    for op, name in ops:
        try:
            _apply(table, thread, op, name)
        except SyscallError:
            continue
    kernel.fs.clear_dirty()
    assert not kernel.fs.dirty_nodes()
    table.sys_chmod(thread, "a", 0o600)
    keys = set(kernel.fs.dirty_nodes())
    node = kernel.fs.resolve(kernel.fs.root, thread.process.cwd, "a")
    assert keys == {kernel.fs.key_of(node)}
