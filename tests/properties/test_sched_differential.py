"""Differential testing of the hot-path engine (scheduler + fs caches).

The O(log n) ``logical`` scheduler and the sort-and-scan
``logical-ref`` oracle implement the same Kendo-style policy; for
arbitrary guest programs they must produce *identical* runs — same
output trees, same stdout, same virtual wall time, and the same
structured trace (which embeds the full service order).  Likewise the
namei/dirent caches are pure memoization: ``fs_caches`` on vs off must
be invisible to everything but host wall time.
"""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ContainerConfig
from repro.cpu.machine import HostEnvironment
from tests.conftest import dettrace_run
from tests.properties.test_determinism_props import ACTIONS, program_for

action_st = st.lists(st.sampled_from(ACTIONS), min_size=1, max_size=24)
seed_st = st.integers(min_value=0, max_value=2**16)


def _run(actions, seed, **cfg_kwargs):
    main, child = program_for(actions)
    cfg = ContainerConfig(observe=True, **cfg_kwargs)
    return dettrace_run(main, host=HostEnvironment(entropy_seed=seed),
                        config=cfg, extra_binaries={"/bin/kid": child})


def _assert_identical_runs(ra, rb):
    assert ra.exit_code == rb.exit_code
    assert ra.stdout == rb.stdout
    assert ra.output_tree == rb.output_tree
    assert ra.wall_time == rb.wall_time
    # The chrome trace embeds every serviced syscall with its virtual
    # timestamp and pid: identical JSON means identical schedules.
    assert ra.trace.to_chrome() == rb.trace.to_chrome()
    assert ra.metrics.counters == rb.metrics.counters
    assert ra.metrics.totals == rb.metrics.totals


@settings(max_examples=25, deadline=None)
@given(actions=action_st, seed=seed_st)
def test_logical_equals_logical_ref(actions, seed):
    ra = _run(actions, seed, scheduler="logical")
    rb = _run(actions, seed, scheduler="logical-ref")
    _assert_identical_runs(ra, rb)


@settings(max_examples=25, deadline=None)
@given(actions=action_st, seed=seed_st)
def test_fs_caches_invisible(actions, seed):
    ra = _run(actions, seed, fs_caches=True)
    rb = _run(actions, seed, fs_caches=False)
    _assert_identical_runs(ra, rb)


@settings(max_examples=10, deadline=None)
@given(actions=action_st, seed=seed_st)
def test_all_hotpath_knobs_together(actions, seed):
    """Fast scheduler + caches vs reference scheduler + no caches."""
    ra = _run(actions, seed, scheduler="logical", fs_caches=True)
    rb = _run(actions, seed, scheduler="logical-ref", fs_caches=False)
    _assert_identical_runs(ra, rb)


@settings(max_examples=10, deadline=None)
@given(actions=action_st, seed=seed_st)
def test_observation_off_same_totals(actions, seed):
    """The allocation-light obs-off fast path must count exactly what
    the obs-on path counts: metrics are derived from the same dispatch
    stream, only the event objects are elided."""
    ra = _run(actions, seed)                      # observe=True via _run
    main, child = program_for(actions)
    rb = dettrace_run(main, host=HostEnvironment(entropy_seed=seed),
                      config=ContainerConfig(observe=False),
                      extra_binaries={"/bin/kid": child})
    assert ra.output_tree == rb.output_tree
    assert ra.stdout == rb.stdout
    assert ra.wall_time == rb.wall_time
    assert ra.metrics.counters == rb.metrics.counters
    assert ra.metrics.totals == rb.metrics.totals
    assert ra.metrics.syscalls_by_name == rb.metrics.syscalls_by_name
    assert rb.trace is None and ra.trace is not None
