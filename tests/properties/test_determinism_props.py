"""THE paper's property, tested with randomly generated guest programs:
for arbitrary syscall mixes, the DetTrace output tree is identical across
arbitrary host environments (SS3)."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ContainerConfig
from repro.cpu.machine import BROADWELL_XEON, SKYLAKE_CLOUDLAB, HostEnvironment
from tests.conftest import dettrace_run

#: A random guest program is a sequence of these actions.
ACTIONS = [
    "time", "timeofday", "urandom", "getrandom", "rdtsc", "pid", "uname",
    "write_file", "stat_file", "listdir", "mkdir", "unlink", "spawn_child",
    "cpuid", "compute", "aslr",
]

action_st = st.lists(st.sampled_from(ACTIONS), min_size=1, max_size=24)
host_st = st.builds(
    HostEnvironment,
    machine=st.sampled_from([SKYLAKE_CLOUDLAB, BROADWELL_XEON]),
    entropy_seed=st.integers(min_value=0, max_value=2**32),
    boot_epoch=st.floats(min_value=1e9, max_value=2e9, allow_nan=False),
    pid_start=st.integers(min_value=2, max_value=60_000),
    inode_start=st.integers(min_value=2, max_value=10**6),
    dirent_hash_salt=st.integers(min_value=0, max_value=1000),
)


def program_for(actions):
    def child(sys):
        pid = yield from sys.getpid()
        yield from sys.println("child %d" % pid)
        return 0

    def main(sys):
        log = []
        counter = [0]
        for action in actions:
            counter[0] += 1
            i = counter[0]
            if action == "time":
                log.append(str((yield from sys.time())))
            elif action == "timeofday":
                log.append("%.3f" % (yield from sys.gettimeofday()))
            elif action == "urandom":
                log.append((yield from sys.urandom(4)).hex())
            elif action == "getrandom":
                log.append((yield from sys.getrandom(4)).hex())
            elif action == "rdtsc":
                log.append(str((yield from sys.rdtsc())))
            elif action == "pid":
                log.append(str((yield from sys.getpid())))
            elif action == "uname":
                log.append((yield from sys.uname()).nodename)
            elif action == "write_file":
                yield from sys.write_file("f%d" % i, b"data%d" % i)
                log.append("w%d" % i)
            elif action == "stat_file":
                yield from sys.write_file("s%d" % i, b"")
                stat = yield from sys.stat("s%d" % i)
                log.append("%d/%.0f" % (stat.st_ino, stat.st_mtime))
            elif action == "listdir":
                names = yield from sys.listdir(".")
                log.append(",".join(names))
            elif action == "mkdir":
                yield from sys.mkdir_p("d%d" % i)
                log.append("m")
            elif action == "unlink":
                yield from sys.write_file("u%d" % i, b"")
                yield from sys.unlink("u%d" % i)
                log.append("u")
            elif action == "spawn_child":
                res = yield from sys.run("/bin/kid")
                log.append("c%s" % res.exit_code)
            elif action == "cpuid":
                log.append((yield from sys.instr("cpuid")).brand)
            elif action == "compute":
                yield from sys.compute(1e-4)
                log.append("k")
            elif action == "aslr":
                log.append(hex(sys.address_of_main))
        yield from sys.write_file("log", "\n".join(log))
        return 0

    return main, child


@settings(max_examples=25, deadline=None)
@given(actions=action_st, host_a=host_st, host_b=host_st)
def test_dettrace_output_pure_function_of_image(actions, host_a, host_b):
    main, child = program_for(actions)
    ra = dettrace_run(main, host=host_a, extra_binaries={"/bin/kid": child})
    rb = dettrace_run(main, host=host_b, extra_binaries={"/bin/kid": child})
    assert ra.exit_code == 0 and rb.exit_code == 0
    assert ra.output_tree == rb.output_tree
    assert ra.stdout == rb.stdout


@settings(max_examples=10, deadline=None)
@given(actions=action_st,
       seed_a=st.integers(min_value=0, max_value=100),
       seed_b=st.integers(min_value=101, max_value=200))
def test_strict_scheduler_also_pure(actions, seed_a, seed_b):
    main, child = program_for(actions)
    cfg = ContainerConfig(scheduler="strict")
    ra = dettrace_run(main, host=HostEnvironment(entropy_seed=seed_a),
                      config=cfg, extra_binaries={"/bin/kid": child})
    rb = dettrace_run(main, host=HostEnvironment(entropy_seed=seed_b),
                      config=cfg, extra_binaries={"/bin/kid": child})
    assert ra.output_tree == rb.output_tree
