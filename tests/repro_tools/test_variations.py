from repro.repro_tools import first_build_host, host_pair, same_host_pair, second_build_host


class TestVariations:
    def test_reprotest_varies_the_paper_knobs(self):
        a, b = host_pair()
        assert a.env["TZ"] != b.env["TZ"]            # timezone
        assert a.env["LANG"] != b.env["LANG"]        # locale
        assert a.env["PATH"] != b.env["PATH"]        # exec path
        assert a.env["HOME"] != b.env["HOME"]        # home
        assert a.env["USER"] != b.env["USER"]        # user/group
        assert a.build_path != b.build_path          # build path
        assert a.boot_epoch != b.boot_epoch          # time
        assert a.ncores != b.ncores                  # num cpus
        assert a.entropy_seed != b.entropy_seed      # ASLR/randomness

    def test_machine_held_constant(self):
        a, b = host_pair()
        assert a.machine is b.machine  # domain/host/kernel variations off

    def test_pair_is_deterministic(self):
        a1, _ = host_pair(seed=3)
        a2, _ = host_pair(seed=3)
        assert a1.entropy_bytes(8) == a2.entropy_bytes(8)

    def test_same_host_pair_only_varies_boot(self):
        a, b = same_host_pair()
        assert a.env == b.env
        assert a.build_path == b.build_path
        assert a.boot_epoch != b.boot_epoch
        assert a.entropy_seed != b.entropy_seed
