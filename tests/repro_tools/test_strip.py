from repro.repro_tools import strip_deb, strip_tar, strip_tree, compare
from repro.workloads.debian.archive import TarEntry, deb_pack, tar_pack, tar_unpack


def tar_with_mtimes(m1, m2):
    return tar_pack([TarEntry("a", 0o644, 0, 0, m1, b"A"),
                     TarEntry("b", 0o755, 0, 0, m2, b"B")])


class TestStripNondeterminism:
    def test_clamps_mtimes(self):
        stripped = strip_tar(tar_with_mtimes(100.0, 200.0))
        assert all(e.mtime == 0.0 for e in tar_unpack(stripped))

    def test_preserves_content_and_modes(self):
        stripped = tar_unpack(strip_tar(tar_with_mtimes(1, 2)))
        assert [e.content for e in stripped] == [b"A", b"B"]
        assert [e.mode for e in stripped] == [0o644, 0o755]

    def test_makes_timestamp_only_diff_reproducible(self):
        """The SS6.1 baseline workaround: without it 0% reproducible."""
        a = deb_pack("p", "1", {}, tar_with_mtimes(10, 20))
        b = deb_pack("p", "1", {}, tar_with_mtimes(30, 40))
        assert a != b
        assert strip_deb(a) == strip_deb(b)

    def test_does_not_hide_content_differences(self):
        a = deb_pack("p", "1", {}, tar_pack([TarEntry("f", 0o644, 0, 0, 1, b"X")]))
        b = deb_pack("p", "1", {}, tar_pack([TarEntry("f", 0o644, 0, 0, 2, b"Y")]))
        report = compare({"p.deb": strip_deb(a)}, {"p.deb": strip_deb(b)})
        assert not report.identical

    def test_strip_tree_passes_plain_files(self):
        tree = {"plain.txt": b"data"}
        assert strip_tree(tree) == tree
