from repro.repro_tools import compare
from repro.workloads.debian.archive import TarEntry, deb_pack, tar_pack


def deb_with(mtime=0.0, content=b"x", name="pkg", fields=None):
    tar = tar_pack([TarEntry("f", 0o644, 0, 0, mtime, content)])
    return deb_pack(name, "1.0", fields or {}, tar)


class TestCompare:
    def test_identical_trees(self):
        tree = {"a.deb": deb_with()}
        report = compare(tree, dict(tree))
        assert report.identical
        assert "identical" in report.summary()

    def test_missing_file_reported(self):
        report = compare({"a": b"1"}, {})
        assert not report.identical
        assert "only in first tree" in report.summary()

    def test_explains_mtime_difference_inside_deb(self):
        report = compare({"p.deb": deb_with(mtime=1.0)},
                         {"p.deb": deb_with(mtime=2.0)})
        assert not report.identical
        detail = report.summary()
        assert "mtime" in detail
        assert "data.tar/f" in detail

    def test_explains_content_difference_with_context(self):
        report = compare({"p.deb": deb_with(content=b"hello world")},
                         {"p.deb": deb_with(content=b"hello earth")})
        assert "content at byte" in report.summary()

    def test_explains_control_field_difference(self):
        a = deb_with(fields={"Build-Date": "1"})
        b = deb_with(fields={"Build-Date": "2"})
        report = compare({"p.deb": a}, {"p.deb": b})
        assert "Build-Date" in report.summary()

    def test_member_order_difference(self):
        e1 = [TarEntry("a", 0o644, 0, 0, 0, b""), TarEntry("b", 0o644, 0, 0, 0, b"")]
        t1, t2 = tar_pack(e1), tar_pack(list(reversed(e1)))
        report = compare({"x.tar": t1}, {"x.tar": t2})
        assert "order" in report.summary()

    def test_plain_file_difference(self):
        report = compare({"f": b"aaa"}, {"f": b"aab"})
        assert "byte 2" in report.summary()

    def test_summary_truncates(self):
        a = {"f%d" % i: b"x" for i in range(30)}
        report = compare(a, {})
        assert "more" in report.summary(limit=5)
