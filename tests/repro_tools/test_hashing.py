from repro.repro_tools import hashdeep, sha256, tree_digest


class TestHashing:
    def test_sha256_stable(self):
        assert sha256(b"x") == sha256(b"x")

    def test_hashdeep_per_file(self):
        tree = {"a": b"1", "b": b"2"}
        digests = hashdeep(tree)
        assert set(digests) == {"a", "b"}
        assert digests["a"] != digests["b"]

    def test_tree_digest_sensitive_to_paths_and_content(self):
        base = {"a": b"1"}
        assert tree_digest(base) == tree_digest({"a": b"1"})
        assert tree_digest(base) != tree_digest({"b": b"1"})
        assert tree_digest(base) != tree_digest({"a": b"2"})

    def test_tree_digest_order_independent(self):
        assert tree_digest({"a": b"1", "b": b"2"}) == tree_digest(
            {"b": b"2", "a": b"1"})
