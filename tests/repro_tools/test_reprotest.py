"""reprotest verdicts for targeted feature sets."""
import pytest

from repro.repro_tools import (
    IRREPRODUCIBLE,
    REPRODUCIBLE,
    TIMEOUT,
    UNSUPPORTED,
    reprotest_dettrace,
    reprotest_native,
)
from repro.workloads.debian import PackageSpec


class TestNativeVerdicts:
    def test_clean_package_reproducible(self):
        spec = PackageSpec(name="clean", n_sources=2)
        result = reprotest_native(spec)
        assert result.verdict == REPRODUCIBLE
        assert result.reproducible

    def test_without_tar_workaround_nothing_is_reproducible(self):
        """SS6.1: in a stock system ZERO packages compare equal, because
        tar embeds mtimes."""
        spec = PackageSpec(name="clean", n_sources=2)
        result = reprotest_native(spec, apply_tar_workaround=False)
        assert result.verdict == IRREPRODUCIBLE

    def test_tainted_package_irreproducible(self):
        spec = PackageSpec(name="bad", embeds_timestamp=True)
        result = reprotest_native(spec)
        assert result.verdict == IRREPRODUCIBLE
        assert result.diff is not None
        assert not result.diff.identical


class TestDetTraceVerdicts:
    def test_tainted_package_rendered_reproducible(self):
        spec = PackageSpec(name="bad", embeds_timestamp=True,
                           embeds_build_path=True, embeds_random_symbols=True)
        assert reprotest_dettrace(spec).verdict == REPRODUCIBLE

    def test_no_tar_workaround_needed(self):
        """DetTrace builds are compared raw: virtual mtimes are already
        deterministic."""
        spec = PackageSpec(name="clean", n_sources=2)
        assert reprotest_dettrace(spec).verdict == REPRODUCIBLE

    def test_busy_wait_verdict(self):
        spec = PackageSpec(name="j", language="java", busy_waits=True)
        assert reprotest_dettrace(spec).verdict == UNSUPPORTED

    def test_storm_verdict(self):
        spec = PackageSpec(name="slow", syscall_storm=80_000)
        assert reprotest_dettrace(spec).verdict == TIMEOUT
