from repro.rnr.trace import Recording, TraceEvent


class TestRecording:
    def test_streams_keyed_by_spawn_path(self):
        rec = Recording()
        rec.append((0,), TraceEvent("open", "value", 3))
        rec.append((0, 0), TraceEvent("read", "value", b"data"))
        rec.append((0,), TraceEvent("close", "value", 0))
        assert rec.event_count == 3
        assert [e.syscall for e in rec.streams[(0,)]] == ["open", "close"]

    def test_storage_size_grows_with_payload(self):
        small = TraceEvent("read", "value", b"x")
        big = TraceEvent("read", "value", b"x" * 10_000)
        assert big.storage_size() > small.storage_size() > 0

    def test_recording_storage_total(self):
        rec = Recording()
        rec.append((0,), TraceEvent("read", "value", b"abc"))
        rec.append((0,), TraceEvent("read", "value", b"defg"))
        assert rec.storage_size() == sum(
            e.storage_size() for e in rec.streams[(0,)])
