"""rr-analog record/replay (SS7.1.3)."""
import pytest

from repro.core import Image
from repro.cpu.machine import HostEnvironment
from repro.rnr import ReplayDivergence, record, replay


def image_for(main, **binaries):
    img = Image()
    img.add_binary("/bin/main", main)
    for path, factory in binaries.items():
        img.add_binary(path, factory)
    return img


def nondet_program(sys):
    t = yield from sys.time_syscall()
    r = yield from sys.getrandom(8)
    yield from sys.write_file("out", "%d %s" % (t, r.hex()))
    yield from sys.println("t=%d" % t)
    return 0


class TestRecord:
    def test_recording_captures_results(self):
        img = image_for(nondet_program)
        res = record(img, "/bin/main", host=HostEnvironment(entropy_seed=3))
        assert res.status == "ok"
        assert res.exit_code == 0
        events = {e.syscall for e in res.recording.streams[(0,)]}
        assert "time" in events
        assert "getrandom" in events

    def test_recordings_of_two_runs_differ(self):
        """rr replays ONE execution; it does not make runs agree."""
        img = image_for(nondet_program)
        r1 = record(img, "/bin/main", host=HostEnvironment(entropy_seed=1))
        r2 = record(img, "/bin/main", host=HostEnvironment(entropy_seed=2,
                                                           boot_epoch=2e9))
        assert r1.output_tree != r2.output_tree

    def test_recording_has_storage_cost(self):
        img = image_for(nondet_program)
        res = record(img, "/bin/main")
        assert res.recording.storage_size() > 0

    def test_exotic_ioctl_crashes_recorder(self):
        def main(sys):
            from repro.kernel.errors import SyscallError
            try:
                yield from sys.ioctl(1, "TCGETS2")
            except SyscallError:
                pass
            return 0

        res = record(image_for(main), "/bin/main")
        assert res.status == "crash"
        assert "ioctl" in res.error


class TestReplay:
    def test_replay_reproduces_recorded_values(self):
        img = image_for(nondet_program)
        rec = record(img, "/bin/main", host=HostEnvironment(entropy_seed=5))
        # Replay on a completely different host: injected results win.
        assert replay(img, "/bin/main", rec.recording,
                      host=HostEnvironment(entropy_seed=77, boot_epoch=9e8))

    def test_replay_with_children(self):
        def child(sys):
            t = yield from sys.time_syscall()
            yield from sys.println("child %d" % t)
            return t % 7

        def main(sys):
            total = 0
            for _ in range(3):
                res = yield from sys.run("/bin/child")
                total += res.exit_code
            yield from sys.write_file("total", str(total))
            return 0

        img = image_for(main, **{"/bin/child": child})
        rec = record(img, "/bin/main", host=HostEnvironment(entropy_seed=1))
        assert rec.status == "ok"
        assert replay(img, "/bin/main", rec.recording,
                      host=HostEnvironment(entropy_seed=50))

    def test_divergent_program_detected(self):
        img1 = image_for(nondet_program)
        rec = record(img1, "/bin/main")

        def different(sys):
            yield from sys.getrandom(8)   # skips the time syscall
            yield from sys.write_file("out", "x")
            return 0

        img2 = image_for(different)
        with pytest.raises(ReplayDivergence):
            replay(img2, "/bin/main", rec.recording)
