"""End-to-end diagnosis against the known-ground-truth leak harness:
trace localization, checkpoint bisection, fingerprint identity, and the
obs invariant (diagnosis never perturbs the run)."""

import pytest

from repro.ckpt import FULL_SCOPE, GUEST_SCOPE, RecoveryManager
from repro.core.config import CheckpointConfig
from repro.diag import (
    bisect_divergence,
    content_leak_pair,
    diff_captures,
    identical_pair,
    leaky_pair,
)
from repro.diag.harness import PADDING_WRITES, leak_spec

pytestmark = pytest.mark.diag


class TestLeakLocalization:
    def test_identical_pair_is_clean(self):
        spec_a, spec_b = identical_pair()
        report = diff_captures(spec_a.capture(), spec_b.capture())
        assert not report.diverged

    def test_length_leak_diverges_in_trace(self):
        spec_a, spec_b = leaky_pair()
        report = diff_captures(spec_a.capture(), spec_b.capture())
        assert report.classification == "schedule"
        # The coordinate is deterministic virtual time from the trace.
        assert report.vts is not None and report.vts > 0
        assert report.position is not None
        # One extra chunk write on side b: three more records
        # (open/write/close) and the syscall counters shifted by one.
        deltas = report.counter_deltas
        assert deltas["counter/syscall/write/rewritten"][1] == \
            deltas["counter/syscall/write/rewritten"][0] + 1
        assert deltas["total/events_processed"][1] > \
            deltas["total/events_processed"][0]
        # Context windows captured the agreeing prefix on both sides.
        assert report.context["a"] == report.context["b"]
        assert len(report.context["a"]) > 0

    def test_content_leak_is_trace_invisible_but_fs_visible(self):
        spec_a, spec_b = content_leak_pair()
        report = diff_captures(spec_a.capture(), spec_b.capture())
        assert report.classification == "fs-content"
        assert report.first_path == "out/leak00.bin"

    def test_report_vts_matches_trace_timeline(self):
        spec_a, spec_b = leaky_pair()
        cap_a = spec_a.capture()
        report = diff_captures(cap_a, spec_b.capture())
        trace_ts = [rec["ts"] / 1e6 for rec in cap_a.records]
        assert min(trace_ts) <= report.vts <= max(trace_ts)


class TestBisection:
    def test_content_leak_bisects_to_single_tick(self):
        spec_a, spec_b = content_leak_pair()
        result = bisect_divergence(spec_a, spec_b, coarse=16)
        assert result.diverged
        assert result.hi is not None
        assert result.hi - result.lo == 1
        assert result.lo_vclock < result.hi_vclock
        # The leak write happens after the mkdir + padding writes.
        assert result.lo > PADDING_WRITES
        assert result.report.bisect["lo"] == result.lo
        assert result.report.bisect["hi"] == result.hi

    def test_identical_pair_never_diverges(self):
        spec_a, spec_b = identical_pair()
        result = bisect_divergence(spec_a, spec_b, coarse=16)
        assert not result.diverged
        assert result.hi is None
        assert not result.report.diverged
        assert "no divergence" in result.summary()

    def test_probe_budget_bounds_narrowing(self):
        spec_a, spec_b = content_leak_pair()
        result = bisect_divergence(spec_a, spec_b, coarse=16,
                                   max_probes=1)
        assert result.diverged
        assert result.probes <= 1
        # Window still brackets the truth, just wider.
        assert result.lo < result.hi

    def test_bisection_is_deterministic(self):
        first = bisect_divergence(*content_leak_pair(), coarse=16)
        second = bisect_divergence(*content_leak_pair(), coarse=16)
        assert first.window() == second.window()
        assert first.report.to_dict() == second.report.to_dict()


class TestFingerprints:
    def _fingerprints(self, spec, directory, scope=GUEST_SCOPE, every=16):
        spec.run(checkpoint=CheckpointConfig(directory=directory,
                                             every=every, keep=0))
        return {snap.barrier: snap.fingerprint(scope=scope)
                for snap in RecoveryManager(directory).snapshots()}

    def test_identical_runs_fingerprint_equal_at_every_barrier(self,
                                                               tmp_path):
        spec = leak_spec(b"Z" * 8, "fp")
        fps_a = self._fingerprints(spec, str(tmp_path / "a"))
        fps_b = self._fingerprints(spec, str(tmp_path / "b"))
        assert fps_a and fps_a == fps_b

    def test_full_scope_differs_from_guest_scope(self, tmp_path):
        spec = leak_spec(b"Z" * 8, "fp")
        guest = self._fingerprints(spec, str(tmp_path / "g"),
                                   scope=GUEST_SCOPE)
        full = self._fingerprints(spec, str(tmp_path / "f"),
                                  scope=FULL_SCOPE)
        assert set(guest) == set(full)
        assert all(guest[k] != full[k] for k in guest)


class TestObsInvariant:
    def test_diagnosis_never_perturbs_the_run(self, tmp_path):
        """A diagnosed run (observe + checkpointing for bisection) stays
        byte-identical to a bare run on the guest-visible surface."""
        bare = leak_spec(b"Y" * 8, "bare").run()
        observed = leak_spec(b"Y" * 8, "obs").run(observe=True)
        ckpt = leak_spec(b"Y" * 8, "ckpt").run(
            observe=True,
            checkpoint=CheckpointConfig(directory=str(tmp_path / "j"),
                                        every=16, keep=0))
        for result in (observed, ckpt):
            assert result.stdout == bare.stdout
            assert result.stderr == bare.stderr
            assert result.exit_code == bare.exit_code
            assert result.output_tree == bare.output_tree
