"""Metric exporters: determinism, format validity, and the shared
sample iterator keeping both formats in agreement."""

import json

import pytest

from repro.diag import metrics_jsonl, prometheus_text, render_metrics
from repro.diag.harness import leak_spec
from repro.obs.metrics import Metrics

pytestmark = pytest.mark.diag


@pytest.fixture(scope="module")
def run_metrics():
    result = leak_spec(b"E" * 8, "export").run(observe=True)
    assert result.metrics is not None
    return result.metrics


class TestPrometheusText:
    def test_deterministic_across_identical_runs(self, run_metrics):
        again = leak_spec(b"E" * 8, "export").run(observe=True).metrics
        assert prometheus_text(run_metrics) == prometheus_text(again)

    def test_format_shape(self, run_metrics):
        text = prometheus_text(run_metrics)
        lines = text.splitlines()
        assert text.endswith("\n")
        assert any(line.startswith("# TYPE repro_counter ")
                   for line in lines)
        # Every non-comment line is `name{labels} value` or `name value`.
        for line in lines:
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name.startswith("repro_")
            float(value)  # parses as a number

    def test_samples_sorted(self, run_metrics):
        lines = [line for line in
                 prometheus_text(run_metrics).splitlines()
                 if line.startswith("repro_counter{")]
        assert lines == sorted(lines)

    def test_label_escaping(self):
        metrics = Metrics(counters={'weird"name\\with\nstuff': 3})
        text = prometheus_text(metrics)
        assert '\\"' in text and "\\\\" in text and "\\n" in text


class TestJsonl:
    def test_every_line_parses(self, run_metrics):
        for line in metrics_jsonl(run_metrics).splitlines():
            record = json.loads(line)
            assert set(record) == {"metric", "labels", "value"}

    def test_same_samples_as_prometheus(self, run_metrics):
        jsonl_count = len(metrics_jsonl(run_metrics).splitlines())
        prom_data_lines = [line for line in
                           prometheus_text(run_metrics).splitlines()
                           if not line.startswith("#")]
        assert jsonl_count == len(prom_data_lines)

    def test_deterministic(self, run_metrics):
        again = leak_spec(b"E" * 8, "export").run(observe=True).metrics
        assert metrics_jsonl(run_metrics) == metrics_jsonl(again)


class TestRenderDispatch:
    def test_known_formats(self, run_metrics):
        assert render_metrics(run_metrics, "prom") == \
            prometheus_text(run_metrics)
        assert render_metrics(run_metrics, "jsonl") == \
            metrics_jsonl(run_metrics)

    def test_unknown_format_raises(self, run_metrics):
        with pytest.raises(ValueError, match="unknown metrics export"):
            render_metrics(run_metrics, "xml")
