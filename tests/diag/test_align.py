"""Trace alignment and capture diffing against synthetic records: the
classification rules, precedence order, and context windows."""

import pytest

from repro.diag import (
    CONTEXT_WINDOW,
    DivergenceReport,
    align_records,
    diff_captures,
    diff_trees,
    record_key,
)
from repro.diag.align import RunCapture

pytestmark = pytest.mark.diag


def span(ts, name="write", pid=1, tid=0, index=0, dur=13.0, cat="rewritten",
         attempt=1):
    return {"ph": "X", "name": name, "cat": cat, "pid": pid, "tid": tid,
            "ts": ts, "dur": dur, "args": {"index": index,
                                           "attempt": attempt}}


def stream(n, start_index=0):
    return [span(15.0 * (i + 1), index=start_index + i) for i in range(n)]


class TestAlignRecords:
    def test_identical_streams_report_none(self):
        assert align_records(stream(10), stream(10)) is None

    def test_empty_streams_report_none(self):
        assert align_records([], []) is None

    def test_same_key_different_payload_is_syscall_result(self):
        a, b = stream(5), stream(5)
        b[2] = dict(b[2], dur=99.0)
        report = align_records(a, b)
        assert report.classification == "syscall-result"
        assert report.position == 2
        assert report.vts == pytest.approx(a[2]["ts"] / 1e6)
        assert report.divergent["a"]["dur"] == 13.0
        assert report.divergent["b"]["dur"] == 99.0

    def test_different_key_is_schedule(self):
        a, b = stream(5), stream(5)
        b[3] = dict(b[3], name="open")
        report = align_records(a, b)
        assert report.classification == "schedule"
        assert report.position == 3

    def test_truncated_tail_is_schedule(self):
        a = stream(8)
        report = align_records(a, a[:5], labels=("long", "short"))
        assert report.classification == "schedule"
        assert report.position == 5
        assert report.divergent["a"] == a[5]
        assert report.divergent["b"] is None
        assert "long" in report.summary

    def test_context_window_is_bounded_and_pre_divergence(self):
        a, b = stream(40), stream(40)
        b[30] = dict(b[30], dur=1.0)
        report = align_records(a, b, context=4)
        assert len(report.context["a"]) == 4
        assert report.context["a"] == a[26:30]
        # Default window matches the shared EventRing default.
        wide = align_records(a, b)
        assert len(wide.context["a"]) == CONTEXT_WINDOW

    def test_record_key_ignores_payload_fields(self):
        rec = span(15.0)
        assert record_key(rec) == record_key(dict(rec, dur=1e9,
                                                  cat="other"))
        assert record_key(rec) != record_key(dict(rec, name="open"))


def capture(label="x", status="ok", exit_code=0, stdout="out",
            stderr="", tree_files=None, tree="digest", counters=None,
            totals=None, records=None):
    return RunCapture(
        label=label, status=status, exit_code=exit_code, stdout=stdout,
        stderr=stderr, tree_files=dict(tree_files or {"a.txt": "h1"}),
        tree_digest=tree, counters=dict(counters or {"c": 1}),
        totals=dict(totals or {"syscalls": 5}),
        records=list(stream(3) if records is None else records))


class TestDiffCaptures:
    def test_identical_captures_report_none(self):
        report = diff_captures(capture("a"), capture("b"))
        assert not report.diverged
        assert report.classification == "none"
        assert "no divergence" in report.format()

    def test_trace_divergence_wins_over_everything(self):
        divergent = stream(3)
        divergent[1] = dict(divergent[1], name="open")
        report = diff_captures(
            capture("a"),
            capture("b", exit_code=1, stdout="other",
                    tree_files={"a.txt": "h2"}, records=divergent))
        assert report.classification == "schedule"

    def test_exit_status_beats_fs_and_streams(self):
        report = diff_captures(
            capture("a"),
            capture("b", exit_code=1, stdout="other",
                    tree_files={"a.txt": "h2"}))
        assert report.classification == "exit-status"

    def test_fs_content_beats_streams(self):
        report = diff_captures(
            capture("a"),
            capture("b", stdout="other", tree_files={"a.txt": "h2"}))
        assert report.classification == "fs-content"
        assert report.first_path == "a.txt"

    def test_stream_content_beats_counters(self):
        report = diff_captures(
            capture("a"),
            capture("b", stdout="outX", counters={"c": 2}))
        assert report.classification == "stream-content"
        assert "offset 3" in report.summary

    def test_counters_only(self):
        report = diff_captures(
            capture("a"), capture("b", counters={"c": 2},
                                  totals={"syscalls": 6}))
        assert report.classification == "counters"
        assert report.counter_deltas == {"counter/c": [1, 2],
                                         "total/syscalls": [5, 6]}

    def test_surface_always_attached(self):
        report = diff_captures(capture("a"), capture("b"))
        assert report.surface["a"]["status"] == "ok"
        assert report.surface["b"]["tree_digest"] == "digest"


class TestDiffTrees:
    def test_identical_trees(self):
        tree = {"bin/x": b"same", "doc": b"text"}
        report = diff_trees(tree, dict(tree))
        assert not report.diverged

    def test_content_difference_names_first_path(self):
        report = diff_trees({"a": b"1", "b": b"2"},
                            {"a": b"1", "b": b"3"},
                            labels=("first-build", "second-build"))
        assert report.classification == "fs-content"
        assert report.first_path == "b"
        assert report.labels == ("first-build", "second-build")

    def test_missing_file_reported(self):
        report = diff_trees({"a": b"1", "extra": b"2"}, {"a": b"1"})
        assert report.first_path == "extra"
        assert "only in" in report.summary


class TestReportRoundtrip:
    def test_json_roundtrip_preserves_fields(self, tmp_path):
        a, b = stream(5), stream(5)
        b[2] = dict(b[2], dur=99.0)
        report = align_records(a, b)
        report.bisect = {"lo": 3, "hi": 4, "probes": 2, "scope": "guest",
                         "lo_vclock": 0.1, "hi_vclock": 0.2,
                         "diverged": True}
        path = str(tmp_path / "div.json")
        report.write_json(path)
        import json

        loaded = DivergenceReport.from_dict(json.load(open(path)))
        assert loaded.classification == report.classification
        assert loaded.position == report.position
        assert loaded.vts == report.vts
        assert loaded.bisect == report.bisect
        assert loaded.diverged

    def test_format_mentions_bisect_window(self):
        report = DivergenceReport(
            classification="fs-content", summary="trees differ",
            bisect={"lo": 38, "hi": 39, "probes": 4, "scope": "guest",
                    "lo_vclock": 0.1, "hi_vclock": 0.2})
        text = report.format()
        assert "barrier 38" in text
        assert "39" in text
