"""CLI surface of the diagnosis engine: `repro diff`, `repro diag`,
`--export-metrics`, and the fuzz/reprotest integration points."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.diag


@pytest.fixture
def trace_pair(tmp_path, capsys):
    """Two byte-identical traces of the same run, plus a divergent one
    (different command)."""
    path_a = str(tmp_path / "a.json")
    path_b = str(tmp_path / "b.json")
    path_c = str(tmp_path / "c.json")
    assert main(["run", "--trace-out", path_a, "date"]) == 0
    assert main(["run", "--trace-out", path_b, "date"]) == 0
    assert main(["run", "--trace-out", path_c, "ls", "/bin"]) == 0
    capsys.readouterr()
    return path_a, path_b, path_c


class TestDiffCommand:
    def test_identical_traces_exit_zero(self, trace_pair, capsys):
        path_a, path_b, _ = trace_pair
        assert main(["diff", path_a, path_b]) == 0
        assert "no divergence" in capsys.readouterr().out

    def test_trace_files_byte_identical(self, trace_pair):
        path_a, path_b, _ = trace_pair
        with open(path_a, "rb") as fh_a, open(path_b, "rb") as fh_b:
            assert fh_a.read() == fh_b.read()

    def test_divergent_traces_exit_one(self, trace_pair, capsys,
                                       tmp_path):
        path_a, _, path_c = trace_pair
        report_path = str(tmp_path / "report.json")
        assert main(["diff", path_a, path_c,
                     "--report", report_path]) == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        report = json.load(open(report_path))
        assert report["kind"].startswith("repro.diag.divergence/")
        assert report["classification"] != "none"
        assert report["position"] is not None

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["diff", str(tmp_path / "nope.json"),
                     str(tmp_path / "nope2.json")]) == 2


class TestExportMetricsFlag:
    def test_prom_to_file(self, tmp_path, capsys):
        out_path = str(tmp_path / "m.prom")
        assert main(["run", "--export-metrics", "prom",
                     "--metrics-out", out_path, "date"]) == 0
        text = open(out_path).read()
        assert text.startswith("# TYPE repro_")
        assert "repro_runs 1" in text

    def test_jsonl_to_stderr(self, capsys):
        assert main(["run", "--export-metrics", "jsonl", "date"]) == 0
        err = capsys.readouterr().err
        line = [l for l in err.splitlines() if l.startswith("{")][0]
        assert json.loads(line)["metric"].startswith("repro_")

    def test_export_deterministic_across_runs(self, tmp_path, capsys):
        paths = [str(tmp_path / name) for name in ("x.jsonl", "y.jsonl")]
        for path in paths:
            assert main(["run", "--export-metrics", "jsonl",
                         "--metrics-out", path, "date"]) == 0
        assert open(paths[0]).read() == open(paths[1]).read()

    def test_stdout_untouched_by_export(self, capsys):
        assert main(["run", "date"]) == 0
        plain = capsys.readouterr().out
        assert main(["run", "--export-metrics", "prom", "date"]) == 0
        assert capsys.readouterr().out == plain


class TestDiagCommands:
    def test_demo_gate_passes(self, tmp_path, capsys):
        assert main(["diag", "demo", "--workdir",
                     str(tmp_path / "demo")]) == 0
        out = capsys.readouterr().out
        assert "diag demo: OK" in out
        assert "bisected window" in out

    def test_fuzz_entry_self_pair_clean(self, capsys):
        assert main(["diag", "fuzz", "--entry",
                     "tests/fuzz/corpus/prng-seed-sensitivity.json"]) == 0
        assert "no divergence" in capsys.readouterr().out

    def test_fuzz_entry_cross_seed_diverges(self, tmp_path, capsys):
        report_path = str(tmp_path / "div.json")
        assert main(["diag", "fuzz", "--entry",
                     "tests/fuzz/corpus/prng-seed-sensitivity.json",
                     "--seed-b", "1", "--report", report_path]) == 1
        assert "DIVERGENCE" in capsys.readouterr().out
        report = json.load(open(report_path))
        assert report["classification"] == "stream-content"

    def test_ckpt_verify_prints_fingerprints(self, tmp_path, capsys):
        journal = str(tmp_path / "journal")
        assert main(["run", "--checkpoint-dir", journal,
                     "--checkpoint-every", "16",
                     "--checkpoint-keep", "0", "ls", "/bin"]) == 0
        capsys.readouterr()
        assert main(["ckpt", "verify", journal]) == 0
        out = capsys.readouterr().out
        assert "guest-state" in out
        assert "verify: OK" in out


class TestFuzzIntegration:
    def test_diagnose_flags_first_divergent_pair(self):
        """A matrix with a known-divergent cell (different prng seed)
        produces a localized divergence report on the MatrixReport."""
        from repro.fuzz.grammar import generate_program
        from repro.fuzz.runner import MATRIX, Cell, check_program

        spec = None
        for seed in range(40):
            candidate = generate_program(seed)
            if any(op["op"] == "random" for op in candidate.ops):
                spec = candidate
                break
        assert spec is not None, "no random-op program in seed range"
        matrix = (MATRIX[0], Cell("bad-seed", prng_seed=77))
        report = check_program(spec, workers=1, rnr=False, matrix=matrix,
                               diagnose=True)
        assert not report.ok
        assert report.divergence is not None
        assert report.divergence.diverged
        assert "first divergence" in report.summary()

    def test_no_diagnosis_on_clean_program(self):
        from repro.fuzz.grammar import generate_program
        from repro.fuzz.runner import check_program

        report = check_program(generate_program(0), workers=1, rnr=False,
                               diagnose=True)
        assert report.ok
        assert report.divergence is None


class TestReprotestIntegration:
    def test_irreproducible_build_carries_divergence(self):
        from repro.repro_tools import IRREPRODUCIBLE, reprotest_native
        from repro.workloads.debian import PackageSpec

        # §6.1: with no tar workaround nothing compares equal natively —
        # and the result must now carry a localized tree diff.
        spec = PackageSpec(name="clean", n_sources=2)
        result = reprotest_native(spec, apply_tar_workaround=False)
        assert result.verdict == IRREPRODUCIBLE
        assert result.divergence is not None
        assert result.divergence.classification == "fs-content"
        assert result.divergence.first_path
        assert result.divergence.labels == ("first-build",
                                            "second-build")

    def test_reproducible_build_has_no_divergence(self):
        from repro.repro_tools import REPRODUCIBLE, reprotest_native
        from repro.workloads.debian import PackageSpec

        spec = PackageSpec(name="clean", n_sources=2)
        result = reprotest_native(spec)
        assert result.verdict == REPRODUCIBLE
        assert result.divergence is None
