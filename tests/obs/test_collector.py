"""Unit tests for the repro.obs primitives: events, collector, profiler,
trace log, and metrics accumulation."""

import json

import pytest

from repro.obs.collector import Collector, _bucket
from repro.obs.events import DEBUG, SYSCALL, TRAP, NO_VTS, ObsEvent
from repro.obs.metrics import Metrics
from repro.obs.profiler import FS, HANDLER, INTERCEPTION, PHASES, SCHEDULER, PhaseProfile
from repro.obs.trace import Span, TraceLog, _us

pytestmark = pytest.mark.obs


class TestObsEvent:
    def test_tuple_compatibility(self):
        """Legacy consumers index events like (nspid, index, name)."""
        ev = ObsEvent(vts=1.5, pid=7, index=3, kind=SYSCALL, name="read")
        assert ev[0] == 7
        assert ev[1] == 3
        assert ev[2] == "read"
        nspid, index, name = ev
        assert (nspid, index, name) == (7, 3, "read")
        assert list(ev) == [7, 3, "read"]

    def test_coord_and_dict_round_trip(self):
        ev = ObsEvent(vts=2.0, pid=1, index=9, kind=TRAP, name="rdtsc",
                      detail="trap rdtsc")
        assert ev.coord == (1, 9, "rdtsc")
        assert ObsEvent.from_dict(ev.to_dict()) == ev

    def test_frozen(self):
        ev = ObsEvent(vts=0.0, pid=1, index=0, kind=SYSCALL, name="read")
        with pytest.raises(Exception):
            ev.pid = 2


class TestCollector:
    def test_counters_accumulate_on_tuple_keys(self):
        c = Collector()
        c.count(("syscall", "read", "passthrough"))
        c.count(("syscall", "read", "passthrough"), 2)
        c.count("loose")
        assert c.counters[("syscall", "read", "passthrough")] == 3
        assert c.counters[("loose",)] == 1

    def test_gauge_tracks_peak_only(self):
        c = Collector()
        c.gauge_max("g", 3)
        c.gauge_max("g", 1)
        c.gauge_max("g", 7)
        assert c.gauges["g"] == 7

    def test_histogram_buckets_are_power_of_two(self):
        assert _bucket(0) == 0
        assert _bucket(1) == 0
        assert _bucket(2) == 1
        assert _bucket(3) == 2
        assert _bucket(1024) == 10
        c = Collector()
        for v in (0, 1, 3, 3, 1000):
            c.observe("h", v)
        assert c.histograms["h"] == {0: 2, 2: 2, 10: 1}

    def test_event_stream_gated_by_trace_flag(self):
        ev = ObsEvent(vts=0.0, pid=1, index=0, kind=SYSCALL, name="read")
        span = Span(name="read", cat="rewritten", pid=1, tid=0, vts=0.0,
                    dur=1e-6, index=0)
        off = Collector(trace=False)
        off.record(ev)
        off.span(span)
        assert off.events == [] and off.spans == []
        on = Collector(trace=True)
        on.record(ev)
        on.span(span)
        assert on.events == [ev] and on.spans == [span]

    def test_debug_gated_by_level_and_renders_legacy_lines(self):
        ev = ObsEvent(vts=0.0, pid=4, index=1, kind=DEBUG, name="read",
                      detail="read(fd=3) -> value b'x'")
        c = Collector(debug=0)
        c.debug(1, ev)
        assert c.render_debug() == []
        c = Collector(debug=1)
        c.debug(1, ev)
        c.debug(2, ev)  # below threshold: dropped
        assert c.render_debug() == ["[pid 4] read(fd=3) -> value b'x'"]

    def test_aggregates_always_on_even_without_trace(self):
        c = Collector(trace=False)
        c.count(("trap", "rdtsc"))
        c.charge(HANDLER, 1e-6)
        assert c.counters[("trap", "rdtsc")] == 1
        assert c.profile.total() == pytest.approx(1e-6)

    def test_tail_events_bounded(self):
        c = Collector(trace=True)
        for i in range(40):
            c.record(ObsEvent(vts=float(i), pid=1, index=i, kind=SYSCALL,
                              name="s%d" % i))
        tail = c.tail_events(8)
        assert len(tail) == 8
        assert tail[-1].name == "s39"


class TestPhaseProfile:
    def test_phases_are_the_documented_four(self):
        assert PHASES == (INTERCEPTION, HANDLER, SCHEDULER, FS)

    def test_charge_breakdown_fractions_sum_to_one(self):
        p = PhaseProfile()
        p.charge(INTERCEPTION, 1.0)
        p.charge(HANDLER, 2.0)
        p.charge(HANDLER, 1.0)
        assert p.total() == pytest.approx(4.0)
        rows = dict((phase, frac) for phase, _, frac in p.breakdown())
        assert rows[HANDLER] == pytest.approx(0.75)
        assert sum(frac for _, _, frac in p.breakdown()) == pytest.approx(1.0)

    def test_extra_phase_reported_after_the_documented_four(self):
        p = PhaseProfile()
        p.charge(HANDLER, 1.0)
        p.charge("extra", 1.0)
        assert [row[0] for row in p.breakdown()] == list(PHASES) + ["extra"]


class TestTraceLog:
    def _span(self, **kw):
        base = dict(name="read", cat="rewritten", pid=1, tid=0, vts=1e-6,
                    dur=2e-6, index=0, attempt=1)
        base.update(kw)
        return Span(**base)

    def test_microsecond_conversion(self):
        assert _us(1.5e-6) == 1.5
        assert _us(0.0) == 0.0

    def test_chrome_records_sorted_canonically(self):
        """Append order must not matter: untraced syscalls append in
        jittered simulated-wall order, so to_chrome sorts."""
        spans = [self._span(vts=3e-6, name="b"), self._span(vts=1e-6, name="a")]
        ev = ObsEvent(vts=2e-6, pid=1, index=5, kind=SYSCALL, name="m")
        fwd = TraceLog([ev], list(spans)).to_json()
        rev = TraceLog([ev], list(reversed(spans))).to_json()
        assert fwd == rev
        names = [r["name"] for r in
                 TraceLog([ev], spans).to_chrome()["traceEvents"]]
        assert names == ["a", "syscall:m", "b"]

    def test_json_is_canonical_and_parseable(self):
        log = TraceLog([], [self._span()])
        text = log.to_json()
        assert json.loads(text)["traceEvents"][0]["ph"] == "X"
        assert text == TraceLog([], [self._span()]).to_json()

    def test_write_is_byte_stable(self, tmp_path):
        log = TraceLog([], [self._span()])
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        log.write(str(p1))
        log.write(str(p2))
        assert p1.read_bytes() == p2.read_bytes()


class TestMetrics:
    def _snapshot(self):
        c = Collector()
        c.count(("syscall", "read", "passthrough"), 2)
        c.gauge_max("sched/blocked_peak", 3)
        c.observe("sched/blocked", 2)
        c.charge(SCHEDULER, 4e-6)
        return Metrics.from_run(c)

    def test_from_run_flattens_counters(self):
        m = self._snapshot()
        assert m.counters["syscall/read/passthrough"] == 2
        assert m.gauges["sched/blocked_peak"] == 3
        assert m.histograms["sched/blocked"] == {"<=2": 1}
        assert m.profile[SCHEDULER] == pytest.approx(4e-6)
        assert m.runs == 1

    def test_add_sums_counts_and_maxes_gauges(self):
        a, b = self._snapshot(), self._snapshot()
        b.gauges["sched/blocked_peak"] = 9
        a.add(b)
        assert a.runs == 2
        assert a.counters["syscall/read/passthrough"] == 4
        assert a.gauges["sched/blocked_peak"] == 9
        assert a.profile[SCHEDULER] == pytest.approx(8e-6)

    def test_table2_averages_divide_by_runs(self):
        a, b = self._snapshot(), self._snapshot()
        a.table2 = {"System call events": 10.0}
        b.table2 = {"System call events": 20.0}
        a.add(b)
        assert a.table2_averages()["System call events"] == pytest.approx(15.0)

    def test_to_dict_is_json_serializable(self):
        text = json.dumps(self._snapshot().to_dict(), sort_keys=True)
        assert "syscall/read/passthrough" in text


def test_no_vts_sentinel():
    assert NO_VTS == -1.0
