"""CLI surface of the observability plane: --metrics, --trace-out, and
the `repro obs` subcommand."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.obs


class TestRunMetricsFlag:
    def test_metrics_report_on_stderr(self, capsys):
        assert main(["run", "--metrics", "date"]) == 0
        out, err = capsys.readouterr()
        assert "Determinization events (Table 2 rows" in err
        assert "System call events" in err
        assert "Syscall dispositions" in err
        assert "Virtual-time overhead attribution" in err
        # Program output stays clean on stdout.
        assert "Determinization" not in out

    def test_metrics_stdout_unchanged(self, capsys):
        assert main(["run", "date"]) == 0
        plain = capsys.readouterr().out
        assert main(["run", "--metrics", "date"]) == 0
        assert capsys.readouterr().out == plain


class TestTraceOutFlag:
    def test_trace_out_writes_byte_identical_chrome_json(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["run", "--trace-out", str(a), "--", "ls", "/bin"]) == 0
        assert main(["run", "--trace-out", str(b), "--", "ls", "/bin"]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
        doc = json.loads(a.read_text())
        assert doc["otherData"]["clock"] == "deterministic-virtual"
        assert doc["traceEvents"]
        phases = {r["ph"] for r in doc["traceEvents"]}
        assert "X" in phases  # tracer spans present

    def test_trace_out_identical_across_boots(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["run", "--boot", "1", "--trace-out", str(a), "date"]) == 0
        assert main(["run", "--boot", "7", "--trace-out", str(b), "date"]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()


class TestObsSubcommand:
    def test_obs_prints_table2_summary(self, capsys):
        assert main(["obs", "date"]) == 0
        out, _ = capsys.readouterr()
        assert "Determinization events (Table 2 rows, 1 run" in out
        assert "System call events" in out

    def test_obs_averages_over_runs(self, capsys):
        assert main(["obs", "--runs", "3", "date"]) == 0
        out, _ = capsys.readouterr()
        assert "3 runs" in out

    def test_obs_full_report(self, capsys):
        assert main(["obs", "--full", "date"]) == 0
        out, _ = capsys.readouterr()
        assert "Virtual-time overhead attribution" in out
        assert "Peak gauges" in out

    def test_obs_missing_command(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["obs"])
        assert err.value.code == 2
