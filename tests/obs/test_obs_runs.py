"""Integration tests: the observability plane on real container runs.

The tentpole invariant lives here: enabling/disabling observability
never changes output hashes, exit statuses, or virtual-time schedules,
and two observed runs of the same (image, fault plan) produce
byte-identical trace JSON — even across simulated machine boots.
"""

import pytest

from repro.core import ContainerConfig, DetTrace
from repro.cpu.machine import BROADWELL_XEON, HostEnvironment
from repro.faults.plan import FaultPlan, FaultRule
from repro.obs.metrics import Metrics
from repro.obs.trace import TraceLog
from repro.repro_tools.hashing import tree_digest
from tests.conftest import dettrace_run, image_of

pytestmark = pytest.mark.obs


def _guest(sys):
    t = yield from sys.time()
    yield from sys.write_file("out.txt", "t=%d\n" % t)
    yield from sys.println("hello")
    names = yield from sys.listdir(".")
    yield from sys.write_file("names", ",".join(names))
    return 0


def _forking_guest(sys):
    res = yield from sys.run("/bin/kid")
    yield from sys.println("kid=%s" % res.exit_code)
    yield from sys.write_file("done", b"x")
    return 0


def _kid(sys):
    yield from sys.compute(2e-4)
    yield from sys.println("kid out")
    return 0


HOSTS = [
    HostEnvironment(entropy_seed=1, boot_epoch=1.6e9, pid_start=1000,
                    inode_start=100_000, dirent_hash_salt=5),
    HostEnvironment(machine=BROADWELL_XEON, entropy_seed=999,
                    boot_epoch=1.9e9, pid_start=43_210,
                    inode_start=900_000, dirent_hash_salt=77),
]


class TestMetricsSurface:
    def test_metrics_always_collected_even_with_observe_off(self):
        r = dettrace_run(_guest, config=ContainerConfig(observe=False))
        assert r.exit_code == 0
        assert isinstance(r.metrics, Metrics)
        assert r.metrics.totals["syscalls"] > 0
        assert r.metrics.table2["System call events"] > 0
        assert any(k.startswith("syscall/") for k in r.metrics.counters)

    def test_trace_only_with_observe_on(self):
        off = dettrace_run(_guest, config=ContainerConfig(observe=False))
        on = dettrace_run(_guest, config=ContainerConfig(observe=True))
        assert off.trace is None
        assert isinstance(on.trace, TraceLog)
        assert len(on.trace) > 0

    def test_dispositions_partition_the_traced_syscalls(self):
        r = dettrace_run(_guest)
        m = r.metrics
        by_disp = {}
        for key, n in m.counters.items():
            parts = key.split("/")
            if parts[0] == "syscall" and len(parts) == 3:
                by_disp[parts[2]] = by_disp.get(parts[2], 0) + n
        # Every dispatched syscall lands in exactly one disposition.
        assert sum(by_disp.values()) == m.totals["syscalls"]
        assert set(by_disp) <= {"passthrough", "rewritten", "injected",
                                "skipped", "native"}

    def test_profile_phases_attributed(self):
        r = dettrace_run(_guest)
        profile = r.metrics.profile
        assert profile["handler"] > 0
        assert profile["scheduler"] > 0
        assert profile["interception"] >= 0
        assert profile["fs"] > 0  # write_file charges IO bandwidth

    def test_spawn_exit_counters(self):
        r = dettrace_run(_forking_guest, extra_binaries={"/bin/kid": _kid})
        assert r.metrics.counters["process/spawn"] == 2
        assert r.metrics.counters["process/exit"] == 2


class TestObserverEffect:
    """Flipping observe must not perturb the run at all."""

    def test_observe_flag_does_not_change_outputs(self):
        for host in HOSTS:
            off = dettrace_run(_guest, host=host,
                               config=ContainerConfig(observe=False))
            on = dettrace_run(_guest, host=host,
                              config=ContainerConfig(observe=True))
            assert off.exit_code == on.exit_code == 0
            assert off.status == on.status
            assert off.stdout == on.stdout
            assert tree_digest(off.output_tree) == tree_digest(on.output_tree)

    def test_observe_flag_does_not_change_virtual_schedule(self):
        """Same deterministic metrics => same virtual-time schedule."""
        off = dettrace_run(_forking_guest, host=HOSTS[0],
                           config=ContainerConfig(observe=False),
                           extra_binaries={"/bin/kid": _kid})
        on = dettrace_run(_forking_guest, host=HOSTS[0],
                          config=ContainerConfig(observe=True),
                          extra_binaries={"/bin/kid": _kid})
        assert off.metrics.to_dict() == on.metrics.to_dict()

    def test_debug_log_unchanged_by_observe(self):
        off = dettrace_run(_guest, config=ContainerConfig(debug=1))
        on = dettrace_run(_guest, config=ContainerConfig(debug=1, observe=True))
        assert off.debug_log == on.debug_log
        assert off.debug_log  # non-empty: the view still renders


class TestTraceIdentity:
    def _trace_json(self, host, program=_guest, binaries=None, plan=None):
        cfg = ContainerConfig(observe=True, fault_plan=plan)
        r = dettrace_run(program, host=host, config=cfg,
                         extra_binaries=binaries)
        assert r.trace is not None
        return r.trace.to_json()

    def test_two_runs_same_host_byte_identical(self):
        assert self._trace_json(HOSTS[0]) == self._trace_json(HOSTS[0])

    def test_trace_identical_across_machine_boots(self):
        """The strong claim: host pids, inode seeds, boot epochs and even
        the machine model leave no residue in the trace."""
        assert self._trace_json(HOSTS[0]) == self._trace_json(HOSTS[1])

    def test_trace_identical_across_boots_with_processes(self):
        a = self._trace_json(HOSTS[0], _forking_guest, {"/bin/kid": _kid})
        b = self._trace_json(HOSTS[1], _forking_guest, {"/bin/kid": _kid})
        assert a == b

    def test_trace_identical_with_fault_plan(self):
        plan = FaultPlan(rules=(
            FaultRule(fault="eio", syscall=("write",), start=1, count=1),))
        a = self._trace_json(HOSTS[0], plan=plan)
        b = self._trace_json(HOSTS[1], plan=plan)
        assert a == b

    def test_fault_plan_leaves_trace_marks(self):
        plan = FaultPlan(rules=(
            FaultRule(fault="eio", syscall=("write",), start=0, count=1),))
        cfg = ContainerConfig(observe=True, fault_plan=plan)
        r = dettrace_run(_guest, host=HOSTS[0], config=cfg)
        assert r.metrics.counters.get("fault/eio", 0) >= 1
        text = r.trace.to_json()
        assert '"fault:eio"' in text
        assert '"injected"' in text


class TestCrashPaths:
    """Satellite: every exit path flows through the collector."""

    def _busy(self, sys):
        while True:
            yield from sys.compute(1e-3)

    def test_timeout_run_still_carries_metrics(self):
        cfg = ContainerConfig(timeout=0.01, busy_wait_budget=None,
                              observe=True)
        r = dettrace_run(self._busy, config=cfg)
        assert r.status != "ok"
        assert r.metrics is not None
        assert r.metrics.totals["syscalls"] >= 0
        assert r.trace is not None

    def test_crash_report_agrees_with_structured_events(self):
        """CrashReport.last_syscalls is the same ObsEvent schema the
        trace uses: dict exports carry the full coordinates."""
        cfg = ContainerConfig(timeout=0.05, busy_wait_budget=None)
        r = dettrace_run(self._busy, config=cfg)
        report = r.crash_report
        assert report is not None
        exported = report.to_dict()["last_syscalls"]
        for entry in exported:
            assert set(entry) == {"vts", "pid", "index", "kind",
                                  "name", "detail"}
            assert entry["kind"] == "syscall"
            assert entry["vts"] >= 0.0
