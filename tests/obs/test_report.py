"""Rendering tests for repro.obs.report (the --metrics / `repro obs`
text output)."""

import pytest

from repro.obs.metrics import Metrics
from repro.obs.report import (
    format_dispositions,
    format_metrics,
    format_profile,
    format_table2_summary,
)

pytestmark = pytest.mark.obs


def _metrics(**overrides):
    m = Metrics(
        counters={
            "syscall/read/passthrough": 4,
            "syscall/write/rewritten": 2,
            "syscall/open/skipped": 6,
            "fault/eio": 1,
        },
        gauges={"sched/blocked_peak": 2.0},
        profile={"interception": 1e-3, "handler": 3e-3,
                 "scheduler": 0.5e-3, "fs": 0.5e-3},
        table2={"System call events": 12.0, "read retries": 1.0},
    )
    for key, value in overrides.items():
        setattr(m, key, value)
    return m


class TestTable2Summary:
    def test_single_run_shows_counts(self):
        text = format_table2_summary(_metrics())
        assert "Table 2 rows, 1 run)" in text
        assert "count" in text
        assert "System call events" in text
        assert "12.00" in text

    def test_aggregate_shows_per_run_averages(self):
        m = _metrics()
        m.add(_metrics(table2={"System call events": 6.0, "read retries": 0.0}))
        text = format_table2_summary(m)
        assert "2 runs" in text
        assert "avg/run" in text
        assert "9.00" in text  # (12 + 6) / 2


class TestDispositions:
    def test_partition_and_top_list(self):
        text = format_dispositions(_metrics())
        assert "passthrough  4" in text
        assert "rewritten    2" in text
        assert "skipped      6" in text
        assert "open (skipped)" in text

    def test_limit_caps_top_list(self):
        counters = {"syscall/s%02d/passthrough" % i: 1 for i in range(20)}
        text = format_dispositions(_metrics(counters=counters), limit=3)
        assert text.count("passthrough)") == 3


class TestProfile:
    def test_shares_sum_to_hundred_percent(self):
        text = format_profile(_metrics())
        assert "handler" in text
        assert "60.0%" in text  # 3e-3 of 5e-3 total
        assert "3.000 ms" in text


class TestFullReport:
    def test_all_sections_present(self):
        text = format_metrics(_metrics())
        assert "Determinization events" in text
        assert "Syscall dispositions" in text
        assert "Fault injections" in text
        assert "eio" in text
        assert "Virtual-time overhead attribution" in text
        assert "Peak gauges" in text

    def test_fault_section_omitted_when_no_faults(self):
        m = _metrics(counters={"syscall/read/passthrough": 1})
        assert "Fault injections" not in format_metrics(m)

    def test_report_is_deterministic(self):
        assert format_metrics(_metrics()) == format_metrics(_metrics())
