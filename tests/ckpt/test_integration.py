"""Checkpointing wired into the surrounding planes: the supervised
runner's resume-over-restart preference, crash-report persistence, the
SIGTERM barrier request, and the `repro run/ckpt` CLI surface."""

import json
import os
import signal
import time

import pytest

from repro.ckpt import CheckpointManager, scan
from repro.core import DetTrace, RESUMED
from repro.cpu.machine import HostEnvironment
from repro.faults.report import CrashReport

from .conftest import ckpt_config, ckpt_image, result_fp, run_baseline

pytestmark = pytest.mark.ckpt


class TestSupervisedResume:
    def test_crash_then_resume_reports_resumed(self, journal_dir):
        cfg = ckpt_config(journal_dir, tick=60)
        result = DetTrace(cfg).run_supervised(
            ckpt_image(), "/bin/main", host=HostEnvironment(entropy_seed=7))
        assert result.status == RESUMED
        assert result.exit_code == 0
        assert result.attempts == 2
        log = result.crash_report.attempt_log
        assert [rec.status for rec in log] == ["crashed", "resumed"]
        assert result.succeeded

    def test_supervised_resume_output_matches_baseline(self, journal_dir):
        baseline = run_baseline()
        cfg = ckpt_config(journal_dir, tick=60)
        result = DetTrace(cfg).run_supervised(
            ckpt_image(), "/bin/main", host=HostEnvironment(entropy_seed=7))
        assert result.stdout == baseline.stdout
        assert result.output_tree == baseline.output_tree

    def test_crash_report_persisted_atomically(self, journal_dir):
        cfg = ckpt_config(journal_dir, tick=60)
        DetTrace(cfg).run_supervised(
            ckpt_image(), "/bin/main", host=HostEnvironment(entropy_seed=7))
        path = os.path.join(journal_dir, "crash-report.json")
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")
        with open(path) as fh:
            data = json.load(fh)
        report = CrashReport.from_dict(data)
        assert report.status == RESUMED
        assert len(report.attempt_log) == 2
        assert report.attempt_log[0].status == "crashed"

    def test_without_checkpoint_supervisor_restarts_from_scratch(self):
        from .conftest import kill_plan
        from repro.core import ContainerConfig

        cfg = ContainerConfig(fault_plan=kill_plan(60))
        result = DetTrace(cfg).run_supervised(
            ckpt_image(), "/bin/main", host=HostEnvironment(entropy_seed=7))
        # The kill rule is transient (attempt 0 only), so the full
        # restart on attempt 1 completes: classic RETRIED, not RESUMED.
        assert result.status == "retried"
        assert result.attempts == 2


class TestCrashReportWrite:
    def test_write_json_round_trips(self, tmp_path):
        report = CrashReport(status="crashed", error="boom",
                             fault_trace=[{"fault": "kill", "index": 3}])
        path = str(tmp_path / "report.json")
        report.write_json(path)
        assert not os.path.exists(path + ".tmp")
        with open(path) as fh:
            back = CrashReport.from_dict(json.load(fh))
        assert back.status == "crashed"
        assert back.error == "boom"
        assert back.fault_trace == [{"fault": "kill", "index": 3}]


class TestSigtermBarrier:
    def test_request_snapshots_at_next_barrier_and_resumes(self, journal_dir):
        """`request()` is the SIGTERM path minus the signal itself: with
        periodic barriers off, one request yields exactly one snapshot,
        and that snapshot resumes to the uninterrupted result."""
        from repro.kernel.kernel import Kernel
        from repro.obs.collector import Collector

        baseline = run_baseline()
        cfg = ckpt_config(journal_dir, every=0)
        kernel = Kernel(HostEnvironment(entropy_seed=7))
        kernel.obs = Collector(trace=False, debug=False)
        container = DetTrace(cfg)
        container._prepare(kernel, ckpt_image(), 0)
        manager = CheckpointManager(journal_dir, every=0, keep=3,
                                    fingerprint=cfg.fingerprint())
        kernel.ckpt = manager
        kernel.boot("/bin/main", env=cfg.env_for(kernel.host.env), uid=0,
                    cwd_path=cfg.working_dir)
        manager.request()  # as the SIGTERM handler would
        kernel.run(deadline=cfg.timeout, max_events=cfg.max_events)
        infos = [info for info in scan(journal_dir) if info.valid]
        assert len(infos) == 1, "one request, one snapshot"
        assert manager.requested is False
        resumed = DetTrace(cfg).resume(ckpt_image(), "/bin/main")
        assert resumed.status == "resumed"
        assert result_fp(resumed) == result_fp(baseline)

    def test_cli_handler_requests_on_sigterm(self, journal_dir):
        from repro.cli import _install_sigterm

        cfg = ckpt_config(journal_dir, every=0)
        container = DetTrace(cfg)
        container.active_ckpt = CheckpointManager(
            journal_dir, every=0, keep=3, fingerprint=cfg.fingerprint())
        restore_handler = _install_sigterm(container)
        try:
            os.kill(os.getpid(), signal.SIGTERM)
            deadline = time.time() + 5.0
            while not container.active_ckpt.requested:
                if time.time() > deadline:
                    pytest.fail("SIGTERM handler never ran")
                time.sleep(0.001)
        finally:
            restore_handler()
        assert container.active_ckpt.requested

    def test_every_zero_writes_no_snapshots(self, journal_dir):
        cfg = ckpt_config(journal_dir, every=0)
        result = DetTrace(cfg).run(ckpt_image(), "/bin/main",
                                   host=HostEnvironment(entropy_seed=7))
        assert result.status == "ok"
        assert scan(journal_dir) == []


class TestCli:
    def _plan_file(self, tmp_path, tick):
        path = str(tmp_path / "plan.json")
        with open(path, "w") as fh:
            json.dump({"rules": [{"fault": "kill", "at_tick": tick,
                                  "transient": True}]}, fh)
        return path

    def test_run_crash_resume_and_verify(self, tmp_path, capsys):
        from repro.cli import main

        journal = str(tmp_path / "journal")
        plan = self._plan_file(tmp_path, 40)
        base = ["run", "--checkpoint-dir", journal, "--checkpoint-every",
                "9", "--faults", plan, "--", "ls", "-l", "/bin"]
        assert main(base) == 70  # crashed mid-flight
        capsys.readouterr()
        assert main(base[:1] + ["--resume"] + base[1:]) == 0
        resumed_out = capsys.readouterr().out
        assert main(["run", "--", "ls", "-l", "/bin"]) == 0
        assert capsys.readouterr().out == resumed_out
        assert main(["ckpt", "verify", journal]) == 0
        assert main(["ckpt", "inspect", journal]) == 0
        capsys.readouterr()

    def test_verify_fails_on_torn_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        journal = str(tmp_path / "journal")
        plan = self._plan_file(tmp_path, 40)
        main(["run", "--checkpoint-dir", journal, "--checkpoint-every", "9",
              "--faults", plan, "--", "ls", "-l", "/bin"])
        snaps = sorted(os.listdir(journal))
        with open(os.path.join(journal, snaps[0]), "r+b") as fh:
            fh.truncate(10)
        capsys.readouterr()
        assert main(["ckpt", "verify", journal]) == 1
        assert main(["ckpt", "prune", journal, "--keep", "1"]) == 0
        assert main(["ckpt", "verify", journal]) == 0
        capsys.readouterr()

    def test_resume_without_journal_falls_back_to_fresh_run(
            self, tmp_path, capsys):
        from repro.cli import main

        journal = str(tmp_path / "empty")
        code = main(["run", "--checkpoint-dir", journal, "--resume",
                     "--", "date"])
        captured = capsys.readouterr()
        assert code == 0
        assert "starting a fresh run" in captured.err

    def test_resume_requires_checkpoint_dir(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "--resume", "--", "date"])
