"""Incremental checkpoints: delta-chain layout, torn-chain fallback,
full-vs-delta equivalence, and the incremental Merkle fingerprints.

The properties under test:

* the journal interleaves full and delta snapshots on the configured
  ``full_every`` cadence, each delta naming its base by payload sha256;
* truncating a delta — or the *full base* under a chain — makes
  recovery fall back to the newest fully-valid chain, and the resumed
  run stays byte-identical to a never-interrupted one;
* a ``full_every=1`` journal and a delta journal of the same run
  fingerprint equal barrier-for-barrier (materialization is lossless);
* the Merkle cursor advanced along a chain produces exactly the
  fingerprint a from-scratch computation of the materialized payload
  does;
* pruning never orphans a kept delta.
"""

import os

import pytest

from repro.ckpt import (
    FULL_SCOPE,
    GUEST_SCOPE,
    RecoveryManager,
    prune,
    scan,
)
from repro.core import DetTrace
from repro.cpu.machine import HostEnvironment

from .conftest import ckpt_config, ckpt_image, result_fp, run_baseline

pytestmark = pytest.mark.ckpt


def _crash(journal_dir, tick=100, **cfg_kwargs):
    cfg = ckpt_config(journal_dir, tick=tick, **cfg_kwargs)
    crashed = DetTrace(cfg).run(ckpt_image(), "/bin/main",
                                host=HostEnvironment(entropy_seed=7))
    assert crashed.status == "crashed", (crashed.status, crashed.error)
    return cfg


def _truncate(path):
    with open(path, "r+b") as fh:
        fh.truncate(os.path.getsize(path) - 20)


class TestChainLayout:
    def test_full_and_delta_cadence(self, journal_dir):
        _crash(journal_dir, every=7, full_every=4, keep=0)
        infos = list(reversed(scan(journal_dir)))  # oldest first
        assert len(infos) >= 12
        assert all(info.valid and info.chain_valid for info in infos)
        by_sha = {info.payload_sha256: info for info in infos}
        for i, info in enumerate(infos):
            if i % 4 == 0:
                assert info.snapshot_kind == "full", info.barrier
                assert info.chain_depth == 0
                assert info.base_sha256 == ""
            else:
                assert info.snapshot_kind == "delta", info.barrier
                assert info.chain_depth == i % 4
                base = by_sha[info.base_sha256]
                assert base.barrier == infos[i - 1].barrier

    def test_deltas_are_much_smaller_than_fulls(self, journal_dir):
        _crash(journal_dir, every=7, full_every=4, keep=0)
        infos = scan(journal_dir)
        fulls = [i.payload_len for i in infos if i.snapshot_kind == "full"]
        deltas = [i.payload_len for i in infos if i.snapshot_kind == "delta"]
        assert fulls and deltas
        # The workload writes a handful of files between barriers while
        # holding hundreds of inodes: deltas must not re-carry the tree.
        assert max(deltas) < min(fulls)

    def test_full_every_one_writes_only_fulls(self, journal_dir):
        _crash(journal_dir, every=7, full_every=1, keep=0)
        infos = scan(journal_dir)
        assert infos
        assert all(i.snapshot_kind == "full" for i in infos)


class TestTornChains:
    def test_torn_delta_falls_back_and_resumes_identically(
            self, journal_dir):
        baseline = run_baseline()
        cfg = _crash(journal_dir, every=7, full_every=4, keep=0)
        infos = scan(journal_dir)  # newest first
        newest = infos[0]
        assert newest.snapshot_kind == "delta"
        _truncate(newest.path)
        recovery = RecoveryManager(journal_dir)
        latest = recovery.latest()
        assert latest is not None
        assert latest.barrier == infos[1].barrier
        resumed = DetTrace(cfg).resume(ckpt_image(), "/bin/main")
        assert resumed.status == "resumed", (resumed.status, resumed.error)
        assert result_fp(resumed) == result_fp(baseline)

    def test_torn_base_invalidates_chain_and_resumes_identically(
            self, journal_dir):
        baseline = run_baseline()
        cfg = _crash(journal_dir, every=7, full_every=4, keep=0)
        infos = list(reversed(scan(journal_dir)))  # oldest first
        fulls = [i for i in infos if i.snapshot_kind == "full"]
        assert len(fulls) >= 2
        # Tear the newest full base: every delta chained on it becomes
        # unmaterializable, so recovery must fall back to the last
        # snapshot of the *previous* chain.
        _truncate(fulls[-1].path)
        rescan = scan(journal_dir)
        broken = [i for i in rescan
                  if i.valid and not i.chain_valid]
        assert broken, "deltas over the torn base must be chain-broken"
        latest = RecoveryManager(journal_dir).latest()
        assert latest is not None
        assert latest.barrier < fulls[-1].barrier
        assert latest.snapshot_kind == "delta"
        resumed = DetTrace(cfg).resume(ckpt_image(), "/bin/main")
        assert resumed.status == "resumed", (resumed.status, resumed.error)
        assert result_fp(resumed) == result_fp(baseline)


class TestEquivalence:
    def test_delta_journal_fingerprints_equal_full_journal(
            self, tmp_path):
        fps = {}
        for label, full_every in (("full", 1), ("delta", 5)):
            directory = str(tmp_path / label)
            _crash(directory, every=7, full_every=full_every, keep=0)
            recovery = RecoveryManager(directory)
            fps[label] = {
                scope: recovery.chain_fingerprints(scope=scope)
                for scope in (GUEST_SCOPE, FULL_SCOPE)}
        for scope in (GUEST_SCOPE, FULL_SCOPE):
            assert fps["full"][scope] == fps["delta"][scope], scope

    def test_cursor_matches_from_scratch_fingerprints(self, journal_dir):
        _crash(journal_dir, every=7, full_every=4, keep=0)
        recovery = RecoveryManager(journal_dir)
        for scope in (GUEST_SCOPE, FULL_SCOPE):
            incremental = recovery.chain_fingerprints(scope=scope)
            scratch = {snap.barrier: snap.fingerprint(scope=scope)
                       for snap in recovery.snapshots()}
            assert {b: fp for b, (fp, _v) in incremental.items()} == scratch

    def test_guest_and_full_scopes_differ(self, journal_dir):
        _crash(journal_dir, every=7, full_every=4, keep=0)
        recovery = RecoveryManager(journal_dir)
        guest = recovery.chain_fingerprints(scope=GUEST_SCOPE)
        full = recovery.chain_fingerprints(scope=FULL_SCOPE)
        for barrier in guest:
            assert guest[barrier][0] != full[barrier][0]


class TestPrune:
    def test_prune_keeps_transitive_base_closure(self, journal_dir):
        _crash(journal_dir, every=7, full_every=4, keep=0)
        removed = prune(journal_dir, keep=1)
        assert removed
        infos = scan(journal_dir)
        assert infos
        assert all(i.chain_valid for i in infos)
        # The newest snapshot is a delta; its whole chain down to the
        # full base must have survived, so it still materializes.
        info, payload = RecoveryManager(journal_dir).load()
        assert payload["kind"] == "repro.ckpt.payload"
        assert info.barrier == max(i.barrier for i in infos)
