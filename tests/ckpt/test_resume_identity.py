"""The tentpole guarantee: run → kill at tick T → resume is byte-identical
to a never-interrupted run — trace, metrics, output tree, counters, the
lot — across fs_caches/observe on and off, and even when recovery has to
fall back past a deliberately truncated snapshot."""

import os

import pytest

from repro.ckpt import JournalError, scan
from repro.core import DetTrace
from repro.cpu.machine import HostEnvironment

from .conftest import ckpt_config, ckpt_image, result_fp, run_baseline

pytestmark = pytest.mark.ckpt


def _crash_then_resume(journal_dir, tick, **cfg_kwargs):
    cfg = ckpt_config(journal_dir, tick=tick, **cfg_kwargs)
    crashed = DetTrace(cfg).run(ckpt_image(), "/bin/main",
                                host=HostEnvironment(entropy_seed=7))
    assert crashed.status == "crashed", (crashed.status, crashed.error)
    resumed = DetTrace(cfg).resume(ckpt_image(), "/bin/main")
    assert resumed.status == "resumed", (resumed.status, resumed.error)
    return resumed


@pytest.mark.parametrize("tick", [10, 60, 100])
@pytest.mark.parametrize("fs_caches", [True, False])
@pytest.mark.parametrize("observe", [True, False])
def test_resume_is_byte_identical_to_uninterrupted_run(
        journal_dir, tick, fs_caches, observe):
    baseline = run_baseline(fs_caches=fs_caches, observe=observe)
    assert baseline.exit_code == 0, (baseline.status, baseline.error)
    resumed = _crash_then_resume(journal_dir, tick,
                                 fs_caches=fs_caches, observe=observe)
    want, got = result_fp(baseline), result_fp(resumed)
    diffs = [key for key in want if want[key] != got[key]]
    assert not diffs, diffs


def test_truncated_newest_snapshot_falls_back_to_previous(journal_dir):
    baseline = run_baseline()
    cfg = ckpt_config(journal_dir, tick=100)
    crashed = DetTrace(cfg).run(ckpt_image(), "/bin/main",
                                host=HostEnvironment(entropy_seed=7))
    assert crashed.status == "crashed"
    infos = [info for info in scan(journal_dir) if info.valid]
    assert len(infos) >= 2, "need at least two snapshots to test fallback"
    newest = infos[0]
    with open(newest.path, "r+b") as fh:
        fh.truncate(os.path.getsize(newest.path) - 20)
    resumed = DetTrace(cfg).resume(ckpt_image(), "/bin/main")
    assert resumed.status == "resumed", (resumed.status, resumed.error)
    assert result_fp(resumed) == result_fp(baseline)


def test_all_snapshots_torn_raises_journal_error(journal_dir):
    cfg = ckpt_config(journal_dir, tick=60)
    DetTrace(cfg).run(ckpt_image(), "/bin/main",
                      host=HostEnvironment(entropy_seed=7))
    for info in scan(journal_dir):
        with open(info.path, "wb") as fh:
            fh.write(b"torn")
    with pytest.raises(JournalError):
        DetTrace(cfg).resume(ckpt_image(), "/bin/main")


def test_kill_at_tick_zero_crashes_before_any_event(journal_dir):
    """Tick 0 is the extreme edge: the run dies before dispatching a
    single event, so no snapshot can exist and no work survives."""
    cfg = ckpt_config(journal_dir, tick=0)
    result = DetTrace(cfg).run(ckpt_image(), "/bin/main",
                               host=HostEnvironment(entropy_seed=7))
    assert result.status == "crashed"
    assert "tick 0" in result.error
    assert result.stdout == ""
    assert not [info for info in scan(journal_dir) if info.valid]


def test_kill_past_final_tick_never_fires():
    """A kill scheduled at/after the run's last event is dead code: the
    run completes normally and reports no injected faults."""
    from repro.core import ContainerConfig

    from .conftest import kill_plan

    baseline = run_baseline()
    cfg = ContainerConfig(fault_plan=kill_plan(10_000_000))
    result = DetTrace(cfg).run(ckpt_image(), "/bin/main",
                               host=HostEnvironment(entropy_seed=7))
    assert result.status == "ok", (result.status, result.error)
    assert result.exit_code == 0
    assert result.counters.faults_injected == 0
    assert result_fp(result) == result_fp(baseline)
