"""Shared pieces for the checkpoint/restore suite: a workload exercising
every snapshotted surface, and a result fingerprint that captures each
byte-identity the resume gate promises."""

from __future__ import annotations

import dataclasses
import hashlib

import pytest

from repro.core import ContainerConfig, DetTrace, Image
from repro.core.config import CheckpointConfig
from repro.cpu.machine import HostEnvironment
from repro.faults.plan import FaultPlan, FaultRule


def _child(sys_):
    yield from sys_.write_file("child.txt", b"from child\n")
    return 0


def _workload(sys_):
    """File IO, directory listing, a child process, device randomness and
    clock reads — everything a snapshot must carry across the barrier."""
    yield from sys_.mkdir_p("out")
    for i in range(40):
        yield from sys_.write_file("out/f%d.txt" % i, b"x" * (10 + i))
    data = yield from sys_.read_file("out/f3.txt")
    yield from sys_.write_file("out/copy.bin", data)
    names = yield from sys_.listdir("out")
    yield from sys_.println(",".join(sorted(names)))
    res = yield from sys_.run("/bin/child")
    yield from sys_.println("child exit %d" % res.status)
    noise = yield from sys_.urandom(8)
    yield from sys_.write_file("out/noise.bin", noise)
    t = yield from sys_.clock_gettime()
    yield from sys_.println("t=%.3f" % t)
    return 0


def ckpt_image() -> Image:
    image = Image()
    image.add_binary("/bin/main", _workload)
    image.add_binary("/bin/child", _child)
    return image


def kill_plan(tick: int) -> FaultPlan:
    return FaultPlan(rules=(
        FaultRule(fault="kill", at_tick=tick, transient=True),))


def ckpt_config(directory: str, tick=None, every=7, full_every=4, keep=3,
                **kwargs) -> ContainerConfig:
    return ContainerConfig(
        fault_plan=kill_plan(tick) if tick is not None else None,
        checkpoint=CheckpointConfig(directory=directory, every=every,
                                    keep=keep, full_every=full_every),
        **kwargs)


def run_baseline(**kwargs):
    """An uninterrupted run of the workload (no kill, no checkpointing)."""
    return DetTrace(ContainerConfig(**kwargs)).run(
        ckpt_image(), "/bin/main", host=HostEnvironment(entropy_seed=7))


def result_fp(result) -> dict:
    """Everything the identity gate compares, bytewise."""
    return {
        "exit": result.exit_code,
        "stdout": result.stdout,
        "stderr": result.stderr,
        "tree": {path: hashlib.sha256(data).hexdigest()
                 for path, data in sorted(result.output_tree.items())},
        "counters": (dataclasses.asdict(result.counters)
                     if result.counters else None),
        "syscalls": result.syscall_count,
        "metrics": result.metrics.to_dict() if result.metrics else None,
        "trace": result.trace.to_json() if result.trace else None,
    }


@pytest.fixture
def journal_dir(tmp_path):
    return str(tmp_path / "journal")
