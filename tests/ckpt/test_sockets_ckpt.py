"""Socket state across the checkpoint barrier: listener queues, in-flight
stream buffers and the ephemeral-port counter must survive a crash and
resume to the byte-identical result (ISSUE 9 acceptance)."""

import dataclasses
import hashlib
import importlib.util
import os

import pytest

from repro.core import ContainerConfig, DetTrace
from repro.cpu.machine import HostEnvironment
from repro.kernel.pipes import Pipe
from repro.kernel.sockets import AF_INET, AF_UNIX, SocketRegistry

from .conftest import ckpt_config, result_fp

pytestmark = pytest.mark.ckpt


def _example():
    path = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "examples", "client_server.py")
    spec = importlib.util.spec_from_file_location("client_server", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


EXAMPLE = _example()
HOST = HostEnvironment(entropy_seed=7)


def _baseline():
    cfg = ContainerConfig(deterministic_loopback=True)
    return DetTrace(cfg).run(EXAMPLE.build_image(), "/bin/server", host=HOST)


class TestSocketResumeIdentity:
    @pytest.mark.parametrize("tick", [10, 25, 40])
    def test_mid_connection_crash_resumes_byte_identical(
            self, journal_dir, tick):
        baseline = _baseline()
        assert baseline.exit_code == 0, (baseline.status, baseline.error)
        cfg = ckpt_config(journal_dir, tick=tick, every=5,
                          deterministic_loopback=True)
        crashed = DetTrace(cfg).run(EXAMPLE.build_image(), "/bin/server",
                                    host=HOST)
        assert crashed.status == "crashed", (crashed.status, crashed.error)
        resumed = DetTrace(cfg).resume(EXAMPLE.build_image(), "/bin/server")
        assert resumed.status == "resumed", (resumed.status, resumed.error)
        want, got = result_fp(baseline), result_fp(resumed)
        diffs = [key for key in want if want[key] != got[key]]
        assert not diffs, diffs
        assert b"127.0.0.1:32768" in resumed.output_tree["client.log"]


class TestRegistryRoundTrip:
    def _registry(self):
        reg = SocketRegistry()
        reg.alloc_port()                       # counter past the base
        reg.bind(AF_UNIX, "/run/a.sock")
        reg.listen(AF_UNIX, "/run/a.sock", 4)
        addr = reg.bind(AF_INET, "127.0.0.1:0")
        listener = reg.listen(AF_INET, addr, 2)
        to_server, to_client = Pipe(), Pipe()
        for pipe in (to_server, to_client):
            pipe.open_reader()
            pipe.open_writer()
        to_server.write(b"queued-bytes")
        listener.pending.append((to_server, to_client, "127.0.0.1:32770"))
        return reg, to_server, to_client

    def test_capture_restore_round_trip(self):
        from repro.ckpt.snapshot import _capture_sockets, _restore_sockets

        reg, to_server, to_client = self._registry()
        record = _capture_sockets(reg)
        pipes_by_id = {to_server.pipe_id: to_server,
                       to_client.pipe_id: to_client}
        back = _restore_sockets(record, pipes_by_id)
        assert back.port_next == reg.port_next
        assert back.version == reg.version
        assert set(back.bound) == set(reg.bound)
        restored = back.lookup(AF_INET, "127.0.0.1:%d" % (reg.port_next - 1))
        assert restored is not None
        assert restored.backlog == 2
        (ts, tc, peer), = restored.pending
        assert (ts, tc) == (to_server, to_client)
        assert peer == "127.0.0.1:32770"
        assert ts.read(64) == b"queued-bytes"

    def test_missing_section_restores_empty_registry(self):
        from repro.ckpt.snapshot import _restore_sockets

        back = _restore_sockets(None, {})
        assert isinstance(back, SocketRegistry)
        assert not back.listeners and not back.bound

    def test_section_digest_tracks_version_only(self):
        from repro.ckpt.snapshot import _section_digest

        reg, _, _ = self._registry()
        from repro.ckpt.snapshot import _capture_sockets
        a = _section_digest("sockets", _capture_sockets(reg))
        b = _section_digest("sockets", _capture_sockets(reg))
        assert a == b                          # no mutation, same epoch
        reg.alloc_port()
        c = _section_digest("sockets", _capture_sockets(reg))
        assert c != a                          # any mutation moves it
