"""Unit tests for the write-ahead snapshot journal (repro.ckpt.journal):
atomic persistence, torn/corrupt detection, fingerprint scoping, prune."""

import os

import pytest

from repro.ckpt import JournalError, prune, scan
from repro.ckpt.journal import (
    latest_valid,
    load_snapshot,
    read_header,
    snapshot_path,
    write_snapshot,
)

FP = "cfg-fingerprint"


def _write(directory, barrier, payload=b"payload-bytes", fp=FP):
    return write_snapshot(directory, barrier, vclock=barrier * 0.5,
                          fingerprint=fp, payload=payload)


def test_round_trip(journal_dir):
    path = _write(journal_dir, 42, payload=b"\x00\x01hello")
    header, payload = load_snapshot(path, fingerprint=FP)
    assert payload == b"\x00\x01hello"
    assert header["barrier"] == 42
    assert header["vclock"] == 21.0
    assert header["fingerprint"] == FP


def test_no_temp_files_left_behind(journal_dir):
    _write(journal_dir, 1)
    _write(journal_dir, 2)
    assert all(not name.startswith(".tmp-")
               for name in os.listdir(journal_dir))


def test_truncated_payload_detected(journal_dir):
    path = _write(journal_dir, 7, payload=b"A" * 1000)
    with open(path, "rb") as fh:
        blob = fh.read()
    with open(path, "wb") as fh:
        fh.write(blob[:-100])  # torn tail
    with pytest.raises(JournalError, match="length|truncat"):
        load_snapshot(path, fingerprint=FP)


def test_corrupt_payload_detected_by_checksum(journal_dir):
    path = _write(journal_dir, 7, payload=b"A" * 1000)
    with open(path, "r+b") as fh:
        fh.seek(-10, os.SEEK_END)
        fh.write(b"B")  # same length, wrong bytes
    with pytest.raises(JournalError, match="sha256|checksum"):
        load_snapshot(path, fingerprint=FP)


def test_torn_header_detected(journal_dir):
    path = snapshot_path(journal_dir, 3)
    os.makedirs(journal_dir, exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(b'{"format": 1, "barrier"')  # no newline, invalid JSON
    with pytest.raises(JournalError):
        read_header(path)
    with pytest.raises(JournalError):
        load_snapshot(path)


def test_fingerprint_mismatch_rejected(journal_dir):
    path = _write(journal_dir, 5, fp="other-config")
    with pytest.raises(JournalError, match="fingerprint"):
        load_snapshot(path, fingerprint=FP)
    load_snapshot(path, fingerprint=None)  # unscoped read still works


def test_scan_orders_newest_first_and_flags_invalid(journal_dir):
    _write(journal_dir, 10)
    _write(journal_dir, 30)
    path = _write(journal_dir, 20, payload=b"X" * 100)
    with open(path, "wb") as fh:
        fh.write(b"garbage")
    infos = scan(journal_dir, fingerprint=FP)
    assert [i.barrier for i in infos if i.valid] == [30, 10]
    bad = [i for i in infos if not i.valid]
    assert len(bad) == 1 and bad[0].error
    assert latest_valid(journal_dir, fingerprint=FP).barrier == 30


def test_fallback_to_newest_valid(journal_dir):
    _write(journal_dir, 1)
    _write(journal_dir, 2)
    newest = _write(journal_dir, 3, payload=b"Z" * 64)
    with open(newest, "r+b") as fh:
        fh.truncate(os.path.getsize(newest) - 8)
    assert latest_valid(journal_dir, fingerprint=FP).barrier == 2


def test_prune_keeps_newest_valid_and_drops_invalid(journal_dir):
    for barrier in (1, 2, 3, 4):
        _write(journal_dir, barrier)
    broken = snapshot_path(journal_dir, 5)
    with open(broken, "wb") as fh:
        fh.write(b"not a snapshot")
    removed = prune(journal_dir, keep=2)
    assert broken in removed
    left = scan(journal_dir)
    assert [i.barrier for i in left] == [4, 3]
    assert all(i.valid for i in left)


def test_scan_of_missing_directory_is_empty(tmp_path):
    assert scan(str(tmp_path / "nope")) == []
    assert latest_valid(str(tmp_path / "nope")) is None
