"""The synthetic build toolchain end-to-end."""
import pytest

from repro.workloads.debian import (
    PackageSpec,
    build_dettrace,
    build_native,
    deb_unpack,
    tar_unpack,
)
from repro.repro_tools import first_build_host


class TestBasicBuild:
    def test_native_build_produces_deb(self):
        rec = build_native(PackageSpec(name="basic", n_sources=2))
        assert rec.status == "built"
        assert rec.deb is not None
        fields, data_tar = deb_unpack(rec.deb)
        assert fields["Package"] == "basic"
        names = [e.name for e in tar_unpack(data_tar)]
        assert "config.h" in names
        assert "dist/libbasic.so" in names
        assert "dist/README" in names

    def test_dettrace_build_produces_deb(self):
        rec = build_dettrace(PackageSpec(name="basic", n_sources=2))
        assert rec.status == "built", rec.result.error
        assert rec.deb is not None

    def test_clock_skew_check_passes_everywhere(self):
        spec = PackageSpec(name="skew", n_sources=1)
        assert build_native(spec).status == "built"
        assert build_dettrace(spec).status == "built"

    def test_parallel_build(self):
        spec = PackageSpec(name="par", n_sources=6, parallel_jobs=4)
        rec = build_native(spec)
        assert rec.status == "built"

    def test_build_with_tests(self):
        spec = PackageSpec(name="tested", has_tests=True)
        rec = build_native(spec)
        assert rec.status == "built"
        assert "tests:" in rec.result.stdout


class TestFeatureArtifacts:
    def _config_h(self, rec):
        _, data_tar = deb_unpack(rec.deb)
        for entry in tar_unpack(data_tar):
            if entry.name == "config.h":
                return entry.content.decode()
        raise AssertionError("no config.h in deb")

    def test_timestamp_embedded(self):
        rec = build_native(PackageSpec(name="p", embeds_timestamp=True))
        assert "BUILD_TIME" in self._config_h(rec)

    def test_build_path_embedded(self):
        rec = build_native(PackageSpec(name="p", embeds_build_path=True),
                           host=first_build_host())
        assert "/build/first" in self._config_h(rec)

    def test_cpu_count_embedded(self):
        rec = build_native(PackageSpec(name="p", embeds_cpu_count=True))
        assert "NCPU" in self._config_h(rec)

    def test_tree_size_embedded(self):
        rec = build_native(PackageSpec(name="p", embeds_tree_size=True))
        assert "SRC_TREE_BYTES" in self._config_h(rec)

    def test_plain_package_has_no_taints(self):
        cfg = self._config_h(build_native(PackageSpec(name="p")))
        for marker in ("BUILD_TIME", "SRCDIR", "BUILD_HOST", "BUILD_PID",
                       "NCPU", "TIMING_CALIB"):
            assert marker not in cfg


class TestCorrectnessSS72:
    def test_same_test_outcomes_native_and_dettrace(self):
        """SS7.2's LLVM experiment in miniature: the package's own test
        suite reports identical outcomes for native and DetTrace builds."""
        spec = PackageSpec(name="llvm", n_sources=8, parallel_jobs=4,
                           has_tests=True, embeds_timestamp=True,
                           embeds_random_symbols=True)
        native = build_native(spec)
        dettrace = build_dettrace(spec)
        assert native.status == dettrace.status == "built"

        def outcomes(rec):
            for line in rec.result.stdout.splitlines():
                if line.startswith("tests:"):
                    return line
            raise AssertionError("no test outcome line")

        assert outcomes(native) == outcomes(dettrace)
