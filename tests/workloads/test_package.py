from repro.workloads.debian import PackageSpec, source_content


class TestPackageSpec:
    def test_feature_listing(self):
        spec = PackageSpec(name="p", embeds_timestamp=True, embeds_aslr=True)
        assert set(spec.irreproducibility_features) == {
            "embeds_timestamp", "embeds_aslr"}

    def test_robust_expectation(self):
        chancy = PackageSpec(name="p", embeds_fileorder=True)
        assert not chancy.expect_bl_irreproducible
        robust = PackageSpec(name="p", embeds_timestamp=True)
        assert robust.expect_bl_irreproducible

    def test_sockets_imply_bl_irreproducible(self):
        spec = PackageSpec(name="p", uses_sockets=True)
        assert spec.expect_bl_irreproducible
        assert spec.expect_dt_unsupported

    def test_unsupported_causes(self):
        spec = PackageSpec(name="p", busy_waits=True, uses_misc_unsupported=True)
        assert set(spec.unsupported_causes) == {"busy_waits",
                                                "uses_misc_unsupported"}

    def test_source_paths_by_language(self):
        assert PackageSpec(name="a-b", language="c").source_path(0).endswith(".c")
        assert PackageSpec(name="a", language="java").source_path(1).endswith(".java")


class TestSourceContent:
    def test_deterministic(self):
        spec = PackageSpec(name="p")
        assert source_content(spec, 0) == source_content(spec, 0)

    def test_varies_by_package_and_index(self):
        a = source_content(PackageSpec(name="p"), 0)
        b = source_content(PackageSpec(name="p"), 1)
        c = source_content(PackageSpec(name="q"), 0)
        assert a != b and a != c

    def test_scales_with_loc(self):
        small = source_content(PackageSpec(name="p", loc_per_source=100), 0)
        big = source_content(PackageSpec(name="p", loc_per_source=800), 0)
        assert len(big) > len(small)
