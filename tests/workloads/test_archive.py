import pytest

from repro.workloads.debian.archive import (
    TarEntry,
    cpio_pack,
    deb_pack,
    deb_unpack,
    tar_pack,
    tar_unpack,
)


def entries():
    return [
        TarEntry("config.h", 0o644, 0, 0, 123.5, b"#define X 1\n"),
        TarEntry("dist/lib.so", 0o755, 1000, 1000, 456.25, b"\x00\x01binary\n"),
    ]


class TestTar:
    def test_roundtrip(self):
        packed = tar_pack(entries())
        out = tar_unpack(packed)
        assert out == entries()

    def test_member_order_changes_bytes(self):
        e = entries()
        assert tar_pack(e) != tar_pack(list(reversed(e)))

    def test_mtime_changes_bytes(self):
        a = entries()
        b = entries()
        b[0].mtime += 1.0
        assert tar_pack(a) != tar_pack(b)

    def test_uid_changes_bytes(self):
        a, b = entries(), entries()
        b[1].uid = 0
        assert tar_pack(a) != tar_pack(b)

    def test_bad_magic_raises(self):
        with pytest.raises(ValueError):
            tar_unpack(b"NOTATAR")

    def test_binary_content_with_newlines(self):
        e = [TarEntry("f", 0o644, 0, 0, 0.0, b"line1\nEND\nline2\nE x\n")]
        assert tar_unpack(tar_pack(e)) == e


class TestDeb:
    def test_roundtrip(self):
        data_tar = tar_pack(entries())
        deb = deb_pack("pkg", "1.0-1", {"Architecture": "amd64"}, data_tar)
        fields, out_tar = deb_unpack(deb)
        assert fields["Package"] == "pkg"
        assert fields["Version"] == "1.0-1"
        assert fields["Architecture"] == "amd64"
        assert out_tar == data_tar

    def test_control_fields_sorted_deterministically(self):
        data_tar = tar_pack([])
        a = deb_pack("p", "1", {"B": "2", "A": "1"}, data_tar)
        b = deb_pack("p", "1", {"A": "1", "B": "2"}, data_tar)
        assert a == b

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            deb_unpack(b"garbage")


class TestCpio:
    def test_embeds_inode_numbers(self):
        a = cpio_pack([("src.c", 100, b"x")])
        b = cpio_pack([("src.c", 999, b"x")])
        assert a != b  # the SS5.5 inode leak
