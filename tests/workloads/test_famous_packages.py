"""The paper's named large packages, end to end."""
import pytest

from repro.repro_tools import reprotest_dettrace, reprotest_native
from repro.workloads.debian import FAMOUS_PACKAGES


@pytest.mark.parametrize("name", sorted(FAMOUS_PACKAGES))
def test_famous_package_irreproducible_natively(name):
    assert reprotest_native(FAMOUS_PACKAGES[name]).verdict == "irreproducible"


@pytest.mark.parametrize("name", sorted(FAMOUS_PACKAGES))
def test_famous_package_reproducible_under_dettrace(name):
    result = reprotest_dettrace(FAMOUS_PACKAGES[name])
    assert result.verdict == "reproducible", (
        result.diff.summary() if result.diff else result.verdict)


def test_blender_functional_check():
    """'we built blender with DetTrace, installed the resulting .deb ...
    and used the UI to render a sample project' (SS7.2): install the deb
    and run its library through the test runner."""
    from repro.workloads.debian import build_dettrace, deb_unpack, tar_unpack

    rec = build_dettrace(FAMOUS_PACKAGES["blender"])
    assert rec.status == "built"
    _, data_tar = deb_unpack(rec.deb)
    entries = {e.name: e for e in tar_unpack(data_tar)}
    lib = entries["dist/libblender.so"]
    assert lib.content.startswith(b"LINK blender")
    assert lib.content.count(b"OBJ ") == FAMOUS_PACKAGES["blender"].n_sources
