"""Bioinformatics workflows (SS6.1, SS7.5)."""
import pytest

from repro.cpu.machine import HASWELL_XEON, HostEnvironment
from repro.repro_tools import tree_digest
from repro.workloads.bioinf import (
    ALL_TOOLS,
    CLUSTAL,
    HMMER,
    RAXML,
    run_dettrace,
    run_native,
    synth_sequences,
    tool_image,
    unit_weight,
)


def host(seed, boot=0.0):
    return HostEnvironment(machine=HASWELL_XEON, entropy_seed=seed,
                           boot_epoch=1.6e9 + boot)


class TestInputs:
    def test_sequences_deterministic(self):
        assert synth_sequences(4, 64, "x") == synth_sequences(4, 64, "x")
        assert synth_sequences(4, 64, "x") != synth_sequences(4, 64, "y")

    def test_fasta_shape(self):
        data = synth_sequences(3, 32, "t").decode().splitlines()
        assert data[0] == ">seq0"
        assert len(data) == 6
        assert set(data[1]) <= set("ACGT")

    def test_unit_weight_range(self):
        for i in range(50):
            assert 0.0 <= unit_weight(i) <= 1.0


class TestRuns:
    @pytest.mark.parametrize("tool", ["clustal", "hmmer", "raxml"])
    def test_completes_and_merges(self, tool):
        spec = ALL_TOOLS[tool]
        r = run_native(tool_image(spec), tool, 4, host=host(1))
        assert r.succeeded, r.stderr
        assert ("%s.out" % tool) in r.output_tree
        out = r.output_tree["%s.out" % tool]
        assert out.count(b"unit ") == spec.n_units

    def test_worker_partition_covers_all_units(self):
        r = run_native(tool_image(CLUSTAL), "clustal", 16, host=host(2))
        out = r.output_tree["clustal.out"]
        units = sorted(int(line.split()[1])
                       for line in out.decode().splitlines())
        assert units == list(range(CLUSTAL.n_units))


class TestReproducibilityMatrix:
    """The SS6.1 hashdeep findings: clustal reproducible natively,
    hmmer/raxml not; everything reproducible under DetTrace."""

    def _digests(self, spec, runner, seeds):
        img = tool_image(spec)
        return [tree_digest(runner(img, spec.tool, 4,
                                   host=host(s, boot=s * 100.0)).output_tree)
                for s in seeds]

    def test_clustal_native_reproducible(self):
        a, b = self._digests(CLUSTAL, run_native, (1, 2))
        assert a == b

    @pytest.mark.parametrize("spec", [HMMER, RAXML],
                             ids=["hmmer", "raxml"])
    def test_time_seeded_tools_native_irreproducible(self, spec):
        a, b = self._digests(spec, run_native, (1, 2))
        assert a != b

    @pytest.mark.parametrize("spec", [CLUSTAL, HMMER, RAXML],
                             ids=["clustal", "hmmer", "raxml"])
    def test_all_reproducible_under_dettrace(self, spec):
        a, b = self._digests(spec, run_dettrace, (1, 2))
        assert a == b


class TestScalingShape:
    def test_native_speedup_monotone(self):
        img = tool_image(HMMER)
        walls = [run_native(img, "hmmer", n, host=host(n)).wall_time
                 for n in (1, 4, 16)]
        assert walls[0] > walls[1] > walls[2]

    def test_raxml_dettrace_crosses_native_sequential(self):
        """The paper's raxml shape: DT@1 is ~3.4x slower than native@1,
        but DT@16 is around parity."""
        img = tool_image(RAXML)
        seq = run_native(img, "raxml", 1, host=host(1)).wall_time
        dt1 = run_dettrace(img, "raxml", 1, host=host(2)).wall_time
        dt16 = run_dettrace(img, "raxml", 16, host=host(3)).wall_time
        assert dt1 / seq > 2.0       # heavy slowdown sequentially
        assert dt16 < dt1 * 0.5      # strong recovery with processes

    def test_clustal_dettrace_overhead_small(self):
        img = tool_image(CLUSTAL)
        n16 = run_native(img, "clustal", 16, host=host(4)).wall_time
        d16 = run_dettrace(img, "clustal", 16, host=host(4)).wall_time
        assert d16 / n16 < 1.6  # compute-bound: modest overhead
