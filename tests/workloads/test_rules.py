"""Shell-driven debian/rules builds."""
import pytest

from repro.repro_tools import first_build_host, second_build_host, strip_tree
from repro.workloads.debian import (
    PackageSpec,
    build_dettrace_rules,
    build_native_rules,
    rules_script,
)


def tainted_spec(**kw):
    defaults = dict(name="shellpkg", n_sources=3, parallel_jobs=2,
                    embeds_timestamp=True, embeds_random_symbols=True,
                    has_tests=True)
    defaults.update(kw)
    return PackageSpec(**defaults)


class TestRulesScript:
    def test_script_lists_standard_steps(self):
        text = rules_script(tainted_spec()).decode()
        for step in ("configure", "make", "ld", "dpkg-deb", "test-runner"):
            assert step in text

    def test_conditional_steps(self):
        plain = rules_script(PackageSpec(name="p")).decode()
        assert "jvm" not in plain
        assert "license-check" not in plain
        threaded = rules_script(PackageSpec(name="p", uses_threads=True)).decode()
        assert "jvm" in threaded


class TestRulesBuilds:
    def test_native_build_works(self):
        rec = build_native_rules(tainted_spec(), host=first_build_host())
        assert rec.status == "built", rec.result.stderr
        assert rec.deb is not None
        assert "rules: built" in rec.result.stdout

    def test_dettrace_build_works(self):
        rec = build_dettrace_rules(tainted_spec(), host=first_build_host())
        assert rec.status == "built", rec.result.error
        assert rec.deb is not None

    def test_dettrace_rules_reproducible(self):
        a = build_dettrace_rules(tainted_spec(), host=first_build_host())
        b = build_dettrace_rules(tainted_spec(), host=second_build_host())
        assert a.artifacts == b.artifacts

    def test_native_rules_irreproducible(self):
        a = build_native_rules(tainted_spec(), host=first_build_host())
        b = build_native_rules(tainted_spec(), host=second_build_host())
        assert strip_tree(a.artifacts) != strip_tree(b.artifacts)

    def test_failing_step_propagates(self):
        spec = tainted_spec(uses_sockets=True)   # unsupported in DT
        rec = build_dettrace_rules(spec, host=first_build_host())
        assert rec.status == "unsupported"

    def test_shell_and_python_drivers_agree_on_artifacts(self):
        """The driver is irrelevant to the artifact bytes under DetTrace:
        both orchestrations produce the same determinized .deb."""
        from repro.workloads.debian import build_dettrace

        spec = tainted_spec()
        python_driver = build_dettrace(spec, host=first_build_host())
        shell_driver = build_dettrace_rules(spec, host=first_build_host())
        assert python_driver.deb == shell_driver.deb
