"""Dependency chains against the on-disk mirror (SS6.1)."""
import pytest

from repro.repro_tools import first_build_host, second_build_host, strip_tree
from repro.workloads.debian import (
    Mirror,
    PackageSpec,
    build_chain,
    build_with_deps,
)

LIBFOO = PackageSpec(name="libfoo", n_sources=2, embeds_timestamp=True)
LIBBAR = PackageSpec(name="libbar", n_sources=2, build_depends=("libfoo",),
                     embeds_random_symbols=True)
APP = PackageSpec(name="app", n_sources=3,
                  build_depends=("libfoo", "libbar"))

CHAIN = [LIBFOO, LIBBAR, APP]


def hosts_a(i):
    return first_build_host(seed=i)


def hosts_b(i):
    return second_build_host(seed=i)


class TestMirrorMechanics:
    def test_missing_dependency_fails_cleanly(self):
        record = build_with_deps(LIBBAR, Mirror(), dettrace=False,
                                 host=first_build_host())
        assert record.status == "failed"
        assert "not in the mirror" in record.result.stderr

    def test_dependency_installed_and_linked(self):
        debs = build_chain(CHAIN, dettrace=True, host_for=hosts_a)
        assert set(debs) == {"libfoo", "libbar", "app"}
        from repro.workloads.debian import deb_unpack, tar_unpack

        _, data = deb_unpack(debs["app"])
        lib = next(e.content for e in tar_unpack(data)
                   if e.name.endswith("libapp.so"))
        assert b"DEP libfoo" in lib
        assert b"DEP libbar" in lib

    def test_control_lists_build_depends(self):
        from repro.workloads.debian import package_image
        from tests.conftest import make_kernel

        k = make_kernel()
        package_image(APP).install(k, "/build")
        control = k.fs.read_file("/build/debian/control").decode()
        assert "Build-Depends: libfoo, libbar" in control


class TestChainReproducibility:
    def test_dettrace_chain_bitwise_reproducible(self):
        a = build_chain(CHAIN, dettrace=True, host_for=hosts_a)
        b = build_chain(CHAIN, dettrace=True, host_for=hosts_b)
        assert a == b

    def test_native_irreproducibility_cascades(self):
        """libfoo's timestamp taints libbar and app even though those two
        have no taint of their own — the distribution-wide cascade the
        paper's SS2 motivates against."""
        a = build_chain(CHAIN, dettrace=False, host_for=hosts_a)
        b = build_chain(CHAIN, dettrace=False, host_for=hosts_b)
        stripped_a = {k: strip_tree({"x.deb": v})["x.deb"] for k, v in a.items()}
        stripped_b = {k: strip_tree({"x.deb": v})["x.deb"] for k, v in b.items()}
        assert stripped_a["libfoo"] != stripped_b["libfoo"]   # its own taint
        assert stripped_a["libbar"] != stripped_b["libbar"]   # inherited
        assert stripped_a["app"] != stripped_b["app"]         # inherited

    def test_cache_hit_property(self):
        """Reproducible chains enable artifact caching (SS2): rebuilding a
        dependency yields bitwise-identical bytes, so dependents can keep
        their cached artifacts."""
        first = build_chain([LIBFOO], dettrace=True, host_for=hosts_a)
        rebuilt = build_chain([LIBFOO], dettrace=True, host_for=hosts_b)
        assert first["libfoo"] == rebuilt["libfoo"]
