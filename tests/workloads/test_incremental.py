"""Incremental rebuilds: mtime comparisons must stay sensible under the
virtual mtime map (the deeper reason SS5.5 rejects constant mtimes)."""
from repro.core import DetTrace, ContainerConfig
from repro.guest.program import with_args
from repro.repro_tools import first_build_host
from repro.workloads.debian import PackageSpec, TOOLS, package_image
from repro.workloads.debian.buildtools import make_main


def double_make_image(spec):
    """An image whose driver runs make TWICE in one container."""
    image = package_image(spec)

    def driver(sys):
        yield from sys.mkdir_p("obj")
        yield from sys.mkdir_p("dist")
        res = yield from sys.run(TOOLS["configure"])
        assert res.exit_code == 0
        res = yield from sys.run(TOOLS["make"])
        assert res.exit_code == 0
        first_spawns = True
        res = yield from sys.run(TOOLS["make"])   # second make: no-op
        assert res.exit_code == 0
        return 0

    image.add_binary("/bin/double-make", driver)
    return image


class TestIncremental:
    def test_second_make_is_noop_under_dettrace(self):
        """Objects got virtual mtimes NEWER than the (image) sources, so
        the second make recompiles nothing.  With the fixed-mtime
        strawman the comparison would misfire."""
        spec = PackageSpec(name="incr", n_sources=4)
        image = double_make_image(spec)
        result = DetTrace().run(image, "/bin/double-make",
                                host=first_build_host())
        assert result.exit_code == 0, (result.status, result.error)
        assert "nothing to be done" in result.stdout
        # exactly one compile per source across both makes
        assert result.stdout.count("nothing to be done") == 1

    def test_second_make_is_noop_natively(self):
        spec = PackageSpec(name="incr", n_sources=4)
        from repro.core import NativeRunner

        result = NativeRunner().run(double_make_image(spec), "/bin/double-make",
                                    host=first_build_host())
        assert result.exit_code == 0
        assert "nothing to be done" in result.stdout

    def test_touched_source_is_recompiled(self):
        """utime(path) bumps the source past its object: make redoes it."""
        spec = PackageSpec(name="incr2", n_sources=3)
        image = package_image(spec)

        def driver(sys):
            yield from sys.mkdir_p("obj")
            yield from sys.mkdir_p("dist")
            yield from sys.run(TOOLS["configure"])
            yield from sys.run(TOOLS["make"])
            yield from sys.utime(spec.source_path(0))   # touch one source
            res = yield from sys.run(TOOLS["make"])
            return res.exit_code

        image.add_binary("/bin/touch-make", driver)
        result = DetTrace().run(image, "/bin/touch-make",
                                host=first_build_host())
        assert result.exit_code == 0, (result.status, result.error)
        assert "nothing to be done" not in result.stdout
