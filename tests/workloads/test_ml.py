"""The TensorFlow analog (SS7.6)."""
import pytest

from repro.cpu.machine import HASWELL_XEON, HostEnvironment
from repro.workloads.ml import (
    ALEXNET,
    CIFAR10,
    losses_of,
    run_dettrace,
    run_parallel_native,
    run_serial_native,
)


def host(seed, boot=0.0):
    return HostEnvironment(machine=HASWELL_XEON, entropy_seed=seed,
                           boot_epoch=1.7e9 + boot)


class TestTraining:
    def test_parallel_native_trains(self):
        r = run_parallel_native(CIFAR10, host=host(1))
        assert r.succeeded, (r.status, r.error)
        losses = losses_of(r)
        assert len(losses) == CIFAR10.steps
        assert all(line.startswith("step ") for line in losses)

    def test_serial_native_trains(self):
        r = run_serial_native(CIFAR10, host=host(1))
        assert r.succeeded
        assert len(losses_of(r)) == CIFAR10.steps

    def test_dettrace_trains(self):
        r = run_dettrace(CIFAR10, host=host(1))
        assert r.succeeded, (r.status, r.error)
        assert len(losses_of(r)) == CIFAR10.steps


class TestReproducibility:
    def test_parallel_native_losses_vary(self):
        a = run_parallel_native(CIFAR10, host=host(1))
        b = run_parallel_native(CIFAR10, host=host(2, boot=300.0))
        assert losses_of(a) != losses_of(b)

    def test_serialized_native_still_varies(self):
        """SS6.1: 'irreproducible when running natively, even with
        serialized TensorFlow' (the sampling seed)."""
        a = run_serial_native(CIFAR10, host=host(1))
        b = run_serial_native(CIFAR10, host=host(2, boot=300.0))
        assert losses_of(a) != losses_of(b)

    @pytest.mark.parametrize("cfg", [ALEXNET, CIFAR10],
                             ids=["alexnet", "cifar10"])
    def test_dettrace_losses_bit_identical(self, cfg):
        a = run_dettrace(cfg, host=host(1))
        b = run_dettrace(cfg, host=host(2, boot=300.0))
        assert losses_of(a) == losses_of(b)
        assert a.output_tree == b.output_tree


class TestPerformanceShape:
    def test_dettrace_much_slower_than_parallel_native(self):
        par = run_parallel_native(ALEXNET, host=host(1)).wall_time
        dt = run_dettrace(ALEXNET, host=host(1)).wall_time
        assert dt / par > 8.0   # paper: 17.49x

    def test_dettrace_close_to_serialized_native(self):
        ser = run_serial_native(CIFAR10, host=host(1)).wall_time
        dt = run_dettrace(CIFAR10, host=host(1)).wall_time
        assert dt / ser < 1.6   # paper: 1.08x

    def test_alexnet_overhead_exceeds_cifar10(self):
        """alexnet synchronizes more per unit compute (SS7.6 ordering)."""
        ratios = {}
        for cfg in (ALEXNET, CIFAR10):
            ser = run_serial_native(cfg, host=host(1)).wall_time
            dt = run_dettrace(cfg, host=host(1)).wall_time
            ratios[cfg.name] = dt / ser
        assert ratios["alexnet"] > ratios["cifar10"]
