from collections import Counter

from repro.workloads.debian import CAUSE_WEIGHTS, JOINT_COUNTS, generate_population
from repro.workloads.debian.repository import expected_statuses


class TestPopulation:
    def test_deterministic_per_seed(self):
        assert generate_population(50, seed=1) == generate_population(50, seed=1)
        assert generate_population(50, seed=1) != generate_population(50, seed=2)

    def test_size(self):
        assert len(generate_population(123, seed=0)) == 123

    def test_joint_proportions_approximate_table1(self):
        specs = generate_population(600, seed=4)
        counts = Counter(expected_statuses(s) for s in specs)
        total = sum(JOINT_COUNTS.values())
        for key, paper_count in JOINT_COUNTS.items():
            expected = paper_count / total
            measured = counts.get(key, 0) / len(specs)
            assert abs(measured - expected) < 0.05, (key, measured, expected)

    def test_busy_wait_packages_are_java(self):
        specs = generate_population(400, seed=9)
        for spec in specs:
            if spec.busy_waits:
                assert spec.language == "java"

    def test_unsupported_cause_mix(self):
        specs = [s for s in generate_population(800, seed=2)
                 if s.expect_dt_unsupported]
        causes = Counter(s.unsupported_causes[0] for s in specs)
        assert causes["busy_waits"] > causes["uses_sockets"]
        assert causes["uses_sockets"] > causes["sends_cross_signals"]

    def test_bl_irreproducible_always_has_robust_feature(self):
        for spec in generate_population(400, seed=3):
            eb, _ = expected_statuses(spec)
            if eb == "irreproducible" and not spec.uses_sockets:
                assert any(getattr(spec, f)
                           for f in spec.ROBUST_FEATURE_FIELDS)

    def test_timeout_packages_have_storms(self):
        specs = generate_population(400, seed=5)
        for spec in specs:
            _, ed = expected_statuses(spec)
            assert (ed == "timeout") == (spec.syscall_storm > 0)

    def test_socket_packages_never_generated_bl_reproducible(self):
        for spec in generate_population(500, seed=6):
            if spec.uses_sockets:
                assert expected_statuses(spec)[0] == "irreproducible"
