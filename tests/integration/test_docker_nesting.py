"""SS6.1: 'DetTrace nests within Docker without issue' — the analog:
run DetTrace against an image installed inside an outer chroot jail,
mirroring the paper's Docker-for-distribution + DetTrace-for-determinism
layering."""
from repro.core import ContainerConfig, DetTrace, Image
from repro.cpu.machine import HostEnvironment


def build_program(sys):
    t = yield from sys.time()
    r = yield from sys.urandom(4)
    yield from sys.write_file("artifact", "%d %s" % (t, r.hex()))
    return 0


class TestNesting:
    def test_dettrace_with_relocated_working_dir(self):
        """The outer container determines WHERE the tree lives; DetTrace's
        guarantee is unchanged because the working dir is part of its
        config, not of the computation."""
        image = Image()
        image.add_binary("/bin/build", build_program)
        results = []
        for seed, workdir in ((1, "/docker/overlay1/build"),
                              (2, "/docker/overlay2/build")):
            cfg = ContainerConfig(working_dir=workdir)
            host = HostEnvironment(entropy_seed=seed, boot_epoch=1e9 + seed)
            results.append(DetTrace(cfg).run(image, "/bin/build", host=host))
        # output_tree is relative to the working dir: identical trees even
        # though the outer container put them in different places.
        assert results[0].output_tree == results[1].output_tree

    def test_inner_chroot_jail(self):
        """An outer jail (what Docker's mount namespace provides) around
        the DetTrace working tree."""
        def jailed_driver(sys):
            yield from sys.mkdir_p("/outer/root/work")
            yield from sys.syscall("chroot", path="/outer/root")
            yield from sys.chdir("/work")
            t = yield from sys.time()
            yield from sys.write_file("stamp", str(t))
            data = yield from sys.read_file("stamp")
            return 0 if data else 1

        image = Image()
        image.add_binary("/bin/driver", jailed_driver)
        runs = [DetTrace().run(image, "/bin/driver",
                               host=HostEnvironment(entropy_seed=s))
                for s in (1, 2)]
        for r in runs:
            assert r.exit_code == 0, (r.status, r.error)
        assert runs[0].stdout == runs[1].stdout
