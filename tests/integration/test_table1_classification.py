"""A small Table 1 run: every generated package lands in the category
its features dictate, measured by really double-building it."""
from collections import Counter

import pytest

from repro.repro_tools import reprotest_dettrace, reprotest_native
from repro.workloads.debian import generate_population
from repro.workloads.debian.repository import expected_statuses


@pytest.fixture(scope="module")
def classified():
    specs = generate_population(30, seed=17)
    rows = []
    for spec in specs:
        bl = reprotest_native(spec).verdict
        dt = reprotest_dettrace(spec).verdict
        rows.append((spec, bl, dt))
    return rows


def test_measured_matches_generated_intent(classified):
    for spec, bl, dt in classified:
        assert (bl, dt) == expected_statuses(spec), spec.name


def test_no_reproducible_to_irreproducible_regression(classified):
    for spec, bl, dt in classified:
        if bl == "reproducible":
            assert dt != "irreproducible", spec.name


def test_dettrace_never_irreproducible(classified):
    """Of the 12,130 supported packages, DetTrace rendered every single
    one reproducible — irreproducible-under-DT must not exist."""
    outcomes = Counter(dt for _, _, dt in classified)
    assert outcomes.get("irreproducible", 0) == 0


def test_all_statuses_observed(classified):
    outcomes = Counter(dt for _, _, dt in classified)
    assert outcomes["reproducible"] > 0
    assert outcomes.get("unsupported", 0) + outcomes.get("timeout", 0) > 0
