"""Scale and performance-regression guards."""
import time

import pytest

from repro.repro_tools import first_build_host, reprotest_dettrace
from repro.workloads.debian import PackageSpec, build_dettrace, build_native


BIG = PackageSpec(name="big", n_sources=60, parallel_jobs=8,
                  loc_per_source=400, include_probes=20,
                  embeds_timestamp=True, embeds_random_symbols=True,
                  embeds_fileorder=True, has_tests=True, uses_threads=True)


class TestScale:
    def test_large_parallel_package_builds(self):
        rec = build_dettrace(BIG, host=first_build_host(), timeout=10.0)
        assert rec.status == "built", rec.result.error
        assert rec.result.counters.process_spawns >= 60

    def test_large_package_reproducible(self):
        result = reprotest_dettrace(BIG)
        assert result.verdict == "reproducible"

    def test_simulation_throughput_guard(self):
        """A canary against accidental O(n^2) regressions in the DES or
        scheduler: the big build must stay comfortably under a real-time
        budget (generous: CI machines vary)."""
        start = time.time()
        rec = build_dettrace(BIG, host=first_build_host(), timeout=10.0)
        elapsed = time.time() - start
        assert rec.status == "built"
        assert elapsed < 30.0, "DT build of 60-source package took %.1fs" % elapsed

    def test_event_counts_scale_linearly(self):
        small = PackageSpec(name="s", n_sources=5, include_probes=10)
        large = PackageSpec(name="l", n_sources=20, include_probes=10)
        rec_s = build_dettrace(small, host=first_build_host())
        rec_l = build_dettrace(large, host=first_build_host())
        ratio = (rec_l.result.counters.syscall_events
                 / rec_s.result.counters.syscall_events)
        # 4x the sources -> roughly 2.5-4.5x the syscalls (shared overhead
        # amortizes), definitely not quadratic.
        assert 2.0 < ratio < 6.0
