"""SS7.2: self-hosting correctness (the LLVM bootstrap experiment)."""
import pytest

from repro.repro_tools import first_build_host, second_build_host
from repro.workloads.debian import self_host


@pytest.fixture(scope="module")
def runs():
    return {
        "dt_a": self_host(dettrace=True, host=first_build_host()),
        "dt_b": self_host(dettrace=True, host=second_build_host()),
        "native": self_host(dettrace=False, host=first_build_host()),
    }


class TestSelfHost:
    def test_both_stages_build(self, runs):
        for key, result in runs.items():
            assert result.succeeded, (key, result.stage2.error)

    def test_dettrace_bootstrap_bitwise_reproducible(self, runs):
        """Stage 2 built by a DetTrace-built compiler is itself a pure
        function of the inputs — across different host environments."""
        assert runs["dt_a"].stage2_deb == runs["dt_b"].stage2_deb

    def test_native_bootstrap_diverges(self, runs):
        """Natively the stage-1 compiler's bits differ per run, and the
        divergence propagates into every stage-2 object."""
        other = self_host(dettrace=False, host=second_build_host())
        assert runs["native"].stage2_deb != other.stage2_deb

    def test_same_test_outcomes_as_baseline(self, runs):
        """'We ran the LLVM build under DetTrace ... and received the
        same test outcomes' (SS7.2)."""
        assert runs["dt_a"].test_outcomes == runs["native"].test_outcomes
        assert "passed" in runs["dt_a"].test_outcomes

    def test_compiler_identity_feeds_stage2(self, runs):
        """The bootstrap is real: stage-2 objects embed the stage-1
        compiler's identity stamp."""
        from repro.workloads.debian import deb_unpack, tar_unpack

        _, data_tar = deb_unpack(runs["dt_a"].stage2_deb)
        lib = next(e.content for e in tar_unpack(data_tar)
                   if e.name.endswith(".so"))
        assert b"CCID " in lib
