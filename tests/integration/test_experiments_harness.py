"""Smoke the EXPERIMENTS.md generator at a tiny scale."""
import pytest

from repro.analysis.experiments import generate


class TestGenerator:
    @pytest.fixture(scope="class")
    def text(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("exp") / "EXPERIMENTS.md"
        return generate(scale=0.15, out=str(out),
                        sections=["table1", "fig6", "tf", "correctness"],
                        quiet=True)

    def test_sections_rendered(self, text):
        assert "## Table 1" in text
        assert "## Figure 6" in text
        assert "## §7.6" in text
        assert "## §7.2" in text

    def test_headline_claims_present(self, text):
        assert "tar workaround" in text
        assert "clustal" in text and "raxml" in text
        assert "alexnet" in text and "cifar10" in text

    def test_paper_columns_present(self, text):
        assert "72.65%" in text
        assert "0.29" in text  # raxml paper DT@1
