"""SS7.3: bitwise-identical builds across different machines."""
import pytest

from repro.core import ContainerConfig, ablated
from repro.cpu.machine import (
    BROADWELL_XEON,
    HASWELL_XEON,
    OLD_KERNEL_SKYLAKE,
    SANDY_BRIDGE,
    SKYLAKE_CLOUDLAB,
)
from repro.repro_tools import (
    IRREPRODUCIBLE,
    REPRODUCIBLE,
    reprotest_dettrace,
    reprotest_portability,
)
from repro.workloads.debian import PackageSpec


def porta_spec(**kw):
    defaults = dict(name="porta", n_sources=4, parallel_jobs=2,
                    embeds_timestamp=True, embeds_tree_size=True,
                    embeds_random_symbols=True, embeds_uname=True,
                    embeds_cpu_count=True)
    defaults.update(kw)
    return PackageSpec(**defaults)


class TestCrossMachine:
    def test_skylake_vs_broadwell_bitwise_identical(self):
        result = reprotest_portability(porta_spec(), SKYLAKE_CLOUDLAB,
                                       BROADWELL_XEON)
        assert result.verdict == REPRODUCIBLE

    def test_skylake_vs_haswell(self):
        result = reprotest_portability(porta_spec(), SKYLAKE_CLOUDLAB,
                                       HASWELL_XEON)
        assert result.verdict == REPRODUCIBLE

    def test_old_kernel_still_portable_but_slower_path(self):
        result = reprotest_portability(porta_spec(), SKYLAKE_CLOUDLAB,
                                       OLD_KERNEL_SKYLAKE)
        assert result.verdict == REPRODUCIBLE

    def test_directory_size_extension_is_the_fix(self):
        """The exact SS7.3 discovery: directory sizes vary across
        filesystems even for identical trees; DetTrace's deterministic
        size function is what restores portability."""
        result = reprotest_portability(
            porta_spec(), SKYLAKE_CLOUDLAB, BROADWELL_XEON,
            config=ablated("deterministic_dir_sizes"))
        assert result.verdict == IRREPRODUCIBLE
        assert any("SRC_TREE" in d.detail or "content" in d.detail
                   for d in result.diff.differences)

    def test_dir_sizes_alone_do_not_break_single_machine_runs(self):
        """'This behavior had not arisen across any of our previous
        experiments which used a single machine type' (SS7.3)."""
        result = reprotest_dettrace(porta_spec(),
                                    config=ablated("deterministic_dir_sizes"))
        assert result.verdict == REPRODUCIBLE


class TestPortabilityLimits:
    def test_sandy_bridge_cpuid_leak(self):
        """Pre-Ivy-Bridge machines cannot mask cpuid (SS5.8): a package
        that records cpuid output is NOT portable from Sandy Bridge."""
        def record_cpu(sys):
            cpu = yield from sys.instr("cpuid")
            yield from sys.write_file("cpu.txt", cpu.brand)
            return 0

        from repro.core import DetTrace, Image
        from repro.cpu.machine import HostEnvironment

        img = Image()
        img.add_binary("/bin/main", record_cpu)
        on_sandy = DetTrace().run(img, "/bin/main",
                                  host=HostEnvironment(machine=SANDY_BRIDGE))
        on_skylake = DetTrace().run(img, "/bin/main",
                                    host=HostEnvironment(machine=SKYLAKE_CLOUDLAB))
        assert on_sandy.output_tree != on_skylake.output_tree
