"""Ablating thread serialization (SS5.7): 'While many prior deterministic
execution systems support thread-level parallelism, we focus on ...' —
without serialization, float32 reduction order races and training losses
stop being reproducible."""
import pytest

from repro.core import ablated
from repro.cpu.machine import HASWELL_XEON, HostEnvironment
from repro.workloads.ml import CIFAR10, losses_of, run_dettrace


def host(seed):
    return HostEnvironment(machine=HASWELL_XEON, entropy_seed=seed,
                           boot_epoch=1.7e9 + seed * 99.5)


class TestThreadSerializationAblation:
    def test_serialized_threads_reproduce_losses(self):
        a = run_dettrace(CIFAR10, host=host(1))
        b = run_dettrace(CIFAR10, host=host(2))
        assert losses_of(a) == losses_of(b)

    def test_unserialized_threads_race(self):
        cfg = ablated("serialize_threads")
        runs = [run_dettrace(CIFAR10, host=host(s), config=cfg)
                for s in (1, 2, 3)]
        for r in runs:
            assert r.succeeded, (r.status, r.error)
        losses = {tuple(losses_of(r)) for r in runs}
        # Sampling is still determinized (PRNG + logical time), but the
        # float32 accumulation order now depends on the jittered thread
        # interleaving: at least one pair of runs diverges.
        assert len(losses) > 1

    def test_unserialized_is_faster(self):
        """The flip side: unserialized threads actually use the cores —
        the tradeoff the paper explicitly makes (SS1, SS5.7)."""
        serialized = run_dettrace(CIFAR10, host=host(5))
        parallel = run_dettrace(CIFAR10, host=host(5),
                                config=ablated("serialize_threads"))
        assert parallel.wall_time < serialized.wall_time * 0.5
