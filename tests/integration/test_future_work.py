"""The paper's future-work items, implemented as container extensions:
container-internal socket IPC (SS5.9) and checksum-pinned downloads (SS3)."""
import hashlib

import pytest

from repro.core import ContainerConfig, DetTrace, Image, NativeRunner, ablated
from repro.core.container import UNSUPPORTED
from repro.cpu.machine import HostEnvironment
from tests.conftest import dettrace_run


class TestSocketpairIPC:
    def make_program(self):
        def main(sys):
            a, b = yield from sys.socketpair()

            def server(wsys):
                fd = wsys.mem["server_fd"]
                request = yield from wsys.read_exact(fd, 5)
                nonce = yield from wsys.urandom(2)
                yield from wsys.write_all(fd, b"resp:" + request + nonce.hex().encode())

            sys.mem["server_fd"] = b
            yield from sys.spawn_thread(server)
            yield from sys.write_all(a, b"query")
            reply = yield from sys.read_exact(a, 14)
            yield from sys.write_file("reply", reply)
            return 0

        return main

    def test_ipc_roundtrip_reproducible(self):
        main = self.make_program()
        results = [dettrace_run(main, host=HostEnvironment(entropy_seed=s))
                   for s in (1, 2)]
        for r in results:
            assert r.exit_code == 0, (r.status, r.error)
        assert results[0].output_tree == results[1].output_tree
        assert results[0].output_tree["reply"].startswith(b"resp:query")

    def test_can_be_disabled(self):
        main = self.make_program()
        r = dettrace_run(main, config=ablated("allow_container_ipc_sockets"))
        assert r.status == UNSUPPORTED

    def test_network_sockets_still_rejected(self):
        def main(sys):
            yield from sys.socketpair()   # fine
            yield from sys.socket()       # network: still unsupported
            return 0

        r = dettrace_run(main)
        assert r.status == UNSUPPORTED
        assert "socket" in r.error

    def test_bidirectional(self):
        def main(sys):
            a, b = yield from sys.socketpair()
            yield from sys.write_all(a, b"to-b")
            yield from sys.write_all(b, b"to-a")
            got_b = yield from sys.read_exact(b, 4)
            got_a = yield from sys.read_exact(a, 4)
            return 0 if (got_b, got_a) == (b"to-b", b"to-a") else 1

        assert dettrace_run(main).exit_code == 0


class TestChecksummedDownloads:
    BODY = b"upstream-tarball-v2"

    def image(self):
        def main(sys):
            body, headers = yield from sys.download("https://mirror/x.tar")
            yield from sys.write_file(
                "fetched", body + b"|" + headers["Date"].encode()
                + b"|" + headers["X-Request-Id"].encode())
            return 0

        img = Image()
        img.add_binary("/bin/main", main)
        img.add_url("https://mirror/x.tar", self.BODY)
        return img

    def pinned_config(self, body=None):
        digest = hashlib.sha256(body or self.BODY).hexdigest()
        return ContainerConfig(allowed_downloads={"https://mirror/x.tar": digest})

    def test_native_downloads_taint_artifacts(self):
        a = NativeRunner().run(self.image(), "/bin/main",
                               host=HostEnvironment(boot_epoch=1e9))
        b = NativeRunner().run(self.image(), "/bin/main",
                               host=HostEnvironment(boot_epoch=2e9))
        assert a.output_tree != b.output_tree

    def test_pinned_download_reproducible(self):
        runs = [DetTrace(self.pinned_config()).run(
                    self.image(), "/bin/main",
                    host=HostEnvironment(boot_epoch=e, entropy_seed=s))
                for e, s in ((1e9, 1), (2e9, 2))]
        for r in runs:
            assert r.exit_code == 0, (r.status, r.error)
        assert runs[0].output_tree == runs[1].output_tree
        assert self.BODY in runs[0].output_tree["fetched"]

    def test_unpinned_url_is_reproducible_error(self):
        r = DetTrace().run(self.image(), "/bin/main")
        assert r.status == UNSUPPORTED
        assert "pinned checksum" in r.error

    def test_checksum_mismatch_detected(self):
        cfg = self.pinned_config(body=b"tampered-content")
        r = DetTrace(cfg).run(self.image(), "/bin/main")
        assert r.status == UNSUPPORTED
        assert "mismatch" in r.error

    def test_connection_refused_for_unknown_host(self):
        from repro.kernel.errors import Errno, SyscallError

        def main(sys):
            try:
                yield from sys.download("https://nowhere/void")
            except SyscallError as err:
                return 0 if err.errno == Errno.ECONNREFUSED else 1
            return 1

        cfg = ContainerConfig(allowed_downloads={"https://nowhere/void": "0" * 64})
        img = Image()
        img.add_binary("/bin/main", main)
        r = DetTrace(cfg).run(img, "/bin/main")
        assert r.exit_code == 0
