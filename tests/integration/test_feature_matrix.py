"""Per-feature reproducibility matrix: each irreproducibility vector,
alone, makes the baseline vary under reprotest — and DetTrace masks it.
This is the mechanism-level version of Table 1.
"""
import pytest

from repro.repro_tools import (
    IRREPRODUCIBLE,
    REPRODUCIBLE,
    reprotest_dettrace,
    reprotest_native,
)
from repro.workloads.debian import PackageSpec

#: Every robust feature, exercised in isolation.
ROBUST_FEATURES = list(PackageSpec.ROBUST_FEATURE_FIELDS)


def spec_with(feature):
    kwargs = {feature: True}
    return PackageSpec(name="fx-" + feature.replace("_", "-"),
                       n_sources=3, parallel_jobs=1, **kwargs)


@pytest.mark.parametrize("feature", ROBUST_FEATURES)
def test_feature_breaks_baseline(feature):
    assert reprotest_native(spec_with(feature)).verdict == IRREPRODUCIBLE


@pytest.mark.parametrize("feature", ROBUST_FEATURES)
def test_dettrace_masks_feature(feature):
    assert reprotest_dettrace(spec_with(feature)).verdict == REPRODUCIBLE


@pytest.mark.parametrize("feature", ["embeds_fileorder", "embeds_parallel_order",
                                     "embeds_benchmark", "embeds_uname"])
def test_dettrace_masks_chancy_features_too(feature):
    """Chancy vectors may or may not break a given baseline double-build,
    but DetTrace always pins them."""
    spec = PackageSpec(name="fx", n_sources=6, parallel_jobs=3,
                       **{feature: True})
    assert reprotest_dettrace(spec).verdict == REPRODUCIBLE


def test_everything_at_once():
    kwargs = {f: True for f in PackageSpec.FEATURE_FIELDS}
    spec = PackageSpec(name="kitchen-sink", n_sources=6, parallel_jobs=4,
                       has_tests=True, uses_threads=True, **kwargs)
    assert reprotest_native(spec).verdict == IRREPRODUCIBLE
    assert reprotest_dettrace(spec).verdict == REPRODUCIBLE


def test_paper_claim_no_regressions():
    """Table 1: packages reproducible in the baseline NEVER become
    irreproducible under DetTrace."""
    for n_sources in (1, 3, 6):
        spec = PackageSpec(name="clean%d" % n_sources, n_sources=n_sources,
                           parallel_jobs=2, has_tests=True)
        assert reprotest_native(spec).verdict == REPRODUCIBLE
        assert reprotest_dettrace(spec).verdict == REPRODUCIBLE
