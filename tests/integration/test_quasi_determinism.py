"""Quasi-determinism (SS3): runs agree bitwise, or at least one crashes
with an external error (disk full)."""
import dataclasses

from repro.core import ContainerConfig, DetTrace
from repro.cpu.machine import HostEnvironment
from repro.workloads.debian import PackageSpec, package_image
from repro.workloads.debian.buildtools import TOOLS


def run_with_disk(spec, disk_bytes, seed):
    host = HostEnvironment(entropy_seed=seed, disk_free_bytes=disk_bytes)
    return DetTrace(ContainerConfig(timeout=5.0)).run(
        package_image(spec), TOOLS["driver"], argv=["dpkg-buildpackage"],
        host=host)


class TestDiskFull:
    def test_both_runs_fail_identically_under_same_cap(self):
        """The injected failure point is itself deterministic: same cap,
        same failure."""
        spec = PackageSpec(name="dq", n_sources=3)
        a = run_with_disk(spec, 4000, seed=1)
        b = run_with_disk(spec, 4000, seed=2)
        assert a.exit_code == b.exit_code
        assert a.stderr == b.stderr

    def test_quasi_determinism_property(self):
        """For any cap: either both runs produce identical artifacts, or
        at least one failed with the external error."""
        spec = PackageSpec(name="dq2", n_sources=2)
        for cap in (2000, 8000, 50_000, None):
            a = run_with_disk(spec, cap, seed=3)
            b = run_with_disk(spec, cap, seed=4)
            if a.exit_code == 0 and b.exit_code == 0:
                assert a.output_tree == b.output_tree
            else:
                assert a.exit_code != 0 or b.exit_code != 0

    def test_unlimited_disk_succeeds(self):
        spec = PackageSpec(name="dq3", n_sources=2)
        assert run_with_disk(spec, None, seed=5).exit_code == 0
