"""Quasi-determinism (§3): runs agree bitwise, or at least one fails
*reproducibly* — now exercised across the whole fault matrix of
``repro.faults`` rather than just the legacy disk-full cap."""
import pytest

from repro.core import ContainerConfig, DetTrace, Image
from repro.cpu.machine import HostEnvironment
from repro.faults import ALL_FAULT_KINDS, FaultPlan, FaultRule, storm
from repro.faults.verify import (
    diff_fingerprints,
    result_fingerprint,
    verify_quasi_determinism,
)
from repro.workloads.debian import PackageSpec, package_image
from repro.workloads.debian.buildtools import TOOLS


def run_with_disk(spec, disk_bytes, seed):
    host = HostEnvironment(entropy_seed=seed, disk_free_bytes=disk_bytes)
    return DetTrace(ContainerConfig(timeout=5.0)).run(
        package_image(spec), TOOLS["driver"], argv=["dpkg-buildpackage"],
        host=host)


class TestDiskFull:
    def test_both_runs_fail_identically_under_same_cap(self):
        """The injected failure point is itself deterministic: same cap,
        same failure."""
        spec = PackageSpec(name="dq", n_sources=3)
        a = run_with_disk(spec, 4000, seed=1)
        b = run_with_disk(spec, 4000, seed=2)
        assert a.exit_code == b.exit_code
        assert a.stderr == b.stderr

    def test_quasi_determinism_property(self):
        """For any cap: either both runs produce identical artifacts, or
        at least one failed with the external error."""
        spec = PackageSpec(name="dq2", n_sources=2)
        for cap in (2000, 8000, 50_000, None):
            a = run_with_disk(spec, cap, seed=3)
            b = run_with_disk(spec, cap, seed=4)
            if a.exit_code == 0 and b.exit_code == 0:
                assert a.output_tree == b.output_tree
            else:
                assert a.exit_code != 0 or b.exit_code != 0

    def test_unlimited_disk_succeeds(self):
        spec = PackageSpec(name="dq3", n_sources=2)
        assert run_with_disk(spec, None, seed=5).exit_code == 0


# ---------------------------------------------------------------------------
# The fault matrix: every fault kind, verified as an executable property.
# ---------------------------------------------------------------------------

def _child(sys):
    yield from sys.write_file("child.txt", b"from child\n")
    return 0


def _workload(sys):
    """A guest exercising every fault surface: file IO, directory
    listing, process spawning, device reads, the lot."""
    yield from sys.mkdir_p("out")
    yield from sys.write_file("out/data.bin", b"0123456789" * 20)
    data = yield from sys.read_file("out/data.bin")
    yield from sys.write_file("out/copy.bin", data)
    names = yield from sys.listdir("out")
    yield from sys.println(",".join(sorted(names)))
    res = yield from sys.run("/bin/child")
    yield from sys.println("child exit %d" % res.status)
    noise = yield from sys.urandom(8)
    yield from sys.write_file("out/noise.bin", noise)
    return 0


def workload_image() -> Image:
    image = Image()
    image.add_binary("/bin/main", _workload)
    image.add_binary("/bin/child", _child)
    return image


#: One representative storm per fault kind, each aimed at syscalls the
#: workload actually issues.
MATRIX_PLANS = {
    "enospc": storm("enospc", syscall="write", start=5, count=3),
    "eio": storm("eio", syscall="read", start=3, count=2),
    "eintr": storm("eintr", syscall="write", start=2, count=4),
    "eagain": storm("eagain", syscall="read", start=1, count=2),
    "enfile": storm("enfile", start=0, count=2),
    "emfile": storm("emfile", start=4, count=1),
    "enomem": storm("enomem", count=2),
    "short_read": storm("short_read", keep_bytes=3, count=5),
    "short_write": storm("short_write", keep_bytes=2, count=5),
    "signal": storm("signal", signum=15, start=6, count=2),
    "disk_full": storm("disk_full", bytes=128),
    "kill": storm("kill", at_tick=25),
}


def test_matrix_covers_every_fault_kind():
    assert set(MATRIX_PLANS) == set(ALL_FAULT_KINDS)


@pytest.mark.faults
class TestFaultMatrix:
    @pytest.mark.parametrize("kind", sorted(MATRIX_PLANS))
    def test_replay_identity_and_unfaulted_invariance(self, kind):
        """Same image + same plan => byte-identical outcome (including
        the failure); empty plan => identical to the unfaulted run."""
        report = verify_quasi_determinism(
            workload_image, "/bin/main", plan=MATRIX_PLANS[kind])
        assert report.ok, report.format()

    @pytest.mark.parametrize("kind", sorted(MATRIX_PLANS))
    def test_every_plan_actually_fires(self, kind):
        """The matrix is only meaningful if each storm injects."""
        cfg = ContainerConfig(fault_plan=MATRIX_PLANS[kind])
        r = DetTrace(cfg).run(workload_image(), "/bin/main",
                              host=HostEnvironment(entropy_seed=1))
        assert r.counters.faults_injected > 0 or (
            r.crash_report is not None and r.crash_report.fault_trace)

    def test_inert_plan_is_invariant_with_baseline(self):
        """A plan whose rules never match leaves the run byte-identical
        to the unfaulted baseline (the plane itself perturbs nothing)."""
        inert = FaultPlan(rules=(
            FaultRule(fault="eio", pid=9999),
            FaultRule(fault="signal", syscall="no_such_syscall"),
        ))
        host = HostEnvironment(entropy_seed=3)
        base = DetTrace(ContainerConfig()).run(
            workload_image(), "/bin/main", host=host)
        faulted = DetTrace(ContainerConfig(fault_plan=inert)).run(
            workload_image(), "/bin/main", host=host)
        assert faulted.counters.faults_injected == 0
        delta = diff_fingerprints(result_fingerprint(base),
                                  result_fingerprint(faulted))
        assert not delta, delta

    def test_combined_storm_still_reproducible(self):
        """All the kinds at once — adversity compounds, determinism holds."""
        plan = FaultPlan(rules=tuple(
            rule for p in MATRIX_PLANS.values() for rule in p))
        report = verify_quasi_determinism(workload_image, "/bin/main",
                                          plan=plan)
        assert report.ok, report.format()


@pytest.mark.faults
class TestSupervisedQuasiDeterminism:
    def test_supervised_transient_storm_is_reproducible(self):
        """The retry loop (attempt coordinates, backoff, attempt log) is
        as reproducible as a single run."""
        plan = storm("eio", syscall="write", start=2, count=50,
                     transient=True)
        report = verify_quasi_determinism(workload_image, "/bin/main",
                                          plan=plan, supervised=True)
        assert report.ok, report.format()

    def test_supervised_persistent_storm_is_reproducible(self):
        plan = storm("enospc", syscall="write", start=0, count=500)
        report = verify_quasi_determinism(workload_image, "/bin/main",
                                          plan=plan, supervised=True)
        assert report.ok, report.format()
