"""Each SS5 mechanism is load-bearing: ablate it and the workload that
exercises it becomes irreproducible under DetTrace."""
import pytest

from repro.core import ablated
from repro.repro_tools import (
    IRREPRODUCIBLE,
    REPRODUCIBLE,
    reprotest_dettrace,
)
from repro.workloads.debian import PackageSpec

#: (ablated feature, the package flag whose masking depends on it)
CASES = [
    ("virtualize_time", dict(embeds_timestamp=True)),
    ("deterministic_randomness", dict(embeds_random_symbols=True)),
    ("trap_rdtsc", dict(embeds_tmpnames=True)),
    ("deterministic_pids", dict(embeds_pid=True)),
    ("disable_aslr", dict(embeds_aslr=True)),
    ("virtualize_inodes", dict(embeds_inode=True)),
    ("canonical_env", dict(embeds_env=True)),
    ("mask_machine", dict(embeds_cpu_count=True)),
]


@pytest.mark.parametrize("feature,flags", CASES,
                         ids=[c[0] for c in CASES])
def test_ablation_breaks_matching_workload(feature, flags):
    spec = PackageSpec(name="abl", n_sources=2, parallel_jobs=1, **flags)
    assert reprotest_dettrace(spec).verdict == REPRODUCIBLE
    assert reprotest_dettrace(spec, config=ablated(feature)).verdict == IRREPRODUCIBLE


def test_locale_needs_canonical_env():
    spec = PackageSpec(name="loc", language="doc", embeds_locale_date=True)
    assert reprotest_dettrace(spec).verdict == REPRODUCIBLE
    assert (reprotest_dettrace(spec, config=ablated("canonical_env")).verdict
            == IRREPRODUCIBLE)


def test_build_path_needs_container_workdir():
    """The /build bind-mount hides the host build path; running the
    container 'in place' at the host path leaks it."""
    import dataclasses

    from repro.core import ContainerConfig
    from repro.repro_tools.reprotest import _double_build
    from repro.repro_tools.variations import host_pair
    from repro.workloads.debian.builder import build_dettrace

    spec = PackageSpec(name="bp", embeds_build_path=True)
    assert reprotest_dettrace(spec).verdict == REPRODUCIBLE

    hosts = host_pair()

    def build_in_place(s, h):
        cfg = ContainerConfig(working_dir=h.build_path)
        return build_dettrace(s, config=cfg, host=h)

    result = _double_build(spec, build_in_place, hosts, strip=False)
    assert result.verdict == IRREPRODUCIBLE


def test_getdents_sorting_is_load_bearing_for_fileorder():
    spec = PackageSpec(name="fo", n_sources=8, embeds_fileorder=True)
    assert reprotest_dettrace(spec).verdict == REPRODUCIBLE
    # With sorting off, the two boots' dirent hash salts leak through.
    assert (reprotest_dettrace(spec, config=ablated("sort_getdents")).verdict
            == IRREPRODUCIBLE)


def test_strict_scheduler_also_reproducible_for_sequential_build():
    from repro.core import ContainerConfig

    spec = PackageSpec(name="st", n_sources=3, parallel_jobs=1,
                       embeds_timestamp=True)
    cfg = ContainerConfig(scheduler="strict")
    assert reprotest_dettrace(spec, config=cfg).verdict == REPRODUCIBLE
