"""Shared fixtures: hosts, kernels, and tiny guest images."""

from __future__ import annotations

import pytest

from repro.core import ContainerConfig, DetTrace, Image, NativeRunner
from repro.cpu.machine import HASWELL_XEON, SKYLAKE_CLOUDLAB, HostEnvironment


@pytest.fixture
def host():
    """A deterministic single host environment."""
    return HostEnvironment(entropy_seed=42)


@pytest.fixture
def host_pair_same_machine():
    """Two different boots of the same machine."""
    a = HostEnvironment(entropy_seed=1, boot_epoch=1.6e9, pid_start=1000,
                        inode_start=100_000, dirent_hash_salt=5)
    b = HostEnvironment(entropy_seed=2, boot_epoch=1.7e9, pid_start=4321,
                        inode_start=900_000, dirent_hash_salt=99)
    return a, b


def make_kernel(host=None):
    from repro.kernel import Kernel

    return Kernel(host or HostEnvironment(entropy_seed=7))


@pytest.fixture
def kernel():
    return make_kernel()


def run_guest(program, host=None, fs_setup=None, argv=None, binaries=None):
    """Boot a kernel, run *program* as init, return the kernel."""
    k = make_kernel(host)
    k.fs.mkdirs("/tmp")
    k.fs.mkdirs("/build")
    if fs_setup is not None:
        fs_setup(k)
    for path, factory in (binaries or {}).items():
        k.register_binary(path, factory)
    k.register_binary("/bin/main", program)
    proc = k.boot("/bin/main", argv=argv, cwd_path="/build")
    k.run(deadline=500.0)
    return k, proc


def image_of(program, extra_binaries=None) -> Image:
    img = Image()
    img.add_binary("/bin/main", program)
    for path, factory in (extra_binaries or {}).items():
        img.add_binary(path, factory)
    return img


def dettrace_run(program, host=None, config=None, extra_binaries=None):
    return DetTrace(config or ContainerConfig()).run(
        image_of(program, extra_binaries), "/bin/main", host=host)


def native_run(program, host=None, extra_binaries=None):
    return NativeRunner().run(image_of(program, extra_binaries), "/bin/main",
                              host=host)
