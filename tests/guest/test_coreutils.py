"""Busybox toolbox programs."""
import pytest

from repro.core import DetTrace, Image, NativeRunner
from repro.cpu.machine import HostEnvironment
from repro.guest.coreutils import COREUTILS_PATHS, install_coreutils


def toolbox_run(tool, argv_rest=(), native=False, seed=1, files=None):
    image = Image()
    install_coreutils(image)

    def setup(kernel, build_dir):
        for path, data in (files or {}).items():
            kernel.fs.write_file(build_dir + "/" + path, data,
                                 now=kernel.host.boot_epoch)

    image.on_setup(setup)
    host = HostEnvironment(entropy_seed=seed, boot_epoch=1.6e9 + seed * 77.7017)
    runner = NativeRunner() if native else DetTrace()
    return runner.run(image, COREUTILS_PATHS[tool],
                      argv=[tool] + list(argv_rest), host=host)


class TestTools:
    def test_date_inside_container_is_the_appendix_date(self):
        r = toolbox_run("date")
        assert r.stdout == "Aug  8 22:00:00 1993 UTC\n"

    def test_date_native_is_wall_clock(self):
        a = toolbox_run("date", native=True, seed=1)
        b = toolbox_run("date", native=True, seed=2)
        assert a.stdout != b.stdout

    def test_ls_plain_and_long(self):
        r = toolbox_run("ls", ["/etc"])
        assert set(r.stdout.split()) == {"hostname", "os-release"}
        r = toolbox_run("ls", ["-l", "/etc"])
        assert "hostname" in r.stdout
        assert "1970" in r.stdout  # virtual mtime 0 for image files

    def test_stat_deterministic_fields(self):
        r = toolbox_run("stat", ["/etc/hostname"])
        assert "Inode: " in r.stdout
        assert "Modify: Jan  1 00:00:00 1970 UTC" in r.stdout

    def test_cat_and_wc(self):
        r = toolbox_run("cat", ["data"], files={"data": b"abc\n"})
        assert r.stdout == "abc\n"
        r = toolbox_run("wc", ["data"], files={"data": b"a b\nc\n"})
        assert r.stdout == "2 3 6\n"

    def test_sha256sum(self):
        r = toolbox_run("sha256sum", ["data"], files={"data": b"fixed"})
        assert r.exit_code == 0
        digest = r.stdout.split()[0]
        import hashlib
        assert digest == hashlib.sha256(b"fixed").hexdigest()

    def test_sha256sum_missing_file(self):
        r = toolbox_run("sha256sum", ["ghost"])
        assert r.exit_code == 1
        assert "unreadable" in r.stderr

    def test_mktemp_deterministic_in_container(self):
        a = toolbox_run("mktemp", seed=1)
        b = toolbox_run("mktemp", seed=2)
        assert a.stdout == b.stdout

    def test_mktemp_varies_natively(self):
        a = toolbox_run("mktemp", native=True, seed=1)
        b = toolbox_run("mktemp", native=True, seed=2)
        assert a.stdout != b.stdout

    def test_head(self):
        data = b"".join(b"line%d\n" % i for i in range(20))
        r = toolbox_run("head", ["-n", "3", "data"], files={"data": data})
        assert r.stdout == "line0\nline1\nline2\n"

    def test_cp_touch_rm(self):
        r = toolbox_run("cp", ["a", "b"], files={"a": b"content"})
        assert r.output_tree["b"] == b"content"
        r = toolbox_run("touch", ["fresh"])
        assert r.output_tree["fresh"] == b""
        r = toolbox_run("rm", ["a"], files={"a": b"x"})
        assert "a" not in r.output_tree

    def test_uname_and_hostname_masked(self):
        r = toolbox_run("uname", ["-a"])
        assert "dettrace 4.0.0" in r.stdout
        r = toolbox_run("hostname")
        assert r.stdout == "dettrace\n"

    def test_nproc_is_one_inside(self):
        assert toolbox_run("nproc").stdout == "1\n"

    def test_nproc_native_shows_real_cores(self):
        r = toolbox_run("nproc", native=True)
        assert int(r.stdout) > 1

    def test_env_sorted_and_canonical(self):
        r = toolbox_run("env")
        lines = r.stdout.splitlines()
        assert lines == sorted(lines)
        assert "TZ=UTC" in lines


class TestToolboxReproducibility:
    @pytest.mark.parametrize("tool,args", [
        ("date", []),
        ("ls", ["-l", "/etc"]),
        ("stat", ["/etc/hostname"]),
        ("mktemp", []),
        ("env", []),
        ("uname", ["-a"]),
    ])
    def test_every_tool_reproducible_in_container(self, tool, args):
        a = toolbox_run(tool, args, seed=1)
        b = toolbox_run(tool, args, seed=2)
        assert a.stdout == b.stdout
        assert a.output_tree == b.output_tree


class TestExtendedTools:
    def test_grep(self):
        r = toolbox_run("grep", ["nee", "f"],
                        files={"f": b"haystack\nneedle here\nnope\n"})
        assert r.stdout == "needle here\n"
        assert r.exit_code == 0
        r = toolbox_run("grep", ["missing", "f"], files={"f": b"x\n"})
        assert r.exit_code == 1

    def test_sort(self):
        r = toolbox_run("sort", ["f"], files={"f": b"c\na\nb\n"})
        assert r.stdout == "a\nb\nc\n"

    def test_diff_identical_and_different(self):
        r = toolbox_run("diff", ["a", "b"], files={"a": b"x\n", "b": b"x\n"})
        assert r.exit_code == 0
        r = toolbox_run("diff", ["a", "b"], files={"a": b"x\n", "b": b"y\n"})
        assert r.exit_code == 1
        assert "1c1" in r.stdout

    def test_seq(self):
        assert toolbox_run("seq", ["3"]).stdout == "1\n2\n3\n"
        assert toolbox_run("seq", ["2", "4"]).stdout == "2\n3\n4\n"

    def test_sleep_is_free_in_container(self):
        r = toolbox_run("sleep", ["500"])
        assert r.exit_code == 0
        assert r.wall_time < 1.0  # NOP'd (SS5.4)

    def test_ln_symbolic_and_hard(self):
        r = toolbox_run("ln", ["-s", "target", "link"], files={"target": b"T"})
        assert r.output_tree["link"] == b"->target"
        r = toolbox_run("ln", ["a", "b"], files={"a": b"data"})
        assert r.output_tree["b"] == b"data"

    def test_find_recursive_sorted(self):
        r = toolbox_run("find", ["."],
                        files={"d/x": b"", "d/sub/y": b"", "top": b""})
        lines = r.stdout.splitlines()
        assert "./d/sub/y" in lines
        assert "./top" in lines

    def test_readlink_tool(self):
        r = toolbox_run("readlink", ["ln"], files={"t": b""})
        # make the link first via a shell-free setup: use ln tool instead
        r = toolbox_run("ln", ["-s", "/etc/hostname", "ln"])
        assert r.exit_code == 0

    def test_pipeline_of_new_tools_in_shell(self):
        from repro.core import DetTrace, Image
        from repro.cpu.machine import HostEnvironment
        from repro.guest.coreutils import install_coreutils

        image = Image()
        install_coreutils(image)
        script = (b"seq 9 > nums\n"
                  b"grep 1 nums > ones\n"
                  b"sort ones | head -n 2 > out\n")
        image.on_setup(lambda k, bd: k.fs.write_file(bd + "/s.sh", script,
                                                     now=k.host.boot_epoch))
        r = DetTrace().run(image, "/bin/sh", argv=["sh", "s.sh"],
                           host=HostEnvironment())
        assert r.exit_code == 0, r.stderr
        assert r.output_tree["out"] == b"1\n"
