"""The guest shell interpreter."""
import pytest

from repro.core import DetTrace, Image, NativeRunner
from repro.cpu.machine import HostEnvironment
from repro.guest.coreutils import install_coreutils
from repro.guest.shell import ShellError, sh_command, split_statements, tokenize


def run_script(script, native=False, seed=1, extra_files=None):
    image = Image()
    install_coreutils(image)

    def setup(kernel, build_dir):
        kernel.fs.write_file(build_dir + "/s.sh", script.encode(),
                             now=kernel.host.boot_epoch)
        for path, data in (extra_files or {}).items():
            kernel.fs.write_file(build_dir + "/" + path, data,
                                 now=kernel.host.boot_epoch)

    image.on_setup(setup)
    host = HostEnvironment(entropy_seed=seed, boot_epoch=1.6e9 + seed * 50)
    runner = NativeRunner() if native else DetTrace()
    return runner.run(image, "/bin/sh", argv=["sh", "s.sh"], host=host)


class TestLexing:
    def test_tokenize_respects_quotes(self):
        assert tokenize('echo "a b" c') == ["echo", "a b", "c"]

    def test_tokenize_operators(self):
        assert tokenize("a && b | c > f") == ["a", "&&", "b", "|", "c", ">", "f"]

    def test_split_statements(self):
        parts = split_statements(["a", "&&", "b", ";", "c"])
        assert parts == [(["a"], "&&"), (["b"], ";"), (["c"], ";")]

    def test_unterminated_quote_is_error(self):
        with pytest.raises(ShellError):
            tokenize('echo "unterminated')


class TestExecution:
    def test_echo_and_redirect(self):
        r = run_script("echo hello > out.txt\n")
        assert r.exit_code == 0
        assert r.output_tree["out.txt"] == b"hello\n"

    def test_append(self):
        r = run_script("echo one > f\necho two >> f\n")
        assert r.output_tree["f"] == b"one\ntwo\n"

    def test_variables_and_expansion(self):
        r = run_script("X=world\necho hello $X ${X} > f\n")
        assert r.output_tree["f"] == b"hello world world\n"

    def test_command_substitution(self):
        r = run_script("N=$(nproc)\necho got $N > f\n")
        assert r.output_tree["f"] == b"got 1\n"

    def test_exit_status_variable(self):
        r = run_script("false\necho status=$? > f\n")
        assert r.output_tree["f"] == b"status=1\n"

    def test_and_or_chains(self):
        r = run_script(
            "true && echo yes > a\n"
            "false && echo no > b\n"
            "false || echo fallback > c\n")
        assert r.output_tree["a"] == b"yes\n"
        assert "b" not in r.output_tree
        assert r.output_tree["c"] == b"fallback\n"

    def test_if_else(self):
        r = run_script(
            "touch present\n"
            "if [ -e present ]; then echo yes > a; fi\n"
            "if [ -e missing ]; then echo x > b; else echo no > c; fi\n")
        assert r.output_tree["a"] == b"yes\n"
        assert r.output_tree["c"] == b"no\n"

    def test_multiline_if(self):
        r = run_script(
            "if [ -z \"\" ]\n"
            "then\n"
            "  echo empty > out\n"
            "fi\n")
        assert r.output_tree["out"] == b"empty\n"

    def test_for_loop(self):
        r = run_script("for f in a b c; do echo item-$f >> list; done\n")
        assert r.output_tree["list"] == b"item-a\nitem-b\nitem-c\n"

    def test_pipeline(self):
        r = run_script(
            "echo line1 > f\necho line2 >> f\n"
            "cat f | wc > counts\n")
        assert r.output_tree["counts"] == b"2 2 12\n"

    def test_exit_stops_script(self):
        r = run_script("echo first > a\nexit 3\necho second > b\n")
        assert r.exit_code == 3
        assert "b" not in r.output_tree

    def test_command_not_found_is_127(self):
        r = run_script("definitely_not_a_command\n")
        assert r.exit_code == 127
        assert "command not found" in r.stderr

    def test_cd(self):
        r = run_script("mkdir sub\ncd sub\necho inner > f\n")
        assert r.output_tree["sub/f"] == b"inner\n"

    def test_background_and_wait(self):
        r = run_script("sha256sum /etc/motd > a &\nwait\necho done > b\n")
        assert r.exit_code == 0
        assert "a" in r.output_tree

    def test_input_redirection(self):
        r = run_script("wc < data > counts\n",
                       extra_files={"data": b"x y\nz\n"})
        assert r.output_tree["counts"] == b"2 3 6\n"

    def test_positional_args(self):
        image = Image()
        install_coreutils(image)
        image.on_setup(lambda k, bd: k.fs.write_file(
            bd + "/s.sh", b"echo arg=$1 > out\n", now=k.host.boot_epoch))
        r = DetTrace().run(image, "/bin/sh", argv=["sh", "s.sh", "val"],
                           host=HostEnvironment())
        assert r.output_tree["out"] == b"arg=val\n"

    def test_export_reaches_children(self):
        r = run_script("export GREETING=salut\nenv | head -n 20 > envs\n")
        assert b"GREETING=salut" in r.output_tree["envs"]

    def test_sh_command_factory(self):
        image = Image()
        install_coreutils(image)
        image.add_binary("/bin/job", sh_command("echo inline > out\n"))
        r = DetTrace().run(image, "/bin/job", host=HostEnvironment())
        assert r.output_tree["out"] == b"inline\n"


class TestShellReproducibility:
    SCRIPT = (
        "mkdir out\n"
        "date > out/when\n"
        "mktemp > out/tmpname\n"
        "stat /etc/motd > out/meta\n"
        "ls /etc > out/listing\n"
        "echo pid=$$ > out/pid\n")

    def test_native_script_irreproducible(self):
        a = run_script(self.SCRIPT, native=True, seed=1)
        b = run_script(self.SCRIPT, native=True, seed=2)
        assert a.output_tree != b.output_tree

    def test_dettrace_script_reproducible(self):
        a = run_script(self.SCRIPT, seed=1)
        b = run_script(self.SCRIPT, seed=2)
        assert a.exit_code == 0, a.stderr
        assert a.output_tree == b.output_tree
