"""libc-analog helpers: the specific leak vectors the paper names."""
from repro.guest.libc import format_date, gnu_hash, tz_offset_for
from tests.conftest import run_guest


class TestTmpnam:
    def test_name_contains_pid_and_tsc(self):
        from repro.guest.libc import tmpnam

        def main(sys):
            name = yield from tmpnam(sys, prefix="/tmp/cc")
            pid = yield from sys.getpid()
            assert str(pid) in name
            yield from sys.write_file("name", name)
            return 0

        k, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_names_vary_across_boots(self):
        from repro.cpu.machine import HostEnvironment
        from repro.guest.libc import tmpnam

        def main(sys):
            name = yield from tmpnam(sys)
            yield from sys.write_file("name", name)
            return 0

        names = set()
        for seed in (1, 2, 3):
            k, _ = run_guest(main, host=HostEnvironment(
                entropy_seed=seed, pid_start=1000 + seed * 17))
            names.add(k.fs.read_file("/build/name"))
        assert len(names) == 3


class TestMkstemp:
    def test_creates_unique_file_via_vdso(self):
        from repro.guest.libc import mkstemp

        def main(sys):
            fd1, p1 = yield from mkstemp(sys)
            fd2, p2 = yield from mkstemp(sys)
            assert p1 != p2
            yield from sys.close(fd1)
            yield from sys.close(fd2)
            return 0

        k, proc = run_guest(main)
        assert proc.exit_status == 0
        # the timing went through the vDSO, NOT a syscall
        assert k.stats.syscalls_by_name.get("gettimeofday", 0) == 0


class TestFormatDate:
    def test_timezone_changes_output(self):
        t = 1_600_000_000
        assert format_date(t, "UTC") != format_date(t, "Asia/Tokyo")

    def test_locale_changes_format(self):
        t = 1_600_000_000
        assert format_date(t, "UTC", "C") != format_date(t, "UTC", "de_DE.UTF-8")

    def test_unknown_tz_is_utc(self):
        assert tz_offset_for("Mars/Olympus") == 0


class TestGnuHash:
    def test_deterministic(self):
        assert gnu_hash(b"symbol") == gnu_hash(b"symbol")
        assert gnu_hash(b"a") != gnu_hash(b"b")
