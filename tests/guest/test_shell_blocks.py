"""Shell block-structure edge cases."""
from tests.guest.test_shell import run_script


class TestBlockJoining:
    def test_multiline_for(self):
        r = run_script(
            "for item in one two\n"
            "do\n"
            "  echo $item >> out\n"
            "done\n")
        assert r.output_tree["out"] == b"one\ntwo\n"

    def test_if_inside_for(self):
        r = run_script(
            "touch marker\n"
            "for f in marker ghost; do "
            "if [ -e $f ]; then echo yes-$f >> out; fi; done\n")
        assert r.output_tree["out"] == b"yes-marker\n"

    def test_command_substitution_mid_word(self):
        r = run_script("N=$(nproc)\necho cores-$N-end > out\n")
        assert r.output_tree["out"] == b"cores-1-end\n"

    def test_quoted_dollar_preserved_by_shlex(self):
        r = run_script("echo 'literal $HOME' > out\n")
        # posix shlex strips quotes; expansion then applies to the token.
        assert b"literal" in r.output_tree["out"]

    def test_status_of_failed_pipeline_component(self):
        r = run_script("cat missing-file | wc > out\necho after=$? >> out2\n")
        assert "out2" in r.output_tree

    def test_comments_and_blank_lines_ignored(self):
        r = run_script("\n# comment only\n\necho ok > out\n# trailing\n")
        assert r.output_tree["out"] == b"ok\n"

    def test_test_string_equality(self):
        r = run_script(
            'X=abc\n'
            'if [ $X = abc ]; then echo eq > a; fi\n'
            'if [ $X != xyz ]; then echo ne > b; fi\n')
        assert r.output_tree["a"] == b"eq\n"
        assert r.output_tree["b"] == b"ne\n"
