"""Guest runtime helper behaviours."""
from repro.kernel.errors import Errno, SyscallError
from tests.conftest import run_guest


class TestIOHelpers:
    def test_read_exact_loops_over_partial_pipe_reads(self):
        def producer(sys):
            for _ in range(10):
                yield from sys.write_all(1, b"0123456789")
                yield from sys.compute(1e-4)
            return 0

        def main(sys):
            r, w = yield from sys.pipe()
            yield from sys.spawn("/bin/producer", stdout=w)
            yield from sys.close(w)
            data = yield from sys.read_exact(r, 100)
            return 0 if data == b"0123456789" * 10 else 1

        _, proc = run_guest(main, binaries={"/bin/producer": producer})
        assert proc.exit_status == 0

    def test_read_exact_stops_at_eof(self):
        def main(sys):
            yield from sys.write_file("f", b"short")
            fd = yield from sys.open("f")
            data = yield from sys.read_exact(fd, 100)
            return 0 if data == b"short" else 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_write_all_handles_partial_pipe_writes(self):
        def drain(sys):
            total = 0
            while True:
                chunk = yield from sys.read(0, 4096)
                if not chunk:
                    break
                total += len(chunk)
            yield from sys.write_file("drained", str(total))
            return 0

        def main(sys):
            r, w = yield from sys.pipe()
            yield from sys.spawn("/bin/drain", stdin=r, close_fds=[w])
            yield from sys.close(r)
            yield from sys.write_all(w, b"z" * 200_000)  # >> pipe capacity
            yield from sys.close(w)
            yield from sys.waitpid(-1)
            return 0

        k, proc = run_guest(main, binaries={"/bin/drain": drain})
        assert proc.exit_status == 0
        assert k.fs.read_file("/build/drained") == b"200000"

    def test_mkdir_p_idempotent(self):
        def main(sys):
            yield from sys.mkdir_p("a/b/c")
            yield from sys.mkdir_p("a/b/c")
            return 0 if (yield from sys.access("a/b/c")) else 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_access_false_on_missing(self):
        def main(sys):
            present = yield from sys.access("ghost")
            return 0 if present is False else 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0


class TestProcessState:
    def test_argv_visible(self):
        def main(sys):
            yield from sys.write_file("argv", " ".join(sys.argv))
            return 0

        k, _ = run_guest(main, argv=["main", "--flag", "x"])
        assert k.fs.read_file("/build/argv") == b"main --flag x"

    def test_env_and_getenv(self):
        def main(sys):
            yield from sys.write_file("e", sys.getenv("HOME", "?"))
            return 0

        k, _ = run_guest(main)
        assert k.fs.read_file("/build/e") == b"/root"

    def test_println_to_console(self):
        def main(sys):
            yield from sys.println("out line")
            yield from sys.eprintln("err line")
            return 0

        k, _ = run_guest(main)
        assert k.stdout.text() == "out line\n"
        assert k.stderr.text() == "err line\n"

    def test_address_of_main_is_aslr_based(self):
        from repro.cpu.machine import HostEnvironment

        def main(sys):
            yield from sys.write_file("addr", hex(sys.address_of_main))
            return 0

        k1, _ = run_guest(main, host=HostEnvironment(entropy_seed=1))
        k2, _ = run_guest(main, host=HostEnvironment(entropy_seed=2))
        assert k1.fs.read_file("/build/addr") != k2.fs.read_file("/build/addr")
