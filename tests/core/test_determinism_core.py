"""THE core property, exercised over a corpus of small programs: the
DetTrace output tree is a pure function of image + config (SS3)."""
import pytest

from repro.core import ContainerConfig
from repro.cpu.machine import (
    BROADWELL_XEON,
    HASWELL_XEON,
    SKYLAKE_CLOUDLAB,
    HostEnvironment,
)
from repro.kernel.types import O_APPEND, O_CREAT, O_WRONLY
from tests.conftest import dettrace_run


def prog_time_and_random(sys):
    t = yield from sys.time()
    g = yield from sys.gettimeofday()
    r = yield from sys.urandom(16)
    r2 = yield from sys.getrandom(8)
    tsc = yield from sys.rdtsc()
    yield from sys.write_file("out", "%d %f %s %s %d" % (t, g, r.hex(), r2.hex(), tsc))
    return 0


def prog_fs_metadata(sys):
    yield from sys.mkdir("d")
    for name in ("q", "a", "z", "m"):
        yield from sys.write_file("d/" + name, name.encode())
    listing = yield from sys.listdir("d")
    lines = []
    for name in listing:
        st = yield from sys.stat("d/" + name)
        lines.append("%s %d %.0f %d %d" % (name, st.st_ino, st.st_mtime,
                                           st.st_uid, st.st_size))
    st_d = yield from sys.stat("d")
    lines.append("dir %d" % st_d.st_size)
    yield from sys.write_file("out", "\n".join(lines))
    return 0


def prog_identity(sys):
    pid = yield from sys.getpid()
    un = yield from sys.uname()
    si = yield from sys.sysinfo()
    yield from sys.write_file("out", "%d %s %s %d %x" % (
        pid, un.nodename, un.release, si.nprocs, sys.address_of_main))
    return 0


def prog_process_tree(sys):
    def child(csys):
        pid = yield from csys.getpid()
        fd = yield from csys.open("log", O_WRONLY | O_CREAT | O_APPEND)
        yield from csys.write_all(fd, b"child %d\n" % pid)
        yield from csys.close(fd)
        return pid % 10

    # registered below via extra_binaries
    codes = []
    for _ in range(3):
        res = yield from sys.run("/bin/child")
        codes.append(res.exit_code)
    yield from sys.write_file("codes", ",".join(map(str, codes)))
    return 0


def child_for_tree(csys):
    pid = yield from csys.getpid()
    fd = yield from csys.open("log", O_WRONLY | O_CREAT | O_APPEND)
    yield from csys.write_all(fd, b"child %d\n" % pid)
    yield from csys.close(fd)
    return pid % 10


def prog_tmpfiles(sys):
    from repro.guest.libc import mkstemp, tmpnam

    name = yield from tmpnam(sys)
    fd, path = yield from mkstemp(sys)
    yield from sys.close(fd)
    yield from sys.write_file("out", "%s %s" % (name, path))
    return 0


PROGRAMS = [
    ("time_and_random", prog_time_and_random, None),
    ("fs_metadata", prog_fs_metadata, None),
    ("identity", prog_identity, None),
    ("process_tree", prog_process_tree, {"/bin/child": child_for_tree}),
    ("tmpfiles", prog_tmpfiles, None),
]

HOSTS = [
    HostEnvironment(machine=SKYLAKE_CLOUDLAB, entropy_seed=11, boot_epoch=1e9,
                    pid_start=1000, inode_start=5_000, dirent_hash_salt=1),
    HostEnvironment(machine=SKYLAKE_CLOUDLAB, entropy_seed=77, boot_epoch=2e9,
                    pid_start=9999, inode_start=700_000, dirent_hash_salt=42,
                    aslr_enabled=True),
    HostEnvironment(machine=BROADWELL_XEON, entropy_seed=5, boot_epoch=1.5e9,
                    pid_start=321, inode_start=123, dirent_hash_salt=7),
    HostEnvironment(machine=HASWELL_XEON, entropy_seed=23, boot_epoch=1.8e9,
                    pid_start=50_000, inode_start=88, dirent_hash_salt=3,
                    visible_cores=2),
]


@pytest.mark.parametrize("name,program,extra",
                         PROGRAMS, ids=[p[0] for p in PROGRAMS])
def test_output_identical_across_hosts(name, program, extra):
    results = [dettrace_run(program, host=h, extra_binaries=extra)
               for h in HOSTS]
    for r in results:
        assert r.exit_code == 0, (name, r.status, r.error, r.stderr)
    trees = {tuple(sorted(r.output_tree.items())) for r in results}
    assert len(trees) == 1, "output of %s varied across hosts" % name


@pytest.mark.parametrize("name,program,extra",
                         PROGRAMS, ids=[p[0] for p in PROGRAMS])
def test_stdout_identical_across_hosts(name, program, extra):
    results = [dettrace_run(program, host=h, extra_binaries=extra)
               for h in HOSTS[:2]]
    assert results[0].stdout == results[1].stdout
    assert results[0].stderr == results[1].stderr


def test_strict_scheduler_equally_deterministic():
    cfg = ContainerConfig(scheduler="strict")
    results = [dettrace_run(prog_fs_metadata, host=h, config=cfg)
               for h in HOSTS[:2]]
    assert results[0].output_tree == results[1].output_tree


def test_logical_and_strict_schedulers_agree_for_sequential_programs():
    """With a single process the two schedulers must produce the same
    determinized outputs."""
    a = dettrace_run(prog_fs_metadata, host=HOSTS[0],
                     config=ContainerConfig(scheduler="logical"))
    b = dettrace_run(prog_fs_metadata, host=HOSTS[0],
                     config=ContainerConfig(scheduler="strict"))
    assert a.output_tree == b.output_tree
