"""Instruction interception (SS5.8) and its documented limits (SS4)."""
from repro.core import ablated
from repro.core.logical_time import RDTSC_BASE, RDTSC_STEP
from repro.cpu.machine import HostEnvironment, SKYLAKE_CLOUDLAB
from tests.conftest import dettrace_run


class TestRdtsc:
    def test_linear_deterministic_counter(self):
        def main(sys):
            a = yield from sys.rdtsc()
            b = yield from sys.rdtsc()
            yield from sys.write_file("tsc", "%d %d" % (a, b))
            return 0

        r1 = dettrace_run(main, host=HostEnvironment(entropy_seed=1))
        r2 = dettrace_run(main, host=HostEnvironment(entropy_seed=2))
        assert r1.output_tree == r2.output_tree
        a, b = map(int, r1.output_tree["tsc"].split())
        assert a == RDTSC_BASE
        assert b - a == RDTSC_STEP
        assert r1.counters.rdtsc_intercepted == 2

    def test_ablated_rdtsc_leaks(self):
        def main(sys):
            t = yield from sys.rdtsc()
            yield from sys.write_file("tsc", str(t))
            return 0

        cfg = ablated("trap_rdtsc")
        r1 = dettrace_run(main, host=HostEnvironment(entropy_seed=1), config=cfg)
        r2 = dettrace_run(main, host=HostEnvironment(entropy_seed=2), config=cfg)
        assert r1.output_tree != r2.output_tree


class TestCriticalInstructions:
    def test_rdrand_cannot_be_trapped(self):
        """rdrand is not trappable from ring 0 (SS4): a program ignoring
        cpuid gets true entropy and stays irreproducible under DetTrace —
        the paper's documented limitation."""
        def adversarial(sys):
            r = yield from sys.instr("rdrand")
            yield from sys.write_file("r", str(r))
            return 0

        r1 = dettrace_run(adversarial, host=HostEnvironment(entropy_seed=1))
        r2 = dettrace_run(adversarial, host=HostEnvironment(entropy_seed=2))
        assert r1.output_tree != r2.output_tree

    def test_tsx_aborts_irreproducible_for_adversaries(self):
        """xbegin cannot be trapped at all: the definitively critical
        family (SS4)."""
        def adversarial(sys):
            from repro.cpu.instructions import TSX_STARTED
            aborts = 0
            for _ in range(64):
                status = yield from sys.instr("xbegin")
                if status == TSX_STARTED:
                    yield from sys.instr("xend")
                else:
                    aborts += 1
            yield from sys.write_file("aborts", str(aborts))
            return 0

        r1 = dettrace_run(adversarial, host=HostEnvironment(entropy_seed=1))
        r2 = dettrace_run(adversarial, host=HostEnvironment(entropy_seed=2))
        assert r1.output_tree != r2.output_tree

    def test_well_behaved_program_respects_cpuid(self):
        """A program that checks cpuid sees no TSX/RDRAND and takes the
        deterministic fallback: reproducible (SS5.8)."""
        def well_behaved(sys):
            cpu = yield from sys.instr("cpuid")
            if cpu.has_feature("rdrand"):
                r = yield from sys.instr("rdrand")
            else:
                r = int.from_bytes((yield from sys.getrandom(8)), "little")
            yield from sys.write_file("r", str(r))
            return 0

        r1 = dettrace_run(well_behaved, host=HostEnvironment(entropy_seed=1))
        r2 = dettrace_run(well_behaved, host=HostEnvironment(entropy_seed=2))
        assert r1.output_tree == r2.output_tree

    def test_rdpmc_reports_zero(self):
        def main(sys):
            v = yield from sys.instr("rdpmc")
            return 0 if v == 0 else 1

        assert dettrace_run(main).exit_code == 0
