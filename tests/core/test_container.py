"""DetTrace container end-to-end behaviour (SS5)."""
import pytest

from repro.core import ContainerConfig, DetTrace, Image, NativeRunner, ablated
from repro.core.container import OK, TIMEOUT
from repro.cpu.machine import HostEnvironment
from tests.conftest import dettrace_run, native_run


class TestBasics:
    def test_exit_code_and_stdout(self):
        def main(sys):
            yield from sys.println("hello")
            return 3

        r = dettrace_run(main)
        assert r.status == OK
        assert r.exit_code == 3
        assert r.stdout == "hello\n"

    def test_cwd_is_build(self):
        def main(sys):
            cwd = yield from sys.getcwd()
            yield from sys.write_file("cwd", cwd)
            return 0

        r = dettrace_run(main)
        assert r.output_tree["cwd"] == b"/build"

    def test_init_pid_is_one(self):
        def main(sys):
            pid = yield from sys.getpid()
            return 0 if pid == 1 else 1

        assert dettrace_run(main).exit_code == 0

    def test_children_get_sequential_pids(self):
        def child(sys):
            pid = yield from sys.getpid()
            yield from sys.write_file("pid%d" % pid, b"")
            return 0

        def main(sys):
            for _ in range(3):
                pid = yield from sys.spawn("/bin/child")
                yield from sys.waitpid(pid)
            return 0

        r = dettrace_run(main, extra_binaries={"/bin/child": child})
        assert sorted(r.output_tree) == ["pid2", "pid3", "pid4"]

    def test_uid_is_root_inside(self):
        def main(sys):
            uid = yield from sys.getuid()
            return 0 if uid == 0 else 1

        assert dettrace_run(main).exit_code == 0

    def test_canonical_env(self):
        def main(sys):
            yield from sys.write_file("env", "%s|%s|%s" % (
                sys.getenv("TZ"), sys.getenv("LANG"), sys.getenv("HOME")))
            return 0

        host = HostEnvironment()
        host.env["TZ"] = "Mars/Crater"
        r = dettrace_run(main, host=host)
        assert r.output_tree["env"] == b"UTC|C|/root"

    def test_identity_files_canonicalized(self):
        def main(sys):
            data = yield from sys.read_file("/etc/hostname")
            yield from sys.write_file("h", data)
            return 0

        r = dettrace_run(main)
        assert r.output_tree["h"] == b"dettrace\n"

    def test_timeout_status(self):
        def main(sys):
            while True:
                yield from sys.write(1, b".")

        cfg = ContainerConfig(timeout=0.01)
        r = dettrace_run(main, config=cfg)
        assert r.status == TIMEOUT
        assert r.exit_code is None

    def test_syscall_rate_property(self):
        def main(sys):
            for _ in range(50):
                yield from sys.write_file("f", b"x")
            return 0

        r = dettrace_run(main)
        assert r.syscall_rate > 0
        assert r.wall_time > 0


class TestDeterminismKnobs:
    def test_aslr_fixed_inside_container(self):
        def main(sys):
            yield from sys.write_file("addr", hex(sys.address_of_main))
            return 0

        r1 = dettrace_run(main, host=HostEnvironment(entropy_seed=1))
        r2 = dettrace_run(main, host=HostEnvironment(entropy_seed=2))
        assert r1.output_tree == r2.output_tree

    def test_aslr_ablated_varies(self):
        def main(sys):
            yield from sys.write_file("addr", hex(sys.address_of_main))
            return 0

        cfg = ablated("disable_aslr")
        r1 = dettrace_run(main, host=HostEnvironment(entropy_seed=1), config=cfg)
        r2 = dettrace_run(main, host=HostEnvironment(entropy_seed=2), config=cfg)
        assert r1.output_tree != r2.output_tree

    def test_prng_seed_changes_randomness_controllably(self):
        def main(sys):
            data = yield from sys.urandom(8)
            yield from sys.write_file("r", data.hex())
            return 0

        a = dettrace_run(main, config=ContainerConfig(prng_seed=1))
        b = dettrace_run(main, config=ContainerConfig(prng_seed=1))
        c = dettrace_run(main, config=ContainerConfig(prng_seed=2))
        assert a.output_tree == b.output_tree
        assert a.output_tree != c.output_tree

    def test_epoch_config(self):
        def main(sys):
            t = yield from sys.time()
            yield from sys.write_file("t", str(t))
            return 0

        r = dettrace_run(main, config=ContainerConfig(epoch=1_000_000))
        assert r.output_tree["t"] == b"1000000"


class TestNativeRunner:
    def test_runs_in_host_build_path(self):
        def main(sys):
            cwd = yield from sys.getcwd()
            yield from sys.write_file("cwd", cwd)
            return 0

        host = HostEnvironment()
        host.build_path = "/data/builds/x1"
        r = native_run(main, host=host)
        assert r.output_tree["cwd"] == b"/data/builds/x1"

    def test_no_counters(self):
        def main(sys):
            yield from sys.getpid()
            return 0

        assert native_run(main).counters is None
