"""Unit tests for the reproducible schedulers (SS5.6)."""
import pytest

from repro.core.scheduler import (
    PROBE,
    SERVICE,
    WAIT,
    LogicalClockScheduler,
    StrictQueueScheduler,
    make_scheduler,
)
from repro.kernel.ops import Syscall
from repro.kernel.process import Process, Thread, ThreadState


def make_thread(tid, clock=0.0, bound=None, stopped=False):
    proc = Process(pid=tid, nspid=tid, parent=None, root=None, cwd=None,
                   cwd_path="/", env={}, argv=["t%d" % tid])
    t = Thread(tid=tid, process=proc, gen=None)
    proc.threads.append(t)
    t.det_clock = clock
    t.det_bound = bound if bound is not None else clock
    if stopped:
        t.state = ThreadState.TRACE_STOP
        t.current_syscall = Syscall("write", {})
    else:
        t.state = ThreadState.RUNNING
    return t


class TestLogicalClockScheduler:
    def test_min_clock_serviced_first(self):
        s = LogicalClockScheduler()
        a = make_thread(1, clock=2.0, stopped=True)
        b = make_thread(2, clock=1.0, stopped=True)
        s.add(a)
        s.add(b)
        assert s.next_action() == (SERVICE, b)

    def test_tie_broken_by_spawn_index(self):
        s = LogicalClockScheduler()
        a = make_thread(1, clock=1.0, stopped=True)
        b = make_thread(2, clock=1.0, stopped=True)
        s.add(a)
        s.add(b)
        assert s.next_action() == (SERVICE, a)

    def test_running_thread_with_lower_bound_gates(self):
        s = LogicalClockScheduler()
        stopped = make_thread(1, clock=5.0, stopped=True)
        running = make_thread(2, clock=1.0, bound=2.0, stopped=False)
        s.add(stopped)
        s.add(running)
        assert s.next_action() == (WAIT, None)

    def test_running_thread_with_higher_bound_does_not_gate(self):
        s = LogicalClockScheduler()
        stopped = make_thread(1, clock=5.0, stopped=True)
        running = make_thread(2, clock=1.0, bound=9.0, stopped=False)
        s.add(stopped)
        s.add(running)
        assert s.next_action() == (SERVICE, stopped)

    def test_blocked_thread_skipped_until_new_service(self):
        s = LogicalClockScheduler()
        blocked = make_thread(1, clock=1.0, stopped=True)
        other = make_thread(2, clock=2.0, stopped=True)
        s.add(blocked)
        s.add(other)
        s.still_blocked(blocked)
        # nothing serviced since the failed probe: skip to `other`
        assert s.next_action() == (SERVICE, other)
        s.completed(other)
        # a service happened: the blocked thread is probe-eligible again
        assert s.next_action() == (PROBE, blocked)

    def test_thread_exit_reenables_probes(self):
        s = LogicalClockScheduler()
        blocked = make_thread(1, clock=1.0, stopped=True)
        exiting = make_thread(2, clock=2.0, stopped=True)
        s.add(blocked)
        s.add(exiting)
        s.still_blocked(blocked)
        s.remove(exiting)  # process exit without a serviced syscall
        assert s.next_action() == (PROBE, blocked)

    def test_all_blocked_and_stale_waits(self):
        s = LogicalClockScheduler()
        a = make_thread(1, clock=1.0, stopped=True)
        s.add(a)
        s.still_blocked(a)
        assert s.next_action() == (WAIT, None)

    def test_remove_unknown_is_noop(self):
        s = LogicalClockScheduler()
        s.remove(make_thread(1))

    def test_dead_threads_ignored(self):
        s = LogicalClockScheduler()
        t = make_thread(1, stopped=True)
        s.add(t)
        t.state = ThreadState.EXITED
        assert s.next_action() == (WAIT, None)


class TestStrictQueueScheduler:
    def test_figure3_transitions(self):
        s = StrictQueueScheduler()
        a = make_thread(1, stopped=True)
        b = make_thread(2, stopped=False)
        s.add(a)
        s.add(b)
        # front of Parallel is stopped -> promoted and serviced
        assert s.next_action() == (SERVICE, a)
        s.completed(a)
        assert list(s.parallel) == [b, a]

    def test_front_gates_later_stops(self):
        """Only the *front* of Parallel transitions: a stopped thread
        behind a computing front must wait (the literal Figure 3 rule)."""
        s = StrictQueueScheduler()
        computing = make_thread(1, stopped=False)
        stopped = make_thread(2, stopped=True)
        s.add(computing)
        s.add(stopped)
        assert s.next_action() == (WAIT, None)

    def test_blocked_goes_to_blocked_queue(self):
        s = StrictQueueScheduler()
        a = make_thread(1, stopped=True)
        s.add(a)
        assert s.next_action() == (SERVICE, a)
        s.still_blocked(a)
        assert list(s.blocked) == [a]

    def test_blocked_probed_when_idle(self):
        s = StrictQueueScheduler()
        a = make_thread(1, stopped=True)
        s.add(a)
        s.next_action()
        s.still_blocked(a)
        assert s.next_action() == (PROBE, a)

    def test_probe_credit_after_service(self):
        s = StrictQueueScheduler()
        blocked = make_thread(1, stopped=True)
        worker = make_thread(2, stopped=True)
        s.add(blocked)
        s.add(worker)
        s.next_action()
        s.still_blocked(blocked)          # front -> Blocked
        assert s.next_action() == (SERVICE, worker)
        s.completed(worker)
        worker.state = ThreadState.DISPATCH  # resumed by the tracer
        worker.current_syscall = None
        action, thread = s.next_action()  # probe credit granted
        assert (action, thread) == (PROBE, blocked)


class TestFactory:
    def test_make_scheduler(self):
        assert isinstance(make_scheduler("logical"), LogicalClockScheduler)
        assert isinstance(make_scheduler("strict"), StrictQueueScheduler)
        with pytest.raises(ValueError):
            make_scheduler("quantum")
