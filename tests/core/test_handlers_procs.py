"""Unsupported operations (SS5.9) and process handlers."""
import pytest

from repro.core.container import UNSUPPORTED
from repro.kernel.types import SIGTERM
from tests.conftest import dettrace_run


class TestUnsupportedOperations:
    def test_sockets_rejected(self):
        def main(sys):
            yield from sys.socket()
            return 0

        r = dettrace_run(main)
        assert r.status == UNSUPPORTED
        assert "socket" in r.error

    def test_cross_process_kill_rejected(self):
        def victim(sys):
            while True:
                yield from sys.sleep(1.0)

        def main(sys):
            pid = yield from sys.spawn("/bin/victim")
            yield from sys.kill(pid, SIGTERM)
            return 0

        r = dettrace_run(main, extra_binaries={"/bin/victim": victim})
        assert r.status == UNSUPPORTED
        assert "kill" in r.error

    def test_self_signal_allowed(self):
        def main(sys):
            def handler(hsys, signum):
                hsys.mem["got"] = signum
                yield from hsys.compute(1e-6)

            yield from sys.sigaction(SIGTERM, handler)
            me = yield from sys.getpid()
            yield from sys.kill(me, SIGTERM)
            yield from sys.sched_yield()
            return 0 if sys.mem.get("got") == SIGTERM else 1

        r = dettrace_run(main)
        assert r.exit_code == 0

    @pytest.mark.parametrize("syscall", ["perf_event_open", "inotify_init", "bpf"])
    def test_misc_unsupported_tail(self, syscall):
        def main(sys):
            yield from sys.syscall(syscall)
            return 0

        r = dettrace_run(main)
        assert r.status == UNSUPPORTED
        assert syscall in r.error

    def test_sockets_allowed_when_ablated(self):
        from repro.core import ablated

        def main(sys):
            fd = yield from sys.socket()
            yield from sys.connect(fd)
            return 0

        r = dettrace_run(main, config=ablated("reject_sockets"))
        assert r.exit_code == 0


class TestBusyWait:
    def test_spinning_thread_detected(self):
        """The JVM pattern: the worker interleaves syscalls with its work,
        so the serializing scheduler hands the token back to the spinner —
        which then never yields (SS5.7/SS5.9)."""
        from repro.core.container import UNSUPPORTED

        def main(sys):
            def worker(wsys):
                yield from wsys.write(1, b"worker: starting\n")  # a syscall
                yield from wsys.compute(0.01)
                wsys.mem["done"] = 1

            yield from sys.spawn_thread(worker)
            yield from sys.spin_until("done", 1, spin_work=0.05)
            return 0

        r = dettrace_run(main)
        assert r.status == UNSUPPORTED
        assert "busy-wait" in r.error

    def test_same_program_fine_natively(self):
        from tests.conftest import native_run

        def main(sys):
            def worker(wsys):
                yield from wsys.write(1, b"worker: starting\n")
                yield from wsys.compute(0.01)
                wsys.mem["done"] = 1

            yield from sys.spawn_thread(worker)
            yield from sys.spin_until("done", 1, spin_work=0.05)
            return 0

        r = native_run(main)
        assert r.exit_code == 0

    def test_syscall_free_setter_wins_the_rotation(self):
        """If the worker sets the flag without any intervening syscall,
        the deterministic round-robin lets it finish before the main
        thread ever spins: the build succeeds."""

        def main(sys):
            def worker(wsys):
                yield from wsys.compute(0.01)
                wsys.mem["done"] = 1

            yield from sys.spawn_thread(worker)
            yield from sys.spin_until("done", 1, spin_work=0.05)
            return 0

        r = dettrace_run(main)
        assert r.exit_code == 0

    def test_futex_based_wait_supported(self):
        from repro.kernel.errors import Errno, SyscallError

        def main(sys):
            def worker(wsys):
                yield from wsys.compute(0.01)
                wsys.mem["done"] = 1
                yield from wsys.futex_wake("done")

            yield from sys.spawn_thread(worker)
            while sys.mem.get("done") != 1:
                try:
                    yield from sys.futex_wait("done", 0)
                except SyscallError as err:
                    if err.errno != Errno.EAGAIN:
                        raise
            return 0

        r = dettrace_run(main)
        assert r.exit_code == 0


class TestThreadSerialization:
    def test_shared_memory_interleaving_deterministic(self):
        """Two threads racing on shared state produce the same final
        interleaving under DetTrace regardless of host timing (SS5.7)."""
        from repro.cpu.machine import HostEnvironment

        def main(sys):
            def worker(tag):
                def run(wsys):
                    for i in range(10):
                        wsys.mem.setdefault("trace", []).append("%s%d" % (tag, i))
                        yield from wsys.compute(1e-4)
                        yield from wsys.sched_yield()
                    yield from wsys.write_file("done_%s" % tag, b"1")
                return run

            yield from sys.spawn_thread(worker("A"))
            yield from sys.spawn_thread(worker("B"))
            while not ((yield from sys.access("done_A"))
                       and (yield from sys.access("done_B"))):
                yield from sys.sleep(0.001)
            yield from sys.write_file("trace", ",".join(sys.mem["trace"]))
            return 0

        traces = set()
        for seed in (1, 2, 3):
            r = dettrace_run(main, host=HostEnvironment(entropy_seed=seed))
            assert r.exit_code == 0, (r.status, r.error)
            traces.add(r.output_tree["trace"])
        assert len(traces) == 1
