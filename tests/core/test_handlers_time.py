"""Time/timer determinization (SS5.3, SS5.4)."""
from repro.core import ContainerConfig, ablated
from repro.core.logical_time import DETTRACE_EPOCH
from repro.cpu.machine import HostEnvironment
from repro.kernel.errors import Errno, SyscallError
from repro.kernel.types import SIGALRM
from tests.conftest import dettrace_run


class TestLogicalTime:
    def test_time_starts_at_dettrace_epoch(self):
        def main(sys):
            t = yield from sys.time()
            yield from sys.write_file("t", str(t))
            return 0

        r = dettrace_run(main, host=HostEnvironment(boot_epoch=1.23e9))
        assert r.output_tree["t"] == str(DETTRACE_EPOCH).encode()

    def test_time_monotonically_advances(self):
        def main(sys):
            a = yield from sys.time()
            b = yield from sys.time()
            c = yield from sys.gettimeofday()
            return 0 if a < b <= c else 1

        assert dettrace_run(main).exit_code == 0

    def test_vdso_time_is_intercepted(self):
        """gettimeofday goes through the vDSO; DetTrace's patch turns it
        into an interceptable syscall (SS5.3)."""
        def main(sys):
            t = yield from sys.gettimeofday()  # VdsoCall under the hood
            yield from sys.write_file("t", "%.3f" % t)
            return 0

        r1 = dettrace_run(main, host=HostEnvironment(boot_epoch=1e9))
        r2 = dettrace_run(main, host=HostEnvironment(boot_epoch=2e9))
        assert r1.output_tree == r2.output_tree

    def test_vdso_leak_when_patching_ablated(self):
        def main(sys):
            t = yield from sys.gettimeofday()
            yield from sys.write_file("t", "%.3f" % t)
            return 0

        cfg = ablated("patch_vdso")
        r1 = dettrace_run(main, host=HostEnvironment(boot_epoch=1e9), config=cfg)
        r2 = dettrace_run(main, host=HostEnvironment(boot_epoch=2e9), config=cfg)
        assert r1.output_tree != r2.output_tree

    def test_time_virtualization_ablated_leaks_wall_clock(self):
        def main(sys):
            t = yield from sys.time_syscall()
            yield from sys.write_file("t", str(t))
            return 0

        cfg = ablated("virtualize_time")
        r1 = dettrace_run(main, host=HostEnvironment(boot_epoch=1e9), config=cfg)
        r2 = dettrace_run(main, host=HostEnvironment(boot_epoch=2e9), config=cfg)
        assert r1.output_tree != r2.output_tree


class TestTimers:
    def test_sleep_is_nop(self):
        def main(sys):
            yield from sys.sleep(3600.0)  # would blow the timeout if real
            return 0

        r = dettrace_run(main, config=ContainerConfig(timeout=1.0))
        assert r.exit_code == 0
        assert r.wall_time < 1.0

    def test_alarm_fires_instantly(self):
        def main(sys):
            def handler(hsys, signum):
                yield from hsys.write_file("fired", b"%d" % signum)

            yield from sys.sigaction(SIGALRM, handler)
            yield from sys.alarm(9999.0)  # "expires instantaneously" SS5.4
            try:
                yield from sys.pause()
            except SyscallError as err:
                assert err.errno == Errno.EINTR
            return 0

        r = dettrace_run(main)
        assert r.exit_code == 0
        assert r.output_tree["fired"] == b"%d" % SIGALRM
