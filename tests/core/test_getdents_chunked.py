"""Chunked getdents: cursors, draining, sorting (SS5.5)."""
from repro.cpu.machine import HostEnvironment
from tests.conftest import dettrace_run, run_guest


def make_dir(sys, names):
    yield from sys.mkdir("d")
    for name in names:
        yield from sys.write_file("d/" + name, b"")


class TestKernelCursor:
    def test_chunks_then_empty(self):
        def main(sys):
            yield from make_dir(sys, ["a", "b", "c", "d", "e"])
            fd = yield from sys.open("d")
            first = yield from sys.syscall("getdents", fd=fd, max_entries=2)
            second = yield from sys.syscall("getdents", fd=fd, max_entries=2)
            third = yield from sys.syscall("getdents", fd=fd, max_entries=2)
            tail = yield from sys.syscall("getdents", fd=fd, max_entries=2)
            counts = (len(first), len(second), len(third), len(tail))
            return 0 if counts == (2, 2, 1, 0) else 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_chunks_cover_everything_once(self):
        def main(sys):
            yield from make_dir(sys, ["x%d" % i for i in range(7)])
            fd = yield from sys.open("d")
            seen = []
            while True:
                chunk = yield from sys.syscall("getdents", fd=fd, max_entries=3)
                if not chunk:
                    break
                seen.extend(d.d_name for d in chunk)
            return 0 if sorted(seen) == ["x%d" % i for i in range(7)] else 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0


class TestDetTraceChunked:
    def chunked_lister(self, chunk_size):
        def main(sys):
            yield from make_dir(sys, ["zeta", "alpha", "mid", "beta", "omega"])
            fd = yield from sys.open("d")
            names = []
            while True:
                chunk = yield from sys.syscall("getdents", fd=fd,
                                               max_entries=chunk_size)
                if not chunk:
                    break
                names.extend(d.d_name for d in chunk)
            yield from sys.write_file("order", ",".join(names))
            return 0

        return main

    def test_chunked_stream_is_globally_sorted(self):
        """Sorting cannot be per-chunk: the whole stream must come back
        in name order even when read 2 entries at a time."""
        r = dettrace_run(self.chunked_lister(2))
        assert r.exit_code == 0
        assert r.output_tree["order"] == b"alpha,beta,mid,omega,zeta"

    def test_chunk_size_does_not_change_contents(self):
        outs = {dettrace_run(self.chunked_lister(n)).output_tree["order"]
                for n in (1, 2, 100)}
        assert outs == {b"alpha,beta,mid,omega,zeta"}

    def test_chunked_reproducible_across_hosts(self):
        a = dettrace_run(self.chunked_lister(2),
                         host=HostEnvironment(dirent_hash_salt=1))
        b = dettrace_run(self.chunked_lister(2),
                         host=HostEnvironment(dirent_hash_salt=99))
        assert a.output_tree == b.output_tree

    def test_reuse_after_exhaustion(self):
        def main(sys):
            yield from make_dir(sys, ["a", "b"])
            fd = yield from sys.open("d")
            first_pass = []
            while True:
                chunk = yield from sys.syscall("getdents", fd=fd, max_entries=1)
                if not chunk:
                    break
                first_pass.extend(d.d_name for d in chunk)
            # lseek back to 0 resets the directory cursor
            yield from sys.syscall("lseek", fd=fd, offset=0)
            again = yield from sys.syscall("getdents", fd=fd)
            return 0 if first_pass == ["a", "b"] and len(again) == 2 else 1

        r = dettrace_run(main)
        assert r.exit_code == 0, (r.status, r.error)
