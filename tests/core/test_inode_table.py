from repro.core.inode_table import InodeTable


class TestVirtualInodes:
    def test_lazy_dense_assignment(self):
        t = InodeTable()
        assert t.virtual_ino(900_001) == 1
        assert t.virtual_ino(123_456) == 2
        assert t.virtual_ino(900_001) == 1  # stable

    def test_new_file_gets_fresh_virtual_ino(self):
        t = InodeTable()
        first = t.register_new_file(500)
        second = t.register_new_file(501)
        assert second == first + 1

    def test_recycled_real_inode_gets_fresh_virtual(self):
        """The OS reuses real ino 500 for a brand-new file: DetTrace must
        not report the dead file's virtual identity (SS5.5)."""
        t = InodeTable()
        old_virtual = t.register_new_file(500)
        new_virtual = t.register_new_file(500)   # recycled!
        assert new_virtual != old_virtual
        assert t.virtual_ino(500) == new_virtual


class TestVirtualMtimes:
    def test_initial_image_files_have_mtime_zero(self):
        t = InodeTable()
        t.virtual_ino(777)  # seen via stat, never created
        assert t.virtual_mtime(777) == 0

    def test_created_files_get_increasing_mtimes(self):
        t = InodeTable()
        t.register_new_file(1)
        t.register_new_file(2)
        assert t.virtual_mtime(2) > t.virtual_mtime(1) > 0

    def test_mtime_clock_monotone(self):
        t = InodeTable()
        stamps = []
        for ino in range(10, 20):
            t.register_new_file(ino)
            stamps.append(t.mtime_clock)
        assert stamps == sorted(stamps)
