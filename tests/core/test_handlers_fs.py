"""Filesystem determinization (SS5.5, SS7.3)."""
from repro.core import ContainerConfig, ablated
from repro.core.handlers.filesystem import CANONICAL_DEV, _deterministic_dir_size
from repro.cpu.machine import HostEnvironment
from tests.conftest import dettrace_run


def hosts():
    return (HostEnvironment(entropy_seed=1, inode_start=100_000, dirent_hash_salt=1,
                            boot_epoch=1e9),
            HostEnvironment(entropy_seed=2, inode_start=888_000, dirent_hash_salt=9,
                            boot_epoch=2e9))


class TestStatVirtualization:
    def test_inode_numbers_virtualized(self):
        def main(sys):
            yield from sys.write_file("f", b"x")
            st = yield from sys.stat("f")
            yield from sys.write_file("ino", str(st.st_ino))
            return 0

        a, b = hosts()
        r1, r2 = dettrace_run(main, host=a), dettrace_run(main, host=b)
        assert r1.output_tree["ino"] == r2.output_tree["ino"]
        assert int(r1.output_tree["ino"]) < 1000  # dense virtual space

    def test_ablated_inodes_leak(self):
        def main(sys):
            yield from sys.write_file("f", b"x")
            st = yield from sys.stat("f")
            yield from sys.write_file("ino", str(st.st_ino))
            return 0

        a, b = hosts()
        cfg = ablated("virtualize_inodes")
        assert (dettrace_run(main, host=a, config=cfg).output_tree
                != dettrace_run(main, host=b, config=cfg).output_tree)

    def test_atime_ctime_zero_mtime_virtual(self):
        def main(sys):
            st0 = yield from sys.stat(sys.argv[0])  # initial-image file
            yield from sys.write_file("new", b"")
            st1 = yield from sys.stat("new")
            ok = (st0.st_mtime == 0.0 and st0.st_atime == 0.0
                  and st0.st_ctime == 0.0 and st1.st_mtime > 0)
            return 0 if ok else 1

        assert dettrace_run(main).exit_code == 0

    def test_clock_skew_check_passes(self):
        """configure compares a fresh file's mtime to the source tree's:
        virtual mtimes must be sensible, not a fixed constant (SS5.5)."""
        def main(sys):
            st_old = yield from sys.stat(sys.argv[0])
            yield from sys.write_file("conftest", b"")
            st_new = yield from sys.stat("conftest")
            return 0 if st_new.st_mtime >= st_old.st_mtime else 1

        assert dettrace_run(main).exit_code == 0

    def test_uid_gid_mapped_to_root(self):
        def main(sys):
            yield from sys.write_file("f", b"")
            st = yield from sys.stat("f")
            return 0 if (st.st_uid, st.st_gid) == (0, 0) else 1

        assert dettrace_run(main).exit_code == 0

    def test_device_id_canonical(self):
        def main(sys):
            st = yield from sys.stat(".")
            return 0 if st.st_dev == CANONICAL_DEV else 1

        assert dettrace_run(main).exit_code == 0

    def test_fstat_matches_stat(self):
        def main(sys):
            yield from sys.write_file("f", b"abc")
            st = yield from sys.stat("f")
            fd = yield from sys.open("f")
            fst = yield from sys.fstat(fd)
            return 0 if st.st_ino == fst.st_ino and st.st_mtime == fst.st_mtime else 1

        assert dettrace_run(main).exit_code == 0


class TestDirectorySizes:
    def test_deterministic_function_of_entry_count(self):
        assert _deterministic_dir_size(0) == 4096
        assert _deterministic_dir_size(10) - _deterministic_dir_size(9) == 32

    def test_dir_size_reported_deterministically(self):
        def main(sys):
            yield from sys.mkdir("d")
            for i in range(7):
                yield from sys.write_file("d/f%d" % i, b"")
            st = yield from sys.stat("d")
            yield from sys.write_file("size", str(st.st_size))
            return 0

        from repro.cpu.machine import BROADWELL_XEON, SKYLAKE_CLOUDLAB
        r1 = dettrace_run(main, host=HostEnvironment(machine=SKYLAKE_CLOUDLAB))
        r2 = dettrace_run(main, host=HostEnvironment(machine=BROADWELL_XEON))
        assert r1.output_tree["size"] == r2.output_tree["size"]
        assert int(r1.output_tree["size"]) == _deterministic_dir_size(7)


class TestGetdents:
    def test_sorted_by_name(self):
        def main(sys):
            yield from sys.mkdir("d")
            for name in ("zeta", "alpha", "mid"):
                yield from sys.write_file("d/" + name, b"")
            names = yield from sys.listdir("d")
            yield from sys.write_file("order", ",".join(names))
            return 0

        a, b = hosts()
        r1, r2 = dettrace_run(main, host=a), dettrace_run(main, host=b)
        assert r1.output_tree["order"] == b"alpha,mid,zeta"
        assert r1.output_tree == r2.output_tree

    def test_ablated_sort_leaks_fs_order(self):
        def main(sys):
            yield from sys.mkdir("d")
            for name in ("zeta", "alpha", "mid", "omega", "beta"):
                yield from sys.write_file("d/" + name, b"")
            names = yield from sys.listdir("d")
            yield from sys.write_file("order", ",".join(names))
            return 0

        a, b = hosts()
        cfg = ablated("sort_getdents")
        assert (dettrace_run(main, host=a, config=cfg).output_tree
                != dettrace_run(main, host=b, config=cfg).output_tree)


class TestInodeRecycling:
    def test_recycled_inode_gets_fresh_virtual_identity(self):
        def main(sys):
            yield from sys.write_file("a", b"")
            st_a = yield from sys.stat("a")
            yield from sys.unlink("a")
            yield from sys.write_file("b", b"")  # likely recycles a's ino
            st_b = yield from sys.stat("b")
            return 0 if st_a.st_ino != st_b.st_ino else 1

        assert dettrace_run(main).exit_code == 0


class TestUtime:
    def test_null_times_do_not_leak_wall_clock(self):
        def main(sys):
            yield from sys.write_file("f", b"")
            yield from sys.utime("f")  # null -> kernel would stamp now
            st = yield from sys.stat("f")
            yield from sys.write_file("mtime", str(st.st_mtime))
            return 0

        a, b = hosts()
        assert (dettrace_run(main, host=a).output_tree
                == dettrace_run(main, host=b).output_tree)
