"""Handler edge and error paths."""
import pytest

from repro.kernel.errors import Errno, SyscallError
from repro.kernel.types import O_CREAT, O_EXCL, O_WRONLY
from tests.conftest import dettrace_run


class TestOpenHandlerEdges:
    def test_eexist_propagates_through_handler(self):
        def main(sys):
            yield from sys.write_file("f", b"")
            try:
                yield from sys.open("f", O_WRONLY | O_CREAT | O_EXCL)
            except SyscallError as err:
                return 0 if err.errno == Errno.EEXIST else 1
            return 1

        assert dettrace_run(main).exit_code == 0

    def test_enoent_propagates(self):
        def main(sys):
            try:
                yield from sys.open("/no/such/path")
            except SyscallError as err:
                return 0 if err.errno == Errno.ENOENT else 1
            return 1

        assert dettrace_run(main).exit_code == 0

    def test_reopening_existing_file_keeps_virtual_identity(self):
        def main(sys):
            yield from sys.write_file("f", b"1")
            st1 = yield from sys.stat("f")
            fd = yield from sys.open("f")   # reopen: NOT a creation
            yield from sys.close(fd)
            st2 = yield from sys.stat("f")
            return 0 if st1.st_ino == st2.st_ino and st1.st_mtime == st2.st_mtime else 1

        assert dettrace_run(main).exit_code == 0


class TestStatHandlerEdges:
    def test_fstat_on_pipe_has_no_dir_entries(self):
        def main(sys):
            r, w = yield from sys.pipe()
            # fstat on a pipe fd raises EBADF in our kernel (no inode);
            # the handler must pass the error through, not crash.
            try:
                yield from sys.fstat(r)
            except SyscallError as err:
                return 0 if err.errno == Errno.EBADF else 1
            return 1

        assert dettrace_run(main).exit_code == 0

    def test_lstat_of_symlink_is_virtualized(self):
        def main(sys):
            yield from sys.write_file("target", b"")
            yield from sys.symlink("target", "ln")
            st = yield from sys.lstat("ln")
            yield from sys.write_file("out", "%d %.0f" % (st.st_ino, st.st_mtime))
            return 0

        from repro.cpu.machine import HostEnvironment
        a = dettrace_run(main, host=HostEnvironment(entropy_seed=1, inode_start=10))
        b = dettrace_run(main, host=HostEnvironment(entropy_seed=2, inode_start=99999))
        assert a.output_tree == b.output_tree


class TestGetdentsEdges:
    def test_getdents_on_file_is_enotdir(self):
        def main(sys):
            yield from sys.write_file("f", b"")
            fd = yield from sys.open("f")
            try:
                yield from sys.syscall("getdents", fd=fd)
            except SyscallError as err:
                return 0 if err.errno == Errno.ENOTDIR else 1
            return 1

        assert dettrace_run(main).exit_code == 0

    def test_empty_directory(self):
        def main(sys):
            yield from sys.mkdir("d")
            names = yield from sys.listdir("d")
            return 0 if names == [] else 1

        assert dettrace_run(main).exit_code == 0


class TestWriteEdges:
    def test_write_to_read_end_is_ebadf(self):
        def main(sys):
            r, w = yield from sys.pipe()
            try:
                yield from sys.write(r, b"x")
            except SyscallError as err:
                return 0 if err.errno == Errno.EBADF else 1
            return 1

        assert dettrace_run(main).exit_code == 0

    def test_epipe_after_reader_closes(self):
        # With SIGPIPE ignored the write fails with plain EPIPE (the
        # default disposition would terminate the writer instead — see
        # test_sigpipe_* in tests/kernel/test_sockets.py).
        def main(sys):
            yield from sys.sigaction(13, "ignore")  # SIGPIPE
            r, w = yield from sys.pipe()
            yield from sys.close(r)
            try:
                yield from sys.write(w, b"x")
            except SyscallError as err:
                return 0 if err.errno == Errno.EPIPE else 1
            return 1

        assert dettrace_run(main).exit_code == 0
