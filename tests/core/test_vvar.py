"""The vvar page (SS5.3): raw timing data behind the vDSO."""
from repro.cpu.machine import HostEnvironment
from tests.conftest import dettrace_run, native_run


def vvar_program(sys):
    t = yield from sys.read_vvar()
    yield from sys.write_file("t", "%.6f" % t)
    return 0


class TestVvar:
    def test_native_read_leaks_wall_clock(self):
        a = native_run(vvar_program, host=HostEnvironment(boot_epoch=1e9))
        b = native_run(vvar_program, host=HostEnvironment(boot_epoch=2e9))
        assert a.exit_code == 0
        assert a.output_tree != b.output_tree

    def test_native_read_uses_no_syscall(self):
        r = native_run(vvar_program)
        from tests.conftest import make_kernel
        assert r.exit_code == 0  # and nothing to intercept: see below

    def test_dettrace_makes_the_page_unreadable(self):
        """'We furthermore make the vvar page unreadable to prohibit any
        access to the raw nondeterministic data' — the access becomes a
        reproducible SIGSEGV rather than a time leak."""
        a = dettrace_run(vvar_program, host=HostEnvironment(boot_epoch=1e9))
        b = dettrace_run(vvar_program, host=HostEnvironment(boot_epoch=2e9))
        assert a.exit_code is None or a.exit_code != 0 or a.status != "ok"
        # the fault is itself reproducible: identical observable behaviour
        assert a.status == b.status
        assert a.stdout == b.stdout
        assert a.output_tree == b.output_tree
        assert "t" not in a.output_tree  # the time never leaked

    def test_vvar_fault_only_when_patched(self):
        from repro.core import ablated

        r = dettrace_run(vvar_program, config=ablated("patch_vdso"),
                         host=HostEnvironment(boot_epoch=1e9))
        assert r.exit_code == 0  # unpatched: raw (leaky) read succeeds
