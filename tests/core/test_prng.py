from repro.core.prng import Lfsr


class TestLfsr:
    def test_deterministic_per_seed(self):
        assert Lfsr(7).bytes(32) == Lfsr(7).bytes(32)

    def test_seeds_differ(self):
        assert Lfsr(1).bytes(16) != Lfsr(2).bytes(16)

    def test_zero_seed_not_stuck(self):
        gen = Lfsr(0)
        values = {gen.next_u64() for _ in range(16)}
        assert len(values) == 16

    def test_bytes_exact_length(self):
        for n in (0, 1, 7, 8, 9, 100):
            assert len(Lfsr(3).bytes(n)) == n

    def test_randrange_bounds(self):
        gen = Lfsr(5)
        for _ in range(100):
            assert 0 <= gen.randrange(10) < 10

    def test_randrange_zero_raises(self):
        import pytest
        with pytest.raises(ValueError):
            Lfsr(5).randrange(0)

    def test_stream_is_stateful(self):
        gen = Lfsr(9)
        assert gen.next_u64() != gen.next_u64()
