from repro.core.namespaces import NOBODY_UID, ROOT_UID, UidGidMap


class TestUidGidMap:
    def test_current_user_maps_to_root(self):
        m = UidGidMap(host_uid=1000)
        assert m.to_container_uid(1000) == ROOT_UID

    def test_root_stays_root(self):
        m = UidGidMap(host_uid=1000)
        assert m.to_container_uid(0) == ROOT_UID

    def test_others_map_to_nobody(self):
        m = UidGidMap(host_uid=1000)
        assert m.to_container_uid(33) == NOBODY_UID
        assert m.to_container_gid(33) == 65534
