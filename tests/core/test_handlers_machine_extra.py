"""Determinization of the extended machine-state syscalls."""
from repro.core import ablated
from repro.cpu.machine import BROADWELL_XEON, SKYLAKE_CLOUDLAB, HostEnvironment
from tests.conftest import dettrace_run


def hosts():
    return (HostEnvironment(machine=SKYLAKE_CLOUDLAB, entropy_seed=1),
            HostEnvironment(machine=BROADWELL_XEON, entropy_seed=2))


class TestTimesHandler:
    def test_cpu_accounting_is_logical(self):
        def prog(sys):
            yield from sys.compute(0.01)
            t = yield from sys.syscall("times")
            yield from sys.write_file("t", repr(t.utime))
            return 0

        a, b = hosts()
        assert (dettrace_run(prog, host=a).output_tree
                == dettrace_run(prog, host=b).output_tree)


class TestStatfsHandler:
    def test_canonical_counters(self):
        def prog(sys):
            sf = yield from sys.syscall("statfs", path="/")
            yield from sys.write_file("sf", "%d %d %d" % (
                sf.f_blocks, sf.f_bfree, sf.f_ffree))
            return 0

        a, b = hosts()
        ra, rb = dettrace_run(prog, host=a), dettrace_run(prog, host=b)
        assert ra.output_tree == rb.output_tree

    def test_path_still_validated(self):
        from repro.kernel.errors import Errno, SyscallError

        def prog(sys):
            try:
                yield from sys.syscall("statfs", path="/ghost")
            except SyscallError as err:
                return 0 if err.errno == Errno.ENOENT else 1
            return 1

        assert dettrace_run(prog).exit_code == 0

    def test_leaks_when_machine_mask_ablated(self):
        def prog(sys):
            sf = yield from sys.syscall("statfs", path="/")
            yield from sys.write_file("sf", str(sf.f_blocks))
            return 0

        a, b = hosts()
        cfg = ablated("mask_machine")
        assert (dettrace_run(prog, host=a, config=cfg).output_tree
                != dettrace_run(prog, host=b, config=cfg).output_tree)


class TestAffinityHandler:
    def test_single_canonical_core(self):
        def prog(sys):
            cpus = yield from sys.syscall("sched_getaffinity")
            return 0 if cpus == [0] else 1

        assert dettrace_run(prog, host=hosts()[0]).exit_code == 0
