import pytest

from repro.core.config import CANONICAL_ENV, ContainerConfig, ablated, full_config


class TestConfig:
    def test_defaults_are_full_dettrace(self):
        cfg = ContainerConfig()
        for field in ("virtualize_time", "patch_vdso", "deterministic_randomness",
                      "virtualize_inodes", "sort_getdents", "retry_partial_io",
                      "deterministic_pids", "serialize_threads", "trap_rdtsc",
                      "mask_cpuid", "mask_machine", "disable_aslr",
                      "canonical_env", "emulate_timers", "use_seccomp",
                      "reject_sockets", "deterministic_dir_sizes",
                      "map_user_to_root"):
            assert getattr(cfg, field) is True, field

    def test_env_canonicalization(self):
        cfg = ContainerConfig()
        env = cfg.env_for({"PATH": "/weird", "LANG": "de_DE"})
        assert env == CANONICAL_ENV

    def test_env_passthrough_when_disabled(self):
        cfg = ablated("canonical_env")
        assert cfg.env_for({"X": "1"}) == {"X": "1"}

    def test_ablated_flips_exactly_one(self):
        cfg = ablated("sort_getdents")
        assert cfg.sort_getdents is False
        assert cfg.virtualize_time is True

    def test_ablated_unknown_raises(self):
        with pytest.raises(ValueError):
            ablated("not_a_feature")

    def test_full_config_overrides(self):
        cfg = full_config(prng_seed=99, timeout=5.0)
        assert cfg.prng_seed == 99
        assert cfg.timeout == 5.0
