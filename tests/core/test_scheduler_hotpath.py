"""Unit tests for the O(log n) scheduler's incremental structures.

The end-to-end schedule identity is covered by the differential suite
(tests/properties/test_sched_differential.py) and the bench loop
(repro.hotpath); these tests pin the *mechanisms* — lazy heap repair,
the probe stash, stamp refresh, O(1) removal — with hand-built states,
plus a randomized lockstep drive against the reference oracle.
"""
import random

from repro.core.scheduler import (
    PROBE,
    SERVICE,
    SYSCALL_TICK,
    WAIT,
    LogicalClockRefScheduler,
    LogicalClockScheduler,
    make_scheduler,
)
from repro.kernel.process import ThreadState
from tests.core.test_scheduler_repro import make_thread


def both_schedulers():
    return LogicalClockScheduler(), LogicalClockRefScheduler()


def test_make_scheduler_kinds():
    assert isinstance(make_scheduler("logical"), LogicalClockScheduler)
    assert isinstance(make_scheduler("logical-ref"), LogicalClockRefScheduler)


def test_notify_stop_inserts_candidate():
    s = LogicalClockScheduler()
    t = make_thread(1, clock=1.0, stopped=False)
    s.add(t)
    assert s.next_action() == (WAIT, None)
    from repro.kernel.ops import Syscall

    t.state = ThreadState.TRACE_STOP
    t.current_syscall = Syscall("write", {})
    s.notify_stop(t)
    assert s.next_action() == (SERVICE, t)


def test_stale_stop_entries_discarded():
    """A heap entry for an old (clock, thread) pairing must never be
    serviced once the thread has moved on."""
    s = LogicalClockScheduler()
    a = make_thread(1, clock=1.0, stopped=True)
    b = make_thread(2, clock=2.0, stopped=True)
    s.add(a)
    s.add(b)
    # a advances to a later stop without being serviced through the
    # scheduler (e.g. after a completed service): push the new stop.
    a.det_clock = a.det_bound = 5.0
    s.notify_stop(a)
    # b (clock 2.0) now outranks both of a's entries, the stale 1.0 one
    # included.
    assert s.next_action() == (SERVICE, b)


def test_remove_is_o1_and_rearms_blocked():
    s = LogicalClockScheduler()
    a = make_thread(1, clock=1.0, stopped=True)
    b = make_thread(2, clock=2.0, stopped=True)
    s.add(a)
    s.add(b)
    # b's probe fails in the current epoch: it parks in the stash.
    s.still_blocked(b)
    assert s.blocked_count() == 1
    assert s.next_action() == (SERVICE, a)
    # a exits; the epoch bump must re-arm b as a PROBE candidate even
    # though no service completed.
    a.state = ThreadState.EXITED
    s.remove(a)
    assert s.live_count() == 1
    assert s.next_action() == (PROBE, b)
    # Removal leaves no membership behind (heap entries die lazily).
    assert a not in s._index and a not in s._fail_seq


def test_stash_rearmed_after_service():
    s = LogicalClockScheduler()
    a = make_thread(1, clock=1.0, stopped=True)
    b = make_thread(2, clock=2.0, stopped=True)
    s.add(a)
    s.add(b)
    s.still_blocked(a)
    # a is parked: b is the only candidate this epoch.
    assert s.next_action() == (SERVICE, b)
    s.completed(b)
    b.state = ThreadState.RUNNING
    b.current_syscall = None
    # The completed service advanced the epoch: a is probe-eligible and
    # its retry is a PROBE (it still sits in _fail_seq until it lands).
    assert s.next_action() == (PROBE, a)
    s.completed(a)
    assert s.blocked_count() == 0


def test_bound_heap_refreshes_stale_stamps():
    """Seccomp-skipped syscalls advance det_bound silently; the heap
    entry must refresh in place and keep gating with the new bound."""
    s = LogicalClockScheduler()
    stopped = make_thread(1, clock=5.0, stopped=True)
    running = make_thread(2, clock=1.0, bound=1.0, stopped=False)
    s.add(stopped)
    s.add(running)
    assert s.next_action() == (WAIT, None)
    # The running thread commits more compute without any notify (the
    # no-stop fast path): once its bound passes the candidate's clock
    # the stale entry must not keep gating forever.
    running.det_bound = 9.0
    assert s.next_action() == (SERVICE, stopped)


def test_token_queued_thread_does_not_gate():
    s = LogicalClockScheduler()
    stopped = make_thread(1, clock=5.0, stopped=True)
    waiter = make_thread(2, clock=1.0, bound=1.0, stopped=False)
    waiter.token_queued = True
    s.add(stopped)
    s.add(waiter)
    # The token-queued sibling cannot stop before a grant, so it must
    # not hold up the candidate...
    assert s.next_action() == (SERVICE, stopped)
    # ...until the grant puts it back in the running set.
    waiter.token_queued = False
    s.notify_running(waiter)
    assert s.next_action() == (WAIT, None)


def test_notify_hooks_are_noops_on_reference_schedulers():
    """The hooks exist so the tracer can drive any scheduler uniformly;
    the scan-based implementations ignore them."""
    for kind in ("logical-ref", "strict"):
        s = make_scheduler(kind)
        t = make_thread(1, clock=1.0, stopped=True)
        s.add(t)
        s.notify_stop(t)
        s.notify_bound(t)
        s.notify_running(t)
        assert s.next_action() == (SERVICE, t)


def test_randomized_lockstep_against_reference():
    """Drive both implementations through the same randomized sequence
    of stops/services/blocks/exits and require identical decisions."""
    from repro.kernel.ops import Syscall

    rng = random.Random(1234)
    for trial in range(20):
        fast, ref = both_schedulers()
        threads = []
        for tid in range(1, 7):
            t = make_thread(tid, clock=float(rng.randint(0, 3)),
                            stopped=rng.random() < 0.5)
            t.det_bound = t.det_clock
            threads.append(t)
            fast.add(t)
            ref.add(t)
        for step in range(60):
            a_fast = fast.next_action()
            a_ref = ref.next_action()
            assert a_fast == a_ref, (trial, step, a_fast, a_ref)
            action, t = a_fast
            if action == WAIT:
                # Wake the lowest-bound running thread at a deterministic
                # later stop, mirroring the kernel resuming compute.
                running = [x for x in threads
                           if x.alive and x.state is ThreadState.RUNNING]
                if not running:
                    break
                nxt = min(running, key=lambda x: (x.det_bound, x.tid))
                nxt.det_clock = nxt.det_bound = nxt.det_bound + SYSCALL_TICK
                nxt.state = ThreadState.TRACE_STOP
                nxt.current_syscall = Syscall("write", {})
                fast.notify_stop(nxt)
                ref.notify_stop(nxt)
                continue
            roll = rng.random()
            if action == SERVICE and roll < 0.2:
                # Would-block verdict.
                fast.still_blocked(t)
                ref.still_blocked(t)
            elif roll < 0.3 and action == SERVICE:
                # The syscall was an exit.
                t.state = ThreadState.EXITED
                t.current_syscall = None
                fast.remove(t)
                ref.remove(t)
            else:
                t.current_syscall = None
                t.state = ThreadState.RUNNING
                t.det_clock = t.det_bound = t.det_clock + SYSCALL_TICK * (
                    1 + rng.randint(0, 3))
                fast.completed(t)
                ref.completed(t)
        assert fast.blocked_count() == ref.blocked_count()
        assert fast.live_count() == ref.live_count()
