"""The handler outcome protocol itself."""
import pytest

from repro.core import ContainerConfig, ablated
from repro.cpu.machine import HostEnvironment
from tests.conftest import dettrace_run


class TestPassthroughOutcomes:
    def test_sleep_outcome_when_timer_emulation_off(self):
        """With emulate_timers ablated, nanosleep reaches the kernel and
        the tracer must let virtual time pass."""
        def main(sys):
            t0 = yield from sys.gettimeofday()
            yield from sys.sleep(0.5)
            t1 = yield from sys.gettimeofday()
            yield from sys.write_file("dt", b"big" if t1 - t0 >= 0.4 else b"small")
            return 0

        cfg = ablated("emulate_timers")
        # also need raw time to measure: disable virtualization too
        cfg.virtualize_time = False
        cfg.patch_vdso = False
        r = dettrace_run(main, config=cfg)
        assert r.exit_code == 0
        assert r.output_tree["dt"] == b"big"
        assert r.wall_time >= 0.5

    def test_unknown_syscall_defaults_to_passthrough(self):
        """A syscall with no registered handler goes through the generic
        passthrough — serialized but unmodified (e.g. sync)."""
        def main(sys):
            yield from sys.syscall("bpf")  # has a handler: unsupported
            return 0

        from repro.core.container import UNSUPPORTED
        assert dettrace_run(main).status == UNSUPPORTED

        def main2(sys):
            # truncate has only the passthrough entry
            yield from sys.write_file("f", b"12345678")
            yield from sys.syscall("truncate", path="f", length=3)
            data = yield from sys.read_file("f")
            return 0 if data == b"123" else 1

        assert dettrace_run(main2).exit_code == 0

    def test_device_stat_virtualized(self):
        def main(sys):
            st = yield from sys.stat("/dev/null")
            yield from sys.write_file("out", "%d %d %.0f" % (
                st.st_dev, st.st_ino, st.st_mtime))
            return 0

        a = dettrace_run(main, host=HostEnvironment(entropy_seed=1, inode_start=7))
        b = dettrace_run(main, host=HostEnvironment(entropy_seed=2, inode_start=70_000))
        assert a.output_tree == b.output_tree


class TestCounterPlumbing:
    def test_urandom_opens_counted(self):
        def main(sys):
            for _ in range(3):
                yield from sys.urandom(4)
            return 0

        r = dettrace_run(main)
        assert r.counters.urandom_opens == 3

    def test_memory_traffic_counted(self):
        def main(sys):
            yield from sys.write_file("f", b"x" * 4096)
            yield from sys.read_file("f")
            return 0

        r = dettrace_run(main)
        assert r.counters.memory_reads > 0
        assert r.counters.memory_writes > 0

    def test_getdents_sorted_counter(self):
        def main(sys):
            yield from sys.mkdir("d")
            yield from sys.write_file("d/a", b"")
            yield from sys.listdir("d")
            yield from sys.listdir("d")
            return 0

        r = dettrace_run(main)
        assert r.counters.getdents_sorted == 2
