"""Audit of the seccomp no-stop allow-list (paper §5.11).

Every name in NATURALLY_REPRODUCIBLE skips the tracer entirely, so the
list is load-bearing for determinism: a syscall that reads shared state
or mutates anything another process can observe must never appear here.
This file pins the two scariest members — ``fsync`` and ``sync`` — whose
verdicts are pure functions of the caller's own descriptor table
(``fsync`` fails EINVAL on fds with no backing store — pipes, FIFOs,
sockets — and otherwise returns 0 with no observable mutation), and
checks the compiled verdict table agrees with the raw membership rule.
"""
from repro.core import ContainerConfig
from repro.cpu.machine import HostEnvironment
from repro.kernel.costs import (
    LEGACY_DOUBLE_STOP_COST,
    PTRACE_STOP_COST,
    SECCOMP_COMBINED_STOP_COST,
)
from repro.kernel.types import O_CREAT, O_TRUNC, O_WRONLY
from repro.tracer.seccomp import NATURALLY_REPRODUCIBLE, SeccompFilter
from tests.conftest import dettrace_run, run_guest

#: Syscalls that touch shared or irreproducible state: none may ever be
#: allowed through without a stop.
MUST_INTERCEPT = {
    "read", "write", "open", "openat", "close", "unlink", "rename",
    "mkdir", "rmdir", "getdents", "stat", "fstat", "utime",
    "time", "gettimeofday", "clock_gettime", "nanosleep",
    "getrandom", "fork", "clone", "execve", "wait4", "exit_group",
    "pipe", "pipe2", "kill", "futex", "mmap",
}


def test_allowlist_never_covers_shared_state():
    assert not (NATURALLY_REPRODUCIBLE & MUST_INTERCEPT)


def test_compiled_verdicts_match_membership():
    filt = SeccompFilter()
    names = sorted(NATURALLY_REPRODUCIBLE | MUST_INTERCEPT)
    # Query twice: the second pass is served from the compiled table and
    # must agree with the raw rule both times.
    for _ in range(2):
        for name in names:
            assert filt.intercepts(name) == (name not in NATURALLY_REPRODUCIBLE)


def test_disabled_filter_intercepts_everything():
    filt = SeccompFilter(enabled=False)
    for name in sorted(NATURALLY_REPRODUCIBLE):
        assert filt.intercepts(name)
    assert filt.stop_cost == 2 * PTRACE_STOP_COST


def test_stop_cost_compiled_per_kernel_version():
    assert SeccompFilter(kernel_version=(4, 15)).stop_cost == SECCOMP_COMBINED_STOP_COST
    assert SeccompFilter(kernel_version=(4, 2)).stop_cost == LEGACY_DOUBLE_STOP_COST


def test_fsync_is_a_result_only_noop():
    """fsync on a regular file validates the fd and returns 0 — no data,
    metadata, or timestamp mutation another process could observe.  (On
    pipes/FIFOs/sockets it fails EINVAL instead — still a pure function
    of per-process fd state; tests/kernel/test_posix_conformance.py.)"""
    def main(sys):
        fd = yield from sys.open("/build/f", O_WRONLY | O_CREAT | O_TRUNC)
        yield from sys.write(fd, b"payload")
        before = yield from sys.stat("/build/f")
        rc = yield from sys.syscall("fsync", fd=fd)
        assert rc == 0
        after = yield from sys.stat("/build/f")
        assert (before.st_size, before.st_mtime, before.st_ino) \
            == (after.st_size, after.st_mtime, after.st_ino)
        yield from sys.close(fd)
        return 0

    _, proc = run_guest(main)
    assert proc.exit_status == 0


def test_fsync_bad_fd_raises():
    from repro.kernel.errors import Errno, SyscallError

    def main(sys):
        try:
            yield from sys.syscall("fsync", fd=999)
        except SyscallError as e:
            assert e.errno == Errno.EBADF
            return 0
        return 1

    _, proc = run_guest(main)
    assert proc.exit_status == 0


def test_sync_heavy_program_reproducible_across_hosts():
    """End-to-end: a write/fsync/sync-dense program stays a pure
    function of its image even though fsync/sync never stop."""
    def main(sys):
        for i in range(5):
            fd = yield from sys.open("f%d" % i, O_WRONLY | O_CREAT | O_TRUNC)
            yield from sys.write(fd, b"x" * (i + 1))
            yield from sys.syscall("fsync", fd=fd)
            yield from sys.close(fd)
            yield from sys.syscall("sync")
        stat = yield from sys.stat("f0")
        yield from sys.write_file("log", "%.0f" % stat.st_mtime)
        return 0

    ra = dettrace_run(main, host=HostEnvironment(entropy_seed=3, boot_epoch=1.6e9))
    rb = dettrace_run(main, host=HostEnvironment(entropy_seed=77, boot_epoch=1.9e9))
    assert ra.exit_code == rb.exit_code == 0
    assert ra.output_tree == rb.output_tree


def test_allowlisted_calls_cost_no_stop():
    """The whole point of the allow-list: no tracer stop, so a guest
    spinning on allow-listed calls accrues less virtual stop time than
    one forced through the filter-disabled double-stop path."""
    def main(sys):
        for _ in range(50):
            yield from sys.getpid()
        return 0

    fast = dettrace_run(main, config=ContainerConfig(use_seccomp=True))
    slow = dettrace_run(main, config=ContainerConfig(use_seccomp=False))
    assert fast.exit_code == slow.exit_code == 0
    assert fast.output_tree == slow.output_tree
    assert fast.wall_time < slow.wall_time
