"""Partial-IO retry injection (SS5.5, Figure 4)."""
from repro.core import ContainerConfig, ablated
from repro.cpu.machine import HostEnvironment
from tests.conftest import dettrace_run


def pipe_reader_program(read_size):
    """A producer/consumer pair where the consumer issues ONE read and
    assumes it gets everything — the idiom DetTrace's retry rescues."""
    def producer(sys):
        for i in range(8):
            yield from sys.write_all(1, b"%04d" % i)
            yield from sys.compute(2e-4)  # drip-feed: forces partial reads
        return 0

    def main(sys):
        r, w = yield from sys.pipe()
        yield from sys.spawn("/bin/producer", stdout=w, close_fds=[r])
        yield from sys.close(w)
        data = yield from sys.read(r, read_size)  # ONE read syscall
        yield from sys.write_file("got", data)
        yield from sys.waitpid(-1)
        return 0

    return main, producer


class TestReadRetry:
    def test_single_read_sees_full_stream(self):
        main, producer = pipe_reader_program(32)
        r = dettrace_run(main, extra_binaries={"/bin/producer": producer})
        assert r.exit_code == 0
        assert r.output_tree["got"] == b"00000001000200030004000500060007"
        assert r.counters.read_retries > 0

    def test_read_stops_at_eof(self):
        main, producer = pipe_reader_program(1000)  # more than produced
        r = dettrace_run(main, extra_binaries={"/bin/producer": producer})
        assert r.exit_code == 0
        assert r.output_tree["got"] == b"00000001000200030004000500060007"

    def test_retry_ablated_returns_partial(self):
        main, producer = pipe_reader_program(32)
        cfg = ablated("retry_partial_io")
        r = dettrace_run(main, config=cfg,
                         extra_binaries={"/bin/producer": producer})
        assert r.exit_code == 0
        assert len(r.output_tree["got"]) < 32  # partial read leaked through

    def test_regular_file_reads_unaffected(self):
        def main(sys):
            yield from sys.write_file("f", b"0123456789")
            fd = yield from sys.open("f")
            data = yield from sys.read(fd, 4)
            return 0 if data == b"0123" else 1

        r = dettrace_run(main)
        assert r.exit_code == 0
        assert r.counters.read_retries == 0


class TestWriteRetry:
    def test_big_write_completes_in_one_syscall(self):
        """A single write far larger than the pipe buffer: DetTrace
        retries through the Blocked queue until all bytes are written."""
        def drain(sys):
            total = 0
            while True:
                chunk = yield from sys.read(0, 8192)
                if not chunk:
                    break
                total += len(chunk)
            yield from sys.write_file("drained", str(total))
            return 0

        def main(sys):
            r, w = yield from sys.pipe()
            yield from sys.spawn("/bin/drain", stdin=r, close_fds=[w])
            yield from sys.close(r)
            n = yield from sys.write(w, b"z" * 200_000)  # ONE write syscall
            yield from sys.close(w)
            yield from sys.waitpid(-1)
            return 0 if n == 200_000 else 1

        r = dettrace_run(main, extra_binaries={"/bin/drain": drain})
        assert r.exit_code == 0
        assert r.output_tree["drained"] == b"200000"
        assert r.counters.write_retries > 0
        assert r.counters.replays_blocking > 0
