"""repro.parallel: deterministic fan-out of independent jobs.

The contract under test: the result list (and any raised error) is a
pure function of the jobs, independent of the worker count — completion
races in the pool must never be observable.
"""
import pickle

import pytest

from repro.kernel.errors import Errno, SyscallError
from repro.parallel import (
    Job,
    WorkerError,
    default_workers,
    fan_out,
    run_jobs,
)

# Workers are forked processes: job functions must be module-level.


def _square(x):
    return x * x


def _tag(name, n):
    return "%s:%d" % (name, n)


def _boom(x):
    if x % 2:
        raise ValueError("odd %d" % x)
    return x


def test_results_sorted_by_key():
    jobs = [Job(key=k, fn=_square, args=(k,)) for k in (3, 1, 2)]
    assert run_jobs(jobs) == [(1, 1), (2, 4), (3, 9)]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_worker_count_invisible(workers):
    jobs = [Job(key=k, fn=_tag, args=("j", k)) for k in range(8)]
    assert run_jobs(jobs, workers=workers) \
        == [(k, "j:%d" % k) for k in range(8)]


def test_serial_and_parallel_identical():
    jobs = [Job(key=k, fn=_square, args=(k,)) for k in range(10)]
    assert run_jobs(jobs, workers=1) == run_jobs(jobs, workers=4)


@pytest.mark.parametrize("workers", [1, 3])
def test_error_precedence_is_smallest_key(workers):
    """Key 1 fails and key 3 fails; serial execution would hit key 1
    first, so every worker count must raise key 1's error."""
    jobs = [Job(key=k, fn=_boom, args=(k,)) for k in (3, 0, 1, 2)]
    with pytest.raises(ValueError, match="odd 1"):
        run_jobs(jobs, workers=workers)


def test_duplicate_keys_rejected():
    jobs = [Job(key=1, fn=_square, args=(1,)),
            Job(key=1, fn=_square, args=(2,))]
    with pytest.raises(ValueError, match="unique"):
        run_jobs(jobs)


def test_kwargs_and_empty_inputs():
    assert run_jobs([]) == []
    jobs = [Job(key="a", fn=_tag, args=("x",), kwargs={"n": 7})]
    assert run_jobs(jobs, workers=2) == [("a", "x:7")]


def _raise_syscall_error(x):
    # SyscallError(errno, syscall, detail) has a custom __init__ whose
    # args don't round-trip through the default Exception pickling: it
    # pickles fine but explodes on *unpickle* inside pool.map's result
    # plumbing — exactly the non-deterministic teardown the carrier
    # prevents.
    raise SyscallError(Errno.ENOSPC, "write", "disk full on job %d" % x)


def test_unpicklable_exception_does_not_crash_the_pool():
    jobs = [Job(key=k, fn=_raise_syscall_error, args=(k,))
            for k in range(4)]
    with pytest.raises(WorkerError) as exc_info:
        run_jobs(jobs, workers=3)
    err = exc_info.value
    assert err.type_name == "SyscallError"
    assert err.errno == int(Errno.ENOSPC)
    assert "job 0" in err.message  # smallest key's error, as serial would
    assert "SyscallError" in err.format_traceback()


@pytest.mark.parametrize("workers", [1, 3])
def test_carrier_identical_serial_and_pooled(workers):
    """The raised error must be a pure function of the jobs: the same
    WorkerError whether the exception crossed a process boundary or not."""
    jobs = [Job(key=k, fn=_raise_syscall_error, args=(k,))
            for k in range(3)]
    with pytest.raises(WorkerError) as exc_info:
        run_jobs(jobs, workers=workers)
    assert exc_info.value.type_name == "SyscallError"
    assert exc_info.value.errno == int(Errno.ENOSPC)
    assert "job 0" in exc_info.value.message


def test_worker_error_survives_pickle():
    err = WorkerError("SyscallError", "boom", errno=28, tb="trace\n")
    back = pickle.loads(pickle.dumps(err))
    assert isinstance(back, WorkerError)
    assert (back.type_name, back.message, back.errno, back.tb) \
        == ("SyscallError", "boom", 28, "trace\n")


def test_picklable_exceptions_pass_through_unwrapped():
    # ValueError round-trips, so callers keep catching the real type
    # (the existing error-precedence contract depends on this).
    jobs = [Job(key=0, fn=_boom, args=(1,))]
    with pytest.raises(ValueError, match="odd 1"):
        run_jobs(jobs, workers=2)


def test_workers_clamped_to_job_count():
    # More workers than jobs must not spin up idle processes or change
    # anything observable.
    jobs = [Job(key=0, fn=_square, args=(5,))]
    assert run_jobs(jobs, workers=16) == [(0, 25)]


def test_fan_out_preserves_input_order():
    assert fan_out(_tag, [("a", 1), ("b", 2), ("c", 3)], workers=2) \
        == ["a:1", "b:2", "c:3"]


def test_default_workers_bounds():
    n = default_workers()
    assert 1 <= n <= 8


# -- per-item timeout (serial and pool paths alike) -------------------------


def _hang(x):
    import time
    time.sleep(60)
    return x


def _slow_ok(x):
    return x + 100


@pytest.mark.parametrize("workers", [1, 3])
def test_timeout_fires_on_both_paths(workers):
    """A hung job surfaces as a JobTimeout carrier whether run
    'serially' or pooled — serial mode must not block forever."""
    jobs = [Job(key=0, fn=_hang, args=(0,)),
            Job(key=1, fn=_slow_ok, args=(1,))]
    with pytest.raises(WorkerError) as exc_info:
        run_jobs(jobs, workers=workers, timeout=0.5)
    assert exc_info.value.type_name == "JobTimeout"
    assert "job 0" in exc_info.value.message


@pytest.mark.parametrize("workers", [1, 2])
def test_timeout_error_precedence_is_smallest_key(workers):
    """Key 0 times out, key 1 raises: the smallest key's failure wins,
    exactly as on the untimed serial path."""
    jobs = [Job(key=1, fn=_boom, args=(1,)),
            Job(key=0, fn=_hang, args=(0,))]
    with pytest.raises(WorkerError) as exc_info:
        run_jobs(jobs, workers=workers, timeout=0.5)
    assert exc_info.value.type_name == "JobTimeout"


def test_timeout_untriggered_results_identical_to_untimed():
    jobs = [Job(key=k, fn=_square, args=(k,)) for k in range(6)]
    assert run_jobs(jobs, workers=2, timeout=30.0) == run_jobs(jobs, workers=2)


# -- resume-state: an interrupted fan-out re-runs only incomplete keys ------


def _log_and_square(x, log_path):
    with open(log_path, "a") as fh:
        fh.write("%d\n" % x)
    return x * x


def _fail_on(x, bad):
    if x == bad:
        raise ValueError("injected %d" % x)
    return x * x


def test_resume_state_skips_completed_keys(tmp_path):
    state = str(tmp_path / "state")
    log = str(tmp_path / "calls.log")
    jobs = [Job(key=k, fn=_log_and_square, args=(k, log)) for k in range(4)]
    first = run_jobs(jobs, resume_state=state)
    second = run_jobs(jobs, resume_state=state)
    assert first == second == [(k, k * k) for k in range(4)]
    with open(log) as fh:
        calls = [int(line) for line in fh]
    assert calls == [0, 1, 2, 3]  # nothing re-ran on the second call


def test_resume_state_only_persists_ok_results(tmp_path):
    state = str(tmp_path / "state")
    jobs = [Job(key=k, fn=_fail_on, args=(k, 1)) for k in range(3)]
    with pytest.raises(ValueError, match="injected 1"):
        run_jobs(jobs, resume_state=state)
    # Keys 0 and 2 completed and were persisted; key 1 must re-run.
    ok_jobs = [Job(key=k, fn=_fail_on, args=(k, -1)) for k in range(3)]
    assert run_jobs(ok_jobs, resume_state=state) \
        == [(0, 0), (1, 1), (2, 4)]


def test_resume_state_results_match_fresh_run(tmp_path):
    jobs = [Job(key=k, fn=_square, args=(k,)) for k in range(5)]
    fresh = run_jobs(jobs, workers=2)
    resumed = run_jobs(jobs, workers=2,
                       resume_state=str(tmp_path / "state"))
    assert fresh == resumed


def test_resume_state_ignores_corrupt_entries(tmp_path):
    from repro.parallel import _state_path

    state = str(tmp_path / "state")
    jobs = [Job(key=k, fn=_square, args=(k,)) for k in range(3)]
    run_jobs(jobs, resume_state=state)
    # A torn completion record is recomputed, not trusted.
    with open(_state_path(state, 1), "wb") as fh:
        fh.write(b"\x80garbage")
    assert run_jobs(jobs, resume_state=state) == [(0, 0), (1, 1), (2, 4)]


def test_reprotest_jobs_identity():
    """A reprotest double-build reaches the same verdict and artifact
    diff whether its two builds run serially or on two workers."""
    from repro.repro_tools.reprotest import reprotest_dettrace
    from repro.workloads.debian.package import PackageSpec

    spec = PackageSpec(name="par-ident", embeds_timestamp=True)
    serial = reprotest_dettrace(spec, jobs=1)
    parallel = reprotest_dettrace(spec, jobs=2)
    assert serial.verdict == parallel.verdict
    assert serial.first.artifacts == parallel.first.artifacts
    assert serial.second.artifacts == parallel.second.artifacts
