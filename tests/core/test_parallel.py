"""repro.parallel: deterministic fan-out of independent jobs.

The contract under test: the result list (and any raised error) is a
pure function of the jobs, independent of the worker count — completion
races in the pool must never be observable.
"""
import pickle

import pytest

from repro.kernel.errors import Errno, SyscallError
from repro.parallel import (
    Job,
    WorkerError,
    default_workers,
    fan_out,
    run_jobs,
)

# Workers are forked processes: job functions must be module-level.


def _square(x):
    return x * x


def _tag(name, n):
    return "%s:%d" % (name, n)


def _boom(x):
    if x % 2:
        raise ValueError("odd %d" % x)
    return x


def test_results_sorted_by_key():
    jobs = [Job(key=k, fn=_square, args=(k,)) for k in (3, 1, 2)]
    assert run_jobs(jobs) == [(1, 1), (2, 4), (3, 9)]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_worker_count_invisible(workers):
    jobs = [Job(key=k, fn=_tag, args=("j", k)) for k in range(8)]
    assert run_jobs(jobs, workers=workers) \
        == [(k, "j:%d" % k) for k in range(8)]


def test_serial_and_parallel_identical():
    jobs = [Job(key=k, fn=_square, args=(k,)) for k in range(10)]
    assert run_jobs(jobs, workers=1) == run_jobs(jobs, workers=4)


@pytest.mark.parametrize("workers", [1, 3])
def test_error_precedence_is_smallest_key(workers):
    """Key 1 fails and key 3 fails; serial execution would hit key 1
    first, so every worker count must raise key 1's error."""
    jobs = [Job(key=k, fn=_boom, args=(k,)) for k in (3, 0, 1, 2)]
    with pytest.raises(ValueError, match="odd 1"):
        run_jobs(jobs, workers=workers)


def test_duplicate_keys_rejected():
    jobs = [Job(key=1, fn=_square, args=(1,)),
            Job(key=1, fn=_square, args=(2,))]
    with pytest.raises(ValueError, match="unique"):
        run_jobs(jobs)


def test_kwargs_and_empty_inputs():
    assert run_jobs([]) == []
    jobs = [Job(key="a", fn=_tag, args=("x",), kwargs={"n": 7})]
    assert run_jobs(jobs, workers=2) == [("a", "x:7")]


def _raise_syscall_error(x):
    # SyscallError(errno, syscall, detail) has a custom __init__ whose
    # args don't round-trip through the default Exception pickling: it
    # pickles fine but explodes on *unpickle* inside pool.map's result
    # plumbing — exactly the non-deterministic teardown the carrier
    # prevents.
    raise SyscallError(Errno.ENOSPC, "write", "disk full on job %d" % x)


def test_unpicklable_exception_does_not_crash_the_pool():
    jobs = [Job(key=k, fn=_raise_syscall_error, args=(k,))
            for k in range(4)]
    with pytest.raises(WorkerError) as exc_info:
        run_jobs(jobs, workers=3)
    err = exc_info.value
    assert err.type_name == "SyscallError"
    assert err.errno == int(Errno.ENOSPC)
    assert "job 0" in err.message  # smallest key's error, as serial would
    assert "SyscallError" in err.format_traceback()


@pytest.mark.parametrize("workers", [1, 3])
def test_carrier_identical_serial_and_pooled(workers):
    """The raised error must be a pure function of the jobs: the same
    WorkerError whether the exception crossed a process boundary or not."""
    jobs = [Job(key=k, fn=_raise_syscall_error, args=(k,))
            for k in range(3)]
    with pytest.raises(WorkerError) as exc_info:
        run_jobs(jobs, workers=workers)
    assert exc_info.value.type_name == "SyscallError"
    assert exc_info.value.errno == int(Errno.ENOSPC)
    assert "job 0" in exc_info.value.message


def test_worker_error_survives_pickle():
    err = WorkerError("SyscallError", "boom", errno=28, tb="trace\n")
    back = pickle.loads(pickle.dumps(err))
    assert isinstance(back, WorkerError)
    assert (back.type_name, back.message, back.errno, back.tb) \
        == ("SyscallError", "boom", 28, "trace\n")


def test_picklable_exceptions_pass_through_unwrapped():
    # ValueError round-trips, so callers keep catching the real type
    # (the existing error-precedence contract depends on this).
    jobs = [Job(key=0, fn=_boom, args=(1,))]
    with pytest.raises(ValueError, match="odd 1"):
        run_jobs(jobs, workers=2)


def test_workers_clamped_to_job_count():
    # More workers than jobs must not spin up idle processes or change
    # anything observable.
    jobs = [Job(key=0, fn=_square, args=(5,))]
    assert run_jobs(jobs, workers=16) == [(0, 25)]


def test_fan_out_preserves_input_order():
    assert fan_out(_tag, [("a", 1), ("b", 2), ("c", 3)], workers=2) \
        == ["a:1", "b:2", "c:3"]


def test_default_workers_bounds():
    n = default_workers()
    assert 1 <= n <= 8


def test_reprotest_jobs_identity():
    """A reprotest double-build reaches the same verdict and artifact
    diff whether its two builds run serially or on two workers."""
    from repro.repro_tools.reprotest import reprotest_dettrace
    from repro.workloads.debian.package import PackageSpec

    spec = PackageSpec(name="par-ident", embeds_timestamp=True)
    serial = reprotest_dettrace(spec, jobs=1)
    parallel = reprotest_dettrace(spec, jobs=2)
    assert serial.verdict == parallel.verdict
    assert serial.first.artifacts == parallel.first.artifacts
    assert serial.second.artifacts == parallel.second.artifacts
