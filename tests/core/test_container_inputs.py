"""Figure 1: what counts as an INPUT to a DetTrace computation.

File contents, permissions, and the uid/gid mapping are inputs (changing
them may change output); mtimes, inode numbers and host identity are not.
"""
from repro.core import ContainerConfig, DetTrace, Image
from repro.cpu.machine import HostEnvironment


def mode_sensitive_program(sys):
    st = yield from sys.stat("/input/data")
    if st.st_mode & 0o100:   # is it executable?
        yield from sys.write_file("out", b"ran-as-script")
    else:
        yield from sys.write_file("out", b"read-as-data")
    yield from sys.write_file("owner", b"%d" % st.st_uid)
    return 0


def image_with_mode(mode):
    img = Image()
    img.add_binary("/bin/main", mode_sensitive_program)
    img.add_file("/input/data", b"payload", mode=mode)
    return img


class TestPermissionsAreInputs:
    def test_mode_change_changes_output(self):
        """'a permissions change can affect output' (SS3)."""
        a = DetTrace().run(image_with_mode(0o644), "/bin/main")
        b = DetTrace().run(image_with_mode(0o755), "/bin/main")
        assert a.output_tree["out"] == b"read-as-data"
        assert b.output_tree["out"] == b"ran-as-script"

    def test_each_mode_individually_reproducible(self):
        for mode in (0o644, 0o755):
            runs = [DetTrace().run(image_with_mode(mode), "/bin/main",
                                   host=HostEnvironment(entropy_seed=s))
                    for s in (1, 2)]
            assert runs[0].output_tree == runs[1].output_tree


class TestUidMapIsAnInput:
    def test_custom_mapping_changes_reported_owner(self):
        img = image_with_mode(0o644)
        default = DetTrace().run(img, "/bin/main")
        remapped = DetTrace(ContainerConfig(uid_map={0: 4242})).run(
            img, "/bin/main")
        assert default.output_tree["owner"] == b"0"
        assert remapped.output_tree["owner"] == b"4242"

    def test_custom_mapping_is_reproducible(self):
        img = image_with_mode(0o644)
        cfg = ContainerConfig(uid_map={0: 4242})
        runs = [DetTrace(cfg).run(img, "/bin/main",
                                  host=HostEnvironment(entropy_seed=s))
                for s in (3, 4)]
        assert runs[0].output_tree == runs[1].output_tree


class TestContentsAreInputs:
    def test_content_change_changes_output(self):
        def hasher(sys):
            import hashlib
            data = yield from sys.read_file("/input/data")
            yield from sys.write_file("digest", hashlib.sha256(data).hexdigest())
            return 0

        def image_with(content):
            img = Image()
            img.add_binary("/bin/main", hasher)
            img.add_file("/input/data", content)
            return img

        a = DetTrace().run(image_with(b"v1"), "/bin/main")
        b = DetTrace().run(image_with(b"v2"), "/bin/main")
        assert a.output_tree != b.output_tree
