"""The artifact's --debug tracing."""
from repro.core import ContainerConfig
from tests.conftest import dettrace_run


def program(sys):
    yield from sys.write_file("f", b"payload")
    yield from sys.stat("f")
    yield from sys.rdtsc()
    return 0


class TestDebugLog:
    def test_off_by_default(self):
        assert dettrace_run(program).debug_log == []

    def test_level1_logs_syscalls(self):
        r = dettrace_run(program, config=ContainerConfig(debug=1))
        text = "\n".join(r.debug_log)
        assert "open(" in text
        assert "stat(" in text
        assert "[pid 1]" in text
        assert "trap" not in text

    def test_level2_logs_instruction_traps(self):
        r = dettrace_run(program, config=ContainerConfig(debug=2))
        assert any("trap rdtsc" in line for line in r.debug_log)

    def test_log_is_deterministic(self):
        from repro.cpu.machine import HostEnvironment

        a = dettrace_run(program, config=ContainerConfig(debug=1),
                         host=HostEnvironment(entropy_seed=1))
        b = dettrace_run(program, config=ContainerConfig(debug=1),
                         host=HostEnvironment(entropy_seed=2))
        assert a.debug_log == b.debug_log
