"""Supervised runs and graceful degradation.

The quasi-determinism contract says a run either reproduces or fails
*reproducibly* — which requires that no failure mode ever unwinds out of
``DetTrace.run``/``run_supervised``/``NativeRunner.run`` as an exception.
These tests cover the classification paths (kernel panic, event-budget
livelock, timeout) and the retry layer's semantics.
"""
import pytest

from repro.core import (
    CRASHED,
    ContainerConfig,
    DetTrace,
    NativeRunner,
    OK,
    RETRIED,
    TIMEOUT,
)
from repro.core.container import _SUCCESS_STATUSES
from repro.cpu.machine import HostEnvironment
from repro.faults import FaultPlan, FaultRule, storm
from repro.kernel.kernel import RECENT_SYSCALL_WINDOW

from tests.conftest import dettrace_run, image_of, native_run

pytestmark = pytest.mark.faults


def _bad_guest(sys):
    yield from sys.println("about to go wrong")
    yield "this is not a kernel op"
    return 0


def _ok_guest(sys):
    yield from sys.write_file("out.txt", b"hello\n")
    return 0


def _busy_guest(sys):
    while True:
        yield from sys.write(1, b".")


class TestGracefulDegradation:
    """Satellite bugfix: run() classifies instead of raising."""

    def test_kernel_panic_becomes_crashed_under_dettrace(self):
        r = dettrace_run(_bad_guest)
        assert r.status == CRASHED
        assert "kernel panic" in r.error
        assert r.exit_code is None
        # Partial observable state survives the crash.
        assert "about to go wrong" in r.stdout
        assert r.crash_report is not None
        assert r.crash_report.status == CRASHED

    def test_kernel_panic_becomes_crashed_under_native(self):
        r = native_run(_bad_guest)
        assert r.status == CRASHED
        assert "kernel panic" in r.error
        assert r.exit_code is None

    def test_event_budget_livelock_is_crashed_not_hung(self):
        cfg = ContainerConfig(max_events=20_000, busy_wait_budget=None)
        r = dettrace_run(_busy_guest, config=cfg)
        assert r.status == CRASHED
        assert r.crash_report is not None

    def test_crash_report_carries_bounded_recent_syscalls(self):
        cfg = ContainerConfig(max_events=20_000, busy_wait_budget=None)
        r = dettrace_run(_busy_guest, config=cfg)
        last = r.crash_report.last_syscalls
        assert 0 < len(last) <= RECENT_SYSCALL_WINDOW
        # (nspid, per-process index, name) coordinates, newest last.
        assert last[-1][2] == "write"

    def test_timeout_path_keeps_debug_log(self):
        """Satellite bugfix: _finish owns debug_log, so abnormal exits
        keep the kernel's final trace instead of dropping it."""
        cfg = ContainerConfig(timeout=0.01, debug=1)
        r = dettrace_run(_busy_guest, config=cfg)
        assert r.status == TIMEOUT
        assert r.debug_log, "timeout path must keep the debug trace"

    def test_partial_output_tree_survives_a_faulted_abort(self):
        def main(sys):
            yield from sys.write_file("kept.txt", b"landed before the storm\n")
            yield from sys.write_file("lost.txt", b"never lands\n")
            return 0

        # Third write syscall onward fails permanently; guest dies on it.
        plan = storm("eio", syscall="write", start=1, count=100)
        r = dettrace_run(main, config=ContainerConfig(fault_plan=plan))
        assert not r.succeeded
        assert "kept.txt" in r.output_tree
        assert "lost.txt" not in r.output_tree
        assert r.crash_report is not None and r.crash_report.fault_trace


class TestRunSupervised:
    def _supervised(self, program, plan, **cfg_kwargs):
        cfg = ContainerConfig(fault_plan=plan, **cfg_kwargs)
        return DetTrace(cfg).run_supervised(
            image_of(program), "/bin/main",
            host=HostEnvironment(entropy_seed=7))

    def test_clean_run_is_single_attempt_ok(self):
        r = self._supervised(_ok_guest, FaultPlan())
        assert r.status == OK
        assert r.attempts == 1
        assert r.succeeded

    def test_transient_storm_is_retried_to_success(self):
        plan = storm("eio", syscall="write", count=100, transient=True)
        r = self._supervised(_ok_guest, plan)
        assert r.status == RETRIED
        assert r.succeeded
        assert r.attempts == 2
        assert r.output_tree["out.txt"] == b"hello\n"
        log = r.crash_report.attempt_log
        assert [a.attempt for a in log] == [0, 1]
        assert log[0].faults_injected > 0 and log[0].transient
        assert log[1].faults_injected == 0
        # Deterministic virtual backoff charged exactly once.
        assert log[0].backoff == 0.0
        assert log[1].backoff == pytest.approx(0.05)

    def test_retried_counts_as_success_status(self):
        assert RETRIED in _SUCCESS_STATUSES

    def test_multi_attempt_storm_doubles_backoff(self):
        plan = storm("eio", syscall="write", count=100, transient=True,
                     attempts=2)
        r = self._supervised(_ok_guest, plan, max_retries=3)
        assert r.status == RETRIED
        assert r.attempts == 3
        backoffs = [a.backoff for a in r.crash_report.attempt_log]
        assert backoffs == [0.0, pytest.approx(0.05), pytest.approx(0.10)]

    def test_retries_exhausted_keeps_final_failure(self):
        plan = storm("eio", syscall="write", count=100, transient=True,
                     attempts=50)
        r = self._supervised(_ok_guest, plan, max_retries=2)
        assert not r.succeeded
        assert r.status != RETRIED
        assert r.attempts == 3  # initial + max_retries
        assert len(r.crash_report.attempt_log) == 3

    def test_permanent_fault_is_not_retried(self):
        plan = storm("eio", syscall="write", count=100)  # not transient
        r = self._supervised(_ok_guest, plan)
        assert not r.succeeded
        assert r.attempts == 1

    def test_crash_without_transient_faults_is_not_retried(self):
        r = self._supervised(_bad_guest, FaultPlan())
        assert r.status == CRASHED
        assert r.attempts == 1
        assert r.crash_report.attempt_log[0].status == CRASHED

    def test_total_wall_time_includes_backoff_and_all_attempts(self):
        plan = storm("eio", syscall="write", count=100, transient=True)
        r = self._supervised(_ok_guest, plan)
        assert r.wall_time >= 0.05

    def test_supervised_never_raises_on_hostile_plans(self):
        hostile = FaultPlan(rules=(
            FaultRule(fault="enomem", count=64),
            FaultRule(fault="signal", signum=9, start=3, count=5),
            FaultRule(fault="disk_full", bytes=1),
            FaultRule(fault="short_write", keep_bytes=0, count=64),
        ))
        r = self._supervised(_ok_guest, hostile)
        assert r.status is not None
        assert r.crash_report is not None


class TestNativeRunnerClassification:
    def test_native_runner_accepts_fault_plan(self):
        plan = storm("eio", syscall="write", count=100)
        r = NativeRunner(fault_plan=plan).run(
            image_of(_ok_guest), "/bin/main",
            host=HostEnvironment(entropy_seed=7))
        assert not r.succeeded
        assert r.crash_report is not None and r.crash_report.fault_trace

    def test_native_timeout_is_classified(self):
        r = NativeRunner(timeout=0.01).run(
            image_of(_busy_guest), "/bin/main",
            host=HostEnvironment(entropy_seed=7))
        assert r.status == TIMEOUT
        assert r.exit_code is None
