from repro.core.logical_time import DETTRACE_EPOCH, RDTSC_BASE, RDTSC_STEP, LogicalClock


class TestLogicalClock:
    def test_time_starts_at_epoch(self):
        clock = LogicalClock()
        assert clock.next_time(100) == DETTRACE_EPOCH

    def test_time_monotonically_advances_per_process(self):
        clock = LogicalClock()
        values = [clock.next_time(1) for _ in range(5)]
        assert values == sorted(values)
        assert len(set(values)) == 5

    def test_processes_have_independent_counters(self):
        clock = LogicalClock()
        clock.next_time(1)
        clock.next_time(1)
        assert clock.next_time(2) == DETTRACE_EPOCH

    def test_timeofday_shares_counter_with_time(self):
        clock = LogicalClock()
        a = clock.next_time(1)
        b = clock.next_timeofday(1)
        c = clock.next_time(1)
        assert a < b < c

    def test_monotonic_clock_shares_counter(self):
        clock = LogicalClock()
        clock.next_time(1)
        assert clock.next_monotonic(1) > 0

    def test_rdtsc_is_linear(self):
        clock = LogicalClock()
        vals = [clock.next_rdtsc(1) for _ in range(4)]
        diffs = {b - a for a, b in zip(vals, vals[1:])}
        assert diffs == {RDTSC_STEP}
        assert vals[0] == RDTSC_BASE

    def test_forget_process(self):
        clock = LogicalClock()
        clock.next_time(1)
        clock.forget_process(1)
        assert clock.next_time(1) == DETTRACE_EPOCH

    def test_custom_epoch(self):
        clock = LogicalClock(epoch=1000)
        assert clock.next_time(1) == 1000
