"""Machine identity masking (SS3, SS5.8)."""
from repro.core import ablated
from repro.core.handlers.machine import CANONICAL_NPROCS, CANONICAL_UTSNAME
from repro.cpu.machine import BROADWELL_XEON, SANDY_BRIDGE, SKYLAKE_CLOUDLAB, HostEnvironment
from tests.conftest import dettrace_run


class TestUname:
    def test_canonical_linux_4_0(self):
        def main(sys):
            un = yield from sys.uname()
            yield from sys.write_file("u", " ".join(un.as_tuple()))
            return 0

        r1 = dettrace_run(main, host=HostEnvironment(machine=SKYLAKE_CLOUDLAB))
        r2 = dettrace_run(main, host=HostEnvironment(machine=BROADWELL_XEON))
        assert r1.output_tree == r2.output_tree
        assert b"4.0.0" in r1.output_tree["u"]
        assert b"dettrace" in r1.output_tree["u"]

    def test_ablated_leaks_host(self):
        def main(sys):
            un = yield from sys.uname()
            yield from sys.write_file("u", un.nodename)
            return 0

        cfg = ablated("mask_machine")
        r1 = dettrace_run(main, host=HostEnvironment(machine=SKYLAKE_CLOUDLAB), config=cfg)
        r2 = dettrace_run(main, host=HostEnvironment(machine=BROADWELL_XEON), config=cfg)
        assert r1.output_tree != r2.output_tree


class TestSysinfo:
    def test_single_core_presented(self):
        """DetTrace lists a single core to widen the machine equivalence
        class (SS5.8)."""
        def main(sys):
            si = yield from sys.sysinfo()
            return 0 if si.nprocs == CANONICAL_NPROCS else 1

        assert dettrace_run(main, host=HostEnvironment(machine=SKYLAKE_CLOUDLAB)).exit_code == 0


class TestCpuid:
    def test_masked_to_canonical_uniprocessor(self):
        def main(sys):
            res = yield from sys.instr("cpuid")
            yield from sys.write_file("cpu", "%s %d %s" % (
                res.brand, res.cores, ",".join(sorted(res.features))))
            return 0

        r1 = dettrace_run(main, host=HostEnvironment(machine=SKYLAKE_CLOUDLAB))
        r2 = dettrace_run(main, host=HostEnvironment(machine=BROADWELL_XEON))
        assert r1.output_tree == r2.output_tree
        assert b"DetTrace Virtual CPU" in r1.output_tree["cpu"]
        assert b"rtm" not in r1.output_tree["cpu"]      # TSX hidden
        assert b"rdrand" not in r1.output_tree["cpu"]   # hw randomness hidden

    def test_sandy_bridge_cannot_mask_cpuid(self):
        """Pre-Ivy-Bridge hardware lacks cpuid faulting: the real machine
        leaks, shrinking the portability class (SS5.8)."""
        def main(sys):
            res = yield from sys.instr("cpuid")
            yield from sys.write_file("brand", res.brand)
            return 0

        r = dettrace_run(main, host=HostEnvironment(machine=SANDY_BRIDGE))
        assert b"E5-2650" in r.output_tree["brand"]
