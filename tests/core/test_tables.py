"""Table/figure text formatting."""
from repro.analysis import (
    PAPER_TABLE1_TOP,
    format_fig6,
    format_scatter,
    format_table,
    format_table1,
    format_table2,
)


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert set(lines[2]) == {"-"}
        assert lines[3].startswith("a")

    def test_table1_fractions(self):
        matrix = {("irreproducible", "reproducible"): 72,
                  ("irreproducible", "unsupported"): 16,
                  ("irreproducible", "timeout"): 12,
                  ("reproducible", "reproducible"): 90,
                  ("reproducible", "unsupported"): 4,
                  ("reproducible", "timeout"): 6}
        text = format_table1(matrix)
        assert "72.0%" in text
        assert "72.7%" in text  # the paper column

    def test_table2_rows(self):
        text = format_table2({"System call events": 500.0})
        assert "System call events" in text
        assert "843621.53" in text

    def test_fig6_columns(self):
        speedups = {tool: {"native": [1, 2, 4], "dettrace": [0.5, 1, 2]}
                    for tool in ("clustal", "hmmer", "raxml")}
        text = format_fig6(speedups)
        assert "clustal" in text and "dettrace" in text
        assert "4.24" in text  # paper value present

    def test_scatter_renders_points(self):
        text = format_scatter([(100, 1.0), (10_000, 5.0)], width=40, height=8)
        assert text.count("*") >= 2
        assert "syscalls/s" in text

    def test_scatter_empty(self):
        assert "no data" in format_scatter([], title="t")

    def test_paper_table1_sums_to_one_per_row(self):
        for given in ("irreproducible", "reproducible"):
            total = sum(v for (g, _), v in PAPER_TABLE1_TOP.items()
                        if g == given)
            assert abs(total - 1.0) < 0.01
