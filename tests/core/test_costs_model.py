"""Sanity relations of the virtual-time cost model."""
from repro.kernel import costs


class TestCostRelations:
    def test_seccomp_beats_plain_ptrace(self):
        assert costs.SECCOMP_COMBINED_STOP_COST < 2 * costs.PTRACE_STOP_COST

    def test_old_kernels_pay_double(self):
        assert costs.LEGACY_DOUBLE_STOP_COST > costs.SECCOMP_COMBINED_STOP_COST

    def test_wakeup_latency_dominates_occupancy(self):
        """The single-process slowdown exceeds the tracer's serialized
        occupancy (the raxml@1 vs raxml@16 asymmetry, SS7.5)."""
        occupancy = (costs.SECCOMP_COMBINED_STOP_COST
                     + costs.TRACER_HANDLER_COST)
        assert costs.TRACEE_WAKEUP_LATENCY > 2 * occupancy

    def test_syscall_costs_positive_and_micro(self):
        assert 0 < costs.SYSCALL_BASE_COST < 1e-4
        for name, value in costs.SYSCALL_COSTS.items():
            assert 0 < value < 1e-3, name

    def test_spawn_is_expensive(self):
        assert costs.SYSCALL_COSTS["spawn_process"] > 10 * costs.SYSCALL_BASE_COST
        assert costs.SYSCALL_COSTS["execve"] > costs.SYSCALL_COSTS["spawn_process"]

    def test_execve_tracer_cost_dwarfs_per_syscall(self):
        assert costs.EXECVE_TRACER_COST > 10 * costs.TRACER_HANDLER_COST

    def test_tick_smaller_than_typical_compute(self):
        assert costs.SYSCALL_TICK < 1e-4
