"""SVG figure renderers."""
from repro.analysis import figure5_svg, figure6_svg, write_figures


def sample_speedups():
    return {
        "clustal": {"native": [1.0, 2.7, 4.8], "dettrace": [0.9, 2.4, 4.3]},
        "hmmer": {"native": [1.0, 3.2, 7.4], "dettrace": [0.6, 2.0, 3.6]},
        "raxml": {"native": [1.0, 3.4, 8.6], "dettrace": [0.3, 0.9, 1.2]},
    }


class TestFigure5:
    def test_valid_svg_with_points(self):
        svg = figure5_svg([(1000, 1.2), (20000, 3.5), (40000, 8.0)],
                          threaded=[False, True, False])
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<circle") == 3
        assert "system calls per second" in svg

    def test_log_axis_spans_the_data(self):
        import re

        svg = figure5_svg([(100, 1.0), (200, 10.0)])
        labels = [float(v) for v in re.findall(r">(\d+\.\d+)</text>", svg)]
        assert min(labels) <= 1.0
        assert max(labels) >= 10.0


class TestFigure6:
    def test_bars_per_tool_and_mode(self):
        svg = figure6_svg(sample_speedups())
        # 3 tools x 3 proc counts x 2 modes = 18 bars (+2 legend rects)
        assert svg.count("<rect") == 20
        assert "clus/16" in svg
        assert "DetTrace" in svg


class TestWriter:
    def test_writes_files(self, tmp_path):
        paths = write_figures([(1000, 2.0)], [False], sample_speedups(),
                              directory=str(tmp_path))
        assert len(paths) == 2
        for path in paths:
            content = open(path).read()
            assert content.startswith("<svg")
