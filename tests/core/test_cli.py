"""The `python -m repro` CLI."""
import pytest

from repro.cli import main


class TestRun:
    def test_run_date(self, capsys):
        assert main(["run", "date"]) == 0
        assert capsys.readouterr().out == "Aug  8 22:00:00 1993 UTC\n"

    def test_run_is_boot_independent(self, capsys):
        main(["run", "--boot", "1", "date"])
        first = capsys.readouterr().out
        main(["run", "--boot", "9", "date"])
        assert capsys.readouterr().out == first

    def test_native_is_boot_dependent(self, capsys):
        main(["run", "--native", "--boot", "1", "date"])
        first = capsys.readouterr().out
        main(["run", "--native", "--boot", "9", "date"])
        assert capsys.readouterr().out != first

    def test_unknown_tool(self, capsys):
        assert main(["run", "frobnicate"]) == 127
        assert "not in the toolbox" in capsys.readouterr().err

    def test_exit_code_propagates(self):
        assert main(["run", "false"]) == 1

    def test_verbose_stats(self, capsys):
        assert main(["run", "--verbose", "true"]) == 0
        assert "syscalls" in capsys.readouterr().err

    def test_double_dash(self, capsys):
        assert main(["run", "--", "ls", "/etc"]) == 0
        assert "hostname" in capsys.readouterr().out


class TestScript:
    def test_script_runs_reproducibly(self, tmp_path, capsys):
        script = tmp_path / "job.sh"
        script.write_text("date > stamp\necho ok\n")
        assert main(["script", str(script)]) == 0
        first = capsys.readouterr().out
        assert main(["script", "--boot", "5", str(script)]) == 0
        assert capsys.readouterr().out == first

    def test_show_tree(self, tmp_path, capsys):
        script = tmp_path / "job.sh"
        script.write_text("echo x > produced\n")
        assert main(["script", "--show-tree", str(script)]) == 0
        assert "produced" in capsys.readouterr().err


class TestSelftest:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        assert "PASS" in capsys.readouterr().out


class TestCliOptions:
    def test_machine_flag(self, capsys):
        assert main(["run", "--machine", "broadwell-e5-2620v4", "date"]) == 0
        first = capsys.readouterr().out
        assert main(["run", "--machine", "cloudlab-c220g5", "date"]) == 0
        # the container masks the machine: same output everywhere
        assert capsys.readouterr().out == first

    def test_script_native_varies(self, tmp_path, capsys):
        script = tmp_path / "j.sh"
        script.write_text("date\n")
        main(["script", "--native", "--boot", "1", str(script)])
        first = capsys.readouterr().out
        main(["script", "--native", "--boot", "7", str(script)])
        assert capsys.readouterr().out != first

    def test_seed_changes_container_randomness(self, capsys):
        main(["run", "--seed", "1", "mktemp"])
        first = capsys.readouterr().out
        main(["run", "--seed", "2", "mktemp"])
        second = capsys.readouterr().out
        # mktemp uses the vDSO clock (logical under DetTrace), which the
        # PRNG seed does not affect; sha over urandom would differ.  Both
        # must still be non-empty deterministic names.
        assert first and second
