import pytest

from repro.cpu.machine import BROADWELL_XEON, SKYLAKE_CLOUDLAB, HostEnvironment
from repro.kernel.errors import Errno, SyscallError
from repro.kernel.filesystem import Filesystem, normalize, split_path


def fs_for(seed=0, salt=0, **kw):
    return Filesystem(HostEnvironment(entropy_seed=seed, dirent_hash_salt=salt, **kw))


class TestPathHelpers:
    def test_split_drops_empty_and_dot(self):
        assert split_path("/a//b/./c") == ["a", "b", "c"]

    def test_normalize_dotdot(self):
        assert normalize("/a/b/../c") == "/a/c"
        assert normalize("/../a") == "/a"
        assert normalize("/") == "/"


class TestNamei:
    def test_create_and_read_file(self):
        fs = fs_for()
        fs.write_file("/etc/hosts", b"localhost", now=1.0)
        assert fs.read_file("/etc/hosts") == b"localhost"

    def test_resolve_missing_raises_enoent(self):
        fs = fs_for()
        with pytest.raises(SyscallError) as exc:
            fs.resolve(fs.root, fs.root, "/nope")
        assert exc.value.errno == Errno.ENOENT

    def test_relative_resolution_from_cwd(self):
        fs = fs_for()
        d = fs.mkdirs("/home/user")
        fs.write_file("/home/user/f", b"x")
        node = fs.resolve(fs.root, d, "f")
        assert bytes(node.data) == b"x"

    def test_create_duplicate_raises_eexist(self):
        fs = fs_for()
        fs.mkdirs("/d")
        parent = fs.resolve(fs.root, fs.root, "/d")
        fs.create_file(parent, "f")
        with pytest.raises(SyscallError) as exc:
            fs.create_file(parent, "f")
        assert exc.value.errno == Errno.EEXIST

    def test_unlink_releases_inode_for_recycling(self):
        fs = fs_for()
        parent = fs.mkdirs("/d")
        node = fs.create_file(parent, "f")
        ino = node.ino
        fs.unlink(parent, "f")
        again = fs.create_file(parent, "g")
        assert again.ino == ino  # recycled!

    def test_rmdir_nonempty_raises(self):
        fs = fs_for()
        fs.mkdirs("/d/sub")
        parent = fs.root
        with pytest.raises(SyscallError) as exc:
            fs.rmdir(parent, "d")
        assert exc.value.errno == Errno.ENOTEMPTY

    def test_rename_moves_and_replaces(self):
        fs = fs_for()
        fs.write_file("/a", b"1")
        fs.write_file("/b", b"2")
        fs.rename(fs.root, "a", fs.root, "b")
        assert fs.read_file("/b") == b"1"
        assert not fs.exists("/a")

    def test_hard_link_shares_inode(self):
        fs = fs_for()
        node = fs.write_file("/a", b"data")
        fs.hard_link(fs.root, "b", node)
        assert fs.resolve(fs.root, fs.root, "/b") is node
        assert node.nlink == 2
        fs.unlink(fs.root, "a")
        assert node.nlink == 1
        assert fs.read_file("/b") == b"data"

    def test_symlink_resolution(self):
        fs = fs_for()
        fs.write_file("/target", b"T")
        fs.create_symlink(fs.root, "link", "/target")
        assert fs.read_file("/link") == b"T"

    def test_symlink_loop_raises_eloop(self):
        fs = fs_for()
        fs.create_symlink(fs.root, "a", "/b")
        fs.create_symlink(fs.root, "b", "/a")
        with pytest.raises(SyscallError) as exc:
            fs.resolve(fs.root, fs.root, "/a")
        assert exc.value.errno == Errno.ELOOP


class TestIrreproducibilitySources:
    def test_inode_numbers_depend_on_host(self):
        a, b = fs_for(), Filesystem(HostEnvironment(inode_start=777_000))
        na = a.write_file("/f", b"x")
        nb = b.write_file("/f", b"x")
        assert na.ino != nb.ino

    def test_dirent_order_depends_on_salt(self):
        names = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
        orders = []
        for salt in (1, 2):
            fs = fs_for(salt=salt)
            d = fs.mkdirs("/d")
            for n in names:
                fs.create_file(d, n)
            orders.append([e.d_name for e in fs.dirent_order(d)])
        assert sorted(orders[0]) == sorted(names)
        assert orders[0] != orders[1]

    def test_dirent_order_stable_within_one_boot(self):
        fs = fs_for(salt=3)
        d = fs.mkdirs("/d")
        for n in ("x", "y", "z", "w"):
            fs.create_file(d, n)
        assert fs.dirent_order(d) == fs.dirent_order(d)

    def test_directory_size_differs_across_machines(self):
        a = Filesystem(HostEnvironment(machine=SKYLAKE_CLOUDLAB))
        b = Filesystem(HostEnvironment(machine=BROADWELL_XEON))
        for fs in (a, b):
            d = fs.mkdirs("/d")
            for i in range(40):
                fs.create_file(d, "f%d" % i)
        sa = a.stat(a.resolve(a.root, a.root, "/d")).st_size
        sb = b.stat(b.resolve(b.root, b.root, "/d")).st_size
        assert sa != sb

    def test_timestamps_come_from_wall_clock(self):
        fs = fs_for()
        node = fs.write_file("/f", b"x", now=1234.5)
        st = fs.stat(node)
        assert st.st_mtime == 1234.5


class TestDiskAccounting:
    def test_enospc_injection(self):
        fs = Filesystem(HostEnvironment(disk_free_bytes=10))
        fs.write_file("/small", b"12345")
        with pytest.raises(SyscallError) as exc:
            fs.write_file("/big", b"X" * 100)
        assert exc.value.errno == Errno.ENOSPC


class TestSnapshot:
    def test_snapshot_contains_files_and_symlinks(self):
        fs = fs_for()
        fs.write_file("/a/b", b"content")
        fs.create_symlink(fs.root, "ln", "/a/b")
        snap = fs.snapshot()
        assert snap["/a/b"] == b"content"
        assert snap["/ln"] == b"->/a/b"

    def test_snapshot_metadata_mode(self):
        fs = fs_for()
        fs.write_file("/f", b"z", mode=0o640)
        snap = fs.snapshot(include_metadata=True)
        assert snap["/f"].startswith(b"640:0:0|")

    def test_walk_sorted(self):
        fs = fs_for()
        for name in ("c", "a", "b"):
            fs.write_file("/" + name, b"")
        paths = [p for p, _ in fs.walk()]
        assert paths == ["/", "/a", "/b", "/c"]
