import pytest

from repro.kernel.types import (
    FileKind,
    S_IFDIR,
    S_IFREG,
    StatResult,
    Timespec,
    WaitResult,
    make_exit_status,
    make_signal_status,
)


class TestTimespec:
    def test_roundtrip(self):
        ts = Timespec.from_float(12.5)
        assert ts.sec == 12
        assert ts.nsec == 500_000_000
        assert ts.to_float() == pytest.approx(12.5)

    def test_nsec_carry(self):
        ts = Timespec.from_float(1.9999999999)
        assert ts.sec == 2
        assert ts.nsec == 0


class TestWaitStatus:
    def test_exit_code_roundtrip(self):
        res = WaitResult(pid=5, status=make_exit_status(3))
        assert res.exit_code == 3
        assert res.term_signal is None

    def test_signal_roundtrip(self):
        res = WaitResult(pid=5, status=make_signal_status(9))
        assert res.exit_code is None
        assert res.term_signal == 9

    def test_exit_zero(self):
        res = WaitResult(pid=5, status=make_exit_status(0))
        assert res.exit_code == 0


class TestFileKind:
    def test_mode_bits(self):
        assert FileKind.REGULAR.mode_bits == S_IFREG
        assert FileKind.DIRECTORY.mode_bits == S_IFDIR

    def test_stat_helpers(self):
        st = StatResult(st_dev=1, st_ino=2, st_mode=S_IFDIR | 0o755,
                        st_nlink=2, st_uid=0, st_gid=0, st_size=4096,
                        st_blksize=4096, st_blocks=8, st_atime=0,
                        st_mtime=0, st_ctime=0)
        assert st.is_dir()
        assert not st.is_regular()
