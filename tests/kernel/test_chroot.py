"""chroot inside the container (DetTrace itself uses chroot, SS5.5)."""
from tests.conftest import dettrace_run, run_guest


class TestChroot:
    def test_chroot_restricts_view(self):
        def main(sys):
            yield from sys.mkdir_p("jail/etc")
            yield from sys.write_file("jail/etc/inner", b"inner world")
            yield from sys.syscall("chroot", path="jail")
            data = yield from sys.read_file("/etc/inner")
            visible_root = yield from sys.listdir("/")
            assert "jail" not in visible_root
            return 0 if data == b"inner world" else 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_chroot_cwd_resets(self):
        def main(sys):
            yield from sys.mkdir_p("jail")
            yield from sys.syscall("chroot", path="jail")
            cwd = yield from sys.getcwd()
            return 0 if cwd == "/" else 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_chroot_under_dettrace_reproducible(self):
        from repro.cpu.machine import HostEnvironment

        def main(sys):
            yield from sys.mkdir_p("jail")
            yield from sys.write_file("jail/file", b"x")
            yield from sys.syscall("chroot", path="jail")
            st = yield from sys.stat("/file")
            yield from sys.write_file("/report", b"%d %.0f" % (st.st_ino, st.st_mtime))
            return 0

        a = dettrace_run(main, host=HostEnvironment(entropy_seed=1, inode_start=5))
        b = dettrace_run(main, host=HostEnvironment(entropy_seed=2, inode_start=50_000))
        assert a.exit_code == 0
        assert a.output_tree == b.output_tree
