"""The vdso/signals/timers kernel modules."""
import pytest

from repro.cpu.machine import HostEnvironment
from repro.kernel.clock import SimClock
from repro.kernel.signals import Disposition, classify, is_precise_exception
from repro.kernel.timers import TimerTable
from repro.kernel.types import SIGABRT, SIGALRM, SIGCHLD, SIGSEGV, SIGTERM
from repro.kernel.vdso import Vdso


class TestVdso:
    def test_functions(self):
        clock = SimClock(HostEnvironment(boot_epoch=100.0))
        clock.advance_to(2.5)
        vdso = Vdso(clock)
        assert vdso.call("time", {}) == 102
        assert vdso.call("gettimeofday", {}) == 102.5
        assert vdso.call("clock_gettime", {"clock_id": 1}) == 2.5
        assert vdso.read_vvar() == 102.5

    def test_unknown_function_panics(self):
        from repro.kernel.errors import KernelPanic

        vdso = Vdso(SimClock(HostEnvironment()))
        with pytest.raises(KernelPanic):
            vdso.call("getcpu", {})


class TestSignalDispositions:
    def test_handler_wins(self):
        def handler(sys, signum):
            yield

        assert classify({SIGTERM: handler}, SIGTERM) is Disposition.HANDLE

    def test_explicit_ignore(self):
        assert classify({SIGTERM: "ignore"}, SIGTERM) is Disposition.IGNORE

    def test_sigchld_default_ignored(self):
        assert classify({}, SIGCHLD) is Disposition.IGNORE

    def test_fatal_defaults(self):
        assert classify({}, SIGTERM) is Disposition.TERMINATE
        assert classify({}, SIGALRM) is Disposition.TERMINATE

    def test_precise_exceptions(self):
        assert is_precise_exception(SIGSEGV)
        assert is_precise_exception(SIGABRT)
        assert not is_precise_exception(SIGTERM)


class TestTimerTable:
    def test_arm_and_fire(self):
        table = TimerTable()
        gen = table.arm(pid=5, deadline=10.0, signum=SIGALRM)
        assert table.should_fire(5, gen) == SIGALRM
        assert table.should_fire(5, gen) is None  # one-shot

    def test_rearm_invalidates_old_generation(self):
        table = TimerTable()
        old = table.arm(5, 10.0, SIGALRM)
        new = table.arm(5, 20.0, SIGALRM)
        assert table.should_fire(5, old) is None
        assert table.should_fire(5, new) == SIGALRM

    def test_cancel(self):
        table = TimerTable()
        gen = table.arm(5, 10.0, SIGALRM)
        table.cancel(5)
        assert table.should_fire(5, gen) is None

    def test_remaining(self):
        table = TimerTable()
        table.arm(5, 10.0, SIGALRM)
        assert table.remaining(5, now=4.0) == 6.0
        assert table.remaining(5, now=12.0) == 0.0
        assert table.remaining(99, now=0.0) == 0.0


class TestAlarmSemantics:
    def test_alarm_returns_remaining_and_cancels(self):
        from tests.conftest import run_guest

        def main(sys):
            first = yield from sys.alarm(10.0)
            assert first == 0
            remaining = yield from sys.alarm(0)   # cancel
            assert 9.0 < remaining <= 10.0
            yield from sys.sleep(0.05)            # would have died at 10s? no:
            return 0                              # cancelled -> survives

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_rearm_replaces(self):
        from repro.kernel.types import SIGALRM
        from tests.conftest import run_guest

        def main(sys):
            fired = []

            def handler(hsys, signum):
                fired.append(signum)
                yield from hsys.compute(1e-6)

            yield from sys.sigaction(SIGALRM, handler)
            yield from sys.alarm(0.01)
            yield from sys.alarm(0.03)   # re-arm: only ONE firing
            yield from sys.sleep(0.1)
            return 0 if fired == [SIGALRM] else 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0
