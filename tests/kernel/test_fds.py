import pytest

from repro.kernel.errors import Errno, SyscallError
from repro.kernel.fds import FdKind, FDTable, OpenFile


def of():
    return OpenFile(kind=FdKind.FILE, path="/f")


class TestFDTable:
    def test_lowest_free_allocation(self):
        t = FDTable()
        assert t.install(of()) == 0
        assert t.install(of()) == 1
        t.remove(0)
        assert t.install(of()) == 0

    def test_get_bad_fd(self):
        t = FDTable()
        with pytest.raises(SyscallError) as exc:
            t.get(7)
        assert exc.value.errno == Errno.EBADF

    def test_dup_shares_description(self):
        t = FDTable()
        o = of()
        fd = t.install(o)
        fd2 = t.dup(fd)
        assert t.get(fd2) is o
        assert o.refcount == 2

    def test_dup2_replaces_target(self):
        t = FDTable()
        a, b = of(), of()
        t.install_at(0, a)
        t.install_at(1, b)
        t.dup2(0, 1)
        assert t.get(1) is a
        assert b.refcount == 0

    def test_dup2_same_fd_noop(self):
        t = FDTable()
        o = of()
        t.install_at(3, o)
        assert t.dup2(3, 3) == 3
        assert o.refcount == 1

    def test_fork_copy_bumps_refcounts(self):
        t = FDTable()
        o = of()
        t.install_at(0, o)
        child = t.fork_copy()
        assert child.get(0) is o
        assert o.refcount == 2

    def test_install_minimum(self):
        t = FDTable()
        t.install_at(0, of())
        assert t.install(of(), minimum=5) == 5
