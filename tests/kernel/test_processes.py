"""Process lifecycle: spawn, wait, exit codes, signals between processes."""
import pytest

from repro.kernel.errors import Errno, SyscallError
from repro.kernel.types import SIGKILL, SIGTERM, WNOHANG
from tests.conftest import run_guest


class TestSpawnWait:
    def test_child_exit_code_propagates(self):
        def child(sys):
            yield from sys.exit(7)

        def main(sys):
            res = yield from sys.run("/bin/child")
            yield from sys.println("code=%s" % res.exit_code)
            return 0

        k, _ = run_guest(main, binaries={"/bin/child": child})
        assert "code=7" in k.stdout.text()

    def test_wait_any_reaps_all(self):
        def child(sys):
            yield from sys.compute(1e-4)
            return 0

        def main(sys):
            pids = []
            for _ in range(3):
                pids.append((yield from sys.spawn("/bin/child")))
            reaped = set()
            while len(reaped) < 3:
                res = yield from sys.waitpid(-1)
                reaped.add(res.pid)
            assert reaped == set(pids)
            return 0

        k, proc = run_guest(main, binaries={"/bin/child": child})
        assert proc.exit_status == 0

    def test_wnohang_returns_zero_when_running(self):
        def child(sys):
            yield from sys.compute(0.1)
            return 0

        def main(sys):
            pid = yield from sys.spawn("/bin/child")
            res = yield from sys.waitpid(-1, options=WNOHANG)
            assert res.pid == 0  # still running
            res = yield from sys.waitpid(pid)
            return 0 if res.pid == pid else 1

        _, proc = run_guest(main, binaries={"/bin/child": child})
        assert proc.exit_status == 0

    def test_echild_without_children(self):
        def main(sys):
            try:
                yield from sys.waitpid(-1)
            except SyscallError as err:
                return 0 if err.errno == Errno.ECHILD else 1
            return 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_spawn_missing_binary_enoent(self):
        def main(sys):
            try:
                yield from sys.spawn("/bin/ghost")
            except SyscallError as err:
                return 0 if err.errno == Errno.ENOENT else 1
            return 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_child_inherits_cwd_and_env(self):
        def child(sys):
            cwd = yield from sys.getcwd()
            yield from sys.write_file("report", "%s|%s" % (cwd, sys.getenv("MARK")))
            return 0

        def main(sys):
            sys.env["MARK"] = "inherited"
            yield from sys.run("/bin/child")
            return 0

        k, _ = run_guest(main, binaries={"/bin/child": child})
        assert k.fs.read_file("/build/report") == b"/build|inherited"

    def test_stdio_wiring_to_pipe(self):
        def child(sys):
            yield from sys.write_all(1, b"from-child")
            return 0

        def main(sys):
            r, w = yield from sys.pipe()
            pid = yield from sys.spawn("/bin/child", stdout=w)
            yield from sys.close(w)
            data = yield from sys.read_exact(r, 100)
            yield from sys.waitpid(pid)
            yield from sys.write_file("got", data)
            return 0

        k, _ = run_guest(main, binaries={"/bin/child": child})
        assert k.fs.read_file("/build/got") == b"from-child"

    def test_pipeline_eof_when_children_exit(self):
        """Reader sees EOF only after every writer end is closed."""
        def producer(sys):
            yield from sys.write_all(1, b"x" * 100)
            return 0

        def main(sys):
            r, w = yield from sys.pipe()
            yield from sys.spawn("/bin/producer", stdout=w)
            yield from sys.spawn("/bin/producer", stdout=w)
            yield from sys.close(w)
            total = 0
            while True:
                chunk = yield from sys.read(r, 64)
                if not chunk:
                    break
                total += len(chunk)
            return 0 if total == 200 else 1

        _, proc = run_guest(main, binaries={"/bin/producer": producer})
        assert proc.exit_status == 0


class TestExecve:
    def test_execve_replaces_image(self):
        def other(sys):
            yield from sys.write_file("exec.txt", b"other ran: %s" % sys.argv[1].encode())
            return 0

        def main(sys):
            yield from sys.execve("/bin/other", argv=["other", "arg1"])
            raise AssertionError("unreachable after execve")

        k, proc = run_guest(main, binaries={"/bin/other": other})
        assert proc.exit_status == 0
        assert k.fs.read_file("/build/exec.txt") == b"other ran: arg1"

    def test_execve_missing_returns_enoent(self):
        def main(sys):
            try:
                yield from sys.execve("/bin/ghost")
            except SyscallError as err:
                return 0 if err.errno == Errno.ENOENT else 1
            return 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0


class TestSignalsBetweenProcesses:
    def test_kill_terminates_child(self):
        def victim(sys):
            while True:
                yield from sys.sleep(0.05)

        def main(sys):
            pid = yield from sys.spawn("/bin/victim")
            yield from sys.sleep(0.01)
            yield from sys.kill(pid, SIGTERM)
            res = yield from sys.waitpid(pid)
            return 0 if res.term_signal == SIGTERM else 1

        _, proc = run_guest(main, binaries={"/bin/victim": victim})
        assert proc.exit_status == 0

    def test_kill_missing_process_esrch(self):
        def main(sys):
            try:
                yield from sys.kill(99999, SIGKILL)
            except SyscallError as err:
                return 0 if err.errno == Errno.ESRCH else 1
            return 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0


class TestCrashes:
    def test_uncaught_syscall_error_kills_process(self):
        def main(sys):
            yield from sys.open("/definitely/missing")
            return 0

        k, proc = run_guest(main)
        assert proc.exit_status is not None
        assert (proc.exit_status >> 8) & 0xFF == 1
        assert "uncaught" in k.stderr.text()

    def test_host_pids_differ_across_boots(self):
        def main(sys):
            pid = yield from sys.getpid()
            yield from sys.write_file("pid", str(pid))
            return 0

        from repro.cpu.machine import HostEnvironment
        k1, _ = run_guest(main, host=HostEnvironment(pid_start=1000))
        k2, _ = run_guest(main, host=HostEnvironment(pid_start=5000))
        assert k1.fs.read_file("/build/pid") != k2.fs.read_file("/build/pid")
