from repro.kernel.errors import Errno, GuestCrash, SyscallError, strerror


class TestErrno:
    def test_values_match_linux(self):
        assert Errno.ENOENT == 2
        assert Errno.EAGAIN == 11
        assert Errno.EEXIST == 17
        assert Errno.EPIPE == 32
        assert Errno.ENOSYS == 38

    def test_strerror_known(self):
        assert strerror(Errno.ENOENT) == "No such file or directory"
        assert strerror(Errno.EPIPE) == "Broken pipe"

    def test_strerror_unknown(self):
        assert "9999" in strerror(9999)


class TestSyscallError:
    def test_carries_errno_and_syscall(self):
        err = SyscallError(Errno.ENOENT, "open", "/missing")
        assert err.errno == 2
        assert err.syscall == "open"
        assert "/missing" in str(err)
        assert "No such file" in str(err)

    def test_errno_is_plain_int(self):
        err = SyscallError(2, "open")
        assert err.errno == Errno.ENOENT


class TestGuestCrash:
    def test_message_includes_signal(self):
        crash = GuestCrash(11, "bad pointer")
        assert crash.signum == 11
        assert "11" in str(crash)
        assert "bad pointer" in str(crash)
