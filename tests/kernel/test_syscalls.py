"""Each syscall family exercised through real guest programs."""
import pytest

from repro.kernel.errors import Errno, SyscallError
from repro.kernel.types import (
    O_APPEND, O_CREAT, O_EXCL, O_RDWR, O_TRUNC, O_WRONLY, SEEK_CUR, SEEK_END,
)
from tests.conftest import run_guest


def returns(program, **kw):
    """Run *program*; stash its return payload on the kernel."""
    result = {}

    def wrapper(sys):
        value = yield from program(sys)
        result["value"] = value
        return 0

    k, proc = run_guest(wrapper, **kw)
    assert proc.exit_status == 0, k.stderr.text()
    return result["value"], k


class TestFileSyscalls:
    def test_open_read_write_close(self):
        def prog(sys):
            fd = yield from sys.open("f.txt", O_WRONLY | O_CREAT)
            yield from sys.write_all(fd, b"hello world")
            yield from sys.close(fd)
            return (yield from sys.read_file("f.txt"))

        value, _ = returns(prog)
        assert value == b"hello world"

    def test_open_excl_fails_on_existing(self):
        def prog(sys):
            yield from sys.write_file("f", b"")
            try:
                yield from sys.open("f", O_WRONLY | O_CREAT | O_EXCL)
            except SyscallError as err:
                return err.errno
            return None

        value, _ = returns(prog)
        assert value == Errno.EEXIST

    def test_open_trunc_clears(self):
        def prog(sys):
            yield from sys.write_file("f", b"longcontent")
            fd = yield from sys.open("f", O_WRONLY | O_TRUNC)
            yield from sys.write_all(fd, b"x")
            yield from sys.close(fd)
            return (yield from sys.read_file("f"))

        value, _ = returns(prog)
        assert value == b"x"

    def test_append_mode(self):
        def prog(sys):
            yield from sys.write_file("f", b"abc")
            fd = yield from sys.open("f", O_WRONLY | O_APPEND)
            yield from sys.write_all(fd, b"def")
            yield from sys.close(fd)
            return (yield from sys.read_file("f"))

        value, _ = returns(prog)
        assert value == b"abcdef"

    def test_lseek(self):
        def prog(sys):
            yield from sys.write_file("f", b"0123456789")
            fd = yield from sys.open("f")
            yield from sys.syscall("lseek", fd=fd, offset=4)
            a = yield from sys.read(fd, 2)
            yield from sys.syscall("lseek", fd=fd, offset=-2, whence=SEEK_END)
            b = yield from sys.read(fd, 2)
            yield from sys.syscall("lseek", fd=fd, offset=-1, whence=SEEK_CUR)
            c = yield from sys.read(fd, 1)
            return (a, b, c)

        value, _ = returns(prog)
        assert value == (b"45", b"89", b"9")

    def test_stat_and_fstat_agree(self):
        def prog(sys):
            yield from sys.write_file("f", b"xyz")
            st1 = yield from sys.stat("f")
            fd = yield from sys.open("f")
            st2 = yield from sys.fstat(fd)
            return (st1.st_ino, st2.st_ino, st1.st_size)

        (ino1, ino2, size), _ = returns(prog)
        assert ino1 == ino2
        assert size == 3

    def test_getdents_lists_entries(self):
        def prog(sys):
            yield from sys.mkdir("d")
            yield from sys.write_file("d/a", b"")
            yield from sys.write_file("d/b", b"")
            return sorted((yield from sys.listdir("d")))

        value, _ = returns(prog)
        assert value == ["a", "b"]

    def test_mkdir_rmdir_unlink(self):
        def prog(sys):
            yield from sys.mkdir("d")
            yield from sys.write_file("d/f", b"")
            yield from sys.unlink("d/f")
            yield from sys.syscall("rmdir", path="d")
            return (yield from sys.access("d"))

        value, _ = returns(prog)
        assert value is False

    def test_rename(self):
        def prog(sys):
            yield from sys.write_file("old", b"data")
            yield from sys.rename("old", "new")
            return (yield from sys.read_file("new"))

        value, _ = returns(prog)
        assert value == b"data"

    def test_link_and_readlink(self):
        def prog(sys):
            yield from sys.write_file("t", b"T")
            yield from sys.symlink("t", "ln")
            target = yield from sys.readlink("ln")
            via = yield from sys.read_file("ln")
            yield from sys.syscall("link", target="t", linkpath="hard")
            st = yield from sys.stat("hard")
            return (target, via, st.st_nlink)

        value, _ = returns(prog)
        assert value == ("t", b"T", 2)

    def test_chmod_chown(self):
        def prog(sys):
            yield from sys.write_file("f", b"")
            yield from sys.chmod("f", 0o600)
            yield from sys.chown("f", 7, 8)
            st = yield from sys.stat("f")
            return (st.st_mode & 0o777, st.st_uid, st.st_gid)

        value, _ = returns(prog)
        assert value == (0o600, 7, 8)

    def test_truncate(self):
        def prog(sys):
            yield from sys.write_file("f", b"1234567890")
            yield from sys.syscall("truncate", path="f", length=4)
            yield from sys.syscall("truncate", path="f", length=6)
            return (yield from sys.read_file("f"))

        value, _ = returns(prog)
        assert value == b"1234\x00\x00"

    def test_utime_explicit_and_null(self):
        def prog(sys):
            yield from sys.write_file("f", b"")
            yield from sys.utime("f", times=(10.0, 20.0))
            st1 = yield from sys.stat("f")
            yield from sys.utime("f")  # null -> kernel stamps wall time
            st2 = yield from sys.stat("f")
            return (st1.st_atime, st1.st_mtime, st2.st_mtime)

        (at, mt, mt2), k = returns(prog)
        assert (at, mt) == (10.0, 20.0)
        assert mt2 >= k.host.boot_epoch

    def test_getcwd_chdir(self):
        def prog(sys):
            before = yield from sys.getcwd()
            yield from sys.mkdir("sub")
            yield from sys.chdir("sub")
            after = yield from sys.getcwd()
            return (before, after)

        value, _ = returns(prog)
        assert value == ("/build", "/build/sub")


class TestPipeSyscalls:
    def test_pipe_roundtrip(self):
        def prog(sys):
            r, w = yield from sys.pipe()
            yield from sys.write(w, b"ping")
            data = yield from sys.read(r, 10)
            return data

        value, _ = returns(prog)
        assert value == b"ping"

    def test_dup2_redirects(self):
        def prog(sys):
            r, w = yield from sys.pipe()
            yield from sys.dup2(w, 1)
            yield from sys.write(1, b"to-pipe")
            return (yield from sys.read(r, 16))

        value, _ = returns(prog)
        assert value == b"to-pipe"


class TestIdentitySyscalls:
    def test_pid_identity(self):
        def prog(sys):
            return ((yield from sys.getpid()), (yield from sys.getppid()),
                    (yield from sys.getuid()))

        (pid, ppid, uid), k = returns(prog)
        assert pid == k.host.pid_start
        assert ppid == 0
        assert uid == 1000

    def test_setuid(self):
        def prog(sys):
            yield from sys.syscall("setuid", uid=0)
            return (yield from sys.getuid())

        value, _ = returns(prog)
        assert value == 0

    def test_uname_reflects_machine(self):
        def prog(sys):
            un = yield from sys.uname()
            return un.as_tuple()

        value, k = returns(prog)
        assert value[0] == "Linux"
        assert value[1] == k.host.machine.hostname
        assert value[4] == "x86_64"

    def test_sysinfo_core_count(self):
        def prog(sys):
            si = yield from sys.sysinfo()
            return si.nprocs

        value, k = returns(prog)
        assert value == k.host.ncores


class TestTimeSyscalls:
    def test_time_is_wall_clock(self):
        def prog(sys):
            return (yield from sys.time_syscall())

        value, k = returns(prog)
        assert value == int(k.host.boot_epoch + k.clock.now) or value == int(k.host.boot_epoch)

    def test_nanosleep_advances_clock(self):
        def prog(sys):
            t0 = yield from sys.gettimeofday()
            yield from sys.sleep(0.25)
            t1 = yield from sys.gettimeofday()
            return t1 - t0

        value, _ = returns(prog)
        assert value >= 0.25

    def test_vdso_calls_invisible_to_syscall_counter(self):
        def prog(sys):
            for _ in range(10):
                yield from sys.gettimeofday()
            return 0

        _, k = returns(prog)
        assert k.stats.syscalls_by_name.get("gettimeofday", 0) == 0
        assert k.stats.vdso_calls >= 10


class TestRandomSyscalls:
    def test_getrandom_length_and_entropy(self):
        def prog(sys):
            a = yield from sys.getrandom(16)
            b = yield from sys.getrandom(16)
            return (a, b)

        (a, b), _ = returns(prog)
        assert len(a) == len(b) == 16
        assert a != b

    def test_urandom_device(self):
        def prog(sys):
            return (yield from sys.urandom(8))

        value, _ = returns(prog)
        assert len(value) == 8


class TestSockets:
    def test_socket_echo_is_time_tainted(self):
        def prog(sys):
            fd = yield from sys.socket()
            yield from sys.connect(fd)
            yield from sys.write(fd, b"GET /")
            return (yield from sys.read(fd, 64))

        value, _ = returns(prog)
        assert value.startswith(b"pong ")

    def test_connect_on_non_socket(self):
        def prog(sys):
            fd = yield from sys.open("/dev/null")
            try:
                yield from sys.connect(fd)
            except SyscallError as err:
                return err.errno

        value, _ = returns(prog)
        assert value == Errno.ENOTSOCK


class TestIoctl:
    def test_winsize(self):
        def prog(sys):
            return (yield from sys.ioctl(1, "TIOCGWINSZ"))

        value, _ = returns(prog)
        assert value == (80, 24)

    def test_unknown_request_enotty(self):
        def prog(sys):
            try:
                yield from sys.ioctl(1, "TCGETS2")
            except SyscallError as err:
                return err.errno

        value, _ = returns(prog)
        assert value == Errno.ENOTTY


class TestMisc:
    def test_enosys_for_unknown_syscall(self):
        def prog(sys):
            try:
                yield from sys.syscall("not_a_syscall")
            except SyscallError as err:
                return err.errno

        value, _ = returns(prog)
        assert value == Errno.ENOSYS

    def test_getauxval_vdso_address_is_aslr_dependent(self):
        def prog(sys):
            return (yield from sys.syscall("getauxval", key="AT_SYSINFO_EHDR"))

        v1, _ = returns(prog)
        from repro.cpu.machine import HostEnvironment
        v2, _ = returns(prog, host=HostEnvironment(entropy_seed=99))
        assert v1 != v2
