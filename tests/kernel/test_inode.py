import pytest

from repro.kernel.errors import KernelPanic
from repro.kernel.inode import Inode, InodeAllocator, new_directory, new_file
from repro.kernel.types import FileKind


class TestInodeAllocator:
    def test_sequential(self):
        alloc = InodeAllocator(100)
        assert [alloc.allocate() for _ in range(3)] == [100, 101, 102]

    def test_recycles_lowest_freed_first(self):
        alloc = InodeAllocator(100)
        a, b, c = alloc.allocate(), alloc.allocate(), alloc.allocate()
        alloc.release(c)
        alloc.release(a)
        assert alloc.allocate() == a  # lowest freed first
        assert alloc.allocate() == c
        assert alloc.allocate() == 103

    def test_outstanding_free(self):
        alloc = InodeAllocator(1)
        alloc.release(alloc.allocate())
        assert alloc.outstanding_free == 1


class TestInode:
    def test_file_size_tracks_data(self):
        node = new_file(1, data=b"hello")
        assert node.size == 5
        assert node.is_regular

    def test_directory_entries(self):
        d = new_directory(1)
        f = new_file(2)
        d.add_entry("a", f)
        assert d.lookup("a") is f
        assert d.lookup("missing") is None
        assert d.remove_entry("a") is f

    def test_duplicate_entry_is_panic(self):
        d = new_directory(1)
        d.add_entry("a", new_file(2))
        with pytest.raises(KernelPanic):
            d.add_entry("a", new_file(3))

    def test_lookup_on_file_is_panic(self):
        f = new_file(1)
        with pytest.raises(KernelPanic):
            f.lookup("x")

    def test_full_mode_includes_type(self):
        f = new_file(1, mode=0o640)
        assert f.full_mode == FileKind.REGULAR.mode_bits | 0o640

    def test_symlink_size(self):
        link = Inode(ino=5, kind=FileKind.SYMLINK, symlink_target="/target")
        assert link.size == len("/target")
