"""Named pipes (mkfifo)."""
from repro.kernel.errors import Errno, SyscallError
from repro.kernel.types import O_WRONLY
from tests.conftest import run_guest


class TestFifo:
    def test_roundtrip_between_processes(self):
        def producer(sys):
            fd = yield from sys.open("channel", O_WRONLY)
            yield from sys.write_all(fd, b"through the fifo")
            yield from sys.close(fd)
            return 0

        def main(sys):
            yield from sys.mkfifo("channel")
            pid = yield from sys.spawn("/bin/producer")
            fd = yield from sys.open("channel")
            data = yield from sys.read_exact(fd, 100)
            yield from sys.close(fd)
            yield from sys.waitpid(pid)
            yield from sys.write_file("got", data)
            return 0

        k, proc = run_guest(main, binaries={"/bin/producer": producer})
        assert proc.exit_status == 0
        assert k.fs.read_file("/build/got") == b"through the fifo"

    def test_mkfifo_eexist(self):
        def main(sys):
            yield from sys.mkfifo("f")
            try:
                yield from sys.mkfifo("f")
            except SyscallError as err:
                return 0 if err.errno == Errno.EEXIST else 1
            return 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_fifo_stat_kind(self):
        from repro.kernel.types import S_IFIFO, S_IFMT

        def main(sys):
            yield from sys.mkfifo("f")
            st = yield from sys.stat("f")
            return 0 if (st.st_mode & S_IFMT) == S_IFIFO else 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0


class TestFifoUnderDetTrace:
    def test_fifo_ipc_reproducible_with_partial_reads(self):
        from repro.cpu.machine import HostEnvironment
        from tests.conftest import dettrace_run

        def producer(sys):
            fd = yield from sys.open("channel", O_WRONLY)
            for i in range(6):
                yield from sys.write_all(fd, b"%02d" % i)
                yield from sys.compute(3e-4)  # drip-feed
            yield from sys.close(fd)
            return 0

        def main(sys):
            yield from sys.mkfifo("channel")
            yield from sys.spawn("/bin/producer")
            fd = yield from sys.open("channel")
            data = yield from sys.read(fd, 12)   # ONE read; DT retries
            yield from sys.write_file("got", data)
            yield from sys.waitpid(-1)
            return 0

        results = [dettrace_run(main, host=HostEnvironment(entropy_seed=s),
                                extra_binaries={"/bin/producer": producer})
                   for s in (1, 2)]
        for r in results:
            assert r.exit_code == 0, (r.status, r.error)
            assert r.output_tree["got"] == b"000102030405"
        assert results[0].output_tree == results[1].output_tree
        assert results[0].counters.read_retries > 0
