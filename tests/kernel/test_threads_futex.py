"""Threads and futexes (paper SS5.7 substrate)."""
from repro.kernel.errors import Errno, SyscallError
from tests.conftest import run_guest


class TestThreads:
    def test_spawn_thread_shares_memory(self):
        def main(sys):
            def worker(wsys):
                wsys.mem["value"] = 41
                yield from wsys.compute(1e-5)
                wsys.mem["value"] += 1

            tid = yield from sys.spawn_thread(worker)
            assert tid > 0
            while sys.mem.get("value") != 42:
                yield from sys.sched_yield()
                yield from sys.compute(1e-5)
            return 0

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_threads_run_in_parallel_natively(self):
        def main(sys):
            def worker(wsys):
                yield from wsys.compute(0.1)
                wsys.mem["done"] = wsys.mem.get("done", 0) + 1

            t0 = yield from sys.gettimeofday()
            for _ in range(4):
                yield from sys.spawn_thread(worker)
            while sys.mem.get("done", 0) < 4:
                yield from sys.sleep(0.01)
            t1 = yield from sys.gettimeofday()
            # 4 x 0.1s of work in well under 0.4s: they overlapped.
            return 0 if (t1 - t0) < 0.3 else 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_futex_wait_wake(self):
        def main(sys):
            def worker(wsys):
                yield from wsys.compute(1e-3)
                wsys.mem["flag"] = 1
                yield from wsys.futex_wake("flag")

            yield from sys.spawn_thread(worker)
            while sys.mem.get("flag", 0) == 0:
                try:
                    yield from sys.futex_wait("flag", 0)
                except SyscallError as err:
                    if err.errno != Errno.EAGAIN:
                        raise
            return 0

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_futex_wait_value_mismatch_eagain(self):
        def main(sys):
            sys.mem["w"] = 5
            try:
                yield from sys.futex_wait("w", 3)
            except SyscallError as err:
                return 0 if err.errno == Errno.EAGAIN else 1
            return 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_lock_mutual_exclusion(self):
        def main(sys):
            def worker(wsys):
                for _ in range(50):
                    yield from wsys.lock_acquire("L")
                    v = wsys.mem.get("counter", 0)
                    wsys.mem["counter"] = v + 1
                    yield from wsys.lock_release("L")
                wsys.mem["finished"] = wsys.mem.get("finished", 0) + 1

            for _ in range(3):
                yield from sys.spawn_thread(worker)
            while sys.mem.get("finished", 0) < 3:
                yield from sys.sleep(0.001)
            return 0 if sys.mem["counter"] == 150 else 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_process_exits_when_all_threads_done(self):
        def main(sys):
            def worker(wsys):
                yield from wsys.compute(1e-4)
                wsys.mem["worker_ran"] = True

            yield from sys.spawn_thread(worker)
            yield from sys.sleep(0.01)
            return 0

        _, proc = run_guest(main)
        assert proc.exit_status == 0
