"""POSIX conformance: umask creation semantics, truncate argument
validation order, fsync on descriptors without a backing store.

These pin the bugfix set shipped with the run cache: creation modes were
previously stored unmasked, ``truncate`` accepted negative lengths, and
``fsync`` succeeded on pipes.  Each behaviour is nailed to what Linux
does, including the error-precedence corners."""
import pytest

from repro.core import ContainerConfig, DetTrace
from repro.core.config import CheckpointConfig
from repro.cpu.machine import HostEnvironment
from repro.faults.plan import FaultPlan, FaultRule
from repro.kernel.errors import Errno, SyscallError
from repro.kernel.types import O_CREAT, O_WRONLY
from tests.conftest import image_of, run_guest

from .test_syscalls import returns


class TestUmaskCreationModes:
    def test_open_create_applies_umask(self):
        def prog(sys):
            yield from sys.syscall("umask", mask=0o077)
            fd = yield from sys.open("f", O_WRONLY | O_CREAT, mode=0o666)
            yield from sys.close(fd)
            st = yield from sys.stat("f")
            return st.st_mode & 0o777

        value, _ = returns(prog)
        assert value == 0o600

    def test_open_existing_ignores_umask(self):
        # The mask applies at *creation*; opening an existing file never
        # rewrites its mode.
        def prog(sys):
            yield from sys.write_file("f", b"x")
            yield from sys.chmod("f", 0o644)
            yield from sys.syscall("umask", mask=0o777)
            fd = yield from sys.open("f", O_WRONLY | O_CREAT, mode=0o666)
            yield from sys.close(fd)
            st = yield from sys.stat("f")
            return st.st_mode & 0o777

        value, _ = returns(prog)
        assert value == 0o644

    def test_mkdir_applies_umask(self):
        def prog(sys):
            yield from sys.syscall("umask", mask=0o077)
            yield from sys.mkdir("d", mode=0o777)
            st = yield from sys.stat("d")
            return st.st_mode & 0o777

        value, _ = returns(prog)
        assert value == 0o700

    def test_mkfifo_applies_umask(self):
        def prog(sys):
            yield from sys.syscall("umask", mask=0o027)
            yield from sys.mkfifo("p", mode=0o666)
            st = yield from sys.stat("p")
            return st.st_mode & 0o777

        value, _ = returns(prog)
        assert value == 0o640

    def test_symlink_mode_exempt_from_umask(self):
        # POSIX: the mask never applies to symlinks — their mode is
        # always 0777 regardless of umask.
        def prog(sys):
            yield from sys.syscall("umask", mask=0o777)
            yield from sys.symlink("target", "l")
            st = yield from sys.syscall("lstat", path="l")
            return st.st_mode & 0o777

        value, _ = returns(prog)
        assert value == 0o777

    def test_umask_returns_previous_mask(self):
        def prog(sys):
            first = yield from sys.syscall("umask", mask=0o077)
            second = yield from sys.syscall("umask", mask=0o022)
            return (first, second)

        value, _ = returns(prog)
        assert value == (0o022, 0o077)  # Linux's default init mask, then ours

    def test_umask_only_keeps_permission_bits(self):
        def prog(sys):
            yield from sys.syscall("umask", mask=0o7777)
            return (yield from sys.syscall("umask", mask=0o022))

        value, _ = returns(prog)
        assert value == 0o777

    def test_child_inherits_umask(self):
        def child(sys):
            fd = yield from sys.open("child-file", O_WRONLY | O_CREAT,
                                     mode=0o666)
            yield from sys.close(fd)
            return 0

        def prog(sys):
            yield from sys.syscall("umask", mask=0o027)
            res = yield from sys.run("/bin/child")
            assert res.status == 0
            st = yield from sys.stat("child-file")
            return st.st_mode & 0o777

        value, _ = returns(prog, binaries={"/bin/child": child})
        assert value == 0o640

    def test_child_umask_change_does_not_leak_to_parent(self):
        def child(sys):
            yield from sys.syscall("umask", mask=0o777)
            return 0

        def prog(sys):
            yield from sys.syscall("umask", mask=0o022)
            res = yield from sys.run("/bin/child")
            assert res.status == 0
            # The parent's mask is untouched by the child's umask call.
            return (yield from sys.syscall("umask", mask=0o022))

        value, _ = returns(prog, binaries={"/bin/child": child})
        assert value == 0o022


class TestTruncateValidation:
    def test_negative_length_is_einval(self):
        def prog(sys):
            yield from sys.write_file("f", b"data")
            try:
                yield from sys.syscall("truncate", path="f", length=-1)
            except SyscallError as err:
                return err.errno
            return None

        value, _ = returns(prog)
        assert value == Errno.EINVAL

    def test_negative_length_beats_directory_check(self):
        # Linux validates the length before the file type: a negative
        # length on a *directory* is EINVAL, not EISDIR.
        def prog(sys):
            yield from sys.mkdir("d")
            try:
                yield from sys.syscall("truncate", path="d", length=-5)
            except SyscallError as err:
                return err.errno
            return None

        value, _ = returns(prog)
        assert value == Errno.EINVAL

    def test_directory_is_eisdir(self):
        def prog(sys):
            yield from sys.mkdir("d")
            try:
                yield from sys.syscall("truncate", path="d", length=0)
            except SyscallError as err:
                return err.errno
            return None

        value, _ = returns(prog)
        assert value == Errno.EISDIR

    def test_zero_length_still_works(self):
        def prog(sys):
            yield from sys.write_file("f", b"data")
            yield from sys.syscall("truncate", path="f", length=0)
            return (yield from sys.read_file("f"))

        value, _ = returns(prog)
        assert value == b""


class TestFsyncBackingStore:
    def test_fsync_regular_file_ok(self):
        def prog(sys):
            yield from sys.write_file("f", b"x")
            fd = yield from sys.open("f")
            rc = yield from sys.syscall("fsync", fd=fd)
            yield from sys.close(fd)
            return rc

        value, _ = returns(prog)
        assert value == 0

    def test_fsync_pipe_is_einval(self):
        def prog(sys):
            r, w = yield from sys.pipe()
            try:
                yield from sys.syscall("fsync", fd=w)
            except SyscallError as err:
                return err.errno
            return None

        value, _ = returns(prog)
        assert value == Errno.EINVAL

    def test_fsync_socketpair_is_einval(self):
        def prog(sys):
            a, b = yield from sys.socketpair()
            try:
                yield from sys.syscall("fsync", fd=a)
            except SyscallError as err:
                return err.errno
            return None

        value, _ = returns(prog)
        assert value == Errno.EINVAL

    def test_fsync_bad_fd_is_ebadf(self):
        def prog(sys):
            try:
                yield from sys.syscall("fsync", fd=99)
            except SyscallError as err:
                return err.errno
            return None

        value, _ = returns(prog)
        assert value == Errno.EBADF


class TestUmaskCheckpointRoundTrip:
    def test_umask_survives_crash_and_resume(self, tmp_path):
        """A mask set before the kill must govern creations after resume."""

        def main(sys):
            yield from sys.syscall("umask", mask=0o077)
            # Filler work so a snapshot barrier lands after the umask
            # call and before the kill tick.
            for i in range(20):
                yield from sys.write_file("pad%d" % i, b"x" * i)
            fd = yield from sys.open("masked", O_WRONLY | O_CREAT,
                                     mode=0o666)
            yield from sys.close(fd)
            st = yield from sys.stat("masked")
            yield from sys.println("mode=%o" % (st.st_mode & 0o777))
            return 0

        cfg = ContainerConfig(
            fault_plan=FaultPlan(rules=(
                FaultRule(fault="kill", at_tick=60, transient=True),)),
            checkpoint=CheckpointConfig(directory=str(tmp_path), every=7))
        image = image_of(main)
        host = HostEnvironment(entropy_seed=7)
        crashed = DetTrace(cfg).run(image, "/bin/main", host=host)
        assert crashed.status == "crashed", (crashed.status, crashed.error)
        resumed = DetTrace(cfg).resume(image, "/bin/main")
        assert resumed.status == "resumed", (resumed.status, resumed.error)
        assert resumed.exit_code == 0
        assert "mode=600" in resumed.stdout

        baseline = DetTrace(ContainerConfig()).run(image, "/bin/main",
                                                   host=host)
        assert resumed.stdout == baseline.stdout
