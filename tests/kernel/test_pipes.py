import pytest

from repro.kernel.errors import Errno, SyscallError
from repro.kernel.pipes import Pipe
from repro.kernel.waiting import WouldBlock


def open_pipe(capacity=16):
    p = Pipe(capacity=capacity)
    p.open_reader()
    p.open_writer()
    return p


class TestPipeRead:
    def test_partial_read_returns_available(self):
        p = open_pipe()
        p.write(b"abc")
        assert p.read(10) == b"abc"  # fewer than requested!

    def test_empty_with_writer_blocks(self):
        p = open_pipe()
        with pytest.raises(WouldBlock) as exc:
            p.read(1)
        assert p.readable in exc.value.channels

    def test_eof_when_no_writers(self):
        p = open_pipe()
        p.close_writer()
        assert p.read(10) == b""

    def test_buffered_data_before_eof(self):
        p = open_pipe()
        p.write(b"tail")
        p.close_writer()
        assert p.read(10) == b"tail"
        assert p.read(10) == b""


class TestPipeWrite:
    def test_partial_write_when_nearly_full(self):
        p = open_pipe(capacity=8)
        assert p.write(b"12345") == 5
        assert p.write(b"abcdef") == 3  # only 3 bytes of space

    def test_full_blocks(self):
        p = open_pipe(capacity=4)
        p.write(b"1234")
        with pytest.raises(WouldBlock) as exc:
            p.write(b"x")
        assert p.writable in exc.value.channels

    def test_epipe_when_no_readers(self):
        p = open_pipe()
        p.close_reader()
        with pytest.raises(SyscallError) as exc:
            p.write(b"x")
        assert exc.value.errno == Errno.EPIPE

    def test_write_empty_is_zero(self):
        p = open_pipe()
        assert p.write(b"") == 0

    def test_fifo_ordering(self):
        p = open_pipe()
        p.write(b"ab")
        p.write(b"cd")
        assert p.read(3) == b"abc"
        assert p.read(3) == b"d"
