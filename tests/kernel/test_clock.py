import pytest

from repro.cpu.machine import HostEnvironment
from repro.kernel.clock import SimClock


class TestSimClock:
    def test_wall_derives_from_boot_epoch(self):
        clock = SimClock(HostEnvironment(boot_epoch=1000.0))
        clock.advance_to(5.0)
        assert clock.wall == 1005.0
        assert clock.monotonic == 5.0

    def test_cannot_go_backwards(self):
        clock = SimClock(HostEnvironment())
        clock.advance_to(2.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)

    def test_cycles_scale_with_frequency(self):
        host = HostEnvironment()
        clock = SimClock(host)
        clock.advance_to(1.0)
        assert clock.cycles == int(host.machine.freq_ghz * 1e9)
