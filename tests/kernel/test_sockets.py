"""Deterministic in-container sockets (repro.kernel.sockets) and the
fd-layer conformance fixes that rode along (dup2 teardown, SIGPIPE,
ESPIPE on sockets, F_SETFL masking)."""
import pytest

from repro.kernel.errors import Errno, SyscallError
from repro.kernel.sockets import (
    AF_INET, AF_UNIX, EPHEMERAL_BASE, SHUT_WR, SOMAXCONN, SocketRegistry,
)
from repro.kernel.types import O_APPEND, O_NONBLOCK, O_RDWR, make_signal_status
from repro.guest import libc
from tests.conftest import run_guest

from .test_syscalls import returns

SIGPIPE = 13


class TestRegistry:
    def test_ephemeral_ports_monotonic_never_reused(self):
        reg = SocketRegistry()
        a = reg.alloc_port()
        b = reg.alloc_port()
        assert (a, b) == (EPHEMERAL_BASE, EPHEMERAL_BASE + 1)
        addr = reg.bind(AF_INET, "127.0.0.1:0")
        assert addr == "127.0.0.1:%d" % (EPHEMERAL_BASE + 2)
        reg.release(AF_INET, addr)
        # Releasing never recycles the port: run-stable identity.
        assert reg.bind(AF_INET, "127.0.0.1:0").endswith(
            str(EPHEMERAL_BASE + 3))

    def test_bind_conflict_raises_eaddrinuse(self):
        reg = SocketRegistry()
        reg.bind(AF_UNIX, "/run/a.sock")
        with pytest.raises(SyscallError) as exc:
            reg.bind(AF_UNIX, "/run/a.sock")
        assert exc.value.errno == Errno.EADDRINUSE

    def test_backlog_clamped_to_somaxconn(self):
        reg = SocketRegistry()
        reg.bind(AF_INET, "127.0.0.1:80")
        listener = reg.listen(AF_INET, "127.0.0.1:80", 10_000)
        assert listener.backlog == SOMAXCONN
        assert reg.listen(AF_INET, "127.0.0.1:80", 0).backlog == 1

    def test_every_mutation_bumps_version(self):
        reg = SocketRegistry()
        seen = {reg.version}
        reg.alloc_port()
        seen.add(reg.version)
        reg.bind(AF_UNIX, "/s")
        seen.add(reg.version)
        reg.listen(AF_UNIX, "/s", 4)
        seen.add(reg.version)
        reg.release(AF_UNIX, "/s")
        seen.add(reg.version)
        assert len(seen) == 5


def _echo_client(address):
    def client(sys):
        fd = yield from libc.sock_stream_client(sys, address)
        yield from libc.send_all(sys, fd, b"hello")
        reply = yield from libc.recv_exact(sys, fd, 5)
        yield from sys.close(fd)
        return 0 if reply == b"HELLO" else 1

    return client


def _echo_server(address):
    def server(sys):
        lfd = yield from libc.sock_stream_server(sys, address, backlog=4)
        pid = yield from sys.spawn("/bin/client")
        conn, peer = yield from sys.accept(lfd)
        data = yield from libc.recv_exact(sys, conn, 5)
        yield from libc.send_all(sys, conn, data.upper())
        yield from sys.close(conn)
        yield from sys.close(lfd)
        res = yield from sys.waitpid(pid)
        return (data, peer, res.status)

    return server


class TestStreamSockets:
    def _run(self, address):
        return returns(_echo_server(address),
                       binaries={"/bin/client": _echo_client(address)})

    def test_unix_client_server_roundtrip(self):
        (data, peer, status), _ = self._run("/run/echo.sock")
        assert data == b"hello"
        assert peer == ""          # unnamed AF_UNIX autobind
        assert status == 0

    def test_loopback_inet_roundtrip_with_deterministic_peer_port(self):
        (data, peer, status), _ = self._run("127.0.0.1:8080")
        assert data == b"hello"
        # The client's ephemeral port comes off the per-container
        # counter, not the host: first draw, every run, every machine.
        assert peer == "127.0.0.1:%d" % EPHEMERAL_BASE
        assert status == 0

    def test_ephemeral_ports_identical_across_different_hosts(self):
        from repro.cpu.machine import HostEnvironment

        peers = []
        for seed, pid_start in ((1, 1000), (99, 7777)):
            host = HostEnvironment(entropy_seed=seed, pid_start=pid_start)
            result = {}

            def wrapper(sys):
                value = yield from _echo_server("127.0.0.1:9")(sys)
                result["value"] = value
                return 0

            k, proc = run_guest(
                wrapper, host=host,
                binaries={"/bin/client": _echo_client("127.0.0.1:9")})
            assert proc.exit_status == 0
            peers.append(result["value"][1])
        assert peers[0] == peers[1]

    def test_listen_port_zero_draws_ephemeral_getsockname_reads_it(self):
        def prog(sys):
            fd = yield from sys.socket(family=2)
            yield from sys.bind(fd, "127.0.0.1:0")
            yield from sys.listen(fd, 4)
            return (yield from sys.getsockname(fd))

        value, _ = returns(prog)
        assert value == "127.0.0.1:%d" % EPHEMERAL_BASE

    def test_connect_without_listener_refused(self):
        def prog(sys):
            fd = yield from sys.socket(family=1)
            try:
                yield from sys.connect(fd, "/run/nobody.sock")
            except SyscallError as err:
                return err.errno

        value, _ = returns(prog)
        assert value == Errno.ECONNREFUSED

    def test_bind_same_address_twice_eaddrinuse(self):
        def prog(sys):
            a = yield from sys.socket(family=1)
            b = yield from sys.socket(family=1)
            yield from sys.bind(a, "/run/one.sock")
            try:
                yield from sys.bind(b, "/run/one.sock")
            except SyscallError as err:
                return err.errno

        value, _ = returns(prog)
        assert value == Errno.EADDRINUSE

    def test_localhost_and_127_meet_in_same_slot(self):
        def server(sys):
            lfd = yield from libc.sock_stream_server(sys, "localhost:7070")
            pid = yield from sys.spawn("/bin/client")
            conn, _peer = yield from sys.accept(lfd)
            data = yield from libc.recv_exact(sys, conn, 2)
            res = yield from sys.waitpid(pid)
            return (data, res.status)

        (data, status), _ = returns(
            server, binaries={"/bin/client": _ping_client("127.0.0.1:7070")})
        assert data == b"ok"
        assert status == 0

    def test_shutdown_wr_delivers_eof_but_keeps_read_side(self):
        def server(sys):
            lfd = yield from libc.sock_stream_server(sys, "/run/half.sock")
            pid = yield from sys.spawn("/bin/client")
            conn, _ = yield from sys.accept(lfd)
            data = yield from sys.recv(conn, 64)
            eof = yield from sys.recv(conn, 64)   # after client SHUT_WR
            yield from libc.send_all(sys, conn, b"bye")
            res = yield from sys.waitpid(pid)
            return (data, eof, res.status)

        def client(sys):
            fd = yield from libc.sock_stream_client(sys, "/run/half.sock")
            yield from libc.send_all(sys, fd, b"done")
            yield from sys.shutdown(fd, SHUT_WR)
            reply = yield from libc.recv_exact(sys, fd, 3)
            return 0 if reply == b"bye" else 1

        (data, eof, status), _ = returns(
            server, binaries={"/bin/client": client})
        assert data == b"done"
        assert eof == b""
        assert status == 0

    def test_close_listener_refuses_queued_connection(self):
        def server(sys):
            lfd = yield from libc.sock_stream_server(sys, "/run/gone.sock")
            # CLOEXEC on the listener: the child must not keep it alive.
            pid = yield from sys.spawn("/bin/client", close_fds=[lfd])
            # Wait for the client to be queued, then slam the door.
            listener = sys.thread.process.fdtable.get(lfd).listener
            while not listener.pending:
                yield from sys.sched_yield()
            yield from sys.close(lfd)
            res = yield from sys.waitpid(pid)
            return res.status

        def client(sys):
            yield from sys.sigaction(SIGPIPE, "ignore")
            fd = yield from libc.sock_stream_client(sys, "/run/gone.sock")
            eof = yield from sys.recv(fd, 8)   # listener closed -> EOF
            try:
                yield from sys.send(fd, b"x")
            except SyscallError as err:
                return 0 if (eof == b"" and err.errno == Errno.EPIPE) else 1
            return 1

        value, _ = returns(server, binaries={"/bin/client": client})
        assert value == 0

    def test_external_address_still_served_by_fake_peer(self):
        def prog(sys):
            fd = yield from sys.socket()
            yield from sys.connect(fd, "build.example.com:443")
            yield from sys.write(fd, b"GET /")
            return (yield from sys.read(fd, 64))

        value, _ = returns(prog)
        assert value.startswith(b"pong ")


def _ping_client(address):
    def client(sys):
        fd = yield from libc.sock_stream_client(sys, address)
        yield from libc.send_all(sys, fd, b"ok")
        yield from sys.close(fd)
        return 0

    return client


class TestDup2Teardown:
    def test_dup2_over_last_write_fd_delivers_eof(self):
        # Pre-fix: the displaced write end leaked its writer count, the
        # reader never saw EOF and this program deadlocked.
        def prog(sys):
            r, w = yield from sys.pipe()
            devnull = yield from sys.open("/dev/null")
            yield from sys.write(w, b"tail")
            yield from sys.dup2(devnull, w)     # implicit close of w
            data = yield from sys.read(r, 16)
            eof = yield from sys.read(r, 16)
            return (data, eof)

        (data, eof), _ = returns(prog)
        assert data == b"tail"
        assert eof == b""

    def test_dup2_over_last_read_fd_delivers_epipe(self):
        def prog(sys):
            yield from sys.sigaction(SIGPIPE, "ignore")
            r, w = yield from sys.pipe()
            devnull = yield from sys.open("/dev/null")
            yield from sys.dup2(devnull, r)     # implicit close of r
            try:
                yield from sys.write(w, b"x")
            except SyscallError as err:
                return err.errno

        value, _ = returns(prog)
        assert value == Errno.EPIPE


class TestSigpipe:
    def test_default_disposition_terminates_writer(self):
        def prog(sys):
            r, w = yield from sys.pipe()
            yield from sys.close(r)
            yield from sys.write(w, b"x")
            return 0   # never reached

        k, proc = run_guest(prog)
        assert proc.exit_status == make_signal_status(SIGPIPE)

    def test_sig_ign_yields_plain_epipe(self):
        def prog(sys):
            yield from sys.sigaction(SIGPIPE, "ignore")
            r, w = yield from sys.pipe()
            yield from sys.close(r)
            try:
                yield from sys.write(w, b"x")
            except SyscallError as err:
                return err.errno

        value, _ = returns(prog)
        assert value == Errno.EPIPE

    def test_blocked_sigpipe_not_delivered(self):
        def prog(sys):
            yield from sys.syscall("sigprocmask", how="SIG_BLOCK",
                                   mask=(SIGPIPE,))
            r, w = yield from sys.pipe()
            yield from sys.close(r)
            try:
                yield from sys.write(w, b"x")
            except SyscallError as err:
                return err.errno

        value, _ = returns(prog)
        assert value == Errno.EPIPE

    def test_handler_runs_then_write_fails(self):
        def prog(sys):
            hits = []

            def on_sigpipe(hsys, signum):
                hits.append(signum)
                yield from hsys.compute(1e-6)

            yield from sys.sigaction(SIGPIPE, on_sigpipe)
            r, w = yield from sys.pipe()
            yield from sys.close(r)
            errno = None
            try:
                yield from sys.write(w, b"x")
            except SyscallError as err:
                errno = err.errno
            yield from sys.sched_yield()   # let the handler frame drain
            return (errno, tuple(hits))

        (errno, hits), _ = returns(prog)
        assert errno == Errno.EPIPE
        assert hits == (SIGPIPE,)

    def test_send_to_shutdown_socketpair_raises_sigpipe(self):
        def prog(sys):
            a, b = yield from sys.socketpair()
            yield from sys.shutdown(a, SHUT_WR)
            yield from sys.send(a, b"x")
            return 0   # never reached

        k, proc = run_guest(prog)
        assert proc.exit_status == make_signal_status(SIGPIPE)


class TestLseekEspipe:
    @pytest.mark.parametrize("maker", ["socketpair", "socket"])
    def test_lseek_on_socket_kinds_raises_espipe(self, maker):
        def prog(sys):
            if maker == "socketpair":
                fd, _ = yield from sys.socketpair()
            else:
                fd = yield from sys.socket(family=1)
            try:
                yield from sys.syscall("lseek", fd=fd, offset=10)
            except SyscallError as err:
                return err.errno

        value, _ = returns(prog)
        assert value == Errno.ESPIPE

    def test_lseek_on_external_fake_socket_raises_espipe(self):
        def prog(sys):
            fd = yield from sys.socket()
            yield from sys.connect(fd, "cdn.example.com:80")
            try:
                yield from sys.syscall("lseek", fd=fd, offset=10)
            except SyscallError as err:
                return err.errno

        value, _ = returns(prog)
        assert value == Errno.ESPIPE


class TestFcntlSetfl:
    def test_setfl_preserves_access_mode(self):
        def prog(sys):
            fd = yield from sys.open("f", O_RDWR | 0x40)  # O_CREAT
            yield from sys.syscall("fcntl", fd=fd, cmd="F_SETFL",
                                   arg=O_APPEND)
            return (yield from sys.syscall("fcntl", fd=fd, cmd="F_GETFL"))

        value, _ = returns(prog)
        assert value & O_RDWR == O_RDWR      # access mode survives
        assert value & O_APPEND              # status flag applied

    def test_setfl_zero_clears_only_status_flags(self):
        def prog(sys):
            fd = yield from sys.open("f", O_RDWR | 0x40 | O_APPEND)
            yield from sys.syscall("fcntl", fd=fd, cmd="F_SETFL",
                                   arg=O_NONBLOCK)
            return (yield from sys.syscall("fcntl", fd=fd, cmd="F_GETFL"))

        value, _ = returns(prog)
        assert value & O_RDWR == O_RDWR
        assert not value & O_APPEND          # status flag dropped
        assert value & O_NONBLOCK            # new status flag set
