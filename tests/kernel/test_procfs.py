"""/proc: host state as files."""
from repro.cpu.machine import BROADWELL_XEON, SKYLAKE_CLOUDLAB, HostEnvironment
from tests.conftest import dettrace_run, native_run, run_guest


def read_proc(path):
    def main(sys):
        data = yield from sys.read_file(path)
        yield from sys.write_file("out", data)
        return 0

    return main


class TestNativeProcfs:
    def test_cpuinfo_lists_all_cores(self):
        k, proc = run_guest(read_proc("/proc/cpuinfo"))
        assert proc.exit_status == 0
        data = k.fs.read_file("/build/out")
        assert data.count(b"processor") == k.host.machine.cores
        assert k.host.machine.cpu_brand.encode() in data

    def test_version_reflects_kernel(self):
        k, _ = run_guest(read_proc("/proc/version"))
        assert b"4.15" in k.fs.read_file("/build/out")

    def test_uptime_advances(self):
        def main(sys):
            a = yield from sys.read_file("/proc/uptime")
            yield from sys.compute(0.5)
            b = yield from sys.read_file("/proc/uptime")
            return 0 if a != b else 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_cpuinfo_differs_across_machines(self):
        a = native_run(read_proc("/proc/cpuinfo"),
                       host=HostEnvironment(machine=SKYLAKE_CLOUDLAB))
        b = native_run(read_proc("/proc/cpuinfo"),
                       host=HostEnvironment(machine=BROADWELL_XEON))
        assert a.output_tree != b.output_tree


class TestDetTraceProcfs:
    def test_cpuinfo_canonical_uniprocessor(self):
        a = dettrace_run(read_proc("/proc/cpuinfo"),
                         host=HostEnvironment(machine=SKYLAKE_CLOUDLAB))
        b = dettrace_run(read_proc("/proc/cpuinfo"),
                         host=HostEnvironment(machine=BROADWELL_XEON))
        assert a.output_tree == b.output_tree
        content = a.output_tree["out"]
        assert content.count(b"processor") == 1
        assert b"DetTrace Virtual CPU" in content
        assert b"rtm" not in content

    def test_version_is_canonical_linux_4_0(self):
        r = dettrace_run(read_proc("/proc/version"))
        assert b"4.0.0" in r.output_tree["out"]

    def test_uptime_and_loadavg_fixed(self):
        for path in ("/proc/uptime", "/proc/loadavg"):
            a = dettrace_run(read_proc(path), host=HostEnvironment(entropy_seed=1))
            b = dettrace_run(read_proc(path), host=HostEnvironment(entropy_seed=2))
            assert a.output_tree == b.output_tree

    def test_mask_ablated_leaks(self):
        from repro.core import ablated

        a = dettrace_run(read_proc("/proc/cpuinfo"),
                         host=HostEnvironment(machine=SKYLAKE_CLOUDLAB),
                         config=ablated("mask_machine"))
        b = dettrace_run(read_proc("/proc/cpuinfo"),
                         host=HostEnvironment(machine=BROADWELL_XEON),
                         config=ablated("mask_machine"))
        assert a.output_tree != b.output_tree
