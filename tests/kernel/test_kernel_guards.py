"""Kernel executive guard rails."""
import pytest

from repro.kernel.errors import KernelPanic
from tests.conftest import make_kernel


class TestGuards:
    def test_event_budget_panic(self):
        def spinner(sys):
            while True:
                yield from sys.sched_yield()

        k = make_kernel()
        k.register_binary("/bin/spin", spinner)
        k.boot("/bin/spin")
        with pytest.raises(KernelPanic):
            k.run(max_events=5000)

    def test_non_generator_program_rejected(self):
        def not_a_generator(sys):
            return 0

        k = make_kernel()
        k.register_binary("/bin/bad", not_a_generator)
        with pytest.raises(KernelPanic) as exc:
            k.boot("/bin/bad")
        assert "generator" in str(exc.value)

    def test_bogus_yield_panics(self):
        def bad(sys):
            yield 42

        k = make_kernel()
        k.register_binary("/bin/bad", bad)
        k.boot("/bin/bad")
        with pytest.raises(KernelPanic):
            k.run()

    def test_double_tracer_attach_rejected(self):
        from repro.tracer.ptrace import TracerBase

        k = make_kernel()
        a, b = TracerBase(), TracerBase()
        a.attach(k)
        with pytest.raises(KernelPanic):
            b.attach(k)

    def test_boot_unregistered_binary(self):
        k = make_kernel()
        with pytest.raises(KernelPanic):
            k.boot("/bin/ghost")
