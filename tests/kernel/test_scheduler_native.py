"""Native (nondeterministic) scheduling behaviour of the DES."""
from repro.cpu.machine import HostEnvironment
from tests.conftest import run_guest


def parallel_workers(n, work):
    def child(sys):
        yield from sys.compute(work)
        return 0

    def main(sys):
        t0 = yield from sys.gettimeofday()
        pids = []
        for _ in range(n):
            pids.append((yield from sys.spawn("/bin/child")))
        for _ in pids:
            yield from sys.waitpid(-1)
        t1 = yield from sys.gettimeofday()
        yield from sys.write_file("elapsed", b"%.6f" % (t1 - t0))
        return 0

    return main, child


class TestParallelism:
    def test_processes_overlap_up_to_core_count(self):
        main, child = parallel_workers(8, 0.05)
        k, _ = run_guest(main, binaries={"/bin/child": child})
        elapsed = float(k.fs.read_file("/build/elapsed"))
        assert elapsed < 0.2  # 8 x 0.05s overlapped on 20 cores

    def test_core_contention_serializes(self):
        main, child = parallel_workers(8, 0.05)
        host = HostEnvironment(visible_cores=2)
        k, _ = run_guest(main, host=host, binaries={"/bin/child": child})
        elapsed = float(k.fs.read_file("/build/elapsed"))
        assert elapsed > 0.15  # 8 x 0.05 over 2 cores >= 0.2 minus jitter

    def test_visible_cores_cap(self):
        assert HostEnvironment(visible_cores=2).ncores == 2
        assert HostEnvironment(visible_cores=500).ncores == HostEnvironment().machine.cores


class TestSchedulingNondeterminism:
    def test_completion_order_varies_across_boots(self):
        """Racing children appending to a shared file interleave
        differently on different boots: the Figure 1 scheduler arrow."""
        def child(sys):
            yield from sys.compute(5e-3)
            from repro.kernel.types import O_APPEND, O_CREAT, O_WRONLY
            fd = yield from sys.open("order.log", O_WRONLY | O_CREAT | O_APPEND)
            pid = yield from sys.getpid()
            yield from sys.write_all(fd, b"%d\n" % pid)
            yield from sys.close(fd)
            return 0

        def main(sys):
            for _ in range(6):
                yield from sys.spawn("/bin/child")
            for _ in range(6):
                yield from sys.waitpid(-1)
            return 0

        orders = set()
        for seed in range(8):
            k, _ = run_guest(main, host=HostEnvironment(entropy_seed=seed),
                             binaries={"/bin/child": child})
            # normalize pids to ranks so only the *order* matters
            lines = k.fs.read_file("/build/order.log").split()
            ranks = tuple(sorted(lines).index(x) for x in lines)
            orders.add(ranks)
        assert len(orders) > 1

    def test_compute_duration_jitter(self):
        def main(sys):
            t0 = yield from sys.gettimeofday()
            yield from sys.compute(0.1)
            t1 = yield from sys.gettimeofday()
            yield from sys.write_file("dt", b"%.9f" % (t1 - t0))
            return 0

        times = set()
        for seed in range(4):
            k, _ = run_guest(main, host=HostEnvironment(entropy_seed=seed))
            times.add(k.fs.read_file("/build/dt"))
        assert len(times) > 1


class TestDeadlines:
    def test_sim_timeout(self):
        import pytest
        from repro.kernel.errors import SimTimeout
        from tests.conftest import make_kernel

        def main(sys):
            yield from sys.sleep(100.0)
            return 0

        k = make_kernel()
        k.register_binary("/bin/main", main)
        k.boot("/bin/main")
        with pytest.raises(SimTimeout):
            k.run(deadline=1.0)

    def test_native_deadlock_detection(self):
        import pytest
        from repro.kernel.errors import DeadlockError
        from tests.conftest import make_kernel

        def main(sys):
            r, w = yield from sys.pipe()
            yield from sys.read(r, 1)  # blocks forever: writer never writes
            return 0

        k = make_kernel()
        k.register_binary("/bin/main", main)
        k.boot("/bin/main")
        with pytest.raises(DeadlockError):
            k.run(deadline=10.0)
