"""Signals and timers (paper SS5.4 substrate)."""
from repro.kernel.errors import Errno, SyscallError
from repro.kernel.types import SIGALRM, SIGSEGV
from tests.conftest import run_guest


class TestHandlers:
    def test_alarm_delivers_signal_to_handler(self):
        def main(sys):
            def on_alarm(hsys, signum):
                yield from hsys.write_file("sig", b"signum=%d" % signum)

            yield from sys.sigaction(SIGALRM, on_alarm)
            yield from sys.alarm(0.05)
            yield from sys.sleep(0.2)
            return 0

        k, proc = run_guest(main)
        assert proc.exit_status == 0
        assert k.fs.read_file("/build/sig") == b"signum=%d" % SIGALRM

    def test_pause_interrupted_by_alarm(self):
        def main(sys):
            def on_alarm(hsys, signum):
                hsys.mem["fired"] = True
                yield from hsys.compute(1e-6)

            yield from sys.sigaction(SIGALRM, on_alarm)
            yield from sys.alarm(0.02)
            try:
                yield from sys.pause()
            except SyscallError as err:
                assert err.errno == Errno.EINTR
                return 0 if sys.mem.get("fired") else 2
            return 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_handler_runs_before_eintr_returns(self):
        """The signal handler completes before the interrupted syscall
        reports EINTR (signal-frame ordering)."""
        def main(sys):
            order = []

            def on_alarm(hsys, signum):
                order.append("handler")
                yield from hsys.compute(1e-6)

            yield from sys.sigaction(SIGALRM, on_alarm)
            yield from sys.alarm(0.01)
            try:
                yield from sys.pause()
            except SyscallError:
                order.append("eintr")
            return 0 if order == ["handler", "eintr"] else 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_default_alarm_action_is_fatal(self):
        def main(sys):
            yield from sys.alarm(0.01)
            yield from sys.sleep(1.0)
            return 0

        _, proc = run_guest(main)
        assert proc.exit_status is not None
        assert proc.exit_status & 0x7F == SIGALRM

    def test_ignored_signal_dropped(self):
        def main(sys):
            yield from sys.sigaction(SIGALRM, "ignore")
            yield from sys.alarm(0.01)
            yield from sys.sleep(0.1)
            return 0

        _, proc = run_guest(main)
        assert proc.exit_status == 0

    def test_sigaction_returns_old_action(self):
        def main(sys):
            old = yield from sys.sigaction(SIGSEGV, "ignore")
            old2 = yield from sys.sigaction(SIGSEGV, "default")
            return 0 if old == "default" and old2 == "ignore" else 1

        _, proc = run_guest(main)
        assert proc.exit_status == 0
