"""The extended syscall surface: times, statfs, fcntl, affinity, ..."""
from repro.kernel.errors import Errno, SyscallError
from tests.conftest import run_guest


class TestTimes:
    def test_cpu_time_accumulates(self):
        def prog(sys):
            t0 = yield from sys.syscall("times")
            yield from sys.compute(0.05)
            t1 = yield from sys.syscall("times")
            return 0 if t1.utime > t0.utime else 1

        _, proc = run_guest(prog)
        assert proc.exit_status == 0


class TestStatfs:
    def test_reports_block_counts(self):
        def prog(sys):
            sf = yield from sys.syscall("statfs", path="/")
            return 0 if sf.f_blocks > 0 and sf.f_bfree < sf.f_blocks else 1

        _, proc = run_guest(prog)
        assert proc.exit_status == 0

    def test_missing_path_enoent(self):
        def prog(sys):
            try:
                yield from sys.syscall("statfs", path="/nope")
            except SyscallError as err:
                return 0 if err.errno == Errno.ENOENT else 1
            return 1

        _, proc = run_guest(prog)
        assert proc.exit_status == 0


class TestFcntl:
    def test_getfl_setfl(self):
        from repro.kernel.types import O_APPEND, O_CREAT, O_WRONLY

        def prog(sys):
            fd = yield from sys.open("f", O_WRONLY | O_CREAT)
            flags = yield from sys.syscall("fcntl", fd=fd, cmd="F_GETFL")
            yield from sys.syscall("fcntl", fd=fd, cmd="F_SETFL",
                                   arg=flags | O_APPEND)
            new = yield from sys.syscall("fcntl", fd=fd, cmd="F_GETFL")
            return 0 if new & O_APPEND else 1

        _, proc = run_guest(prog)
        assert proc.exit_status == 0

    def test_dupfd_minimum(self):
        def prog(sys):
            fd = yield from sys.open("/dev/null")
            dup = yield from sys.syscall("fcntl", fd=fd, cmd="F_DUPFD", arg=17)
            return 0 if dup >= 17 else 1

        _, proc = run_guest(prog)
        assert proc.exit_status == 0


class TestSigprocmask:
    def test_block_unblock_roundtrip(self):
        def prog(sys):
            old = yield from sys.syscall("sigprocmask", how="SIG_BLOCK",
                                         mask=(14, 15))
            assert old == ()
            old = yield from sys.syscall("sigprocmask", how="SIG_UNBLOCK",
                                         mask=(14,))
            return 0 if old == (14, 15) else 1

        _, proc = run_guest(prog)
        assert proc.exit_status == 0


class TestAffinity:
    def test_native_shows_all_cores(self):
        def prog(sys):
            cpus = yield from sys.syscall("sched_getaffinity")
            yield from sys.write_file("n", str(len(cpus)))
            return 0

        k, _ = run_guest(prog)
        assert int(k.fs.read_file("/build/n")) == k.host.ncores
