"""Command-line interface mirroring the paper's artifact appendix.

The artifact's workflow is ``./bin/dettrace <command>`` against a chroot
image; ours is::

    python -m repro run date                 # the appendix's demo
    python -m repro run -- ls -l /bin
    python -m repro run --native date        # the irreproducible baseline
    python -m repro run --seed 7 sha256sum /etc/hostname
    python -m repro script build.sh          # run a shell script reproducibly
    python -m repro selftest                 # the appendix's `make test`

``run`` boots a minimal container image with the busybox toolbox
installed (the analog of the appendix's debootstrap chroot) and executes
one command inside it.  ``--native`` runs the same image without the
tracer; ``--boot N`` picks a different simulated machine boot, which
changes native output but never DetTrace output.
"""

from __future__ import annotations

import argparse
import sys as _sys
from typing import List, Optional

from .core import (
    CheckpointConfig,
    ContainerConfig,
    DetTrace,
    Image,
    NativeRunner,
    OK,
    RESUMED,
    RETRIED,
)
from .cpu.machine import ALL_MACHINES, SKYLAKE_CLOUDLAB, HostEnvironment
from .faults import FaultPlan, FaultPlanError
from .guest.coreutils import COREUTILS_PATHS, install_coreutils
from .obs.report import format_metrics, format_table2_summary


def base_image() -> Image:
    """A minimal chroot-like image with the toolbox installed."""
    image = Image()
    install_coreutils(image)
    image.add_file("/etc/motd", "welcome to the container\n")
    return image


def _host(args) -> HostEnvironment:
    machine = ALL_MACHINES.get(args.machine, SKYLAKE_CLOUDLAB)
    return HostEnvironment(machine=machine, entropy_seed=args.boot,
                           boot_epoch=1.6e9 + args.boot * 1009.0,
                           pid_start=1000 + args.boot * 13,
                           inode_start=100_000 + args.boot * 997,
                           dirent_hash_salt=args.boot)


def _resolve(name: str) -> Optional[str]:
    if name.startswith("/"):
        return name
    return COREUTILS_PATHS.get(name)


def _load_faults(args) -> Optional[FaultPlan]:
    if not getattr(args, "faults", None):
        return None
    try:
        return FaultPlan.from_file(args.faults)
    except (OSError, FaultPlanError) as err:
        raise SystemExit("repro: cannot load fault plan %s: %s"
                         % (args.faults, err))


def _wants_obs(args) -> bool:
    return bool(getattr(args, "metrics", False)
                or getattr(args, "trace_out", None))


def _cache_config(args) -> "Optional[object]":
    directory = getattr(args, "cache_dir", None)
    if not directory:
        return None
    from .core import CacheConfig

    return CacheConfig(directory=directory,
                       mode=getattr(args, "cache_mode", "write"))


def _report_cache(result) -> Optional[int]:
    """Surface the run-cache disposition; 70 on a verify mismatch."""
    record = getattr(result, "cache", None)
    if record is None:
        return None
    _sys.stderr.write("[cache %s %s]\n"
                      % (record["outcome"], record["key"][:16]))
    if record["outcome"] != "verify_mismatch":
        return None
    report = record.get("report")
    if report is not None:
        _sys.stderr.write(report.format() + "\n")
    _sys.stderr.write("repro: cached entry does not match re-execution "
                      "(surfaces: %s)\n"
                      % ", ".join(record.get("differs", [])))
    return 70


def _checkpoint_config(args) -> Optional[CheckpointConfig]:
    directory = getattr(args, "checkpoint_dir", None)
    if not directory:
        if getattr(args, "resume", False):
            raise SystemExit("repro: --resume requires --checkpoint-dir")
        return None
    return CheckpointConfig(
        directory=directory,
        every=getattr(args, "checkpoint_every", 0),
        keep=getattr(args, "checkpoint_keep", 3),
        full_every=getattr(args, "checkpoint_full_every", 4))


def _install_sigterm(container):
    """SIGTERM requests a snapshot at the next virtual-time barrier, so
    an orderly kill (systemd stop, preemption notice) leaves a resumable
    journal.  Returns a restore thunk for the previous handler."""
    import signal

    def _on_term(_signum, _frame):
        manager = container.active_ckpt
        if manager is not None:
            manager.request()

    try:
        previous = signal.signal(signal.SIGTERM, _on_term)
    except ValueError:  # not the main thread (embedded use)
        return lambda: None
    return lambda: signal.signal(signal.SIGTERM, previous)


def _run_container(args, image, path, argv) -> "object":
    plan = _load_faults(args)
    config = ContainerConfig(prng_seed=args.seed, fault_plan=plan,
                             observe=bool(getattr(args, "trace_out", None)),
                             checkpoint=_checkpoint_config(args),
                             cache=_cache_config(args))
    container = DetTrace(config)
    restore_sigterm = (_install_sigterm(container)
                       if config.checkpoint is not None else None)
    try:
        if getattr(args, "resume", False):
            from .ckpt import JournalError

            try:
                return container.resume(image, path, argv=argv)
            except JournalError as err:
                _sys.stderr.write(
                    "repro: no valid checkpoint to resume (%s); "
                    "starting a fresh run\n" % err)
        if getattr(args, "supervised", False):
            return container.run_supervised(image, path, argv=argv,
                                            host=_host(args))
        return container.run(image, path, argv=argv, host=_host(args))
    finally:
        if restore_sigterm is not None:
            restore_sigterm()


def _report(result, verbose: bool) -> int:
    _sys.stdout.write(result.stdout)
    _sys.stderr.write(result.stderr)
    if result.status not in (OK, RETRIED, RESUMED):
        _sys.stderr.write("container error: %s (%s)\n"
                          % (result.status, result.error))
        if result.crash_report is not None:
            _sys.stderr.write(result.crash_report.format() + "\n")
        return 70
    if result.exit_code is None and result.error:
        # e.g. init killed by an injected signal: surface the cause.
        _sys.stderr.write("%s\n" % result.error)
    if verbose:
        _sys.stderr.write("[wall %.3f ms, %d syscalls, %d attempts]\n"
                          % (result.wall_time * 1e3, result.syscall_count,
                             result.attempts))
        if result.counters is not None and result.counters.faults_injected:
            _sys.stderr.write("[%d faults injected]\n"
                              % result.counters.faults_injected)
    return result.exit_code if result.exit_code is not None else 1


def _emit_obs(args, result) -> None:
    """--metrics / --trace-out output (repro.obs).  Reports go to stderr
    so container stdout stays byte-reproducible."""
    if getattr(args, "metrics", False):
        if result.metrics is not None:
            _sys.stderr.write(format_metrics(result.metrics) + "\n")
        else:
            _sys.stderr.write("repro: no metrics collected for this run\n")
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        if result.trace is not None:
            result.trace.write(trace_out)
            _sys.stderr.write(
                "trace: wrote %d records to %s\n"
                % (len(result.trace.to_chrome()["traceEvents"]), trace_out))
        else:
            _sys.stderr.write("repro: no trace collected (native run?)\n")
    export_fmt = getattr(args, "export_metrics", None)
    if export_fmt:
        if result.metrics is None:
            _sys.stderr.write("repro: no metrics to export for this run\n")
        else:
            from .diag.export import render_metrics

            text = render_metrics(result.metrics, export_fmt)
            metrics_out = getattr(args, "metrics_out", None)
            if metrics_out:
                with open(metrics_out, "w") as fh:
                    fh.write(text)
                _sys.stderr.write("metrics: wrote %s (%s, %d samples)\n"
                                  % (metrics_out, export_fmt,
                                     len(text.splitlines())))
            else:
                _sys.stderr.write(text)


def _parallel_run_worker(payload) -> dict:
    """Fan-out worker for ``repro run --jobs/--repeat`` (module-level so
    it pickles).  Returns a digest-reduced record: cross-process results
    stay small, and the digests are what the identity check compares."""
    from .repro_tools.hashing import tree_digest

    args = argparse.Namespace(**payload["args"])
    result = _run_container(args, base_image(), payload["path"],
                            payload["argv"])
    cache = None
    if result.cache is not None:
        cache = {"outcome": result.cache["outcome"],
                 "key": result.cache["key"],
                 "executed": result.cache["executed"]}
    return {
        "status": result.status,
        "exit_code": result.exit_code,
        "stdout": result.stdout,
        "stderr": result.stderr,
        "tree_digest": tree_digest(result.output_tree),
        "virtual_wall": result.wall_time,
        "syscalls": result.syscall_count,
        "cache": cache,
    }


def _cmd_run_parallel(args, path: str, argv: List[str]) -> int:
    """Run the same container --repeat times across --jobs workers.

    Every run is an independent pure function of the same inputs, so all
    records must come back byte-identical; any divergence is a
    determinism bug and exits 70.
    """
    from .parallel import Job, cache_tally, default_workers, run_jobs

    repeat = max(args.repeat, 1)
    workers = args.jobs if args.jobs > 0 else default_workers()
    payload = {
        "args": {k: v for k, v in vars(args).items()
                 if k not in ("fn", "command")},
        "path": path,
        "argv": argv,
    }
    records = [rec for _key, rec in run_jobs(
        [Job(key=i, fn=_parallel_run_worker, args=(payload,))
         for i in range(repeat)],
        workers=workers)]
    first = records[0]
    _sys.stdout.write(first["stdout"])
    _sys.stderr.write(first["stderr"])

    # The cache disposition legitimately differs across repeats (the
    # first run stores, later ones hit) — it is operational, not part of
    # the reproducible surface, so it is excluded from the identity check.
    def _surface(rec):
        return {k: v for k, v in rec.items() if k != "cache"}

    identical = all(_surface(rec) == _surface(first) for rec in records[1:])
    _sys.stderr.write(
        "[%d runs on %d workers: outputs %s, tree digest %s]\n"
        % (repeat, min(workers, repeat),
           "identical" if identical else "DIVERGENT", first["tree_digest"][:16]))
    tally = cache_tally(records)
    if tally:
        _sys.stderr.write("[cache: %s]\n" % ", ".join(
            "%d %s" % (n, outcome) for outcome, n in sorted(tally.items())))
    if not identical:
        return 70
    if first["status"] not in (OK, RETRIED, RESUMED):
        _sys.stderr.write("container error: %s\n" % first["status"])
        return 70
    return first["exit_code"] if first["exit_code"] is not None else 1


def cmd_run(args) -> int:
    image = base_image()
    command = args.command
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        _sys.stderr.write("repro run: missing command\n")
        return 2
    args.command = command
    path = _resolve(args.command[0])
    if path is None:
        _sys.stderr.write("repro: %s: not in the toolbox (%s)\n"
                          % (args.command[0], ", ".join(sorted(COREUTILS_PATHS))))
        return 127
    argv = [args.command[0]] + args.command[1:]
    if not args.native and (args.jobs != 1 or args.repeat != 1):
        if getattr(args, "checkpoint_dir", None):
            _sys.stderr.write("repro: --checkpoint-dir is per-run; it "
                              "cannot be combined with --jobs/--repeat\n")
            return 2
        return _cmd_run_parallel(args, path, argv)
    if args.native:
        result = NativeRunner(fault_plan=_load_faults(args)).run(
            image, path, argv=argv, host=_host(args))
    else:
        result = _run_container(args, image, path, argv)
    status = _report(result, args.verbose)
    cache_status = _report_cache(result)
    _emit_obs(args, result)
    return cache_status if cache_status is not None else status


def cmd_script(args) -> int:
    with open(args.script, "rb") as fh:
        text = fh.read()
    image = base_image()

    def setup(kernel, build_dir):
        kernel.fs.write_file(build_dir + "/script.sh", text,
                             now=kernel.host.boot_epoch)

    image.on_setup(setup)
    argv = ["sh", "script.sh"] + args.args
    if args.native:
        result = NativeRunner(fault_plan=_load_faults(args)).run(
            image, "/bin/sh", argv=argv, host=_host(args))
    else:
        result = _run_container(args, image, "/bin/sh", argv)
    status = _report(result, args.verbose)
    cache_status = _report_cache(result)
    if cache_status is not None:
        status = cache_status
    _emit_obs(args, result)
    if args.show_tree:
        for rel_path in sorted(result.output_tree):
            if rel_path != "script.sh":
                _sys.stderr.write("  %s (%d bytes)\n"
                                  % (rel_path, len(result.output_tree[rel_path])))
    return status


def cmd_obs(args) -> int:
    """Run a toolbox command under full observability and print the
    Table-2-style determinization summary, averaged over --runs."""
    image = base_image()
    command = args.command
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        _sys.stderr.write("repro obs: missing command\n")
        return 2
    path = _resolve(command[0])
    if path is None:
        _sys.stderr.write("repro: %s: not in the toolbox (%s)\n"
                          % (command[0], ", ".join(sorted(COREUTILS_PATHS))))
        return 127
    argv = [command[0]] + command[1:]
    plan = _load_faults(args)
    aggregate = None
    trace = None
    for _ in range(max(1, args.runs)):
        config = ContainerConfig(prng_seed=args.seed, fault_plan=plan,
                                 observe=bool(args.trace_out))
        result = DetTrace(config).run(image, path, argv=argv,
                                      host=_host(args))
        if result.metrics is None:
            _sys.stderr.write("repro obs: run collected no metrics (%s)\n"
                              % result.status)
            return 70
        if aggregate is None:
            aggregate = result.metrics
            trace = result.trace
        else:
            aggregate.add(result.metrics)
    if args.full:
        print(format_metrics(aggregate))
    else:
        print(format_table2_summary(aggregate))
    if args.trace_out and trace is not None:
        trace.write(args.trace_out)
        _sys.stderr.write(
            "trace: wrote %d records to %s\n"
            % (len(trace.to_chrome()["traceEvents"]), args.trace_out))
    return 0


def cmd_bench(args) -> int:
    """Built-in benchmarks: currently the hot-path engine report."""
    from .hotpath import format_report, run_hotpath_bench

    report = run_hotpath_bench(scale=args.scale, out_path=args.out)
    print(format_report(report))
    if args.out:
        _sys.stderr.write("bench: wrote %s\n" % args.out)
    return 0


def cmd_fuzz(args) -> int:
    """Differential determinism fuzzing (repro.fuzz)."""
    from .fuzz import format_report, replay_corpus, run_fuzz

    if args.replay_corpus:
        failed = replay_corpus(args.replay_corpus, workers=args.workers,
                               rnr=not args.no_rnr)
        if failed:
            for report in failed:
                print("corpus FAIL:", report.summary())
            return 1
        print("corpus: all entries deterministic")
        return 0
    report = run_fuzz(seed=args.seed, budget=args.budget,
                      seconds=args.seconds, workers=args.workers,
                      rnr=not args.no_rnr, corpus_dir=args.corpus,
                      do_shrink=not args.no_shrink,
                      log=lambda line: _sys.stderr.write("fuzz: %s\n" % line))
    print(format_report(report))
    return 0 if report.ok else 1


def cmd_ckpt(args) -> int:
    """Inspect/verify/prune a checkpoint journal directory."""
    from .ckpt import JournalError, RecoveryManager
    from .ckpt import prune as ckpt_prune
    from .ckpt import scan

    if args.action == "prune":
        removed = ckpt_prune(args.directory, keep=args.keep)
        print("pruned %d file(s) from %s" % (len(removed), args.directory))
        for path in removed:
            print("  removed %s" % path)
        return 0
    infos = scan(args.directory, fingerprint=args.fingerprint)
    for info in infos:
        if not info.valid:
            print("INVALID  %s: %s" % (info.path, info.error))
            continue
        if info.snapshot_kind == "delta":
            kind = "delta depth %d  base %s" % (
                info.chain_depth, info.base_sha256[:12] or "?")
            if not info.chain_valid:
                kind += "  [chain broken]"
        else:
            kind = "full"
        print("barrier %8d  vclock %14.6f  %8d bytes  fp %s  %s  %s"
              % (info.barrier, info.vclock, info.payload_len,
                 info.fingerprint[:12] or "-", kind, info.path))
    if args.action == "inspect":
        if not infos:
            print("no snapshots in %s" % args.directory)
            return 0
        # Per-delta detail: how much state actually moved per barrier.
        import pickle as _pickle

        from .ckpt.journal import load_snapshot

        for info in reversed(infos):
            if not info.valid or info.snapshot_kind != "delta":
                continue
            try:
                _header, blob = load_snapshot(
                    info.path, fingerprint=args.fingerprint)
                delta = _pickle.loads(blob)
            except Exception:
                continue
            print("  barrier %8d  delta: %d dirty inode(s), %d dead, "
                  "%d changed section(s), %d tape entries"
                  % (info.barrier, len(delta["fs_dirty"]),
                     len(delta["fs_dead"]), len(delta["sections"]),
                     len(delta["tape_tail"])))
        return 0
    # verify: every file must validate, every delta's chain must reach a
    # valid full base, and all materialized fingerprints must compute.
    bad = [info for info in infos if not info.valid]
    broken = [info for info in infos if info.valid and not info.chain_valid]
    good = [info for info in infos if info.chain_valid]
    if bad:
        print("verify: FAIL — %d torn/corrupt snapshot(s)" % len(bad))
        return 1
    if broken:
        for info in broken:
            print("  chain broken: %s (base %s... missing or invalid)"
                  % (info.path, info.base_sha256[:12]))
        print("verify: FAIL — %d delta snapshot(s) with a broken chain"
              % len(broken))
        return 1
    if not good:
        print("verify: OK — journal is empty (%s)" % args.directory)
        return 0
    # Deterministic guest-state fingerprints (repro.diag's bisection
    # coordinate): equal runs produce equal fingerprints barrier for
    # barrier, so these lines diff cleanly across journals.  Delta
    # chains are fingerprinted with the incremental Merkle cursor.
    recovery = RecoveryManager(args.directory, fingerprint=args.fingerprint)
    try:
        fps = recovery.chain_fingerprints()
    except JournalError as err:
        print("verify: FAIL — %s" % err)
        return 1
    for barrier in sorted(fps):
        print("  barrier %8d  guest-state %s"
              % (barrier, fps[barrier][0][:16]))
    print("verify: OK — %d snapshot(s), newest barrier %d"
          % (len(good), good[0].barrier))
    return 0


def cmd_cache(args) -> int:
    """Inspect/verify/collect a run-cache directory (repro.cache)."""
    from .cache import CacheStore

    store = CacheStore(args.directory)
    if args.action == "stats":
        stats = store.stats()
        print("cache %s" % stats.directory)
        print("  keys:                  %d" % stats.keys)
        print("  objects:               %d (%d bytes)"
              % (stats.objects, stats.object_bytes))
        print("  deduplicated keys:     %d" % stats.deduplicated_keys)
        print("  torn keys/objects:     %d/%d"
              % (stats.torn_keys, stats.torn_objects))
        print("  dangling keys:         %d" % stats.missing_objects)
        print("  unreferenced objects:  %d" % stats.unreferenced_objects)
        return 0
    if args.action == "gc":
        removed = store.gc()
        print("gc %s: removed %d torn/dangling, %d unreferenced"
              % (args.directory, len(removed["torn"]),
                 len(removed["unreferenced"])))
        for bucket in ("torn", "unreferenced"):
            for path in removed[bucket]:
                print("  removed %s" % path)
        return 0
    # verify: every entry must checksum-validate and reference a live
    # object; dedup sharing is fine, torn or dangling state is not.
    problems = store.verify_store()
    if problems:
        for problem in problems:
            print("  %s" % problem)
        print("verify: FAIL — %d problem(s) in %s"
              % (len(problems), args.directory))
        return 1
    stats = store.stats()
    print("verify: OK — %d key(s), %d object(s), %d bytes (%s)"
          % (stats.keys, stats.objects, stats.object_bytes, args.directory))
    return 0


def cmd_diff(args) -> int:
    """First-divergence diff of two trace files (repro.diag).

    Exit 0 when the traces align record for record, 1 when they
    diverge (the report names the first divergent virtual-time
    coordinate), 2 on unreadable inputs.
    """
    from .diag import diff_trace_files

    try:
        report = diff_trace_files(args.run_a, args.run_b,
                                  labels=(args.run_a, args.run_b),
                                  context=args.context)
    except (OSError, ValueError) as err:
        _sys.stderr.write("repro diff: cannot load trace: %s\n" % err)
        return 2
    print(report.format())
    if args.report:
        report.write_json(args.report)
        _sys.stderr.write("diff: wrote %s\n" % args.report)
    return 1 if report.diverged else 0


def _diag_demo(args) -> int:
    """Known-ground-truth smoke: the check.sh diag gate.

    Verifies the three behaviours the diagnosis engine promises: a
    self-pair reports no divergence; a control-flow leak localizes to a
    trace record; a content-only leak (trace-invisible by construction)
    bisects to a single snapshot interval.
    """
    from .diag import (bisect_divergence, content_leak_pair, diff_captures,
                       identical_pair, leaky_pair)

    failures = []
    spec_a, spec_b = identical_pair()
    report = diff_captures(spec_a.capture(), spec_b.capture())
    print("[identical pair]")
    print(report.format())
    if report.diverged:
        failures.append("identical pair reported a divergence")

    spec_a, spec_b = leaky_pair()
    report = diff_captures(spec_a.capture(), spec_b.capture())
    print("\n[length leak: control-flow divergence]")
    print(report.format())
    if not report.diverged or report.vts is None:
        failures.append("length leak not localized to a trace coordinate")

    spec_a, spec_b = content_leak_pair()
    result = bisect_divergence(spec_a, spec_b, coarse=args.coarse,
                               workdir=args.workdir)
    print("\n[content leak: checkpoint bisection]")
    print(result.report.format())
    if not result.diverged or result.hi is None:
        failures.append("content leak not bracketed by bisection")
    elif result.hi - result.lo != 1:
        failures.append("bisection window wider than one tick: (%d, %d]"
                        % (result.lo, result.hi))
    if failures:
        for failure in failures:
            print("diag demo FAIL:", failure)
        return 1
    print("\ndiag demo: OK — self-diff clean, leak localized, "
          "bisection narrowed to one tick")
    return 0


def _diag_bisect(args) -> int:
    """Bisect two seeded runs of a toolbox command."""
    from .diag import RunSpec, bisect_divergence

    command = args.command
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        _sys.stderr.write("repro diag bisect: missing command\n")
        return 2
    path = _resolve(command[0])
    if path is None:
        _sys.stderr.write("repro: %s: not in the toolbox\n" % command[0])
        return 127
    argv = [command[0]] + command[1:]
    host = _host(args)
    sides = []
    for seed, label in ((args.seed_a, "seed-%d" % args.seed_a),
                        (args.seed_b, "seed-%d" % args.seed_b)):
        sides.append(RunSpec(
            image_factory=base_image, command=path, argv=argv,
            config=ContainerConfig(prng_seed=seed,
                                   fault_plan=_load_faults(args)),
            host=host, label=label))
    result = bisect_divergence(sides[0], sides[1], coarse=args.coarse,
                               max_probes=args.max_probes,
                               workdir=args.workdir)
    print(result.report.format())
    print(result.summary())
    if args.report:
        result.report.write_json(args.report)
        _sys.stderr.write("diag: wrote %s\n" % args.report)
    return 1 if result.diverged else 0


def _diag_fuzz(args) -> int:
    """Diff one fuzz program (corpus entry or generated seed) across two
    container PRNG seeds — the localization smoke for banked entries."""
    import json as _json

    from .diag import RunCapture, diff_captures
    from .fuzz.corpus import CorpusEntry
    from .fuzz.grammar import generate_program
    from .fuzz.guest import build_image
    from .fuzz.runner import Cell, _host_for

    if args.entry:
        try:
            with open(args.entry) as fh:
                spec = CorpusEntry.from_dict(_json.load(fh)).spec
        except (OSError, ValueError, KeyError) as err:
            _sys.stderr.write("repro diag fuzz: cannot load entry %s: %s\n"
                              % (args.entry, err))
            return 2
    else:
        spec = generate_program(args.fuzz_seed)
    host = _host_for(spec.seed, 0)
    captures = []
    for seed in (args.seed_a, args.seed_b):
        cell = Cell("diag-seed%d" % seed, observe=True, prng_seed=seed)
        result = DetTrace(cell.config()).run(build_image(spec),
                                             "/bin/fuzz", host=host)
        captures.append(RunCapture.from_result(result, cell.name))
    report = diff_captures(captures[0], captures[1])
    print(report.format())
    if args.report:
        report.write_json(args.report)
        _sys.stderr.write("diag: wrote %s\n" % args.report)
    return 1 if report.diverged else 0


def cmd_selftest(args) -> int:
    """The appendix's `make test` in miniature: run `date` on two boots
    natively and under DetTrace and verify the expected (ir)reproducibility."""
    image = base_image()
    outs = {"native": [], "dettrace": []}
    for boot in (1, 2):
        host = HostEnvironment(entropy_seed=boot, boot_epoch=1.5e9 + boot * 9999.0)
        outs["native"].append(
            NativeRunner().run(image, "/bin/date", host=host).stdout)
        outs["dettrace"].append(
            DetTrace().run(image, "/bin/date", host=host).stdout)
    native_varies = outs["native"][0] != outs["native"][1]
    dettrace_fixed = outs["dettrace"][0] == outs["dettrace"][1]
    print("native date varies across boots:     %s" % native_varies)
    print("dettrace date identical across boots: %s" % dettrace_fixed)
    print("dettrace date: %s" % outs["dettrace"][0].strip())
    ok = native_varies and dettrace_fixed
    print("selftest:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DetTrace reproducible containers")
    sub = parser.add_subparsers(dest="subcommand", required=True)

    def common(p):
        p.add_argument("--native", action="store_true",
                       help="run without the DetTrace tracer")
        p.add_argument("--boot", type=int, default=1,
                       help="simulated machine boot (changes native output)")
        p.add_argument("--seed", type=int, default=0,
                       help="container PRNG seed")
        p.add_argument("--machine", default="cloudlab-c220g5",
                       choices=sorted(ALL_MACHINES))
        p.add_argument("--verbose", action="store_true")
        p.add_argument("--faults", metavar="PLAN.json",
                       help="deterministic fault-injection plan "
                            "(repro.faults JSON format)")
        p.add_argument("--supervised", action="store_true",
                       help="retry transient fault-plane failures with "
                            "deterministic virtual-time backoff")
        p.add_argument("--metrics", action="store_true",
                       help="print the repro.obs determinization metrics "
                            "report (Table-2-style) to stderr")
        p.add_argument("--trace-out", metavar="FILE", dest="trace_out",
                       help="write a Chrome trace_event JSON trace keyed "
                            "on virtual time (byte-identical across reruns)")
        p.add_argument("--export-metrics", metavar="FMT",
                       dest="export_metrics", choices=["prom", "jsonl"],
                       help="export the run's metrics snapshot as "
                            "Prometheus text or JSONL (deterministic: "
                            "identical runs export identical bytes)")
        p.add_argument("--metrics-out", metavar="FILE", dest="metrics_out",
                       help="write --export-metrics output to FILE "
                            "instead of stderr")
        p.add_argument("--cache-dir", metavar="DIR", dest="cache_dir",
                       help="content-addressed run cache (repro.cache): "
                            "identical runs are served from DIR with zero "
                            "guest execution")
        p.add_argument("--cache", dest="cache_mode", default="write",
                       choices=["off", "read", "write", "verify"],
                       help="cache policy: read = consult only, write = "
                            "consult + store (default), verify = always "
                            "re-execute and byte-compare against the entry "
                            "(mismatch exits 70 with a divergence report)")

    run = sub.add_parser("run", help="run a toolbox command in a container")
    common(run)
    run.add_argument("--checkpoint-dir", metavar="DIR", dest="checkpoint_dir",
                     help="journal directory for crash-consistent "
                          "checkpoints (enables repro.ckpt)")
    run.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                     dest="checkpoint_every",
                     help="snapshot every N kernel events (0 = only on "
                          "SIGTERM)")
    run.add_argument("--checkpoint-keep", type=int, default=3, metavar="K",
                     dest="checkpoint_keep",
                     help="valid snapshots to retain after each barrier")
    run.add_argument("--checkpoint-full-every", type=int, default=4,
                     metavar="N", dest="checkpoint_full_every",
                     help="write a self-contained full snapshot every N "
                          "snapshots and dirty-tracked deltas in between "
                          "(1 = every snapshot full)")
    run.add_argument("--resume", action="store_true",
                     help="continue from the newest valid checkpoint in "
                          "--checkpoint-dir (falls back to a fresh run)")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes for --repeat fan-out "
                          "(0 = auto); results are identical to --jobs 1")
    run.add_argument("--repeat", type=int, default=1, metavar="M",
                     help="run the container M times and verify all "
                          "outputs are byte-identical")
    run.add_argument("command", nargs=argparse.REMAINDER,
                     help="command and arguments (e.g. date, ls -l /bin)")
    run.set_defaults(fn=cmd_run)

    script = sub.add_parser("script", help="run a shell script reproducibly")
    common(script)
    script.add_argument("script", help="path to a shell script on the host")
    script.add_argument("args", nargs="*", help="script arguments")
    script.add_argument("--show-tree", action="store_true",
                        help="list the output tree after the run")
    script.set_defaults(fn=cmd_script)

    obs = sub.add_parser("obs", help="run a command and report repro.obs "
                                     "determinization metrics")
    obs.add_argument("--boot", type=int, default=1,
                     help="simulated machine boot")
    obs.add_argument("--seed", type=int, default=0, help="container PRNG seed")
    obs.add_argument("--machine", default="cloudlab-c220g5",
                     choices=sorted(ALL_MACHINES))
    obs.add_argument("--faults", metavar="PLAN.json",
                     help="deterministic fault-injection plan")
    obs.add_argument("--runs", type=int, default=1,
                     help="average the summary over N identical runs")
    obs.add_argument("--full", action="store_true",
                     help="print the full metrics report, not just the "
                          "Table-2 summary")
    obs.add_argument("--trace-out", metavar="FILE", dest="trace_out",
                     help="also write the Chrome trace_event JSON of the "
                          "first run")
    obs.add_argument("command", nargs=argparse.REMAINDER,
                     help="command and arguments")
    obs.set_defaults(fn=cmd_obs)

    selftest = sub.add_parser("selftest",
                              help="verify the reproducibility guarantee")
    selftest.set_defaults(fn=cmd_selftest)

    fuzz = sub.add_parser("fuzz", help="differential determinism fuzzing")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="first program seed (walk is seed..seed+budget)")
    fuzz.add_argument("--budget", type=int, default=100,
                      help="number of generated programs to check")
    fuzz.add_argument("--seconds", type=float, default=None,
                      help="wall-clock cap for the walk (smoke use)")
    fuzz.add_argument("--workers", type=int, default=2,
                      help="pool size for the serial-vs-parallel axis "
                           "(1 disables that axis)")
    fuzz.add_argument("--no-rnr", action="store_true",
                      help="skip the record/replay axis")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="keep divergent programs unshrunk")
    fuzz.add_argument("--corpus", metavar="DIR", default=None,
                      help="bank shrunk reproducers into DIR")
    fuzz.add_argument("--replay-corpus", metavar="DIR", default=None,
                      help="re-check every entry in DIR instead of fuzzing")
    fuzz.set_defaults(fn=cmd_fuzz)

    bench = sub.add_parser("bench", help="run a built-in benchmark")
    bench.add_argument("what", choices=["hotpath"],
                       help="which benchmark to run")
    bench.add_argument("--scale", type=float, default=1.0,
                       help="scale workload sizes (0.25 = quick smoke)")
    bench.add_argument("--out", metavar="FILE",
                       help="also write the machine-readable JSON report")
    bench.set_defaults(fn=cmd_bench)

    diff = sub.add_parser("diff",
                          help="first-divergence diff of two trace files")
    diff.add_argument("run_a", help="Chrome trace JSON of run A "
                                    "(from --trace-out)")
    diff.add_argument("run_b", help="Chrome trace JSON of run B")
    diff.add_argument("--context", type=int, default=16, metavar="N",
                      help="pre-divergence events to report per side")
    diff.add_argument("--report", metavar="FILE",
                      help="also write the structured DivergenceReport "
                           "JSON (atomic write)")
    diff.set_defaults(fn=cmd_diff)

    diag = sub.add_parser("diag",
                          help="divergence diagnosis: demo, checkpoint "
                               "bisection, fuzz-entry localization")
    diag_sub = diag.add_subparsers(dest="action", required=True)

    diag_demo = diag_sub.add_parser(
        "demo", help="known-ground-truth smoke: self-diff identity, "
                     "leak localization, single-tick bisection")
    diag_demo.add_argument("--coarse", type=int, default=16,
                           help="coarse-pass snapshot interval (ticks)")
    diag_demo.add_argument("--workdir", metavar="DIR", default=None,
                           help="keep bisection journals under DIR")
    diag_demo.set_defaults(fn=_diag_demo)

    diag_bisect = diag_sub.add_parser(
        "bisect", help="bisect two seeded runs of a toolbox command to "
                       "the first divergent snapshot window")
    diag_bisect.add_argument("--seed-a", type=int, default=0,
                             dest="seed_a",
                             help="container PRNG seed of side A")
    diag_bisect.add_argument("--seed-b", type=int, default=1,
                             dest="seed_b",
                             help="container PRNG seed of side B")
    diag_bisect.add_argument("--coarse", type=int, default=16,
                             help="coarse-pass snapshot interval (ticks)")
    diag_bisect.add_argument("--max-probes", type=int, default=10,
                             dest="max_probes",
                             help="binary-probe cap (each probe is two "
                                  "runs)")
    diag_bisect.add_argument("--workdir", metavar="DIR", default=None,
                             help="keep bisection journals under DIR "
                                  "instead of a temp dir")
    diag_bisect.add_argument("--report", metavar="FILE",
                             help="write the structured DivergenceReport "
                                  "JSON")
    diag_bisect.add_argument("--boot", type=int, default=1,
                             help="simulated machine boot (both sides)")
    diag_bisect.add_argument("--machine", default="cloudlab-c220g5",
                             choices=sorted(ALL_MACHINES))
    diag_bisect.add_argument("--faults", metavar="PLAN.json",
                             help="fault plan applied to both sides")
    diag_bisect.add_argument("command", nargs=argparse.REMAINDER,
                             help="toolbox command to run on both sides")
    diag_bisect.set_defaults(fn=_diag_bisect)

    diag_fuzz = diag_sub.add_parser(
        "fuzz", help="diff one fuzz program across two container PRNG "
                     "seeds")
    diag_fuzz.add_argument("--entry", metavar="FILE", default=None,
                           help="corpus entry JSON to diagnose")
    diag_fuzz.add_argument("--fuzz-seed", type=int, default=0,
                           dest="fuzz_seed",
                           help="generate the program from this seed "
                                "when no --entry is given")
    diag_fuzz.add_argument("--seed-a", type=int, default=0, dest="seed_a",
                           help="container PRNG seed of side A")
    diag_fuzz.add_argument("--seed-b", type=int, default=0, dest="seed_b",
                           help="container PRNG seed of side B")
    diag_fuzz.add_argument("--report", metavar="FILE",
                           help="write the structured DivergenceReport "
                                "JSON")
    diag_fuzz.set_defaults(fn=_diag_fuzz)

    ckpt = sub.add_parser("ckpt",
                          help="inspect/verify/prune a checkpoint journal")
    ckpt.add_argument("action", choices=["inspect", "verify", "prune"])
    ckpt.add_argument("directory", help="journal directory "
                                        "(the run's --checkpoint-dir)")
    ckpt.add_argument("--keep", type=int, default=3,
                      help="snapshots to retain when pruning")
    ckpt.add_argument("--fingerprint", default=None,
                      help="additionally require this config fingerprint")
    ckpt.set_defaults(fn=cmd_ckpt)

    cache = sub.add_parser("cache",
                           help="inspect/verify/collect a run-cache "
                                "directory (repro.cache)")
    cache.add_argument("action", choices=["stats", "gc", "verify"])
    cache.add_argument("directory", help="cache directory "
                                         "(the run's --cache-dir)")
    cache.set_defaults(fn=cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if (getattr(args, "command", None) == []
            and args.subcommand in ("run", "obs")):
        parser.error("%s: missing command" % args.subcommand)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
