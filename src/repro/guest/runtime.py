"""The guest-side runtime: what "libc" gives a simulated program.

Guest programs are generator functions taking one argument, a :class:`Sys`
instance, and using ``yield from`` on its helpers::

    def main(sys):
        fd = yield from sys.open("/etc/hostname")
        name = yield from sys.read(fd, 256)
        yield from sys.println("hello from " + name.decode())
        return 0

Helpers translate into the operations of :mod:`repro.kernel.ops`.  Note
that the *timing* helpers go through the vDSO by default, exactly like
glibc — which is why a naive tracer misses them (§5.3).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..kernel.errors import Errno, SyscallError
from ..kernel.ops import Compute, Instr, Syscall, VdsoCall
from ..kernel.types import (
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
    FUTEX_WAIT,
    FUTEX_WAKE,
    WNOHANG,
    WaitResult,
)


class Sys:
    """Per-thread guest runtime facade."""

    def __init__(self, thread):
        self.thread = thread

    # -- direct (no syscall) process state: this is just memory -----------

    @property
    def argv(self) -> List[str]:
        return self.thread.process.argv

    @property
    def env(self) -> Dict[str, str]:
        return self.thread.process.env

    @property
    def mem(self) -> Dict[str, Any]:
        """The process's shared memory (visible to all its threads)."""
        return self.thread.process.memory

    def getenv(self, name: str, default: str = "") -> str:
        return self.env.get(name, default)

    @property
    def address_of_main(self) -> int:
        """A code address, as ``&main`` would observe it (ASLR-dependent)."""
        return self.thread.process.aslr_base + 0x1040

    # -- raw operation helpers ------------------------------------------------

    def syscall(self, name: str, **args):
        result = yield Syscall(name, args)
        return result

    def instr(self, name: str):
        result = yield Instr(name)
        return result

    def compute(self, work: float):
        yield Compute(work)

    # -- files ---------------------------------------------------------------

    def open(self, path: str, flags: int = O_RDONLY, mode: int = 0o644):
        return (yield Syscall("open", {"path": path, "flags": flags, "mode": mode}))

    def close(self, fd: int):
        return (yield Syscall("close", {"fd": fd}))

    def read(self, fd: int, count: int):
        """One read syscall: may legitimately return fewer bytes."""
        return (yield Syscall("read", {"fd": fd, "count": count}))

    def write(self, fd: int, data) -> Generator:
        """One write syscall: may legitimately be partial on pipes."""
        if isinstance(data, str):
            data = data.encode()
        return (yield Syscall("write", {"fd": fd, "data": data}))

    def write_all(self, fd: int, data) -> Generator:
        """Loop until everything is written (userspace retry loop)."""
        if isinstance(data, str):
            data = data.encode()
        done = 0
        while done < len(data):
            n = yield Syscall("write", {"fd": fd, "data": data[done:]})
            done += n
        return done

    def read_exact(self, fd: int, count: int):
        """Loop until *count* bytes or EOF (userspace retry loop)."""
        chunks = []
        remaining = count
        while remaining > 0:
            data = yield Syscall("read", {"fd": fd, "count": remaining})
            if not data:
                break
            chunks.append(data)
            remaining -= len(data)
        return b"".join(chunks)

    def read_file(self, path: str, chunk: int = 1 << 16):
        fd = yield from self.open(path)
        parts = []
        while True:
            data = yield Syscall("read", {"fd": fd, "count": chunk})
            if not data:
                break
            parts.append(data)
        yield from self.close(fd)
        return b"".join(parts)

    def write_file(self, path: str, data, mode: int = 0o644):
        fd = yield from self.open(path, O_WRONLY | O_CREAT | O_TRUNC, mode)
        yield from self.write_all(fd, data)
        yield from self.close(fd)

    def stat(self, path: str):
        return (yield Syscall("stat", {"path": path}))

    def lstat(self, path: str):
        return (yield Syscall("lstat", {"path": path}))

    def fstat(self, fd: int):
        return (yield Syscall("fstat", {"fd": fd}))

    def access(self, path: str):
        try:
            yield Syscall("access", {"path": path})
            return True
        except SyscallError as err:
            if err.errno == Errno.ENOENT:
                return False
            raise

    def listdir(self, path: str):
        """Names in *path*, in raw getdents order (irreproducible!)."""
        fd = yield from self.open(path)
        dirents = yield Syscall("getdents", {"fd": fd})
        yield from self.close(fd)
        return [d.d_name for d in dirents]

    def mkfifo(self, path: str, mode: int = 0o644):
        return (yield Syscall("mkfifo", {"path": path, "mode": mode}))

    def mkdir(self, path: str, mode: int = 0o755):
        return (yield Syscall("mkdir", {"path": path, "mode": mode}))

    def mkdir_p(self, path: str):
        parts = [p for p in path.split("/") if p]
        prefix = "" if path.startswith("/") else "."
        for part in parts:
            prefix = prefix + "/" + part
            try:
                yield Syscall("mkdir", {"path": prefix})
            except SyscallError as err:
                if err.errno != Errno.EEXIST:
                    raise

    def unlink(self, path: str):
        return (yield Syscall("unlink", {"path": path}))

    def rename(self, old: str, new: str):
        return (yield Syscall("rename", {"old": old, "new": new}))

    def symlink(self, target: str, linkpath: str):
        return (yield Syscall("symlink", {"target": target, "linkpath": linkpath}))

    def readlink(self, path: str):
        return (yield Syscall("readlink", {"path": path}))

    def chmod(self, path: str, mode: int):
        return (yield Syscall("chmod", {"path": path, "mode": mode}))

    def chown(self, path: str, uid: int, gid: int):
        return (yield Syscall("chown", {"path": path, "uid": uid, "gid": gid}))

    def utime(self, path: str, times=None):
        return (yield Syscall("utime", {"path": path, "times": times}))

    def getcwd(self):
        return (yield Syscall("getcwd", {}))

    def chdir(self, path: str):
        return (yield Syscall("chdir", {"path": path}))

    def pipe(self):
        return (yield Syscall("pipe", {}))

    def dup2(self, oldfd: int, newfd: int):
        return (yield Syscall("dup2", {"oldfd": oldfd, "newfd": newfd}))

    # -- stdio -----------------------------------------------------------------

    def println(self, text: str):
        yield from self.write_all(1, text + "\n")

    def eprintln(self, text: str):
        yield from self.write_all(2, text + "\n")

    # -- identity ---------------------------------------------------------------

    def getpid(self):
        return (yield Syscall("getpid", {}))

    def getppid(self):
        return (yield Syscall("getppid", {}))

    def getuid(self):
        return (yield Syscall("getuid", {}))

    def uname(self):
        return (yield Syscall("uname", {}))

    def sysinfo(self):
        return (yield Syscall("sysinfo", {}))

    # -- time (vDSO fast path, like glibc) ----------------------------------------

    def time(self):
        return (yield VdsoCall("time", {}))

    def gettimeofday(self):
        return (yield VdsoCall("gettimeofday", {}))

    def clock_gettime(self, clock_id: int = 0):
        return (yield VdsoCall("clock_gettime", {"clock_id": clock_id}))

    def time_syscall(self):
        """The slow path: an actual time syscall (statically-linked style)."""
        return (yield Syscall("time", {}))

    def sleep(self, seconds: float):
        return (yield Syscall("nanosleep", {"seconds": seconds}))

    def rdtsc(self):
        return (yield Instr("rdtsc"))

    def read_vvar(self):
        """Read the raw vvar timing page directly (no call at all)."""
        from ..kernel.ops import VvarRead

        return (yield VvarRead())

    # -- randomness -----------------------------------------------------------------

    def getrandom(self, count: int):
        return (yield Syscall("getrandom", {"count": count}))

    def urandom(self, count: int):
        """Randomness the way most tools get it: by reading /dev/urandom."""
        fd = yield from self.open("/dev/urandom")
        data = yield from self.read_exact(fd, count)
        yield from self.close(fd)
        return data

    # -- processes ---------------------------------------------------------------------

    def spawn(self, path: str, argv: Optional[List[str]] = None,
              env: Optional[Dict[str, str]] = None, stdin: Optional[int] = None,
              stdout: Optional[int] = None, stderr: Optional[int] = None,
              close_fds: Optional[List[int]] = None):
        """fork+exec.  *close_fds* models O_CLOEXEC descriptors the child
        must not inherit (pipe write ends, most importantly)."""
        return (yield Syscall("spawn_process", {
            "path": path, "argv": argv, "env": env,
            "stdin": stdin, "stdout": stdout, "stderr": stderr,
            "close_fds": close_fds}))

    def waitpid(self, pid: int = -1, options: int = 0):
        return (yield Syscall("wait4", {"pid": pid, "options": options}))

    def run(self, path: str, argv: Optional[List[str]] = None,
            env: Optional[Dict[str, str]] = None, stdin: Optional[int] = None,
            stdout: Optional[int] = None, stderr: Optional[int] = None):
        """spawn + wait; returns the child's WaitResult."""
        pid = yield from self.spawn(path, argv, env, stdin, stdout, stderr)
        while True:
            res = yield from self.waitpid(pid)
            if res.pid == pid:
                return res

    def execve(self, path: str, argv: Optional[List[str]] = None,
               env: Optional[Dict[str, str]] = None):
        yield Syscall("execve", {"path": path, "argv": argv, "env": env})

    def exit(self, code: int = 0):
        yield Syscall("exit", {"code": code})

    def spawn_thread(self, func):
        """Start a sibling thread running generator-function *func*."""
        return (yield Syscall("spawn_thread", {"func": func}))

    def exit_thread(self):
        yield Syscall("exit_thread", {})

    def sched_yield(self):
        return (yield Syscall("sched_yield", {}))

    # -- signals ----------------------------------------------------------------------------

    def sigaction(self, signum: int, action):
        return (yield Syscall("sigaction", {"signum": signum, "action": action}))

    def kill(self, pid: int, signum: int):
        return (yield Syscall("kill", {"pid": pid, "signum": signum}))

    def alarm(self, seconds: float):
        return (yield Syscall("alarm", {"seconds": seconds}))

    def pause(self):
        return (yield Syscall("pause", {}))

    # -- futex locks -------------------------------------------------------------------------

    def futex_wait(self, addr, val: int):
        return (yield Syscall("futex", {"op": FUTEX_WAIT, "addr": addr, "val": val}))

    def futex_wake(self, addr):
        return (yield Syscall("futex", {"op": FUTEX_WAKE, "addr": addr}))

    def lock_acquire(self, key: str):
        """A glibc-style futex mutex acquire."""
        while True:
            if self.mem.get(key, 0) == 0:
                self.mem[key] = 1
                return
            try:
                yield from self.futex_wait(key, 1)
            except SyscallError as err:
                if err.errno != Errno.EAGAIN:
                    raise

    def lock_release(self, key: str):
        self.mem[key] = 0
        yield from self.futex_wake(key)

    def spin_until(self, key: str, value, spin_work: float = 1e-5):
        """Busy-wait (no blocking syscall!) until ``mem[key] == value``.

        This is the anti-pattern that breaks DetTrace's serialization
        (§5.9): under a deterministic scheduler the flag-setter never
        runs while we spin.
        """
        while self.mem.get(key) != value:
            yield Compute(spin_work)

    # -- sockets ----------------------------------------------------------------------------------
    # In-container rendezvous (AF_UNIX paths, loopback AF_INET) is served
    # by repro.kernel.sockets and is determinizable; external addresses
    # hit the fake network peer and are rejected inside DetTrace (§5.9).

    def socket(self, family: int = 2, type: int = 1):
        return (yield Syscall("socket", {"family": family, "type": type}))

    def download(self, url: str):
        """Fetch a URL; returns (body, headers).  Inside DetTrace only
        checksum-pinned URLs are permitted (§3's future-work model)."""
        return (yield Syscall("download", {"url": url}))

    def socketpair(self):
        """AF_UNIX IPC inside the container (determinizable, unlike
        network sockets)."""
        return (yield Syscall("socketpair", {}))

    def connect(self, fd: int, address: str = "example.com:80"):
        return (yield Syscall("connect", {"fd": fd, "address": address}))

    def bind(self, fd: int, address: str):
        return (yield Syscall("bind", {"fd": fd, "address": address}))

    def listen(self, fd: int, backlog: int = 128):
        return (yield Syscall("listen", {"fd": fd, "backlog": backlog}))

    def accept(self, fd: int):
        """Returns ``(connfd, peer_address)``; blocks until a client
        connects."""
        return (yield Syscall("accept", {"fd": fd}))

    def send(self, fd: int, data: bytes):
        return (yield Syscall("send", {"fd": fd, "data": data}))

    def recv(self, fd: int, count: int):
        return (yield Syscall("recv", {"fd": fd, "count": count}))

    def shutdown(self, fd: int, how: int = 2):
        return (yield Syscall("shutdown", {"fd": fd, "how": how}))

    def getsockname(self, fd: int):
        return (yield Syscall("getsockname", {"fd": fd}))

    def ioctl(self, fd: int, request: str):
        return (yield Syscall("ioctl", {"fd": fd, "request": request}))
