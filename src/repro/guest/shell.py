"""A small POSIX-ish shell, as a guest program.

Real Debian builds are driven by shell scripts (`debian/rules`,
configure scripts, maintainer hooks), and the paper's whole point is
that *arbitrary* such programs become reproducible.  This interpreter
executes a useful subset of shell against the simulated kernel:

* simple commands resolved via ``$PATH`` and run with ``spawn``/``wait``;
* builtins: ``echo``, ``cd``, ``exit``, ``export``, ``true``/``false``,
  ``test``/``[`` (-e/-f/-d/-n/-z and string equality), ``wait``, ``:``;
* variable assignment and ``$VAR`` / ``${VAR}`` expansion, plus ``$?``,
  ``$$`` and ``$(cmd)`` command substitution (stdout-captured);
* redirections ``> file``, ``>> file``, ``< file``;
* pipelines ``a | b`` (one pipe stage, left-to-right);
* operators ``&&``, ``||``, ``;`` and trailing ``&`` (background + wait);
* ``if ...; then ...; else ...; fi`` and ``for x in ...; do ...; done``
  on a single line or across lines;
* ``#`` comments and blank lines.

A script is registered as a binary whose content the shell reads from
the filesystem — so the *script bytes are an input* to the computation,
exactly as the container abstraction demands.
"""

from __future__ import annotations

import shlex
from typing import Dict, Generator, List, Optional, Tuple

from ..kernel.errors import Errno, SyscallError
from ..kernel.types import O_APPEND, O_CREAT, O_TRUNC, O_WRONLY

#: Exit statuses mirroring real sh.
EXIT_OK = 0
EXIT_FAIL = 1
EXIT_NOT_FOUND = 127


class ShellError(Exception):
    """A syntax error; the script exits with status 2, like real sh."""


def tokenize(line: str) -> List[str]:
    lex = shlex.shlex(line, posix=True, punctuation_chars="|&;<>")
    lex.whitespace_split = True
    try:
        return list(lex)
    except ValueError as err:
        raise ShellError("syntax error: %s" % err)


def split_statements(tokens: List[str]) -> List[Tuple[List[str], str]]:
    """Split on ; && || — returns (command tokens, joining operator)."""
    out: List[Tuple[List[str], str]] = []
    cur: List[str] = []
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok in (";", "&&", "||"):
            out.append((cur, tok))
            cur = []
        elif tok == "&":
            cur.append("&")
        else:
            cur.append(tok)
        i += 1
    if cur:
        out.append((cur, ";"))
    return out


class Shell:
    """One shell instance bound to a guest Sys."""

    def __init__(self, sys):
        self.sys = sys
        self.variables: Dict[str, str] = {}
        self.last_status = 0
        self._background: List[int] = []

    # -- expansion -----------------------------------------------------------

    def expand(self, token: str) -> Generator:
        """Expand $VAR, ${VAR}, $?, $$ and $(cmd) in *token*."""
        out = []
        i = 0
        while i < len(token):
            ch = token[i]
            if ch != "$":
                out.append(ch)
                i += 1
                continue
            rest = token[i + 1:]
            if rest.startswith("?"):
                out.append(str(self.last_status))
                i += 2
            elif rest.startswith("$"):
                pid = yield from self.sys.getpid()
                out.append(str(pid))
                i += 2
            elif rest.startswith("("):
                depth, j = 1, i + 2
                while j < len(token) and depth:
                    depth += {"(": 1, ")": -1}.get(token[j], 0)
                    j += 1
                inner = token[i + 2:j - 1]
                captured = yield from self.capture(inner)
                out.append(captured.strip())
                i = j
            elif rest.startswith("{"):
                j = token.index("}", i)
                out.append(self.lookup(token[i + 2:j]))
                i = j + 1
            else:
                j = i + 1
                while j < len(token) and (token[j].isalnum() or token[j] == "_"):
                    j += 1
                out.append(self.lookup(token[i + 1:j]))
                i = j
        return "".join(out)

    def lookup(self, name: str) -> str:
        if name in self.variables:
            return self.variables[name]
        return self.sys.getenv(name, "")

    # -- execution ----------------------------------------------------------------

    def capture(self, command_line: str) -> Generator:
        """$(...) — run a command line, capture its stdout."""
        rfd, wfd = yield from self.sys.pipe()
        status = yield from self.run_line(command_line, stdout=wfd)
        yield from self.sys.close(wfd)
        data = yield from self.sys.read_exact(rfd, 1 << 20)
        yield from self.sys.close(rfd)
        self.last_status = status
        return data.decode(errors="replace")

    def run_script(self, text: str) -> Generator:
        """Execute a whole script; returns the final status."""
        lines = self._join_blocks(text.splitlines())
        for line in lines:
            status = yield from self.run_line(line)
            if status is _EXITED:
                return self.last_status
        return self.last_status

    def _join_blocks(self, lines: List[str]) -> List[str]:
        """Fold multi-line if/for blocks into single logical lines."""
        out: List[str] = []
        depth = 0
        buffer: List[str] = []
        for raw in lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            first = line.split()[0] if line.split() else ""
            depth += {"if": 1, "for": 1}.get(first, 0)
            if depth:
                buffer.append(line if line.endswith(";") or line.endswith("then")
                              or line.endswith("do") or line in ("fi", "done",
                                                                 "else")
                              else line + ";")
                closers = line.split()
                depth -= sum(1 for w in closers if w in ("fi", "done"))
                if depth == 0:
                    out.append(" ".join(buffer))
                    buffer = []
            else:
                out.append(line)
        if buffer:
            out.append(" ".join(buffer))
        return out

    def run_line(self, line: str, stdout: Optional[int] = None) -> Generator:
        line = line.strip()
        if not line or line.startswith("#"):
            return self.last_status
        tokens = tokenize(line)
        if tokens and tokens[0] == "if":
            return (yield from self._run_if(tokens, stdout))
        if tokens and tokens[0] == "for":
            return (yield from self._run_for(tokens, stdout))
        for command, op in split_statements(tokens):
            if not command:
                continue
            status = yield from self._run_pipeline(command, stdout)
            if status is _EXITED:
                return _EXITED
            self.last_status = status
            if op == "&&" and status != 0:
                break
            if op == "||" and status == 0:
                break
        return self.last_status

    # -- control flow --------------------------------------------------------------

    def _run_if(self, tokens, stdout) -> Generator:
        """``if COND; then BODY; [else BODY2;] fi`` (non-nested)."""
        try:
            then_at = tokens.index("then")
            fi_at = len(tokens) - 1 - tokens[::-1].index("fi")
        except ValueError:
            raise ShellError("malformed if")
        cond = [t for t in tokens[1:then_at] if t != ";"]
        middle = tokens[then_at + 1:fi_at]
        if "else" in middle:
            else_at = middle.index("else")
            then_body, else_body = middle[:else_at], middle[else_at + 1:]
        else:
            then_body, else_body = middle, []
        status = yield from self._run_pipeline(cond, stdout)
        body = then_body if status == 0 else else_body
        body = [t for t in body]
        while body and body[-1] == ";":
            body = body[:-1]
        if body:
            return (yield from self.run_line(" ".join(body), stdout))
        return 0

    def _run_for(self, tokens, stdout) -> Generator:
        # for NAME in a b c ; do BODY ; done
        if len(tokens) < 4 or tokens[2] != "in":
            raise ShellError("bad for syntax")
        name = tokens[1]
        items: List[str] = []
        i = 3
        while i < len(tokens) and tokens[i] not in (";", "do"):
            items.append((yield from self.expand(tokens[i])))
            i += 1
        while i < len(tokens) and tokens[i] in (";", "do"):
            i += 1
        body = tokens[i:]
        while body and body[-1] in ("done", ";"):
            body = body[:-1]
        for item in items:
            self.variables[name] = item
            status = yield from self.run_line(" ".join(body), stdout)
            if status is _EXITED:
                return _EXITED
        return self.last_status

    # -- pipelines and simple commands ------------------------------------------------

    def _run_pipeline(self, tokens: List[str], stdout: Optional[int]) -> Generator:
        stages: List[List[str]] = [[]]
        for tok in tokens:
            if tok == "|":
                stages.append([])
            else:
                stages[-1].append(tok)
        if len(stages) == 1:
            return (yield from self._run_simple(stages[0], stdin=None,
                                                stdout=stdout))
        if len(stages) != 2:
            raise ShellError("only single-pipe pipelines supported")
        rfd, wfd = yield from self.sys.pipe()
        left = yield from self._run_simple(stages[0], stdin=None, stdout=wfd,
                                           background=True)
        yield from self.sys.close(wfd)
        status = yield from self._run_simple(stages[1], stdin=rfd,
                                             stdout=stdout)
        yield from self.sys.close(rfd)
        if left is not None:
            yield from self.sys.waitpid(left)
        return status

    def _run_simple(self, tokens: List[str], stdin, stdout,
                    background: bool = False) -> Generator:
        background_flag = False
        if tokens and tokens[-1] == "&":
            tokens = tokens[:-1]
            background_flag = True
        words: List[str] = []
        redirections: List[Tuple[str, str]] = []
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if tok in (">", ">>", "<"):
                if i + 1 >= len(tokens):
                    raise ShellError("redirection without target")
                target = yield from self.expand(tokens[i + 1])
                redirections.append((tok, target))
                i += 2
                continue
            words.append((yield from self.expand(tok)))
            i += 1
        if not words:
            return 0
        # variable assignment: NAME=value
        if "=" in words[0] and not words[0].startswith("="):
            name, _, value = words[0].partition("=")
            if name.isidentifier():
                self.variables[name] = value
                self.sys.env[name] = value
                return 0
        name, args = words[0], words[1:]

        if name in ("test", "["):
            return (yield from self._builtin_test(args))
        if name == ":":
            return 0
        if name.isidentifier():
            builtin = getattr(self, "_builtin_" + name, None)
            if builtin is not None:
                return (yield from builtin(args, stdout, redirections))

        # external command via $PATH
        path = yield from self._resolve(name)
        if path is None:
            yield from self.sys.eprintln("sh: %s: command not found" % name)
            return EXIT_NOT_FOUND
        child_stdout = stdout
        close_after: List[int] = []
        for op, target in redirections:
            if op in (">", ">>"):
                flags = O_WRONLY | O_CREAT | (O_APPEND if op == ">>" else O_TRUNC)
                fd = yield from self.sys.open(target, flags)
                child_stdout = fd
                close_after.append(fd)
            elif op == "<":
                fd = yield from self.sys.open(target)
                stdin = fd
                close_after.append(fd)
        pid = yield from self.sys.spawn(path, argv=[name] + args,
                                        stdin=stdin, stdout=child_stdout)
        for fd in close_after:
            yield from self.sys.close(fd)
        if background or background_flag:
            self._background.append(pid)
            return pid if background else 0
        res = yield from self.sys.waitpid(pid)
        return res.exit_code if res.exit_code is not None else 128

    def _resolve(self, name: str) -> Generator:
        if "/" in name:
            present = yield from self.sys.access(name)
            return name if present else None
        for prefix in self.lookup("PATH").split(":"):
            candidate = prefix.rstrip("/") + "/" + name
            if (yield from self.sys.access(candidate)):
                return candidate
        return None

    # -- builtins --------------------------------------------------------------------

    def _write_out(self, text: str, stdout, redirections) -> Generator:
        for op, target in redirections:
            if op == ">":
                yield from self.sys.write_file(target, text)
                return
            if op == ">>":
                fd = yield from self.sys.open(target,
                                              O_WRONLY | O_CREAT | O_APPEND)
                yield from self.sys.write_all(fd, text)
                yield from self.sys.close(fd)
                return
        yield from self.sys.write_all(stdout if stdout is not None else 1, text)

    def _builtin_echo(self, args, stdout, redirections) -> Generator:
        yield from self._write_out(" ".join(args) + "\n", stdout, redirections)
        return 0

    def _builtin_cd(self, args, stdout, redirections) -> Generator:
        try:
            yield from self.sys.chdir(args[0] if args else self.lookup("HOME"))
            return 0
        except SyscallError:
            yield from self.sys.eprintln("sh: cd: %s: no such directory"
                                         % (args[0] if args else "~"))
            return EXIT_FAIL

    def _builtin_exit(self, args, stdout, redirections) -> Generator:
        self.last_status = int(args[0]) if args else self.last_status
        yield from self.sys.compute(0)
        return _EXITED

    def _builtin_export(self, args, stdout, redirections) -> Generator:
        for arg in args:
            name, _, value = arg.partition("=")
            if value:
                self.variables[name] = value
                self.sys.env[name] = value
            elif name in self.variables:
                self.sys.env[name] = self.variables[name]
        yield from self.sys.compute(0)
        return 0

    def _builtin_true(self, args, stdout, redirections) -> Generator:
        yield from self.sys.compute(0)
        return 0

    def _builtin_false(self, args, stdout, redirections) -> Generator:
        yield from self.sys.compute(0)
        return 1

    def _builtin_wait(self, args, stdout, redirections) -> Generator:
        status = 0
        for pid in self._background:
            res = yield from self.sys.waitpid(pid)
            status = res.exit_code or 0
        self._background = []
        return status

    def _builtin_test(self, args) -> Generator:
        args = [a for a in args if a != "]"]
        yield from self.sys.compute(0)
        if not args:
            return 1
        if args[0] == "-n":
            return 0 if len(args) > 1 and args[1] else 1
        if args[0] == "-z":
            return 0 if len(args) < 2 or not args[1] else 1
        if args[0] in ("-e", "-f"):
            present = yield from self.sys.access(args[1])
            return 0 if present else 1
        if args[0] == "-d":
            try:
                st = yield from self.sys.stat(args[1])
                return 0 if st.is_dir() else 1
            except SyscallError:
                return 1
        if len(args) == 3 and args[1] == "=":
            return 0 if args[0] == args[2] else 1
        if len(args) == 3 and args[1] == "!=":
            return 0 if args[0] != args[2] else 1
        return 1


#: Sentinel: the script executed `exit`.
_EXITED = object()


def sh_main(sys):
    """`/bin/sh script.sh` — execute a script file from the filesystem."""
    if len(sys.argv) < 2:
        yield from sys.eprintln("sh: usage: sh <script> [args]")
        return 2
    script_path = sys.argv[1]
    try:
        text = (yield from sys.read_file(script_path)).decode()
    except SyscallError:
        yield from sys.eprintln("sh: %s: not found" % script_path)
        return EXIT_NOT_FOUND
    shell = Shell(sys)
    for i, arg in enumerate(sys.argv[2:], start=1):
        shell.variables[str(i)] = arg
    try:
        status = yield from shell.run_script(text)
    except ShellError as err:
        yield from sys.eprintln("sh: %s" % err)
        return 2
    return status


def sh_command(script_text: str):
    """A binary factory that runs *script_text* directly (`sh -c` style)."""

    def main(sys):
        shell = Shell(sys)
        try:
            status = yield from shell.run_script(script_text)
        except ShellError as err:
            yield from sys.eprintln("sh: %s" % err)
            return 2
        return status

    return main
