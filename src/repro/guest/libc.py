"""Higher-level libc-like helpers shared by guest programs.

These reproduce the specific libc behaviours the paper calls out as
irreproducibility vectors:

* temporary-file names derived from ``rdtsc`` and the PID (used by gcc;
  §7.4 "rdtsc instructions are used by ... libc to generate temporary
  file names for gcc");
* ``mkstemp`` finding the vDSO directly via ``getauxval`` and calling the
  timing function behind ptrace's back (§5.3);
* locale/timezone-dependent date formatting (reprotest varies TZ and
  locale).
"""

from __future__ import annotations

import time as _time
from typing import Generator

from ..kernel.ops import Instr, Syscall, VdsoCall
from ..kernel.types import O_CREAT, O_EXCL, O_WRONLY

#: Timezone database: name -> offset seconds east of UTC.  (A real zoneinfo
#: is overkill; builds only embed the offset and abbreviation.)
TZ_OFFSETS = {
    "UTC": 0,
    "America/New_York": -5 * 3600,
    "America/Los_Angeles": -8 * 3600,
    "Europe/Berlin": 1 * 3600,
    "Europe/London": 0,
    "Asia/Tokyo": 9 * 3600,
}

MONTHS = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
          "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]


def tz_offset_for(tz_name: str) -> int:
    return TZ_OFFSETS.get(tz_name, 0)


def format_date(epoch: float, tz_name: str = "UTC", locale: str = "C") -> str:
    """A ctime-style date string, localized just enough to vary."""
    t = _time.gmtime(int(epoch) + tz_offset_for(tz_name))
    month = MONTHS[t.tm_mon - 1]
    if locale.startswith(("de", "fr")):
        # European order: day month year.
        return "%02d %s %04d %02d:%02d:%02d %s" % (
            t.tm_mday, month, t.tm_year, t.tm_hour, t.tm_min, t.tm_sec, tz_name)
    return "%s %2d %02d:%02d:%02d %04d %s" % (
        month, t.tm_mday, t.tm_hour, t.tm_min, t.tm_sec, t.tm_year, tz_name)


def tmpnam(sys, prefix: str = "/tmp/cc") -> Generator:
    """Generate a 'unique' temp file name from rdtsc + pid (gcc style)."""
    tsc = yield Instr("rdtsc")
    pid = yield Syscall("getpid", {})
    return "%s%d_%x" % (prefix, pid, tsc & 0xFFFFFF)


def mkstemp(sys, template_prefix: str = "/tmp/tmp") -> Generator:
    """Create a unique temp file, timing via the raw vDSO (glibc style).

    glibc's mkstemp locates the vDSO through getauxval and calls it
    directly, which is why LD_PRELOAD interception is insufficient and
    DetTrace must rewrite the vDSO itself (§5.3).
    """
    yield Syscall("getauxval", {"key": "AT_SYSINFO_EHDR"})
    attempt = 0
    while True:
        now = yield VdsoCall("gettimeofday", {})
        suffix = "%06d%02d" % (int(now * 1e6) % 1_000_000, attempt)
        path = template_prefix + suffix
        try:
            fd = yield Syscall(
                "open", {"path": path, "flags": O_WRONLY | O_CREAT | O_EXCL,
                         "mode": 0o600})
            return fd, path
        except Exception:
            attempt += 1
            if attempt > 16:
                raise


def sock_stream_server(sys, address: str, backlog: int = 8) -> Generator:
    """socket/bind/listen boilerplate: returns the listening fd.

    *address* is an AF_UNIX path (``/run/app.sock``) or a loopback
    AF_INET endpoint (``127.0.0.1:8080``; port 0 draws a deterministic
    ephemeral port — read it back with ``sys.getsockname``)."""
    family = 1 if address.startswith("/") else 2
    fd = yield from sys.socket(family=family)
    yield from sys.bind(fd, address)
    yield from sys.listen(fd, backlog)
    return fd


def sock_stream_client(sys, address: str) -> Generator:
    """socket/connect boilerplate: returns the connected fd."""
    family = 1 if address.startswith("/") else 2
    fd = yield from sys.socket(family=family)
    yield from sys.connect(fd, address)
    return fd


def send_all(sys, fd: int, data: bytes) -> Generator:
    """Loop send until every byte is queued (partial sends are real)."""
    sent = 0
    while sent < len(data):
        sent += yield from sys.send(fd, data[sent:])
    return sent


def recv_exact(sys, fd: int, count: int) -> Generator:
    """Loop recv until *count* bytes or EOF; returns what arrived."""
    acc = b""
    while len(acc) < count:
        chunk = yield from sys.recv(fd, count - len(acc))
        if not chunk:
            break
        acc += chunk
    return acc


def gnu_hash(data: bytes) -> int:
    """The classic djb2-style hash used for stable symbol buckets."""
    h = 5381
    for b in data:
        h = ((h * 33) + b) & 0xFFFFFFFF
    return h
