"""Guest program model: programs are generators driven by the kernel."""

from .coreutils import COREUTILS_PATHS, install_coreutils
from .program import BinaryRegistry, with_args
from .runtime import Sys
from .shell import Shell, ShellError, sh_command, sh_main

__all__ = [
    "BinaryRegistry",
    "COREUTILS_PATHS",
    "Shell",
    "ShellError",
    "Sys",
    "install_coreutils",
    "sh_command",
    "sh_main",
    "with_args",
]
