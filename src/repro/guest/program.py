"""Guest program plumbing: factories and a registry helper.

A *program factory* is any callable ``factory(sys) -> generator``; the
kernel's binary registry maps executable paths to factories.  This module
provides small adapters for writing programs naturally.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, Generator


ProgramFactory = Callable[..., Generator]


def with_args(fn: Callable, *args, **kwargs) -> ProgramFactory:
    """Bind extra arguments: ``with_args(main, cfg)`` -> ``factory(sys)``."""

    @functools.wraps(fn)
    def factory(sys):
        return fn(sys, *args, **kwargs)

    return factory


class BinaryRegistry:
    """A convenience bundle of path -> factory mappings.

    Workload image builders accumulate entries here and then install them
    into a freshly-booted kernel with :meth:`install`.
    """

    def __init__(self):
        self._programs: Dict[str, ProgramFactory] = {}

    def add(self, path: str, factory: ProgramFactory) -> None:
        self._programs[path] = factory

    def program(self, path: str):
        """Decorator form: ``@registry.program('/usr/bin/gcc')``."""

        def deco(fn: ProgramFactory) -> ProgramFactory:
            self.add(path, fn)
            return fn

        return deco

    def install(self, kernel) -> None:
        for path, factory in self._programs.items():
            kernel.register_binary(path, factory)

    def paths(self):
        return sorted(self._programs)
