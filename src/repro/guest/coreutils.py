"""Busybox-style core utilities, as guest programs.

These are the stock tools the paper's artifact appendix demonstrates
(`dettrace date`, `dettrace ls -ahl`, `dettrace stat foo.txt`): ordinary
programs whose output is riddled with irreproducible values natively,
and becomes deterministic inside the container with no changes.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from ..kernel.errors import SyscallError
from .libc import format_date

#: Where the toolbox gets installed inside an image.
COREUTILS_PATHS = {
    "date": "/bin/date",
    "ls": "/bin/ls",
    "stat": "/bin/stat",
    "cat": "/bin/cat",
    "env": "/bin/env",
    "uname": "/bin/uname",
    "sha256sum": "/bin/sha256sum",
    "mktemp": "/bin/mktemp",
    "head": "/bin/head",
    "wc": "/bin/wc",
    "cp": "/bin/cp",
    "mkdir": "/bin/mkdir",
    "rm": "/bin/rm",
    "touch": "/bin/touch",
    "true": "/bin/true",
    "false": "/bin/false",
    "hostname": "/bin/hostname",
    "nproc": "/bin/nproc",
    "grep": "/bin/grep",
    "sort": "/bin/sort",
    "diff": "/bin/diff",
    "seq": "/bin/seq",
    "sleep": "/bin/sleep",
    "ln": "/bin/ln",
    "find": "/bin/find",
    "readlink": "/bin/readlink",
}


def date_main(sys):
    """`date`: the artifact's flagship demo (prints Aug 8 1993 inside)."""
    t = yield from sys.time()
    yield from sys.println(format_date(t, sys.getenv("TZ", "UTC"),
                                       sys.getenv("LANG", "C")))
    return 0


def ls_main(sys):
    """`ls [-l] [dir]`: names in readdir order; -l adds metadata."""
    args = [a for a in sys.argv[1:] if not a.startswith("-")]
    long_format = any("l" in a for a in sys.argv[1:] if a.startswith("-"))
    path = args[0] if args else "."
    try:
        names = yield from sys.listdir(path)
    except SyscallError as err:
        yield from sys.eprintln("ls: %s: %s" % (path, err))
        return 1
    for name in names:
        if long_format:
            st = yield from sys.stat(path.rstrip("/") + "/" + name)
            date = format_date(st.st_mtime, sys.getenv("TZ", "UTC"))
            yield from sys.println("%6o %4d %4d %8d %s %s" % (
                st.st_mode, st.st_uid, st.st_gid, st.st_size, date, name))
        else:
            yield from sys.println(name)
    return 0


def stat_main(sys):
    """`stat file`: every line a potential irreproducibility leak."""
    if len(sys.argv) < 2:
        yield from sys.eprintln("stat: missing operand")
        return 1
    try:
        st = yield from sys.stat(sys.argv[1])
    except SyscallError as err:
        yield from sys.eprintln("stat: %s" % err)
        return 1
    yield from sys.println("  File: %s" % sys.argv[1])
    yield from sys.println("  Size: %d\tBlocks: %d\tIO Block: %d" % (
        st.st_size, st.st_blocks, st.st_blksize))
    yield from sys.println("Device: %xh\tInode: %d\tLinks: %d" % (
        st.st_dev, st.st_ino, st.st_nlink))
    yield from sys.println("Access: (%04o)  Uid: %d  Gid: %d" % (
        st.st_mode & 0o7777, st.st_uid, st.st_gid))
    yield from sys.println("Access: %s" % format_date(st.st_atime))
    yield from sys.println("Modify: %s" % format_date(st.st_mtime))
    yield from sys.println("Change: %s" % format_date(st.st_ctime))
    return 0


def cat_main(sys):
    if len(sys.argv) < 2:
        data = yield from sys.read_exact(0, 1 << 20)
        yield from sys.write_all(1, data)
        return 0
    for path in sys.argv[1:]:
        try:
            data = yield from sys.read_file(path)
        except SyscallError as err:
            yield from sys.eprintln("cat: %s" % err)
            return 1
        yield from sys.write_all(1, data)
    return 0


def env_main(sys):
    for key in sorted(sys.env):
        yield from sys.println("%s=%s" % (key, sys.env[key]))
    return 0


def uname_main(sys):
    un = yield from sys.uname()
    if "-a" in sys.argv:
        yield from sys.println(" ".join(un.as_tuple()))
    else:
        yield from sys.println(un.sysname)
    return 0


def sha256sum_main(sys):
    """The hashdeep-style verifier used all over the evaluation."""
    status = 0
    for path in sys.argv[1:]:
        try:
            data = yield from sys.read_file(path)
        except SyscallError:
            yield from sys.eprintln("sha256sum: %s: unreadable" % path)
            status = 1
            continue
        digest = hashlib.sha256(data).hexdigest()
        yield from sys.println("%s  %s" % (digest, path))
    return status


def mktemp_main(sys):
    """`mktemp`: glibc-style unique names via the raw vDSO clock (§5.3)."""
    from .libc import mkstemp

    fd, path = yield from mkstemp(sys, template_prefix="/tmp/tmp.")
    yield from sys.close(fd)
    yield from sys.println(path)
    return 0


def head_main(sys):
    count = 10
    paths = []
    args = iter(sys.argv[1:])
    for arg in args:
        if arg == "-n":
            count = int(next(args))
        else:
            paths.append(arg)
    if paths:
        data = yield from sys.read_file(paths[0])
    else:
        data = yield from sys.read_exact(0, 1 << 20)
    lines = data.splitlines(keepends=True)[:count]
    yield from sys.write_all(1, b"".join(lines))
    return 0


def wc_main(sys):
    if len(sys.argv) > 1:
        data = yield from sys.read_file(sys.argv[1])
    else:
        data = yield from sys.read_exact(0, 1 << 20)
    yield from sys.println("%d %d %d" % (
        data.count(b"\n"), len(data.split()), len(data)))
    return 0


def cp_main(sys):
    if len(sys.argv) < 3:
        yield from sys.eprintln("cp: usage: cp SRC DST")
        return 1
    data = yield from sys.read_file(sys.argv[1])
    yield from sys.write_file(sys.argv[2], data)
    return 0


def mkdir_main(sys):
    for path in sys.argv[1:]:
        if path == "-p":
            continue
        yield from sys.mkdir_p(path)
    return 0


def rm_main(sys):
    status = 0
    for path in sys.argv[1:]:
        if path.startswith("-"):
            continue
        try:
            yield from sys.unlink(path)
        except SyscallError:
            status = 1
    return status


def touch_main(sys):
    for path in sys.argv[1:]:
        present = yield from sys.access(path)
        if present:
            yield from sys.utime(path)
        else:
            yield from sys.write_file(path, b"")
    return 0


def true_main(sys):
    yield from sys.compute(0)
    return 0


def false_main(sys):
    yield from sys.compute(0)
    return 1


def hostname_main(sys):
    un = yield from sys.uname()
    yield from sys.println(un.nodename)
    return 0


def grep_main(sys):
    """`grep PATTERN [file]` (fixed-string match)."""
    if len(sys.argv) < 2:
        yield from sys.eprintln("grep: missing pattern")
        return 2
    pattern = sys.argv[1].encode()
    if len(sys.argv) > 2:
        data = yield from sys.read_file(sys.argv[2])
    else:
        data = yield from sys.read_exact(0, 1 << 20)
    hits = [line for line in data.splitlines(keepends=True) if pattern in line]
    yield from sys.write_all(1, b"".join(hits))
    return 0 if hits else 1


def sort_main(sys):
    if len(sys.argv) > 1:
        data = yield from sys.read_file(sys.argv[1])
    else:
        data = yield from sys.read_exact(0, 1 << 20)
    lines = sorted(data.splitlines(keepends=False))
    yield from sys.write_all(1, b"\n".join(lines) + (b"\n" if lines else b""))
    return 0


def diff_main(sys):
    if len(sys.argv) < 3:
        yield from sys.eprintln("diff: usage: diff A B")
        return 2
    a = yield from sys.read_file(sys.argv[1])
    b = yield from sys.read_file(sys.argv[2])
    if a == b:
        return 0
    a_lines = a.splitlines()
    b_lines = b.splitlines()
    for i in range(max(len(a_lines), len(b_lines))):
        left = a_lines[i] if i < len(a_lines) else b""
        right = b_lines[i] if i < len(b_lines) else b""
        if left != right:
            yield from sys.write_all(1, b"%dc%d\n< %s\n> %s\n"
                                     % (i + 1, i + 1, left, right))
    return 1


def seq_main(sys):
    if len(sys.argv) == 2:
        first, last = 1, int(sys.argv[1])
    elif len(sys.argv) >= 3:
        first, last = int(sys.argv[1]), int(sys.argv[2])
    else:
        yield from sys.eprintln("seq: usage: seq [first] last")
        return 2
    out = b"".join(b"%d\n" % i for i in range(first, last + 1))
    yield from sys.write_all(1, out)
    return 0


def sleep_main(sys):
    seconds = float(sys.argv[1]) if len(sys.argv) > 1 else 0.0
    yield from sys.sleep(seconds)
    return 0


def ln_main(sys):
    args = [a for a in sys.argv[1:] if not a.startswith("-")]
    symbolic = "-s" in sys.argv
    if len(args) < 2:
        yield from sys.eprintln("ln: usage: ln [-s] TARGET LINK")
        return 1
    if symbolic:
        yield from sys.symlink(args[0], args[1])
    else:
        yield from sys.syscall("link", target=args[0], linkpath=args[1])
    return 0


def find_main(sys):
    """`find [dir]`: recursive listing, one path per line."""
    start = sys.argv[1] if len(sys.argv) > 1 else "."

    def walk(path):
        yield from sys.write_all(1, path.encode() + b"\n")
        try:
            st = yield from sys.stat(path)
        except SyscallError:
            return
        if st.is_dir():
            names = yield from sys.listdir(path)
            for name in sorted(names):
                yield from walk(path.rstrip("/") + "/" + name)

    yield from walk(start)
    return 0


def readlink_main(sys):
    if len(sys.argv) < 2:
        return 1
    target = yield from sys.readlink(sys.argv[1])
    yield from sys.println(target)
    return 0


def nproc_main(sys):
    si = yield from sys.sysinfo()
    yield from sys.println(str(si.nprocs))
    return 0


_MAINS = {
    "date": date_main, "ls": ls_main, "stat": stat_main, "cat": cat_main,
    "env": env_main, "uname": uname_main, "sha256sum": sha256sum_main,
    "mktemp": mktemp_main, "head": head_main, "wc": wc_main, "cp": cp_main,
    "mkdir": mkdir_main, "rm": rm_main, "touch": touch_main,
    "true": true_main, "false": false_main, "hostname": hostname_main,
    "nproc": nproc_main, "grep": grep_main, "sort": sort_main,
    "diff": diff_main, "seq": seq_main, "sleep": sleep_main,
    "ln": ln_main, "find": find_main, "readlink": readlink_main,
}


def install_coreutils(image) -> Dict[str, str]:
    """Add the whole toolbox (and /bin/sh) to an image; returns paths."""
    from .shell import sh_main

    for name, path in COREUTILS_PATHS.items():
        image.add_binary(path, _MAINS[name])
    image.add_binary("/bin/sh", sh_main)
    return dict(COREUTILS_PATHS, sh="/bin/sh")
