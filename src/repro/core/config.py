"""DetTrace container configuration.

Every determinization mechanism from §5 of the paper has a toggle here so
that ablation benchmarks can demonstrate that each one is load-bearing
(turn one off and reproducibility breaks for the workloads that exercise
it).  The defaults reproduce the full DetTrace behaviour.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Optional

from ..faults.plan import FaultPlan
from ..kernel.kernel import DEFAULT_MAX_EVENTS
from .logical_time import DETTRACE_EPOCH

#: The environment a DetTrace container presents regardless of the host's
#: login environment (reprotest varies env vars; the container pins them).
CANONICAL_ENV: Dict[str, str] = {
    "PATH": "/usr/local/bin:/usr/bin:/bin",
    "HOME": "/root",
    "USER": "root",
    "SHELL": "/bin/sh",
    "LANG": "C",
    "TZ": "UTC",
}

#: Fixed ASLR base inside the container.
FIXED_ASLR_BASE = 0x5555_5555_0000


@dataclasses.dataclass(frozen=True)
class CheckpointConfig:
    """Crash-consistent checkpointing (repro.ckpt).

    Snapshots are taken at virtual-time barriers — between kernel
    events — every ``every`` event ticks (0 = only on request, e.g.
    SIGTERM) and journalled atomically under ``directory``.  ``keep``
    bounds how many valid snapshots survive pruning.

    ``full_every`` controls the incremental-checkpoint cadence: one
    self-contained full snapshot every N snapshots, dirty-tracked delta
    records in between (1 = every snapshot full, the legacy layout).
    It never affects guest execution — only journal layout — and is
    deliberately excluded from the config fingerprint so a resumed run
    may use a different cadence than the crashed one.
    """

    directory: str
    every: int = 0
    keep: int = 3
    full_every: int = 4


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Content-addressed run memoization (repro.cache).

    ``directory`` is the cache root (``keys/`` + ``objects/`` CAS);
    ``mode`` is the consult/store policy:

    * ``"off"``    — never consult or store (as if no cache were set).
    * ``"read"``   — consult only; never writes (shared read-only cache).
    * ``"write"``  — consult, and store clean ``ok`` runs on miss
      (the default for ``--cache-dir``).
    * ``"verify"`` — always execute; byte-compare against the entry and
      report any mismatch as a divergence; store when absent.

    Like ``checkpoint``, this is operational — it never changes what a
    run computes, only whether it executes — so it is excluded from the
    config fingerprint (and hence from run keys: a cached entry is
    reachable regardless of the cache policy that stored it).
    """

    directory: str
    mode: str = "write"


@dataclasses.dataclass
class ContainerConfig:
    """Knobs for one DetTrace container."""

    #: Seed for the LFSR PRNG behind getrandom//dev/urandom (§5.2).
    prng_seed: int = 0
    #: The epoch logical time starts from (§5.3).
    epoch: int = DETTRACE_EPOCH
    #: Where the working tree is bind-mounted inside the container.
    working_dir: str = "/build"
    #: Virtual-time budget for the whole run (the paper's 2h build cap).
    timeout: float = 7200.0
    #: Compute-work seconds without a syscall before a thread is declared
    #: busy-waiting (§5.9).  Must be below the container timeout so spins
    #: surface as the reproducible busy-wait error, not a timeout.
    busy_wait_budget: Optional[float] = 0.3

    # -- §5 mechanisms, individually ablatable -------------------------------

    #: Report logical time instead of wall time (§5.3).
    virtualize_time: bool = True
    #: Rewrite each process's vDSO so timing library calls become real,
    #: interceptable syscalls (§5.3).
    patch_vdso: bool = True
    #: Replace /dev/random and /dev/urandom with PRNG pipes; serve
    #: getrandom from the PRNG (§5.2).
    deterministic_randomness: bool = True
    #: Virtualize inode numbers and mtimes in stat results (§5.5).
    virtualize_inodes: bool = True
    #: Sort getdents results by name (§5.5).
    sort_getdents: bool = True
    #: Retry partial reads/writes via syscall injection (§5.5, Fig. 4).
    retry_partial_io: bool = True
    #: Report directory sizes as a function of entry count (§7.3).
    deterministic_dir_sizes: bool = True
    #: PID namespace with sequential PIDs (§5.1).
    deterministic_pids: bool = True
    #: uid/gid namespace mapping current user to root (§5.1).
    map_user_to_root: bool = True
    #: Explicit uid/gid overrides on top of the default map (§5.5: "this
    #: mapping is also part of the input to DetTrace").  host id ->
    #: container id.
    uid_map: Dict[int, int] = dataclasses.field(default_factory=dict)
    gid_map: Dict[int, int] = dataclasses.field(default_factory=dict)
    #: Serialize threads within a process (§5.7).
    serialize_threads: bool = True
    #: Trap rdtsc/rdtscp and report a linear counter (§5.8).
    trap_rdtsc: bool = True
    #: Intercept cpuid (Ivy Bridge+) and present a canonical uniprocessor
    #: without TSX/RDRAND (§5.8).
    mask_cpuid: bool = True
    #: Present a canonical uname/sysinfo (Linux 4.0 uniprocessor, §3).
    mask_machine: bool = True
    #: Disable ASLR inside the container.
    disable_aslr: bool = True
    #: Pin the container environment variables to CANONICAL_ENV.
    canonical_env: bool = True
    #: Emulate timers (alarm fires instantly via pause+signal, §5.4) and
    #: nop sleeps.
    emulate_timers: bool = True
    #: Use seccomp-bpf filtering to skip naturally-reproducible syscalls
    #: (§5.11).  Disabling falls back to plain double-stop ptrace.
    use_seccomp: bool = True
    #: Reproducible scheduler implementation: "logical" (deterministic
    #: logical-clock order in O(log n) per decision; scales like the
    #: paper's measurements), "logical-ref" (the original quadratic
    #: implementation of the same policy — the differential-testing
    #: oracle) or "strict" (the literal Figure 3 queues; serializes
    #: behind the Parallel front — kept for ablation).
    scheduler: str = "logical"
    #: Filesystem hot-path caches (dentry/namei + getdents ordering).
    #: Pure memoization — results are byte-identical either way (the
    #: cache on/off identity tests) — so this stays True except when
    #: differentially testing the caches themselves.
    fs_caches: bool = True
    #: Raise a reproducible error on socket use (§5.9); if False, sockets
    #: pass through natively (irreproducible).
    reject_sockets: bool = True
    #: Checksummed external downloads (the §3 future-work model:
    #: "downloading files with known checksums"): url -> expected sha256
    #: hex digest.  Any other download is a reproducible error.
    allowed_downloads: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: Allow AF_UNIX socketpair IPC *within* the container (the paper's
    #: §5.9 future-work item: "limited forms of socket communication,
    #: e.g., as interprocess communication within our container, that can
    #: be rendered reproducible").
    allow_container_ipc_sockets: bool = True
    #: Allow loopback AF_INET stream sockets between container processes
    #: (repro.kernel.sockets).  Rendered reproducible the same way as
    #: pipes: deterministic ephemeral ports, serialized rendezvous,
    #: virtual-time blocking.  Off by default so the strict §5.9 posture
    #: ("reject network communication") stays the baseline; the sockets
    #: fuzz axis and the client-server example turn it on explicitly.
    deterministic_loopback: bool = False
    #: Debug verbosity (the artifact's ``--debug N``): 0 = off, 1 = log
    #: serviced syscalls, 2 = also instruction traps and probes.  Lines
    #: are collected on ``ContainerResult.debug_log``.
    debug: int = 0

    # -- observability (repro.obs) -------------------------------------------

    #: Record the structured event stream (tracer spans plus syscall /
    #: trap / fault / spawn instants) and surface it as
    #: ``ContainerResult.trace`` — Chrome trace_event JSON keyed only on
    #: deterministic virtual time and coordinates.  Aggregated metrics
    #: (``ContainerResult.metrics``) are always collected; this toggle
    #: only gates the per-event stream, whose memory grows with the run.
    #: Hard invariant (tests/obs): flipping it never changes output
    #: hashes, exit statuses, or virtual-time schedules.
    observe: bool = False

    # -- robustness: the fault plane & supervised runs -----------------------

    #: Deterministic fault-injection plan (repro.faults).  ``None`` means
    #: the fault plane is not wired in at all; an *empty* plan wires it in
    #: but injects nothing — the two must be observationally identical
    #: (verified by repro.faults.verify).
    fault_plan: Optional[FaultPlan] = None
    #: Watchdog: hard cap on kernel events per run; livelocks that evade
    #: the busy-wait detector hit this and classify as CRASHED.
    max_events: int = DEFAULT_MAX_EVENTS
    #: ``run_supervised``: maximum retries after transient-fault failures.
    max_retries: int = 2
    #: ``run_supervised``: base of the deterministic virtual-time backoff
    #: (doubles per retry; pure virtual seconds, never host time).
    retry_backoff: float = 0.05

    # -- robustness: crash-consistent checkpointing (repro.ckpt) -------------

    #: Checkpoint/restore configuration; None = checkpointing off (and
    #: the kernel's tape hooks stay a single attribute test).
    checkpoint: Optional[CheckpointConfig] = None

    # -- memoization: the content-addressed run cache (repro.cache) ----------

    #: Run-cache configuration; None = no cache consulted or written.
    cache: Optional[CacheConfig] = None

    def env_for(self, host_env: Dict[str, str]) -> Dict[str, str]:
        if self.canonical_env:
            return dict(CANONICAL_ENV)
        return dict(host_env)

    def fingerprint(self) -> str:
        """Stable digest of every determinism-relevant knob.

        Stamped into snapshot headers so a resume refuses state from a
        differently-configured world.  ``checkpoint`` and ``cache`` are
        excluded: where you snapshot or memoize does not change what the
        run computes (the zero-perturbation invariant the identity tests
        enforce) — and the cache *key* hashing this fingerprint must not
        depend on the cache policy consulting it.
        """
        spec: Dict[str, object] = {}
        for field in dataclasses.fields(self):
            if field.name in ("checkpoint", "cache"):
                continue
            value = getattr(self, field.name)
            if field.name == "fault_plan":
                value = value.to_dict() if value is not None else None
            spec[field.name] = value
        blob = json.dumps(spec, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def full_config(**overrides) -> ContainerConfig:
    """The paper's DetTrace: every mechanism on (optionally overridden)."""
    return ContainerConfig(**overrides)


def ablated(feature: str, **overrides) -> ContainerConfig:
    """A config with exactly one mechanism disabled, for ablation benches."""
    cfg = ContainerConfig(**overrides)
    if not hasattr(cfg, feature):
        raise ValueError("unknown feature %r" % feature)
    setattr(cfg, feature, False)
    return cfg
