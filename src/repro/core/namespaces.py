"""uid/gid namespace mapping (paper §5.1, §5.5).

The container maps the invoking user account to root and every other
account to nobody/nogroup; this mapping is part of the container's input
(Figure 1), and the values stat reports inside the container come from
it.  PID namespacing itself is implemented by the kernel's namespace
counter (sequential PIDs from 1), enabled by the container at boot.
"""

from __future__ import annotations

import dataclasses

ROOT_UID = 0
ROOT_GID = 0
NOBODY_UID = 65534
NOGROUP_GID = 65534


@dataclasses.dataclass(frozen=True)
class UidGidMap:
    """Maps host uids/gids to their container-visible values.

    The default maps the invoking user to root and everyone else to
    nobody/nogroup; explicit overrides make the mapping itself a
    container *input* (§5.5), so two containers with different maps are
    allowed to produce different (each individually reproducible)
    outputs.
    """

    host_uid: int
    host_gid: int = 0
    uid_overrides: tuple = ()
    gid_overrides: tuple = ()

    def to_container_uid(self, uid: int) -> int:
        for host, container in self.uid_overrides:
            if uid == host:
                return container
        if uid == self.host_uid or uid == ROOT_UID:
            return ROOT_UID
        return NOBODY_UID

    def to_container_gid(self, gid: int) -> int:
        for host, container in self.gid_overrides:
            if gid == host:
                return container
        if gid == self.host_gid or gid == ROOT_GID:
            return ROOT_GID
        return NOGROUP_GID
