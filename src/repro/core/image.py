"""Container images: the initial filesystem state plus guest binaries.

A DetTrace computation is a pure function of the container configuration
and the initial filesystem state (Figure 1); an :class:`Image` is that
initial state.  The same image drives both a DetTrace container and a
native baseline run, so reprotest-style comparisons start from identical
file trees.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..guest.program import BinaryRegistry

#: Directories every image gets, mirroring a debootstrap chroot.
STANDARD_DIRS = (
    "/bin", "/usr/bin", "/usr/lib", "/lib", "/etc", "/tmp", "/var/tmp",
    "/root", "/home", "/proc", "/run",
)

SetupFn = Callable[[object, str], None]  # (kernel, build_dir) -> None


class Image:
    """A buildable description of the initial container filesystem."""

    def __init__(self):
        self.registry = BinaryRegistry()
        self._files: List[Tuple[str, bytes, int]] = []
        self._dirs: List[str] = list(STANDARD_DIRS)
        self._setup_fns: List[SetupFn] = []
        self._urls = {}

    # -- construction -------------------------------------------------------

    def add_dir(self, path: str) -> None:
        self._dirs.append(path)

    def add_file(self, path: str, data, mode: int = 0o644) -> None:
        if isinstance(data, str):
            data = data.encode()
        self._files.append((path, data, mode))

    def add_binary(self, path: str, factory) -> None:
        self.registry.add(path, factory)

    def add_url(self, url: str, body) -> None:
        """Publish *body* at *url* on the simulated network."""
        if isinstance(body, str):
            body = body.encode()
        self._urls[url] = body

    def on_setup(self, fn: SetupFn) -> None:
        """Run *fn(kernel, build_dir)* after the base tree is installed."""
        self._setup_fns.append(fn)

    # -- installation ------------------------------------------------------------

    def install(self, kernel, build_dir: str) -> None:
        now = kernel.host.boot_epoch
        for d in self._dirs:
            kernel.fs.mkdirs(d, now=now)
        kernel.fs.mkdirs(build_dir, now=now)
        # Host identity files: part of the filesystem, so part of the
        # computation's input; the native tree carries the real hostname.
        kernel.fs.write_file("/etc/hostname",
                             kernel.host.machine.hostname.encode() + b"\n", now=now)
        kernel.fs.write_file("/etc/os-release",
                             kernel.host.machine.os_name.encode() + b"\n", now=now)
        for path, data, mode in self._files:
            kernel.fs.write_file(path, data, mode=mode, now=now)
        self.registry.install(kernel)
        kernel.network.update(self._urls)
        for fn in self._setup_fns:
            fn(kernel, build_dir)


def canonicalize_identity_files(kernel) -> None:
    """Pin the host-identity files a DetTrace container image ships."""
    kernel.fs.write_file("/etc/hostname", b"dettrace\n", now=kernel.host.boot_epoch)
    kernel.fs.write_file("/etc/os-release", b"dettrace\n", now=kernel.host.boot_epoch)
