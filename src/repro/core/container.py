"""The DetTrace container facade and the native baseline runner.

``DetTrace.run(image, command)`` is the library's primary entry point: it
boots a fresh simulated kernel from the image, attaches the determinizing
tracer, runs the command tree to completion and returns a
:class:`ContainerResult` whose output tree is — by the paper's thesis — a
pure function of the image and the container configuration.

``NativeRunner`` executes the same image with no tracer at all, observing
the full irreproducibility of the host (the reprotest baseline).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..cpu.machine import HostEnvironment
from ..kernel.errors import DeadlockError, SimTimeout
from ..kernel.kernel import Kernel
from ..tracer.events import TraceCounters
from .config import ContainerConfig, FIXED_ASLR_BASE
from .errors import (
    BusyWaitError,
    ContainerDeadlock,
    ContainerTimeout,
    UnsupportedSyscallError,
)
from .image import Image, canonicalize_identity_files
from .namespaces import UidGidMap
from .tracer import DetTraceTracer

#: Result status values.
OK = "ok"
UNSUPPORTED = "unsupported"
TIMEOUT = "timeout"
DEADLOCK = "deadlock"


@dataclasses.dataclass
class ContainerResult:
    """Everything observable from one run."""

    status: str
    exit_code: Optional[int]
    error: str
    stdout: str
    stderr: str
    #: {path relative to the build dir: file bytes} — the artifacts.
    output_tree: Dict[str, bytes]
    counters: Optional[TraceCounters]
    syscall_count: int
    #: Virtual wall-clock duration of the whole run.
    wall_time: float
    host: HostEnvironment
    #: --debug trace lines (empty unless ContainerConfig.debug > 0).
    debug_log: List[str] = dataclasses.field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.status == OK and self.exit_code == 0

    @property
    def syscall_rate(self) -> float:
        """Syscalls per virtual second (Figure 5's x-axis)."""
        if self.wall_time <= 0:
            return 0.0
        return self.syscall_count / self.wall_time


def _decode_exit(proc, status: str, error: str):
    """Exit code for a normal exit; None (with a note) for signal death."""
    if status != OK or proc.exit_status is None:
        return None, error
    signal = proc.exit_status & 0x7F
    if signal:
        return None, error or ("init killed by signal %d" % signal)
    return (proc.exit_status >> 8) & 0xFF, error


def _collect_output_tree(kernel: Kernel, build_dir: str) -> Dict[str, bytes]:
    """Files under *build_dir*, keyed by path relative to it."""
    out: Dict[str, bytes] = {}
    prefix = build_dir.rstrip("/") + "/"
    for path, content in kernel.fs.snapshot().items():
        if path.startswith(prefix):
            out[path[len(prefix):]] = content
    return out


def _finish(kernel: Kernel, build_dir: str, host: HostEnvironment,
            status: str, exit_code: Optional[int], error: str,
            counters: Optional[TraceCounters]) -> ContainerResult:
    return ContainerResult(
        status=status,
        exit_code=exit_code,
        error=error,
        stdout=kernel.stdout.text(),
        stderr=kernel.stderr.text(),
        output_tree=_collect_output_tree(kernel, build_dir),
        counters=counters,
        syscall_count=kernel.stats.syscalls,
        wall_time=kernel.clock.now,
        host=host,
    )


class DetTrace:
    """A reproducible container (paper §5)."""

    def __init__(self, config: Optional[ContainerConfig] = None):
        self.config = config or ContainerConfig()

    def run(self, image: Image, command: str,
            argv: Optional[List[str]] = None,
            host: Optional[HostEnvironment] = None) -> ContainerResult:
        """Run *command* from *image* inside a fresh container."""
        cfg = self.config
        host = host or HostEnvironment()
        kernel = Kernel(host)

        if cfg.disable_aslr:
            kernel.aslr_override = FIXED_ASLR_BASE
        kernel.serialize_threads = cfg.serialize_threads
        kernel.busy_wait_budget = cfg.busy_wait_budget
        if cfg.deterministic_pids:
            kernel.enable_pid_namespace(1)
        kernel.default_uid = 0 if cfg.map_user_to_root else 1000

        image.install(kernel, cfg.working_dir)
        canonicalize_identity_files(kernel)

        tracer = DetTraceTracer(cfg, uidmap=UidGidMap(
            host_uid=1000,
            uid_overrides=tuple(sorted(cfg.uid_map.items())),
            gid_overrides=tuple(sorted(cfg.gid_map.items()))))
        if cfg.deterministic_randomness:
            self._replace_random_devices(kernel, tracer)
        tracer.attach(kernel)

        env = cfg.env_for(host.env)
        proc = kernel.boot(command, argv=argv, env=env, uid=0,
                           cwd_path=cfg.working_dir)
        status, error = OK, ""
        try:
            kernel.run(deadline=cfg.timeout)
        except SimTimeout:
            status, error = TIMEOUT, "virtual deadline exceeded"
        except (UnsupportedSyscallError, BusyWaitError) as err:
            status, error = UNSUPPORTED, str(err)
        except DeadlockError as err:
            status, error = DEADLOCK, str(err)
        exit_code, error = _decode_exit(proc, status, error)
        result = _finish(kernel, cfg.working_dir, host, status, exit_code,
                         error, tracer.counters)
        result.debug_log = tracer.debug_log
        return result

    @staticmethod
    def _replace_random_devices(kernel: Kernel, tracer: DetTraceTracer) -> None:
        """Back /dev/random and /dev/urandom with the container PRNG (§5.2)."""
        for name in ("random", "urandom"):
            node = kernel.fs.resolve(kernel.fs.root, kernel.fs.root, "/dev/" + name)
            node.dev_read = tracer.prng.bytes


class NativeRunner:
    """The irreproducible baseline: same image, no tracer."""

    def __init__(self, timeout: float = 7200.0):
        self.timeout = timeout

    def run(self, image: Image, command: str,
            argv: Optional[List[str]] = None,
            host: Optional[HostEnvironment] = None) -> ContainerResult:
        host = host or HostEnvironment()
        kernel = Kernel(host)
        build_dir = host.build_path
        image.install(kernel, build_dir)
        proc = kernel.boot(command, argv=argv, env=dict(host.env),
                           uid=1000, cwd_path=build_dir)
        status, error = OK, ""
        try:
            kernel.run(deadline=self.timeout)
        except SimTimeout:
            status, error = TIMEOUT, "deadline exceeded"
        except DeadlockError as err:
            status, error = DEADLOCK, str(err)
        exit_code, error = _decode_exit(proc, status, error)
        return _finish(kernel, build_dir, host, status, exit_code, error, None)
