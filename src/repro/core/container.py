"""The DetTrace container facade and the native baseline runner.

``DetTrace.run(image, command)`` is the library's primary entry point: it
boots a fresh simulated kernel from the image, attaches the determinizing
tracer, runs the command tree to completion and returns a
:class:`ContainerResult` whose output tree is — by the paper's thesis — a
pure function of the image and the container configuration.

``DetTrace.run_supervised`` layers a babysitter on top: bounded retry
with deterministic virtual-time backoff for failures classified as
transient by the fault plane, and graceful degradation everywhere — any
abort still yields the partial output tree plus a structured
:class:`~repro.faults.report.CrashReport`.

``NativeRunner`` executes the same image with no tracer at all, observing
the full irreproducibility of the host (the reprotest baseline).

Neither runner ever lets an exception unwind out of a run: every failure
mode — timeout, deadlock, unsupported operation, kernel panic, injected
fault storm — maps to a classified status (the paper's quasi-determinism
contract, §2/§5.9: a run either reproduces or fails *reproducibly*).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Dict, List, Optional

from ..cpu.machine import HostEnvironment
from ..faults.report import AttemptRecord, CrashReport
from ..kernel.errors import DeadlockError, KernelPanic, SimTimeout
from ..kernel.kernel import Kernel
from ..obs.collector import Collector
from ..obs.metrics import Metrics
from ..obs.trace import TraceLog
from ..tracer.events import TraceCounters
from .config import ContainerConfig, FIXED_ASLR_BASE
from .errors import (
    BusyWaitError,
    ContainerDeadlock,
    ContainerError,
    ContainerTimeout,
    UnsupportedSyscallError,
)
from .image import Image, canonicalize_identity_files
from .namespaces import UidGidMap
from .tracer import DetTraceTracer

#: Result status values.
OK = "ok"
UNSUPPORTED = "unsupported"
TIMEOUT = "timeout"
DEADLOCK = "deadlock"
#: The run aborted outside the classified set — kernel panic, event-budget
#: livelock, or an unclassified internal error — but was still degraded
#: into a result instead of unwinding.
CRASHED = "crashed"
#: A supervised run failed transiently and then succeeded on a retry.
RETRIED = "retried"
#: The run completed after resuming from a crash-consistent checkpoint
#: (repro.ckpt) instead of restarting from scratch.
RESUMED = "resumed"

#: Statuses under which the guest completed with an exit status.
_SUCCESS_STATUSES = (OK, RETRIED, RESUMED)


@dataclasses.dataclass
class ContainerResult:
    """Everything observable from one run."""

    status: str
    exit_code: Optional[int]
    error: str
    stdout: str
    stderr: str
    #: {path relative to the build dir: file bytes} — the artifacts.
    output_tree: Dict[str, bytes]
    counters: Optional[TraceCounters]
    syscall_count: int
    #: Virtual wall-clock duration of the whole run.
    wall_time: float
    host: HostEnvironment
    #: --debug trace lines (empty unless ContainerConfig.debug > 0).
    #: A rendered-string compatibility view over the structured events.
    debug_log: List[str] = dataclasses.field(default_factory=list)
    #: Deterministic observability snapshot (repro.obs) — populated on
    #: every exit path, including crashes, so metrics and crash reports
    #: always agree.
    metrics: Optional[Metrics] = None
    #: Structured event trace (repro.obs.trace), present only when
    #: ``ContainerConfig.observe`` was set.  ``trace.to_json()`` is
    #: byte-identical across reruns of the same image + config + plan.
    trace: Optional[TraceLog] = None
    #: How many supervised attempts produced this result (1 = no retry).
    attempts: int = 1
    #: Did transient-classified fault rules fire during the (final) run?
    transient_faults: bool = False
    #: Structured account of failures/injections (None for clean runs).
    crash_report: Optional[CrashReport] = None
    #: Filesystem hot-path cache counters (resolve/dirent hits+misses)
    #: for perf tracking; purely diagnostic, never part of the
    #: reproducible output surface.
    fs_cache_stats: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Run-cache disposition (repro.cache), None when no cache was in
    #: play: {"outcome": "hit"|"miss"|"store"|"verify_ok"|
    #: "verify_mismatch"|"uncacheable", "key": <run-key digest>,
    #: "executed": bool, ...}; verify mismatches also carry "report"
    #: (a DivergenceReport) and "differs" (the differing surfaces).
    #: Purely operational — never part of the reproducible surface.
    cache: Optional[Dict[str, Any]] = None

    @property
    def succeeded(self) -> bool:
        return self.status in _SUCCESS_STATUSES and self.exit_code == 0

    @property
    def syscall_rate(self) -> float:
        """Syscalls per virtual second (Figure 5's x-axis)."""
        if self.wall_time <= 0:
            return 0.0
        return self.syscall_count / self.wall_time


def _decode_exit(proc, status: str, error: str):
    """Exit code for a normal exit; None (with a note) for signal death."""
    if proc is None or status not in _SUCCESS_STATUSES or proc.exit_status is None:
        return None, error
    signal = proc.exit_status & 0x7F
    if signal:
        return None, error or ("init killed by signal %d" % signal)
    return (proc.exit_status >> 8) & 0xFF, error


def _collect_output_tree(kernel: Kernel, build_dir: str) -> Dict[str, bytes]:
    """Files under *build_dir*, keyed by path relative to it."""
    out: Dict[str, bytes] = {}
    prefix = build_dir.rstrip("/") + "/"
    for path, content in kernel.fs.snapshot().items():
        if path.startswith(prefix):
            out[path[len(prefix):]] = content
    return out


def _classify(err: BaseException):
    """Map an exception escaping the kernel loop to a (status, error)."""
    from ..faults.injector import KilledAtTick

    if isinstance(err, KilledAtTick):
        return CRASHED, str(err)
    if isinstance(err, SimTimeout):
        return TIMEOUT, "virtual deadline exceeded"
    if isinstance(err, ContainerTimeout):
        return TIMEOUT, str(err)
    if isinstance(err, (UnsupportedSyscallError, BusyWaitError)):
        return UNSUPPORTED, str(err)
    if isinstance(err, (DeadlockError, ContainerDeadlock)):
        return DEADLOCK, str(err)
    if isinstance(err, KernelPanic):
        return CRASHED, "kernel panic: %s" % err
    if isinstance(err, ContainerError):
        return CRASHED, str(err)
    return CRASHED, "unclassified %s: %s" % (type(err).__name__, err)


def _finish(kernel: Kernel, build_dir: str, host: HostEnvironment,
            status: str, exit_code: Optional[int], error: str,
            counters: Optional[TraceCounters]) -> ContainerResult:
    """Assemble the result from whatever state the kernel ended in.

    Owns *all* result decoration — debug log, metrics, trace, crash
    report, partial output tree — so every exit path (including
    timeout/deadlock/crash) carries the kernel's final state.  All
    observability flows through the kernel's collector (repro.obs),
    which exists from the first line of a run: events buffered before a
    panic are never dropped, and crash reports and metrics agree.
    Never raises: collection failures degrade to empty fields recorded
    in the error string.
    """
    obs = kernel.obs
    try:
        output_tree = _collect_output_tree(kernel, build_dir)
    except Exception as err:  # pragma: no cover - snapshot never raises today
        output_tree = {}
        error = error or ("output tree unavailable: %s" % err)
    try:
        stdout, stderr = kernel.stdout.text(), kernel.stderr.text()
    except Exception:  # pragma: no cover
        stdout, stderr = "", ""
    try:
        metrics = Metrics.from_run(obs, counters, kernel.stats)
    except Exception:  # pragma: no cover
        metrics = None
    trace = obs.trace_log() if obs.trace_enabled else None
    injector = kernel.faults
    report = None
    if status != OK or (injector is not None and injector.injected):
        report = CrashReport(
            status=status,
            error=error,
            fault_trace=list(injector.trace) if injector is not None else [],
            last_syscalls=kernel.stats.recent_syscall_events(),
        )
    return ContainerResult(
        status=status,
        exit_code=exit_code,
        error=error,
        stdout=stdout,
        stderr=stderr,
        output_tree=output_tree,
        counters=counters,
        syscall_count=kernel.stats.syscalls,
        wall_time=kernel.clock.now,
        host=host,
        debug_log=obs.render_debug(),
        metrics=metrics,
        trace=trace,
        transient_faults=bool(injector is not None and injector.transient_fired),
        crash_report=report,
        fs_cache_stats={
            "resolve_hits": kernel.fs.resolve_hits,
            "resolve_misses": kernel.fs.resolve_misses,
            "dirent_hits": kernel.fs.dirent_hits,
            "dirent_misses": kernel.fs.dirent_misses,
        },
    )


class DetTrace:
    """A reproducible container (paper §5)."""

    def __init__(self, config: Optional[ContainerConfig] = None):
        self.config = config or ContainerConfig()
        #: The CheckpointManager of the currently executing run, when
        #: checkpointing is configured — lets a host signal handler call
        #: ``active_ckpt.request()`` to snapshot at the next barrier.
        self.active_ckpt = None

    def run(self, image: Image, command: str,
            argv: Optional[List[str]] = None,
            host: Optional[HostEnvironment] = None,
            _attempt: int = 0) -> ContainerResult:
        """Run *command* from *image* inside a fresh container.

        Never raises: every failure mode degrades to a classified
        :class:`ContainerResult` (status CRASHED at worst), carrying the
        partial output tree and a crash report.

        When ``config.cache`` is set the run is memoized by its content
        address (:mod:`repro.cache`): a hit returns the stored outcome
        with zero guest execution; ``verify`` mode executes anyway and
        byte-compares.  Retry attempts (``_attempt > 0``) bypass the
        cache — their fault coordinates differ from the keyed run.
        """
        cfg = self.config
        host = host or HostEnvironment()
        if cfg.cache is not None and cfg.cache.mode != "off" and _attempt == 0:
            return self._run_cached(image, command, argv, host)
        return self._execute(image, command, argv, host, _attempt)

    def _run_cached(self, image: Image, command: str,
                    argv: Optional[List[str]],
                    host: HostEnvironment) -> ContainerResult:
        """The cache-aware run path (``config.cache`` set, attempt 0)."""
        from ..cache import RunCache

        cfg = self.config
        cache_cfg = cfg.cache
        rc = RunCache(cache_cfg.directory)
        key = rc.key_for(image, cfg, command, argv, host)
        cached = rc.lookup(key)

        if cache_cfg.mode in ("read", "write") and cached is not None:
            result = cached.to_result(host)
            self._stamp_cache(result, "hit", key, executed=False)
            return result

        result = self._execute(image, command, argv, host, 0)

        if cache_cfg.mode == "verify" and cached is not None:
            differs = cached.compare_surfaces(result)
            if differs:
                self._stamp_cache(result, "verify_mismatch", key,
                                  executed=True, differs=differs,
                                  report=self._divergence(result, cached, host))
            else:
                self._stamp_cache(result, "verify_ok", key, executed=True)
        elif cache_cfg.mode in ("write", "verify"):
            sha256 = rc.store_result(key, result)
            if sha256 is not None:
                self._stamp_cache(result, "store", key, executed=True,
                                  object_sha256=sha256)
            else:
                self._stamp_cache(result, "uncacheable", key, executed=True)
        else:  # read-mode miss: executed, nothing written
            self._stamp_cache(result, "miss", key, executed=True)
        return result

    @staticmethod
    def _stamp_cache(result: ContainerResult, outcome: str, key,
                     executed: bool, **extra) -> None:
        """Attach the cache disposition + its metrics counters.

        The counters land on the *returned* result only — stored
        outcomes strip ``cache/`` counters, so a lookup can never
        poison the deterministic metrics of a future hit.
        """
        record: Dict[str, Any] = {"outcome": outcome, "key": key.digest,
                                  "executed": executed}
        record.update(extra)
        result.cache = record
        if result.metrics is not None:
            counters = result.metrics.counters
            counter = {"hit": "cache/hit", "store": "cache/store",
                       "miss": "cache/miss", "uncacheable": "cache/miss",
                       "verify_ok": "cache/verify_ok",
                       "verify_mismatch": "cache/verify_mismatch"}[outcome]
            counters[counter] = counters.get(counter, 0) + 1

    @staticmethod
    def _divergence(fresh: ContainerResult, cached,
                    host: HostEnvironment):
        """Diff a fresh verify run against the cached outcome (repro.diag)."""
        from ..diag import RunCapture, diff_captures

        return diff_captures(
            RunCapture.from_result(fresh, label="fresh-run"),
            RunCapture.from_result(cached.to_result(host),
                                   label="cached-entry"))

    def _execute(self, image: Image, command: str,
                 argv: Optional[List[str]], host: HostEnvironment,
                 _attempt: int) -> ContainerResult:
        """One real (uncached) container execution."""
        cfg = self.config
        kernel = Kernel(host)
        # The collector exists before anything can fail, so every exit
        # path — including a crash before the tracer is even built —
        # flows through it (crash reports and metrics always agree).
        kernel.obs = Collector(trace=cfg.observe, debug=cfg.debug)
        tracer = None
        proc = None
        status, error = OK, ""
        try:
            tracer = self._prepare(kernel, image, _attempt)
            if cfg.checkpoint is not None:
                # Installed before boot: the resume tape must cover the
                # guest's whole life, starting with the init spawn.
                from ..ckpt import CheckpointManager

                kernel.ckpt = CheckpointManager(
                    cfg.checkpoint.directory, every=cfg.checkpoint.every,
                    keep=cfg.checkpoint.keep, fingerprint=cfg.fingerprint(),
                    full_every=cfg.checkpoint.full_every)
                self.active_ckpt = kernel.ckpt

            env = cfg.env_for(host.env)
            proc = kernel.boot(command, argv=argv, env=env, uid=0,
                               cwd_path=cfg.working_dir)
            kernel.run(deadline=cfg.timeout, max_events=cfg.max_events)
        except Exception as err:
            status, error = _classify(err)
        exit_code, error = _decode_exit(proc, status, error)
        return _finish(kernel, cfg.working_dir, host, status, exit_code,
                       error, tracer.counters if tracer is not None else None)

    def _prepare(self, kernel: Kernel, image: Image,
                 _attempt: int) -> DetTraceTracer:
        """Configure a fresh kernel up to (but excluding) boot.

        Shared verbatim by :meth:`run` and :meth:`resume`: a restored
        kernel must be prepared by exactly the code path a normal run
        uses, so device closures, handler tables and the seccomp filter
        are the same live objects in both worlds.
        """
        cfg = self.config
        if cfg.disable_aslr:
            kernel.aslr_override = FIXED_ASLR_BASE
        kernel.serialize_threads = cfg.serialize_threads
        kernel.busy_wait_budget = cfg.busy_wait_budget
        kernel.fs.cache_enabled = cfg.fs_caches
        if cfg.deterministic_pids:
            kernel.enable_pid_namespace(1)
        kernel.default_uid = 0 if cfg.map_user_to_root else 1000

        image.install(kernel, cfg.working_dir)
        canonicalize_identity_files(kernel)

        tracer = DetTraceTracer(cfg, uidmap=UidGidMap(
            host_uid=1000,
            uid_overrides=tuple(sorted(cfg.uid_map.items())),
            gid_overrides=tuple(sorted(cfg.gid_map.items()))))
        if cfg.deterministic_randomness:
            self._replace_random_devices(kernel, tracer)
        tracer.attach(kernel)
        if cfg.fault_plan is not None:
            injector = kernel.install_faults(cfg.fault_plan, attempt=_attempt)
            injector.counters = tracer.counters
            injector.obs = kernel.obs
        return tracer

    def resume(self, image: Image, command: str,
               argv: Optional[List[str]] = None,
               host: Optional[HostEnvironment] = None,
               _attempt: int = 0) -> ContainerResult:
        """Resume the newest valid checkpoint and run to completion.

        The snapshot carries the host environment (mid-state RNG streams
        included), so the *host* argument is ignored — a resumed run is
        a continuation of the interrupted one, not a new sample.  Raises
        :class:`repro.ckpt.JournalError` when the journal holds no valid
        snapshot for this config; every later failure degrades to a
        classified result like :meth:`run`.  A resumed run that finishes
        cleanly reports status ``RESUMED``.
        """
        cfg = self.config
        if cfg.checkpoint is None:
            raise ValueError("resume() requires ContainerConfig.checkpoint")
        from ..ckpt import CheckpointManager, RecoveryManager, restore

        fingerprint = cfg.fingerprint()
        recovery = RecoveryManager(cfg.checkpoint.directory,
                                   fingerprint=fingerprint)
        info, payload = recovery.load()  # JournalError when none valid

        kernel = Kernel(payload["host"])
        kernel.obs = Collector(trace=cfg.observe, debug=cfg.debug)
        tracer = None
        proc = None
        status, error = OK, ""
        try:
            tracer = self._prepare(kernel, image, _attempt)
            mgr = CheckpointManager(
                cfg.checkpoint.directory, every=cfg.checkpoint.every,
                keep=cfg.checkpoint.keep, fingerprint=fingerprint,
                full_every=cfg.checkpoint.full_every)
            mgr.tape = restore(kernel, payload)
            mgr.last_barrier = info.barrier
            kernel.ckpt = mgr
            self.active_ckpt = mgr
            proc = kernel.processes[0] if kernel.processes else None
            kernel.run(deadline=cfg.timeout, max_events=cfg.max_events)
        except Exception as err:
            status, error = _classify(err)
        exit_code, error = _decode_exit(proc, status, error)
        result = _finish(kernel, cfg.working_dir, kernel.host, status,
                         exit_code, error,
                         tracer.counters if tracer is not None else None)
        if result.status == OK:
            result.status = RESUMED
        return result

    def run_supervised(self, image: Image, command: str,
                       argv: Optional[List[str]] = None,
                       host: Optional[HostEnvironment] = None,
                       max_retries: Optional[int] = None,
                       backoff: Optional[float] = None) -> ContainerResult:
        """Run with bounded retry under the fault plane's transient storms.

        An attempt is retried only when it failed *and* transient-
        classified fault rules fired during it (the deterministic model
        of "the environment misbehaved, try again").  Each retry charges
        a deterministic, exponentially growing virtual-time backoff; the
        attempt number is itself a fault-plan coordinate, so the whole
        attempt sequence — and therefore the final result — is a pure
        function of image + plan.  A run that failed and then succeeded
        reports status ``RETRIED``; a run that exhausted its retries
        keeps its final classified status.  The returned result always
        carries the full attempt log on its crash report.
        """
        cfg = self.config
        if max_retries is None:
            max_retries = cfg.max_retries
        if backoff is None:
            backoff = cfg.retry_backoff
        attempt_log: List[AttemptRecord] = []
        total_wall = 0.0
        next_backoff = 0.0
        attempt = 0
        #: The fault-plan attempt coordinate of the most recent
        #: execution; a resume *continues* that attempt rather than
        #: starting a new one, so it stays put across resumed retries.
        run_attempt = 0
        result: Optional[ContainerResult] = None
        while True:
            if (attempt > 0 and result is not None
                    and result.status == CRASHED
                    and self._resumable()):
                # Prefer continuing the crashed attempt from its newest
                # checkpoint over a full restart: all completed work is
                # kept, and the identity guarantee makes the combined
                # run indistinguishable from an uninterrupted one.
                result = self.resume(image, command, argv=argv,
                                     _attempt=run_attempt)
            else:
                run_attempt = attempt
                result = self.run(image, command, argv=argv, host=host,
                                  _attempt=run_attempt)
            total_wall += next_backoff + result.wall_time
            faults_fired = (len(result.crash_report.fault_trace)
                            if result.crash_report is not None else 0)
            attempt_log.append(AttemptRecord(
                attempt=attempt, status=result.status,
                exit_code=result.exit_code, error=result.error,
                faults_injected=faults_fired,
                transient=result.transient_faults, backoff=next_backoff))
            attempt += 1
            retryable = (not result.succeeded and result.transient_faults
                         and attempt <= max_retries)
            if not retryable:
                break
            # Deterministic virtual-time backoff: doubles per retry and
            # never consults the host clock.
            next_backoff = backoff * (2 ** (attempt - 1))
        result.attempts = attempt
        result.wall_time = total_wall
        if attempt > 1 and result.status == OK and result.exit_code == 0:
            result.status = RETRIED
        # A successful resume keeps its more specific RESUMED status.
        if result.crash_report is None and (attempt > 1 or result.status != OK):
            result.crash_report = CrashReport(status=result.status,
                                              error=result.error)
        if result.crash_report is not None:
            result.crash_report.status = result.status
            result.crash_report.attempt_log = attempt_log
            if cfg.checkpoint is not None:
                # Persist crash forensics next to the snapshots it may be
                # recovered with; write_json is atomic, so an interrupted
                # supervisor never leaves a truncated report behind.
                try:
                    result.crash_report.write_json(os.path.join(
                        cfg.checkpoint.directory, "crash-report.json"))
                except OSError:
                    pass  # forensics are best-effort; the run result stands
        return result

    def _resumable(self) -> bool:
        """Is there a valid checkpoint to continue from?"""
        cfg = self.config
        if cfg.checkpoint is None:
            return False
        from ..ckpt import RecoveryManager

        return RecoveryManager(cfg.checkpoint.directory,
                               fingerprint=cfg.fingerprint()).latest() is not None

    @staticmethod
    def _replace_random_devices(kernel: Kernel, tracer: DetTraceTracer) -> None:
        """Back /dev/random and /dev/urandom with the container PRNG (§5.2)."""
        for name in ("random", "urandom"):
            node = kernel.fs.resolve(kernel.fs.root, kernel.fs.root, "/dev/" + name)
            node.dev_read = tracer.prng.bytes


class NativeRunner:
    """The irreproducible baseline: same image, no tracer."""

    def __init__(self, timeout: float = 7200.0, fault_plan=None):
        self.timeout = timeout
        self.fault_plan = fault_plan

    def run(self, image: Image, command: str,
            argv: Optional[List[str]] = None,
            host: Optional[HostEnvironment] = None) -> ContainerResult:
        host = host or HostEnvironment()
        kernel = Kernel(host)
        build_dir = host.build_path
        proc = None
        status, error = OK, ""
        try:
            if self.fault_plan is not None:
                kernel.install_faults(self.fault_plan)
            image.install(kernel, build_dir)
            proc = kernel.boot(command, argv=argv, env=dict(host.env),
                               uid=1000, cwd_path=build_dir)
            kernel.run(deadline=self.timeout)
        except Exception as err:
            status, error = _classify(err)
        exit_code, error = _decode_exit(proc, status, error)
        return _finish(kernel, build_dir, host, status, exit_code, error, None)
