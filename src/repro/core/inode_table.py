"""Virtual inode and mtime tables (paper §5.5).

Real inode numbers are irreproducible (allocation order, recycling), yet
programs compare them to detect identical files — so DetTrace maintains a
lazily-populated map from real inodes to dense virtual inodes, and a
parallel map to virtual mtimes:

* files that existed in the initial container image get virtual mtime 0;
* files created during the run get the next value of a virtual mtime
  clock (so configure-style skew checks see sensible, increasing times);
* when the OS recycles a real inode for a *new* file, the stale mapping
  must be replaced, which is why creation is detected at ``open`` by
  comparing path existence before and after (§5.5).
"""

from __future__ import annotations

from typing import Dict, Optional


class InodeTable:
    """real inode -> (virtual inode, virtual mtime)."""

    FIRST_VIRTUAL_INO = 1

    def __init__(self):
        self._vino: Dict[int, int] = {}
        self._vmtime: Dict[int, int] = {}
        self._next_vino = self.FIRST_VIRTUAL_INO
        self._mtime_clock = 0

    # -- virtual inodes -----------------------------------------------------

    def virtual_ino(self, real_ino: int) -> int:
        """Map lazily: unseen inodes existed in the initial image."""
        if real_ino not in self._vino:
            self._vino[real_ino] = self._next_vino
            self._next_vino += 1
        return self._vino[real_ino]

    def register_new_file(self, real_ino: int) -> int:
        """A file was just created, possibly on a recycled real inode.

        Always allocates a fresh virtual inode (dropping any stale
        mapping) and stamps the file with the next virtual mtime.
        """
        self._vino[real_ino] = self._next_vino
        self._next_vino += 1
        self._mtime_clock += 1
        self._vmtime[real_ino] = self._mtime_clock
        return self._vino[real_ino]

    # -- virtual mtimes --------------------------------------------------------

    def virtual_mtime(self, real_ino: int) -> int:
        """0 for initial-image files, else the creation-time stamp."""
        return self._vmtime.get(real_ino, 0)

    def set_virtual_mtime(self, real_ino: int, value: int) -> None:
        self._vmtime[real_ino] = value

    def touch(self, real_ino: int) -> int:
        """An explicit utime: stamp the file with the next virtual mtime
        (the "could easily be added" extension of §5.5 that keeps
        touch-driven rebuilds working)."""
        self._mtime_clock += 1
        self._vmtime[real_ino] = self._mtime_clock
        return self._mtime_clock

    @property
    def mappings(self) -> int:
        return len(self._vino)

    @property
    def mtime_clock(self) -> int:
        return self._mtime_clock
