"""Reproducible schedulers (paper §5.6, Figure 3).

DetTrace must execute guest syscalls *sequentially in a deterministic
total order* — otherwise the virtual inode/mtime clocks (§5.5) and every
other cross-process effect would depend on wall-clock racing.  Two
implementations are provided:

:class:`StrictQueueScheduler`
    A literal reading of Figure 3: three queues, and only the *front* of
    the Parallel queue may move to Runnable when it reaches a syscall.
    Fully deterministic, but it gates every stopped process behind the
    front's compute, serializing workloads whose processes compute for
    long stretches — which contradicts the scaling the paper measures
    (clustal reaches 4.17x at 16 processes under DetTrace, §7.5).

:class:`LogicalClockScheduler` (the default)
    A deterministic-logical-time scheduler in the style of Kendo [32],
    which the paper cites for deterministic synchronization.  Every
    thread carries a logical clock advanced by the *work it requests*
    (not the jittered wall time it takes), so each trace stop has a
    deterministic timestamp.  A stopped thread is serviced when it holds
    the minimum (clock, spawn-index) among stopped threads AND no
    still-running thread could possibly stop with a smaller timestamp
    (its lower bound — current clock plus in-flight compute — is already
    past the candidate's).  Would-block outcomes deterministically
    defer the blocked thread until the next serviced syscall or thread
    exit, giving the fair retry of §5.6.1.  The result is the same
    guarantee as the queues — a syscall order that is a pure function of
    guest behaviour — without serializing compute.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..kernel.process import Thread, ThreadState

from ..kernel.costs import SYSCALL_TICK  # noqa: F401  (re-exported)

#: next_action verdicts.
SERVICE = "service"
PROBE = "probe"
WAIT = "wait"


def _is_stopped_at_syscall(thread: Thread) -> bool:
    return (thread.state is ThreadState.TRACE_STOP
            and thread.current_syscall is not None)


class SchedulerBase:
    """Interface the DetTrace tracer drives."""

    def add(self, thread: Thread) -> None:
        raise NotImplementedError

    def remove(self, thread: Thread) -> None:
        raise NotImplementedError

    def next_action(self) -> Tuple[str, Optional[Thread]]:
        """(SERVICE, t): run t's syscall for the first time;
        (PROBE, t): retry a previously-blocked syscall;
        (WAIT, None): nothing may be serviced yet."""
        raise NotImplementedError

    def completed(self, thread: Thread) -> None:
        """The serviced/probed syscall finished (value/error/exit)."""
        raise NotImplementedError

    def still_blocked(self, thread: Thread) -> None:
        """The probe reported would-block."""
        raise NotImplementedError

    def note_progress(self) -> None:
        """Guest-visible state changed outside a completed service (e.g.
        a blocked write transferred part of its buffer before blocking
        again): blocked candidates must become probe-eligible."""

    def blocked_count(self) -> int:
        """How many candidates are deterministically deferred (the
        Blocked-queue occupancy sampled into repro.obs)."""
        raise NotImplementedError

    def live_count(self) -> int:
        """How many live threads the scheduler currently manages."""
        raise NotImplementedError


class LogicalClockScheduler(SchedulerBase):
    """Deterministic logical-time servicing (the default).

    Blocked candidates are *skipped* — deterministically — until at least
    one other syscall has been serviced since their last failed probe:
    under the serialized-syscall discipline, all guest-visible state
    changes flow through serviced syscalls, so re-probing earlier would
    provably fail again.  This is exactly §5.6.1's "consult the blocked
    queue after each executed syscall", expressed in logical time.
    """

    def __init__(self):
        self._threads: List[Thread] = []
        self._index: Dict[Thread, int] = {}
        self._next_index = 0
        #: Global count of completed services (the determinism epoch).
        self._service_seq = 0
        #: thread -> service_seq at its last failed probe.
        self._fail_seq: Dict[Thread, int] = {}

    # -- membership -------------------------------------------------------

    def add(self, thread: Thread) -> None:
        self._threads.append(thread)
        self._index[thread] = self._next_index
        self._next_index += 1

    def remove(self, thread: Thread) -> None:
        if thread in self._index:
            self._threads.remove(thread)
            self._index.pop(thread)
            self._fail_seq.pop(thread, None)
            # A thread exit is a guest-visible state change (it can
            # unblock wait4 and pipe readers): advance the epoch so
            # blocked candidates become probe-eligible again.
            self._service_seq += 1

    def live(self) -> List[Thread]:
        return [t for t in self._threads if t.alive]

    # -- decision ------------------------------------------------------------

    def _key(self, thread: Thread) -> Tuple[float, int]:
        return (thread.det_clock, self._index[thread])

    def next_action(self) -> Tuple[str, Optional[Thread]]:
        stopped = sorted(
            (t for t in self._threads if t.alive and _is_stopped_at_syscall(t)),
            key=self._key)
        if not stopped:
            return (WAIT, None)
        for candidate in stopped:
            blocked_at = self._fail_seq.get(candidate)
            if blocked_at is not None and blocked_at == self._service_seq:
                continue  # nothing changed since its last probe: skip
            cand_key = (candidate.det_clock, self._index[candidate])
            for other in self._threads:
                if other is candidate or not other.alive:
                    continue
                if _is_stopped_at_syscall(other):
                    continue  # later than the candidate, by the sort
                if other.token_queued:
                    # Waiting for the sibling token: it can only run after
                    # a deterministic token grant, which itself requires a
                    # serviced syscall — it cannot stop before this one.
                    continue
                # Lower bound on the other thread's next stop timestamp:
                # its committed bound plus the per-stop tick (every stop
                # advances the clock by at least SYSCALL_TICK past the
                # bound).  Ties resolve by spawn index, deterministically.
                if (other.det_bound + SYSCALL_TICK,
                        self._index[other]) < cand_key:
                    return (WAIT, None)
            if candidate in self._fail_seq:
                return (PROBE, candidate)
            return (SERVICE, candidate)
        return (WAIT, None)

    def completed(self, thread: Thread) -> None:
        self._service_seq += 1
        self._fail_seq.pop(thread, None)

    def still_blocked(self, thread: Thread) -> None:
        self._fail_seq[thread] = self._service_seq

    def note_progress(self) -> None:
        self._service_seq += 1

    def blocked_count(self) -> int:
        return len(self._fail_seq)

    def live_count(self) -> int:
        return len(self.live())


class StrictQueueScheduler(SchedulerBase):
    """The literal Figure 3 queues (kept for ablation studies)."""

    def __init__(self):
        self.parallel: Deque[Thread] = deque()
        self.runnable: Deque[Thread] = deque()
        self.blocked: Deque[Thread] = deque()
        self._probe_credit = 0

    def add(self, thread: Thread) -> None:
        self.parallel.append(thread)

    def remove(self, thread: Thread) -> None:
        for queue in (self.parallel, self.runnable, self.blocked):
            try:
                queue.remove(thread)
            except ValueError:
                pass

    def next_action(self) -> Tuple[str, Optional[Thread]]:
        while self.parallel and _is_stopped_at_syscall(self.parallel[0]):
            self.runnable.append(self.parallel.popleft())
        if self.runnable:
            return (SERVICE, self.runnable[0])
        if self.blocked and (self._probe_credit > 0
                             or not (self.parallel or self.runnable)):
            # Consult the blocked front after each executed syscall, and
            # whenever nothing else can run (§5.6.1's fair iteration).
            if self._probe_credit > 0:
                self._probe_credit -= 1
            return (PROBE, self.blocked[0])
        return (WAIT, None)

    def completed(self, thread: Thread) -> None:
        self._probe_credit = 1 if self.blocked else 0
        if self.runnable and self.runnable[0] is thread:
            self.runnable.popleft()
        elif self.blocked and self.blocked[0] is thread:
            self.blocked.popleft()
        else:
            self.remove(thread)
            return
        self.parallel.append(thread)

    def still_blocked(self, thread: Thread) -> None:
        if self.runnable and self.runnable[0] is thread:
            self.runnable.popleft()
            self.blocked.append(thread)
        elif self.blocked and self.blocked[0] is thread:
            self.blocked.rotate(-1)

    def note_progress(self) -> None:
        self._probe_credit = len(self.blocked)

    def blocked_count(self) -> int:
        return len(self.blocked)

    def live_count(self) -> int:
        return sum(1 for queue in (self.parallel, self.runnable, self.blocked)
                   for thread in queue if thread.alive)


def make_scheduler(kind: str) -> SchedulerBase:
    if kind == "logical":
        return LogicalClockScheduler()
    if kind == "strict":
        return StrictQueueScheduler()
    raise ValueError("unknown scheduler kind %r" % kind)


#: Backwards-compatible name: the reproducible scheduler of §5.6.
ReproducibleScheduler = LogicalClockScheduler
