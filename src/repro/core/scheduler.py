"""Reproducible schedulers (paper §5.6, Figure 3).

DetTrace must execute guest syscalls *sequentially in a deterministic
total order* — otherwise the virtual inode/mtime clocks (§5.5) and every
other cross-process effect would depend on wall-clock racing.  Three
implementations are provided:

:class:`StrictQueueScheduler`
    A literal reading of Figure 3: three queues, and only the *front* of
    the Parallel queue may move to Runnable when it reaches a syscall.
    Fully deterministic, but it gates every stopped process behind the
    front's compute, serializing workloads whose processes compute for
    long stretches — which contradicts the scaling the paper measures
    (clustal reaches 4.17x at 16 processes under DetTrace, §7.5).

:class:`LogicalClockScheduler` (the default)
    A deterministic-logical-time scheduler in the style of Kendo [32],
    which the paper cites for deterministic synchronization.  Every
    thread carries a logical clock advanced by the *work it requests*
    (not the jittered wall time it takes), so each trace stop has a
    deterministic timestamp.  A stopped thread is serviced when it holds
    the minimum (clock, spawn-index) among stopped threads AND no
    still-running thread could possibly stop with a smaller timestamp
    (its lower bound — current clock plus in-flight compute — is already
    past the candidate's).  Would-block outcomes deterministically
    defer the blocked thread until the next serviced syscall or thread
    exit, giving the fair retry of §5.6.1.  The result is the same
    guarantee as the queues — a syscall order that is a pure function of
    guest behaviour — without serializing compute.

    Decisions are O(log n): a heap of stopped candidates keyed on
    (det_clock, spawn_index), a stash of probe-ineligible candidates
    re-armed whenever the determinism epoch advances, and a lazily
    repaired min-heap over running threads' committed lower bounds.
    The decision *sequence* is byte-identical to the reference
    implementation below — enforced by the differential suite in
    ``tests/properties/test_sched_differential.py``.

:class:`LogicalClockRefScheduler` (``scheduler="logical-ref"``)
    The original sort-and-scan implementation of the same policy,
    O(threads²) per decision.  Kept solely as the differential-testing
    oracle: any schedule divergence between "logical" and "logical-ref"
    is a bug in the optimized structure, never a policy change.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..kernel.process import Thread, ThreadState

from ..kernel.costs import SYSCALL_TICK  # noqa: F401  (re-exported)

#: next_action verdicts.
SERVICE = "service"
PROBE = "probe"
WAIT = "wait"


def _is_stopped_at_syscall(thread: Thread) -> bool:
    return (thread.state is ThreadState.TRACE_STOP
            and thread.current_syscall is not None)


class SchedulerBase:
    """Interface the DetTrace tracer drives."""

    def add(self, thread: Thread) -> None:
        raise NotImplementedError

    def remove(self, thread: Thread) -> None:
        raise NotImplementedError

    def next_action(self) -> Tuple[str, Optional[Thread]]:
        """(SERVICE, t): run t's syscall for the first time;
        (PROBE, t): retry a previously-blocked syscall;
        (WAIT, None): nothing may be serviced yet."""
        raise NotImplementedError

    def completed(self, thread: Thread) -> None:
        """The serviced/probed syscall finished (value/error/exit)."""
        raise NotImplementedError

    def still_blocked(self, thread: Thread) -> None:
        """The probe reported would-block."""
        raise NotImplementedError

    def note_progress(self) -> None:
        """Guest-visible state changed outside a completed service (e.g.
        a blocked write transferred part of its buffer before blocking
        again): blocked candidates must become probe-eligible."""

    def notify_stop(self, thread: Thread) -> None:
        """The thread reached a trace stop (incremental-index hook; the
        reference schedulers rediscover stops by scanning instead)."""

    def notify_bound(self, thread: Thread) -> None:
        """The thread committed to more compute: its deterministic lower
        bound rose (incremental-index hook)."""

    def notify_running(self, thread: Thread) -> None:
        """The thread re-entered the running set after waiting for the
        sibling-serialization token (incremental-index hook)."""

    def blocked_count(self) -> int:
        """How many candidates are deterministically deferred (the
        Blocked-queue occupancy sampled into repro.obs)."""
        raise NotImplementedError

    def live_count(self) -> int:
        """How many live threads the scheduler currently manages."""
        raise NotImplementedError


class LogicalClockScheduler(SchedulerBase):
    """Deterministic logical-time servicing in O(log n) per decision.

    Blocked candidates are *skipped* — deterministically — until at least
    one other syscall has been serviced since their last failed probe:
    under the serialized-syscall discipline, all guest-visible state
    changes flow through serviced syscalls, so re-probing earlier would
    provably fail again.  This is exactly §5.6.1's "consult the blocked
    queue after each executed syscall", expressed in logical time.

    Data structures (all lazily repaired, so membership updates are
    amortized O(log n) and ``remove`` is O(1)):

    * ``_stop_heap`` — stopped candidates as ``(det_clock, spawn_index,
      thread)``.  An entry is live while the thread is still stopped at
      the same deterministic timestamp; anything else is discarded when
      it surfaces.
    * ``_stash`` — candidates whose last probe failed in the current
      epoch.  Every epoch advance (service, exit, note_progress) re-arms
      the whole stash, mirroring the reference policy of reconsidering
      all blocked threads after each serviced syscall.
    * ``_bound_heap`` — ``(det_bound + SYSCALL_TICK, spawn_index,
      thread, det_bound)`` lower bounds for running threads.  Stale
      bounds are *refreshed in place* rather than discarded, because
      seccomp-skipped syscalls advance ``det_bound`` without any
      scheduler notification; deterministic clocks only move forward, so
      a stale entry always surfaces before its refresh is needed.
    """

    def __init__(self):
        #: Insertion-ordered membership: thread -> spawn index.
        self._index: Dict[Thread, int] = {}
        self._next_index = 0
        #: Global count of completed services (the determinism epoch).
        self._service_seq = 0
        #: thread -> service_seq at its last failed probe.
        self._fail_seq: Dict[Thread, int] = {}
        #: Min-heap of stopped candidates: (det_clock, index, thread).
        self._stop_heap: List[Tuple[float, int, Thread]] = []
        #: Candidates parked until the next epoch advance.
        self._stash: List[Tuple[float, int, Thread]] = []
        #: Min-heap of running lower bounds:
        #: (det_bound + SYSCALL_TICK, index, thread, det_bound).
        self._bound_heap: List[Tuple[float, int, Thread, float]] = []

    # -- membership -------------------------------------------------------

    def add(self, thread: Thread) -> None:
        idx = self._next_index
        self._next_index += 1
        self._index[thread] = idx
        if _is_stopped_at_syscall(thread):
            heapq.heappush(self._stop_heap, (thread.det_clock, idx, thread))
        else:
            heapq.heappush(self._bound_heap,
                           (thread.det_bound + SYSCALL_TICK, idx, thread,
                            thread.det_bound))

    def remove(self, thread: Thread) -> None:
        if thread in self._index:
            self._index.pop(thread)
            self._fail_seq.pop(thread, None)
            # A thread exit is a guest-visible state change (it can
            # unblock wait4 and pipe readers): advance the epoch so
            # blocked candidates become probe-eligible again.  Heap
            # entries for the removed thread die lazily.
            self._bump_epoch()

    def live(self) -> List[Thread]:
        return [t for t in self._index if t.alive]

    # -- incremental-index hooks ---------------------------------------------

    def notify_stop(self, thread: Thread) -> None:
        idx = self._index.get(thread)
        if idx is not None:
            heapq.heappush(self._stop_heap, (thread.det_clock, idx, thread))

    def notify_bound(self, thread: Thread) -> None:
        idx = self._index.get(thread)
        if idx is not None:
            heapq.heappush(self._bound_heap,
                           (thread.det_bound + SYSCALL_TICK, idx, thread,
                            thread.det_bound))

    notify_running = notify_bound

    def _bump_epoch(self) -> None:
        self._service_seq += 1
        # Every epoch advance re-arms all probe-deferred candidates,
        # mirroring the reference scan that reconsiders them.
        if self._stash:
            for entry in self._stash:
                heapq.heappush(self._stop_heap, entry)
            del self._stash[:]

    # -- decision ------------------------------------------------------------

    def _peek_candidate(self) -> Optional[Tuple[float, int, Thread]]:
        """The live minimum of the stop heap, stashing probe-ineligible
        candidates and discarding dead entries.

        The validity checks are inlined (rather than going through
        ``Thread.alive`` / ``_is_stopped_at_syscall``) because this loop
        visits every stale heap entry exactly once and runs on every
        scheduling decision: property and call overhead dominates it.
        ``state is TRACE_STOP`` subsumes the liveness check (an exited
        thread is never in TRACE_STOP)."""
        heap = self._stop_heap
        heappop = heapq.heappop
        index_get = self._index.get
        fail_get = self._fail_seq.get
        seq = self._service_seq
        stopped = ThreadState.TRACE_STOP
        while heap:
            entry = heap[0]
            clock, idx, thread = entry
            if (index_get(thread) != idx
                    or thread.state is not stopped
                    or thread.current_syscall is None
                    or thread.det_clock != clock):
                heappop(heap)
                continue
            if fail_get(thread) == seq:
                # Nothing serviced since its last failed probe: park it
                # until the epoch advances.
                self._stash.append(heappop(heap))
                continue
            return entry
        return None

    def _min_running_bound(self) -> Optional[Tuple[float, int]]:
        """The smallest (det_bound + SYSCALL_TICK, index) over threads
        that could still stop on their own (running, not waiting for the
        sibling token, not already stopped).  Checks inlined as in
        :meth:`_peek_candidate`."""
        heap = self._bound_heap
        heappop = heapq.heappop
        index_get = self._index.get
        exited = ThreadState.EXITED
        stopped = ThreadState.TRACE_STOP
        while heap:
            bound_key, idx, thread, stamp = heap[0]
            state = thread.state
            if index_get(thread) != idx or state is exited:
                heappop(heap)
                continue
            if thread.token_queued or (state is stopped
                                       and thread.current_syscall is not None):
                # Temporarily outside the running set; re-pushed on the
                # token grant / service completion transition.
                heappop(heap)
                continue
            if thread.det_bound != stamp:
                # Seccomp-skipped syscalls raise det_bound without a
                # notify hook: refresh in place (bounds only grow, so
                # the stale entry surfaces before the fresh one is due).
                heapq.heapreplace(
                    heap, (thread.det_bound + SYSCALL_TICK, idx, thread,
                           thread.det_bound))
                continue
            return (bound_key, idx)
        return None

    def next_action(self) -> Tuple[str, Optional[Thread]]:
        top = self._peek_candidate()
        if top is None:
            return (WAIT, None)
        clock, idx, candidate = top
        bound = self._min_running_bound()
        if bound is not None and bound < (clock, idx):
            # Some running thread could stop with a smaller deterministic
            # timestamp: servicing now would commit the wrong order.
            return (WAIT, None)
        if candidate in self._fail_seq:
            return (PROBE, candidate)
        return (SERVICE, candidate)

    def completed(self, thread: Thread) -> None:
        self._service_seq += 1
        if self._stash:
            for entry in self._stash:
                heapq.heappush(self._stop_heap, entry)
            del self._stash[:]
        self._fail_seq.pop(thread, None)
        # The thread resumes into the running set; its stop-heap entry
        # dies lazily once current_syscall is cleared.
        self.notify_bound(thread)

    def still_blocked(self, thread: Thread) -> None:
        self._fail_seq[thread] = self._service_seq

    def note_progress(self) -> None:
        self._bump_epoch()

    def blocked_count(self) -> int:
        return len(self._fail_seq)

    def live_count(self) -> int:
        return len(self.live())


class LogicalClockRefScheduler(SchedulerBase):
    """The original O(threads²)-per-decision logical-clock scheduler.

    Kept as the differential-testing oracle for
    :class:`LogicalClockScheduler` (``scheduler="logical-ref"``): both
    must produce byte-identical service orders, virtual times and output
    hashes on every workload.
    """

    def __init__(self):
        self._threads: List[Thread] = []
        self._index: Dict[Thread, int] = {}
        self._next_index = 0
        #: Global count of completed services (the determinism epoch).
        self._service_seq = 0
        #: thread -> service_seq at its last failed probe.
        self._fail_seq: Dict[Thread, int] = {}

    # -- membership -------------------------------------------------------

    def add(self, thread: Thread) -> None:
        self._threads.append(thread)
        self._index[thread] = self._next_index
        self._next_index += 1

    def remove(self, thread: Thread) -> None:
        if thread in self._index:
            self._threads.remove(thread)
            self._index.pop(thread)
            self._fail_seq.pop(thread, None)
            # A thread exit is a guest-visible state change (it can
            # unblock wait4 and pipe readers): advance the epoch so
            # blocked candidates become probe-eligible again.
            self._service_seq += 1

    def live(self) -> List[Thread]:
        return [t for t in self._threads if t.alive]

    # -- decision ------------------------------------------------------------

    def _key(self, thread: Thread) -> Tuple[float, int]:
        return (thread.det_clock, self._index[thread])

    def next_action(self) -> Tuple[str, Optional[Thread]]:
        stopped = sorted(
            (t for t in self._threads if t.alive and _is_stopped_at_syscall(t)),
            key=self._key)
        if not stopped:
            return (WAIT, None)
        for candidate in stopped:
            blocked_at = self._fail_seq.get(candidate)
            if blocked_at is not None and blocked_at == self._service_seq:
                continue  # nothing changed since its last probe: skip
            cand_key = (candidate.det_clock, self._index[candidate])
            for other in self._threads:
                if other is candidate or not other.alive:
                    continue
                if _is_stopped_at_syscall(other):
                    continue  # later than the candidate, by the sort
                if other.token_queued:
                    # Waiting for the sibling token: it can only run after
                    # a deterministic token grant, which itself requires a
                    # serviced syscall — it cannot stop before this one.
                    continue
                # Lower bound on the other thread's next stop timestamp:
                # its committed bound plus the per-stop tick (every stop
                # advances the clock by at least SYSCALL_TICK past the
                # bound).  Ties resolve by spawn index, deterministically.
                if (other.det_bound + SYSCALL_TICK,
                        self._index[other]) < cand_key:
                    return (WAIT, None)
            if candidate in self._fail_seq:
                return (PROBE, candidate)
            return (SERVICE, candidate)
        return (WAIT, None)

    def completed(self, thread: Thread) -> None:
        self._service_seq += 1
        self._fail_seq.pop(thread, None)

    def still_blocked(self, thread: Thread) -> None:
        self._fail_seq[thread] = self._service_seq

    def note_progress(self) -> None:
        self._service_seq += 1

    def blocked_count(self) -> int:
        return len(self._fail_seq)

    def live_count(self) -> int:
        return len(self.live())


class StrictQueueScheduler(SchedulerBase):
    """The literal Figure 3 queues (kept for ablation studies)."""

    def __init__(self):
        self.parallel: Deque[Thread] = deque()
        self.runnable: Deque[Thread] = deque()
        self.blocked: Deque[Thread] = deque()
        self._probe_credit = 0

    def add(self, thread: Thread) -> None:
        self.parallel.append(thread)

    def remove(self, thread: Thread) -> None:
        for queue in (self.parallel, self.runnable, self.blocked):
            try:
                queue.remove(thread)
            except ValueError:
                pass

    def next_action(self) -> Tuple[str, Optional[Thread]]:
        while self.parallel and _is_stopped_at_syscall(self.parallel[0]):
            self.runnable.append(self.parallel.popleft())
        if self.runnable:
            return (SERVICE, self.runnable[0])
        if self.blocked and (self._probe_credit > 0
                             or not (self.parallel or self.runnable)):
            # Consult the blocked front after each executed syscall, and
            # whenever nothing else can run (§5.6.1's fair iteration).
            if self._probe_credit > 0:
                self._probe_credit -= 1
            return (PROBE, self.blocked[0])
        return (WAIT, None)

    def completed(self, thread: Thread) -> None:
        self._probe_credit = 1 if self.blocked else 0
        if self.runnable and self.runnable[0] is thread:
            self.runnable.popleft()
        elif self.blocked and self.blocked[0] is thread:
            self.blocked.popleft()
        else:
            self.remove(thread)
            return
        self.parallel.append(thread)

    def still_blocked(self, thread: Thread) -> None:
        if self.runnable and self.runnable[0] is thread:
            self.runnable.popleft()
            self.blocked.append(thread)
        elif self.blocked and self.blocked[0] is thread:
            self.blocked.rotate(-1)

    def note_progress(self) -> None:
        self._probe_credit = len(self.blocked)

    def blocked_count(self) -> int:
        return len(self.blocked)

    def live_count(self) -> int:
        return sum(1 for queue in (self.parallel, self.runnable, self.blocked)
                   for thread in queue if thread.alive)


def make_scheduler(kind: str) -> SchedulerBase:
    if kind == "logical":
        return LogicalClockScheduler()
    if kind == "logical-ref":
        return LogicalClockRefScheduler()
    if kind == "strict":
        return StrictQueueScheduler()
    raise ValueError("unknown scheduler kind %r" % kind)


#: Backwards-compatible name: the reproducible scheduler of §5.6.
ReproducibleScheduler = LogicalClockScheduler
