"""The DetTrace tracer: determinization driven by the reproducible scheduler.

This object is the shaded box of the paper's Figure 2: it sits between
the unmodified guest processes and the unmodified kernel, intercepting
syscalls (via the ptrace analog, filtered by seccomp) and irreproducible
instructions (via hardware trap support), and servicing them in the
deterministic order chosen by the three-queue scheduler of §5.6.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..cpu import instructions as insn
from ..kernel.costs import (
    EXECVE_TRACER_COST,
    INSTR_TRAP_COST,
    TRACEE_WAKEUP_LATENCY,
    TRACER_HANDLER_COST,
    TRACER_REPLAY_COST,
    TRACER_SCHED_COST,
)
from ..kernel.process import Process, Thread
from ..kernel.types import CpuidResult
from ..obs.events import DEBUG, TRAP, ObsEvent
from ..obs.profiler import HANDLER, INTERCEPTION, SCHEDULER
from ..obs.trace import Span
from ..tracer.ptrace import TracerBase
from ..tracer.seccomp import SeccompFilter
from .config import ContainerConfig
from .errors import BusyWaitError
from .handlers import HandlerContext, build_handler_table, passthrough
from .inode_table import InodeTable
from .logical_time import LogicalClock
from .namespaces import UidGidMap
from .prng import Lfsr

#: What cpuid reports inside the container: a canonical uniprocessor with
#: no TSX and no hardware randomness (§5.8).
CANONICAL_CPUID = CpuidResult(
    vendor="GenuineIntel",
    brand="DetTrace Virtual CPU @ 1.00GHz",
    family=6,
    model=0,
    cores=1,
    features=["avx"],
)


class DetTraceTracer(TracerBase):
    """Determinizing tracer over one simulated kernel."""

    def __init__(self, config: ContainerConfig, uidmap: UidGidMap):
        super().__init__()
        self.config = config
        self.uidmap = uidmap
        self.prng = Lfsr(config.prng_seed)
        self.logical = LogicalClock(config.epoch)
        self.inodes = InodeTable()
        self.handlers = build_handler_table()
        #: Cross-retry handler scratch (partial IO accumulation).
        self.io_state: Dict[Tuple[str, int], Any] = {}
        self._pumping = False
        self._last_proc: Process = None
        self.sched = None  # set in attach (import cycle avoidance)
        #: Hot-path dispatch caches.  The handler table is frozen after
        #: construction, so name -> handler (with the passthrough default
        #: applied) memoizes the two-step lookup; HandlerContext binds
        #: only (tracer, thread), so one context per thread is reused
        #: across every service instead of allocated per syscall.
        self._handler_cache: Dict[str, Any] = {}
        self._ctx_cache: Dict[Thread, HandlerContext] = {}

    @property
    def debug_log(self) -> list:
        """--debug N trace lines, rendered from the structured events
        (see ContainerConfig.debug and repro.obs)."""
        return self.obs.render_debug()

    def attach(self, kernel) -> None:
        from .scheduler import make_scheduler

        super().attach(kernel)
        self.seccomp = SeccompFilter(
            enabled=self.config.use_seccomp,
            kernel_version=kernel.host.machine.kernel_version)
        self.sched = make_scheduler(self.config.scheduler)

    # ------------------------------------------------------------------
    # instruction interception (§5.8)
    # ------------------------------------------------------------------

    def traps_instruction(self, thread: Thread, name: str) -> bool:
        machine = self.kernel.host.machine
        if name in (insn.RDTSC, insn.RDTSCP):
            return self.config.trap_rdtsc
        if name == insn.CPUID:
            return (self.config.mask_cpuid and machine.cpuid_faulting
                    and machine.kernel_version_at_least(4, 12))
        if name == insn.RDPMC:
            return True
        return False

    def on_instruction(self, thread: Thread, name: str) -> Tuple[Any, float]:
        finish = self.charge(INSTR_TRAP_COST, INTERCEPTION)
        nspid = thread.process.nspid
        self.obs.count(("trap", name))
        self.obs.record(ObsEvent(vts=thread.det_clock, pid=nspid, index=-1,
                                 kind=TRAP, name=name))
        self.obs.debug(2, ObsEvent(vts=thread.det_clock, pid=nspid, index=-1,
                                   kind=DEBUG, name=name,
                                   detail="trap %s" % name))
        if name in (insn.RDTSC, insn.RDTSCP):
            self.counters.rdtsc_intercepted += 1
            return (self.logical.next_rdtsc(thread.process.pid), finish)
        if name == insn.CPUID:
            self.counters.cpuid_intercepted += 1
            return (CANONICAL_CPUID, finish)
        if name == insn.RDPMC:
            return (0, finish)
        raise AssertionError("trapped un-trappable instruction %r" % name)

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------

    def on_process_spawn(self, proc: Process) -> None:
        self.counters.process_spawns += 1
        self.sched.add(proc.main_thread)

    def on_thread_spawn(self, thread: Thread) -> None:
        self.sched.add(thread)

    def on_thread_exit(self, thread: Thread) -> None:
        self.sched.remove(thread)
        self._ctx_cache.pop(thread, None)

    def on_process_exit(self, proc: Process) -> None:
        for thread in proc.threads:
            self.sched.remove(thread)
            self._ctx_cache.pop(thread, None)
        self.logical.forget_process(proc.pid)

    def on_execve(self, proc: Process) -> None:
        """Rewrite the fresh image's vDSO and allocate the scratch page
        (§5.3, §5.10)."""
        if self.config.patch_vdso:
            proc.vdso_patched = True
            self.counters.vdso_patches += 1
            self.charge(EXECVE_TRACER_COST, HANDLER)
            self.charge(self.poke_memory(8))

    def on_busy_wait(self, thread: Thread) -> None:
        raise BusyWaitError(thread.process.nspid, thread.tid)

    # ------------------------------------------------------------------
    # the scheduling pump (§5.6)
    # ------------------------------------------------------------------

    def on_trace_stop(self, thread: Thread) -> None:
        self.counters.syscall_events += 1
        self.sched.notify_stop(thread)
        self._pump()

    def on_thread_progress(self, thread: Thread) -> None:
        # A running thread raised its deterministic bound; a stopped
        # candidate may have become eligible.
        self.sched.notify_bound(thread)
        self._pump()

    def on_token_granted(self, thread: Thread) -> None:
        # The thread re-enters the running set *now*; incremental
        # schedulers must see its bound again before the next decision
        # (its next stop/progress hook may come only after unintercepted
        # work has already advanced the clock).
        self.sched.notify_running(thread)

    def on_quiescent(self) -> bool:
        return self._pump()

    def _pump(self) -> bool:
        """Service/probe stopped threads in the deterministic order."""
        from .scheduler import PROBE, SERVICE, WAIT

        if self._pumping:
            return False
        self._pumping = True
        progress = False
        failed_this_pump = set()
        try:
            while True:
                action, thread = self.sched.next_action()
                if action == WAIT or thread in failed_this_pump:
                    break
                if action == SERVICE:
                    ok = self._service(thread)
                else:
                    ok = self._probe(thread)
                if ok:
                    progress = True
                    failed_this_pump.clear()
                else:
                    failed_this_pump.add(thread)
        finally:
            self._pumping = False
        return progress

    # ------------------------------------------------------------------
    # servicing one syscall
    # ------------------------------------------------------------------

    def _run_handler(self, thread: Thread):
        call = thread.current_syscall
        handler = self._handler_cache.get(call.name)
        if handler is None:
            handler = self.handlers.get(call.name, passthrough)
            self._handler_cache[call.name] = handler
        ctx = self._ctx_cache.get(thread)
        if ctx is None:
            ctx = HandlerContext(self, thread)
            self._ctx_cache[thread] = ctx
        return handler(ctx, thread, call)

    def _service(self, thread: Thread) -> bool:
        self.begin_span()
        if thread.process is not self._last_proc:
            self.counters.sched_requests += 1
            self.obs.count(("sched", "context_switch"))
            self.charge(TRACER_SCHED_COST, SCHEDULER)
            self._last_proc = thread.process
        self.charge(self.seccomp.stop_cost, INTERCEPTION)
        self.charge(TRACER_HANDLER_COST, HANDLER)
        thread.obs_attempt += 1
        outcome, payload = self._run_handler(thread)
        if self.config.debug:
            self._debug_line(thread, outcome, payload)
        if outcome == "block":
            self.counters.replays_blocking += 1
            self.charge(TRACER_REPLAY_COST, SCHEDULER)
            self._emit_span(thread, outcome)
            self.sched.still_blocked(thread)
            self.kernel.release_step_token(thread)
            return False
        self._emit_span(thread, outcome)
        self._complete(thread, outcome, payload)
        return True

    def _debug_line(self, thread: Thread, outcome: str, payload) -> None:
        call = thread.current_syscall
        args = ", ".join("%s=%.40r" % kv for kv in sorted(call.args.items()))
        shown = payload
        if isinstance(shown, bytes) and len(shown) > 24:
            shown = shown[:24] + b"..."
        self.obs.debug(1, ObsEvent(
            vts=thread.det_clock, pid=thread.process.nspid,
            index=thread.current_syscall_index, kind=DEBUG, name=call.name,
            detail="%s(%s) -> %s %.60r" % (call.name, args, outcome, shown)))

    def _disposition(self, thread: Thread, call, outcome: str) -> str:
        """Classify how this instance was determinized (repro.obs)."""
        if outcome == "block":
            return "blocked"
        if thread.obs_faulted:
            return "injected"
        return "rewritten" if call.name in self.handlers else "passthrough"

    def _emit_span(self, thread: Thread, outcome: str) -> None:
        """One trace span per service/probe, keyed only on deterministic
        coordinates: det_clock, nspid, per-process index, attempt."""
        call = thread.current_syscall
        if call is None:
            return
        disposition = self._disposition(thread, call, outcome)
        self.obs.span(Span(
            name=call.name, cat=disposition, pid=thread.process.nspid,
            tid=self.kernel.det_tid(thread), vts=thread.det_clock,
            dur=self._span_cost, index=thread.current_syscall_index,
            attempt=thread.obs_attempt))
        if outcome != "block":
            # Count each instance once, at its completing attempt.
            self.obs.count(("syscall", call.name, disposition))
            thread.obs_faulted = False

    def _probe(self, thread: Thread) -> bool:
        """Re-try a blocked thread's syscall; True if it completed."""
        self.begin_span()
        self.charge(TRACER_REPLAY_COST, SCHEDULER)
        thread.obs_attempt += 1
        outcome, payload = self._run_handler(thread)
        if outcome == "block":
            self.counters.replays_blocking += 1
            self._emit_span(thread, outcome)
            self.sched.still_blocked(thread)
            self.kernel.release_step_token(thread)
            return False
        self._emit_span(thread, outcome)
        self._complete(thread, outcome, payload)
        return True

    def _complete(self, thread: Thread, outcome: str, payload) -> None:
        # Advance the scheduler's service epoch even for exits: an exit is
        # a state change that can unblock wait4 probes.
        self.sched.completed(thread)
        blocked = self.sched.blocked_count()
        self.obs.observe("sched/blocked", blocked)
        self.obs.gauge_max("sched/blocked_peak", blocked)
        self.obs.gauge_max("sched/threads_peak", self.sched.live_count())
        if outcome == "exited":
            # terminate_process already removed the thread from the
            # scheduler via the exit hooks; nothing to resume.
            return
        # Resume eagerly at the tracer's finish time so the thread's next
        # operation (and hence its deterministic bound) is committed
        # immediately; the context-switch-back latency is owed as wall
        # time on its next compute segment instead.  Without this, the
        # deterministic service order would convoy on wakeup latency.
        thread.pending_latency += TRACEE_WAKEUP_LATENCY
        if outcome == "value":
            self.kernel.tracer_resume(thread, self.busy_until, value=payload)
        elif outcome == "error":
            self.kernel.tracer_resume(thread, self.busy_until, exc=payload)
        elif outcome == "execve":
            self.kernel.tracer_execve(thread, payload, at=self.busy_until)
        elif outcome == "sleep":
            # Timer emulation disabled: let virtual time pass, then return.
            at = max(self.busy_until, self.kernel.clock.now + payload)
            self.kernel.tracer_resume(thread, at, value=0)
        else:
            raise AssertionError("unknown outcome %r" % outcome)
