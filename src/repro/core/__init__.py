"""DetTrace: the reproducible container abstraction (paper §5)."""

from .config import (
    CANONICAL_ENV,
    CacheConfig,
    CheckpointConfig,
    ContainerConfig,
    ablated,
    full_config,
)
from .container import (
    CRASHED,
    DEADLOCK,
    OK,
    RESUMED,
    RETRIED,
    TIMEOUT,
    UNSUPPORTED,
    ContainerResult,
    DetTrace,
    NativeRunner,
)
from .errors import (
    BusyWaitError,
    ContainerDeadlock,
    ContainerError,
    ContainerTimeout,
    UnsupportedSyscallError,
)
from .image import Image
from .inode_table import InodeTable
from .logical_time import DETTRACE_EPOCH, LogicalClock
from .prng import Lfsr
from .scheduler import ReproducibleScheduler
from .tracer import DetTraceTracer

__all__ = [
    "BusyWaitError",
    "CANONICAL_ENV",
    "CRASHED",
    "CacheConfig",
    "CheckpointConfig",
    "RESUMED",
    "RETRIED",
    "ContainerConfig",
    "ContainerDeadlock",
    "ContainerError",
    "ContainerResult",
    "ContainerTimeout",
    "DEADLOCK",
    "DETTRACE_EPOCH",
    "DetTrace",
    "DetTraceTracer",
    "Image",
    "InodeTable",
    "Lfsr",
    "LogicalClock",
    "NativeRunner",
    "OK",
    "ReproducibleScheduler",
    "TIMEOUT",
    "UNSUPPORTED",
    "UnsupportedSyscallError",
    "ablated",
    "full_config",
]
