"""Container-level errors (all reproducible: paper §4, §5.9)."""

from __future__ import annotations


class ContainerError(Exception):
    """Base for reproducible DetTrace container errors."""


class UnsupportedSyscallError(ContainerError):
    """The program used an operation DetTrace does not support (§5.9)."""

    def __init__(self, syscall: str, reason: str = ""):
        self.syscall = syscall
        self.reason = reason
        msg = "unsupported operation: %s" % syscall
        if reason:
            msg += " (%s)" % reason
        super().__init__(msg)


class BusyWaitError(ContainerError):
    """A thread busy-waited past the scheduler's compute budget (§5.9)."""

    def __init__(self, pid: int, tid: int):
        self.pid = pid
        self.tid = tid
        super().__init__("busy-waiting detected in pid %d (tid %d)" % (pid, tid))


class ContainerDeadlock(ContainerError):
    """All container processes are blocked with no possible waker."""


class ContainerTimeout(ContainerError):
    """The containerized run exceeded its virtual-time budget."""

    def __init__(self, limit: float):
        self.limit = limit
        super().__init__("container exceeded %g virtual seconds" % limit)
