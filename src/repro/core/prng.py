"""DetTrace's deterministic randomness: a simple LFSR PRNG (paper §5.2).

``getrandom`` and reads of ``/dev/[u]random`` inside the container are
served from this generator.  The seed is part of the container
configuration, so "true randomness" can be introduced in a controlled,
replayable way.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


class Lfsr:
    """A 64-bit xorshift* generator (LFSR-class, tiny and deterministic)."""

    def __init__(self, seed: int = 0):
        # A zero state would be a fixed point; displace it like real LFSRs.
        self.state = (seed & _MASK64) or 0x9E3779B97F4A7C15

    def next_u64(self) -> int:
        x = self.state
        x ^= (x >> 12) & _MASK64
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27) & _MASK64
        self.state = x & _MASK64
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def bytes(self, n: int) -> bytes:
        out = bytearray()
        while len(out) < n:
            out.extend(self.next_u64().to_bytes(8, "little"))
        return bytes(out[:n])

    def randrange(self, n: int) -> int:
        if n <= 0:
            raise ValueError("randrange needs n > 0")
        return self.next_u64() % n
