"""OS randomness (paper §5.2): getrandom served from the container LFSR.

Reads of ``/dev/random``/``/dev/urandom`` are handled by device
replacement at container setup (the named-pipe analog); the open handler
in :mod:`.filesystem` counts those opens for Table 2.
"""

from __future__ import annotations

from . import HandlerContext, Outcome, passthrough


def handle_getrandom(ctx: HandlerContext, thread, call) -> Outcome:
    if not ctx.config.deterministic_randomness:
        return passthrough(ctx, thread, call)
    count = call.args.get("count", 0)
    ctx.poke(max(1, count // 8))  # fill the user buffer
    return ("value", ctx.prng.bytes(count))


HANDLERS = {
    "getrandom": handle_getrandom,
}
