"""Determinization handlers: one per irreproducible syscall family (§5).

A handler receives a :class:`HandlerContext`, the stopped thread and its
syscall, and returns an outcome tuple:

* ``("value", v)`` — inject result *v* into the tracee;
* ``("error", SyscallError)`` — inject ``-errno``;
* ``("block", channels)`` — the non-blocking probe said would-block; the
  scheduler moves the thread to its Blocked queue (§5.6.1);
* ``("exited", None)`` — the syscall terminated the thread/process;
* ``("execve", ExecveReplace)`` — the process image is being replaced.

Handlers may execute the (possibly rewritten) syscall zero, one or many
times via ``ctx.execute`` — that is the wrap/skip/retry toolbox of §5.10.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ...kernel.inode import Inode
from ...kernel.ops import Syscall
from ...kernel.process import Thread

Outcome = Tuple[str, Any]
Handler = Callable[["HandlerContext", Thread, Syscall], Outcome]


class HandlerContext:
    """Everything a determinization handler may touch."""

    def __init__(self, tracer, thread: Thread):
        self.tracer = tracer
        self.thread = thread
        self.kernel = tracer.kernel
        self.config = tracer.config
        self.prng = tracer.prng
        self.logical = tracer.logical
        self.inodes = tracer.inodes
        self.uidmap = tracer.uidmap
        self.counters = tracer.counters
        #: Cross-retry handler state (partial-IO accumulation, Fig. 4).
        self.io_state = tracer.io_state

    def execute(self, call: Syscall) -> Outcome:
        """Run *call* in the kernel as a non-blocking probe."""
        return self.kernel.tracer_execute(self.thread, call, nonblocking=True)

    def note_progress(self) -> None:
        """Tell the scheduler guest-visible state changed even though the
        current syscall is still blocked (partial IO transfer)."""
        self.tracer.sched.note_progress()

    def peek(self, words: int = 1) -> None:
        """Account for PTRACE_PEEKDATA-style tracee memory reads."""
        self.tracer.charge(self.tracer.peek_memory(words))

    def poke(self, words: int = 1) -> None:
        self.tracer.charge(self.tracer.poke_memory(words))

    def resolve(self, path: str) -> Optional[Inode]:
        """Resolve *path* in the tracee's namespace; None if absent."""
        proc = self.thread.process
        try:
            return self.kernel.fs.resolve(proc.root, proc.cwd, path)
        except Exception:
            return None


def passthrough(ctx: HandlerContext, thread: Thread, call: Syscall) -> Outcome:
    """Execute unmodified: for syscalls that only need serialization."""
    tag, payload = ctx.execute(call)
    if tag == "ok":
        return ("value", payload)
    if tag == "err":
        return ("error", payload)
    if tag == "block":
        return ("block", payload)
    if tag == "exit":
        return ("exited", None)
    if tag == "execve":
        return ("execve", payload)
    if tag == "sleep":
        # A blocking sleep reached a passthrough handler (timer emulation
        # disabled): report it upward so the tracer can emulate the delay.
        return ("sleep", payload)
    raise AssertionError("unexpected outcome %r" % tag)


def build_handler_table() -> Dict[str, Handler]:
    """Assemble the full name -> handler dispatch table."""
    from . import filesystem, io, machine, procs, randomness, time as time_mod

    table: Dict[str, Handler] = {}
    for module in (filesystem, io, machine, procs, randomness, time_mod):
        table.update(module.HANDLERS)
    return table
