"""Processes, signals and unsupported operations (§5.1, §5.4, §5.9)."""

from __future__ import annotations

from ..errors import UnsupportedSyscallError
from . import HandlerContext, Outcome, passthrough


def handle_spawn(ctx: HandlerContext, thread, call) -> Outcome:
    """Serialized spawn: namespace PIDs come out sequentially (§5.1)."""
    ctx.peek(2)  # argv/env pointers
    return passthrough(ctx, thread, call)


def handle_kill(ctx: HandlerContext, thread, call) -> Outcome:
    """Self-signals only: cross-process signals are unsupported (§5.4)."""
    target = call.args.get("pid")
    if target != thread.process.nspid:
        raise UnsupportedSyscallError(
            "kill", "signals between processes (pid %s)" % target)
    return passthrough(ctx, thread, call)


def handle_download(ctx: HandlerContext, thread, call) -> Outcome:
    """Checksum-pinned downloads only (§3): the delivered bytes are a
    pure function of the pinned digest, and the volatile transfer
    metadata (date, server, request ids) is canonicalized away."""
    import hashlib

    url = call.args.get("url", "")
    expected = ctx.config.allowed_downloads.get(url)
    if expected is None:
        raise UnsupportedSyscallError(
            "download", "no pinned checksum for %s" % url)
    tag, payload = ctx.execute(call)
    if tag == "err":
        return ("error", payload)
    body, _headers = payload
    actual = hashlib.sha256(body).hexdigest()
    if actual != expected:
        raise UnsupportedSyscallError(
            "download", "checksum mismatch for %s (%s != %s)"
            % (url, actual[:12], expected[:12]))
    canonical_headers = {"Date": "0", "Server": "dettrace",
                         "X-Request-Id": "0" * 16}
    ctx.poke(max(1, len(body) // 512))
    return ("value", (body, canonical_headers))


def handle_socketpair(ctx: HandlerContext, thread, call) -> Outcome:
    """Container-internal IPC: a socketpair is just a crossed pipe pair,
    fully covered by the serialized-syscall discipline and the
    partial-IO retry machinery — reproducible, unlike network sockets."""
    if not ctx.config.allow_container_ipc_sockets:
        raise UnsupportedSyscallError("socketpair", "sockets disabled")
    return passthrough(ctx, thread, call)


def handle_socket(ctx: HandlerContext, thread, call) -> Outcome:
    """Family-aware gate: AF_UNIX sockets are container-internal IPC
    (the socketpair carve-out); AF_INET is only admitted when the
    deterministic-loopback subsystem is enabled or sockets pass through
    wholesale (reject_sockets ablated)."""
    from ...kernel import sockets as socklib

    family = call.args.get("family", socklib.AF_INET)
    if family == socklib.AF_UNIX:
        if not ctx.config.allow_container_ipc_sockets:
            raise UnsupportedSyscallError("socket", "sockets disabled")
    elif ctx.config.reject_sockets and not ctx.config.deterministic_loopback:
        raise UnsupportedSyscallError("socket", "network communication")
    return passthrough(ctx, thread, call)


def handle_connect(ctx: HandlerContext, thread, call) -> Outcome:
    """Address-aware gate: in-container rendezvous (AF_UNIX paths,
    loopback AF_INET) is deterministic; anything naming an external host
    is network communication and keeps the §5.9 rejection."""
    from ...kernel import sockets as socklib

    address = call.args.get("address", "")
    if socklib.is_unix_address(address):
        if not ctx.config.allow_container_ipc_sockets:
            raise UnsupportedSyscallError("connect", "sockets disabled")
    elif socklib.is_loopback_address(address):
        if ctx.config.reject_sockets and not ctx.config.deterministic_loopback:
            raise UnsupportedSyscallError("connect", "network communication")
    elif ctx.config.reject_sockets:
        raise UnsupportedSyscallError("connect", "network communication")
    outcome = passthrough(ctx, thread, call)
    if outcome[0] == "value":
        ctx.counters.socket_connects += 1
    return outcome


def handle_accept(ctx: HandlerContext, thread, call) -> Outcome:
    outcome = passthrough(ctx, thread, call)
    if outcome[0] == "value":
        ctx.counters.socket_accepts += 1
    return outcome


def _unsupported(name: str, reason: str):
    def handler(ctx, thread, call):
        raise UnsupportedSyscallError(name, reason)

    return handler


HANDLERS = {
    "spawn_process": handle_spawn,
    # The long tail of miscellaneous syscalls DetTrace does not yet
    # support (§7.1.1).
    "perf_event_open": _unsupported("perf_event_open", "hardware counters"),
    "inotify_init": _unsupported("inotify_init", "asynchronous fs events"),
    "bpf": _unsupported("bpf", "kernel programs"),
    "spawn_thread": passthrough,
    "execve": handle_spawn,
    "exit": passthrough,
    "exit_thread": passthrough,
    "wait4": passthrough,
    "futex": passthrough,
    "sigaction": passthrough,
    "kill": handle_kill,
    "socket": handle_socket,
    "download": handle_download,
    "socketpair": handle_socketpair,
    "connect": handle_connect,
    # The rest of the deterministic socket surface only needs the
    # serialized-syscall discipline: addresses, backlogs and the
    # ephemeral-port counter are already pure container state.
    "bind": passthrough,
    "listen": passthrough,
    "accept": handle_accept,
    "shutdown": passthrough,
    "getsockname": passthrough,
    "setuid": passthrough,
    "setgid": passthrough,
    "getrandom_unused": passthrough,
}
