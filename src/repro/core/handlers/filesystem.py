"""Files and directories (paper §5.5, §7.3).

* ``open`` — detect file creation by checking path existence before the
  call reaches the kernel and identifying the new real inode afterwards
  (the /proc trick), so recycled real inodes get fresh virtual inodes;
* ``stat``/``lstat``/``fstat`` — rewrite inode, timestamps, uid/gid,
  device and (the §7.3 portability extension) directory sizes;
* ``getdents`` — sort entries by name and virtualize their inode numbers;
* ``utime`` — replace null timestamps with reproducible ones, allocated
  in the tracee scratch page (§5.10).
"""

from __future__ import annotations

import dataclasses

from ...kernel.fds import FdKind
from ...kernel.types import Dirent, StatResult
from . import HandlerContext, Outcome, passthrough

#: The block size and device id DetTrace presents (§5.8's "canonical
#: cache size" idea applied to the filesystem).
CANONICAL_BLKSIZE = 4096
CANONICAL_DEV = 1

#: Deterministic directory size model: a pure function of entry count
#: (the extension §7.3 added after the cross-machine experiment).
DIR_SIZE_BASE = 4096
DIR_SIZE_PER_ENTRY = 32

RANDOM_DEVICES = ("/dev/random", "/dev/urandom")


def _deterministic_dir_size(n_entries: int) -> int:
    return DIR_SIZE_BASE + DIR_SIZE_PER_ENTRY * n_entries


def handle_open(ctx: HandlerContext, thread, call) -> Outcome:
    path = call.args.get("path", "")
    ctx.peek(1 + len(path) // 32)  # read the path string from the tracee
    if path in RANDOM_DEVICES:
        ctx.counters.urandom_opens += 1
    existed = ctx.resolve(path) is not None
    tag, payload = ctx.execute(call)
    if tag == "ok" and ctx.config.virtualize_inodes:
        # Examine the newly-opened fd (the /proc/<pid>/fd analog) to find
        # the real inode, and detect creation via the pre/post check.
        of = thread.process.fdtable.get(payload)
        if of.inode is not None and not existed:
            ctx.inodes.register_new_file(of.inode.ino)
    if tag == "ok":
        return ("value", payload)
    if tag == "err":
        return ("error", payload)
    if tag == "block":
        return ("block", payload)
    raise AssertionError("open: unexpected outcome %r" % tag)


def _virtualize_stat(ctx: HandlerContext, st: StatResult,
                     n_dir_entries: int = 0) -> StatResult:
    cfg = ctx.config
    new = dataclasses.replace(st)
    if cfg.virtualize_inodes:
        new.st_ino = ctx.inodes.virtual_ino(st.st_ino)
        new.st_atime = 0.0
        new.st_ctime = 0.0
        new.st_mtime = float(ctx.inodes.virtual_mtime(st.st_ino))
        new.st_dev = CANONICAL_DEV
        new.st_blksize = CANONICAL_BLKSIZE
    if cfg.map_user_to_root:
        new.st_uid = ctx.uidmap.to_container_uid(st.st_uid)
        new.st_gid = ctx.uidmap.to_container_gid(st.st_gid)
    if cfg.deterministic_dir_sizes and st.is_dir():
        new.st_size = _deterministic_dir_size(n_dir_entries)
    new.st_blocks = (new.st_size + 511) // 512
    return new


def _stat_family(ctx: HandlerContext, thread, call, resolve_node) -> Outcome:
    if "path" in call.args:
        ctx.peek(1)
    tag, payload = ctx.execute(call)
    if tag == "err":
        return ("error", payload)
    if tag != "ok":
        raise AssertionError("stat: unexpected outcome %r" % tag)
    node = resolve_node()
    n_entries = len(node.entries) if node is not None and node.is_dir else 0
    ctx.poke(4)  # write the stat struct back
    return ("value", _virtualize_stat(ctx, payload, n_entries))


def handle_stat(ctx: HandlerContext, thread, call) -> Outcome:
    return _stat_family(ctx, thread, call,
                        lambda: ctx.resolve(call.args["path"]))


def handle_fstat(ctx: HandlerContext, thread, call) -> Outcome:
    def node():
        try:
            return thread.process.fdtable.get(call.args["fd"]).inode
        except Exception:
            return None

    return _stat_family(ctx, thread, call, node)


def handle_getdents(ctx: HandlerContext, thread, call) -> Outcome:
    """The chunked API means the fs hands entries back a buffer at a
    time; to sort, DetTrace drains the whole stream on the first call
    (injecting repeat syscalls, §5.10), sorts once, and serves the
    caller's chunks from the sorted buffer."""
    if not ctx.config.sort_getdents:
        tag, payload = ctx.execute(call)
        if tag == "err":
            return ("error", payload)
        if ctx.config.virtualize_inodes:
            payload = [Dirent(d_ino=ctx.inodes.virtual_ino(d.d_ino),
                              d_name=d.d_name, d_type=d.d_type)
                       for d in payload]
        return ("value", payload)

    fd = call.args.get("fd")
    max_entries = call.args.get("max_entries")
    try:
        of = thread.process.fdtable.get(fd)
    except Exception:
        return passthrough(ctx, thread, call)
    buffered = getattr(of, "_dt_dirents", None)
    if buffered is not None and of.offset == 0 and buffered["pos"] > 0:
        buffered = None   # the guest lseek'd back: rewind means re-drain
    if buffered is None:
        # Drain: re-execute until the kernel's cursor is exhausted
        # (syscall injection, §5.10), then sort once.
        collected = []
        while True:
            tag, payload = ctx.execute(call.replaced(max_entries=None))
            if tag == "err":
                return ("error", payload)
            if tag != "ok":
                raise AssertionError("getdents: unexpected outcome %r" % tag)
            if not payload:
                break
            collected.extend(payload)
        entries = sorted(collected, key=lambda d: d.d_name)
        if ctx.config.virtualize_inodes:
            entries = [Dirent(d_ino=ctx.inodes.virtual_ino(d.d_ino),
                              d_name=d.d_name, d_type=d.d_type)
                       for d in entries]
        ctx.counters.getdents_sorted += 1
        buffered = {"entries": entries, "pos": 0}
        of._dt_dirents = buffered   # per-description tracer scratch
    entries = buffered["entries"]
    pos = buffered["pos"]
    chunk = entries[pos:] if max_entries is None else entries[pos:pos + max_entries]
    buffered["pos"] = pos + len(chunk)
    ctx.poke(1 + len(chunk) // 4)
    return ("value", chunk)


def handle_utime(ctx: HandlerContext, thread, call) -> Outcome:
    if not ctx.config.virtualize_inodes:
        return passthrough(ctx, thread, call)
    # A touch must be *visible* through the virtual mtime map, or
    # touch-driven incremental rebuilds stop working (§5.5's "could
    # easily be added" extension).
    node = ctx.resolve(call.args.get("path", ""))
    if node is not None:
        stamp = ctx.inodes.touch(node.ino)
    else:
        stamp = ctx.inodes.mtime_clock
    if call.args.get("times") is None:
        # Null times would make the kernel stamp wall-clock now; allocate
        # a reproducible timespec in the tracee scratch page instead.
        ctx.poke(4)
        call = call.replaced(times=(0.0, float(stamp)))
    return passthrough(ctx, thread, call)


HANDLERS = {
    "open": handle_open,
    "stat": handle_stat,
    "lstat": handle_stat,
    "fstat": handle_fstat,
    "getdents": handle_getdents,
    "utime": handle_utime,
    # Mutating namei operations only need serialization; their results
    # are deterministic once ordered.
    "mkdir": passthrough,
    "mkfifo": passthrough,
    "rmdir": passthrough,
    "unlink": passthrough,
    "rename": passthrough,
    "link": passthrough,
    "symlink": passthrough,
    "readlink": passthrough,
    "chmod": passthrough,
    "chown": passthrough,
    "truncate": passthrough,
    "access": passthrough,
    "chdir": passthrough,
    "chroot": passthrough,
    "pipe": passthrough,
    "close": passthrough,
    "ioctl": passthrough,
}
