"""Machine identity masking (paper §3, §5.8).

The container always reports a simple canonical machine — Linux 4.0 on a
single-core x86-64 — which widens the equivalence class of hosts that
must observe identical results (portability).
"""

from __future__ import annotations

from ...kernel.types import StatfsResult, SysInfo, TimesResult, UtsName
from . import HandlerContext, Outcome, passthrough

CANONICAL_UTSNAME = UtsName(
    sysname="Linux",
    nodename="dettrace",
    release="4.0.0",
    version="#1 SMP DetTrace",
    machine="x86_64",
)

CANONICAL_RAM = 4 << 30
CANONICAL_NPROCS = 1


def handle_uname(ctx: HandlerContext, thread, call) -> Outcome:
    if not ctx.config.mask_machine:
        return passthrough(ctx, thread, call)
    ctx.poke(5)
    return ("value", CANONICAL_UTSNAME)


def handle_sysinfo(ctx: HandlerContext, thread, call) -> Outcome:
    if not ctx.config.mask_machine:
        return passthrough(ctx, thread, call)
    ctx.poke(3)
    return ("value", SysInfo(uptime=1000.0, total_ram=CANONICAL_RAM,
                             nprocs=CANONICAL_NPROCS))


def handle_times(ctx: HandlerContext, thread, call) -> Outcome:
    """CPU accounting becomes a logical function of work requested (the
    same trick as rdtsc: a linear counter, §5.8)."""
    if not ctx.config.virtualize_time:
        return passthrough(ctx, thread, call)
    ticks = ctx.logical.time_calls(thread.process.pid) + 1
    ctx.logical.next_time(thread.process.pid)
    ctx.poke(2)
    return ("value", TimesResult(utime=float(ticks), stime=0.0,
                                 cutime=0.0, cstime=0.0))


CANONICAL_STATFS = StatfsResult(f_type=0xEF53, f_bsize=4096,
                                f_blocks=1 << 20, f_bfree=1 << 19,
                                f_files=1 << 16, f_ffree=1 << 15)


def handle_statfs(ctx: HandlerContext, thread, call) -> Outcome:
    """Free-space counters are pure host state: report canonical ones
    (quasi-determinism covers real exhaustion, §3)."""
    if not ctx.config.mask_machine:
        return passthrough(ctx, thread, call)
    tag, payload = ctx.execute(call)   # still validate the path
    if tag == "err":
        return ("error", payload)
    ctx.poke(3)
    return ("value", CANONICAL_STATFS)


def handle_affinity(ctx: HandlerContext, thread, call) -> Outcome:
    """A single canonical core, like sysinfo/cpuid (§5.8)."""
    if not ctx.config.mask_machine:
        return passthrough(ctx, thread, call)
    return ("value", [0])


HANDLERS = {
    "uname": handle_uname,
    "sysinfo": handle_sysinfo,
    "times": handle_times,
    "statfs": handle_statfs,
    "sched_getaffinity": handle_affinity,
}
