"""Time, sleeps and timers (paper §5.3, §5.4)."""

from __future__ import annotations

import dataclasses

from ...kernel.types import CLOCK_MONOTONIC, SIGALRM
from . import HandlerContext, Outcome, passthrough


def handle_time(ctx: HandlerContext, thread, call) -> Outcome:
    """time(2): logical seconds, monotonic per process (§5.3)."""
    if not ctx.config.virtualize_time:
        return passthrough(ctx, thread, call)
    return ("value", ctx.logical.next_time(thread.process.pid))


def handle_gettimeofday(ctx: HandlerContext, thread, call) -> Outcome:
    if not ctx.config.virtualize_time:
        return passthrough(ctx, thread, call)
    ctx.poke(2)  # write the timeval struct back into the tracee
    return ("value", ctx.logical.next_timeofday(thread.process.pid))


def handle_clock_gettime(ctx: HandlerContext, thread, call) -> Outcome:
    if not ctx.config.virtualize_time:
        return passthrough(ctx, thread, call)
    ctx.poke(2)
    if call.args.get("clock_id") == CLOCK_MONOTONIC:
        return ("value", ctx.logical.next_monotonic(thread.process.pid))
    return ("value", ctx.logical.next_timeofday(thread.process.pid))


def handle_nanosleep(ctx: HandlerContext, thread, call) -> Outcome:
    """Sleeps become NOPs (§4): the call never reaches the kernel."""
    if not ctx.config.emulate_timers:
        return passthrough(ctx, thread, call)
    return ("value", 0)


def handle_alarm(ctx: HandlerContext, thread, call) -> Outcome:
    """Timers expire "instantaneously" (§5.4).

    The timer call is emulated by the tracer: the signal is queued right
    away (the guest's handler runs before its next operation returns),
    and the kernel never sees a timer.
    """
    if not ctx.config.emulate_timers:
        return passthrough(ctx, thread, call)
    signum = call.args.get("signum", SIGALRM)
    ctx.kernel.deliver_signal(thread.process, signum)
    return ("value", 0)


HANDLERS = {
    "time": handle_time,
    "gettimeofday": handle_gettimeofday,
    "clock_gettime": handle_clock_gettime,
    "nanosleep": handle_nanosleep,
    "alarm": handle_alarm,
    "pause": passthrough,  # blocks via the probe protocol; signals wake it
}
