"""read/write retry injection (paper §5.5, Figure 4).

``read`` and ``write`` may legitimately transfer fewer bytes than
requested (pipes do this constantly).  DetTrace hides partial transfers:
it adjusts the syscall arguments and re-executes (the PC-reset trick)
until the full request is satisfied or EOF.  Accumulated partial data is
stashed in tracer state keyed by thread, because a retry can itself
would-block and go through the Blocked queue before continuing.
"""

from __future__ import annotations

from ...kernel.errors import SyscallError
from ...kernel.fds import FdKind
from . import HandlerContext, Outcome, passthrough


def _is_pipe_fd(ctx: HandlerContext, thread, fd) -> bool:
    """Partial transfers only arise on pipes in practice (§5.5: "we have
    never seen such partial operations on regular files"); retrying only
    there keeps regular-file EOF semantics a single syscall."""
    try:
        of = thread.process.fdtable.get(fd)
    except Exception:
        return False
    # External fake-peer sockets answer one datagram per read; the
    # accumulate-until-full retry loop is for stream kinds only.
    return of.is_pipe and getattr(of, "socket", None) is None


def _procfs_path(ctx: HandlerContext, thread, fd) -> str:
    try:
        path = thread.process.fdtable.get(fd).path
    except Exception:
        return ""
    return path if path.startswith("/proc/") else ""


def handle_read(ctx: HandlerContext, thread, call) -> Outcome:
    # /proc files are windows onto the host (cpuinfo, uptime, version):
    # serve the canonical uniprocessor's answers instead (§5.8).
    proc_path = _procfs_path(ctx, thread, call.args.get("fd"))
    if proc_path and ctx.config.mask_machine:
        from ...kernel.procfs import CANONICAL_PROC_CONTENT

        content = CANONICAL_PROC_CONTENT.get(proc_path)
        if content is not None:
            of = thread.process.fdtable.get(call.args["fd"])
            start = of.offset
            data = content[start:start + call.args.get("count", 0)]
            of.offset = start + len(data)
            ctx.poke(max(1, len(data) // 512))
            return ("value", data)
    if not ctx.config.retry_partial_io:
        return passthrough(ctx, thread, call)
    if not _is_pipe_fd(ctx, thread, call.args.get("fd")):
        return passthrough(ctx, thread, call)
    want = call.args.get("count", 0)
    key = ("read", thread.tid)
    acc = ctx.io_state.pop(key, b"")
    first = not acc
    while True:
        probe = call.replaced(count=want - len(acc))
        tag, payload = ctx.execute(probe)
        if tag == "block":
            if acc:
                ctx.note_progress()  # we drained pipe bytes before blocking
            ctx.io_state[key] = acc
            return ("block", payload)
        if tag == "err":
            # An error mid-accumulation would lose data in a real tracer
            # too; deliver what we have if any, else the error.
            if acc:
                return ("value", acc)
            return ("error", payload)
        if tag != "ok":
            raise AssertionError("read: unexpected outcome %r" % tag)
        if not first:
            ctx.counters.read_retries += 1
        first = False
        data = payload
        ctx.poke(max(1, len(data) // 512))
        acc += data
        if len(acc) >= want or not data:
            return ("value", acc)


def handle_write(ctx: HandlerContext, thread, call) -> Outcome:
    if not ctx.config.retry_partial_io:
        return passthrough(ctx, thread, call)
    if not _is_pipe_fd(ctx, thread, call.args.get("fd")):
        return passthrough(ctx, thread, call)
    data = call.args.get("data", b"")
    if isinstance(data, str):
        data = data.encode()
    key = ("write", thread.tid)
    written = ctx.io_state.pop(key, 0)
    first = written == 0
    if first:
        # The tracer inspects the user buffer once, on the initial stop;
        # retries only adjust the pointer/length registers (Fig. 4).
        ctx.peek(max(1, len(data) // 512))
    while True:
        probe = call.replaced(data=data[written:])
        tag, payload = ctx.execute(probe)
        if tag == "block":
            if written:
                ctx.note_progress()  # partial bytes entered the pipe
            ctx.io_state[key] = written
            return ("block", payload)
        if tag == "err":
            return ("error", payload)
        if tag != "ok":
            raise AssertionError("write: unexpected outcome %r" % tag)
        if not first:
            ctx.counters.write_retries += 1
        first = False
        written += payload
        if written >= len(data):
            return ("value", written)


HANDLERS = {
    "read": handle_read,
    "write": handle_write,
    # recv/send are read/write on a socket fd: same partial-transfer
    # hiding, same accumulate-and-retry state machine (§5.5).
    "recv": handle_read,
    "send": handle_write,
}
