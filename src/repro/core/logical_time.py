"""Reproducible logical time (paper §5.3, §5.8).

Wall-clock syscalls get a per-process counter added to a fixed epoch, so
time monotonically advances between calls (configure's clock-skew check
passes) yet is a pure function of the call sequence.  ``rdtsc`` results
are a linear function of the number of rdtsc instructions executed so
far, per process.
"""

from __future__ import annotations

from typing import Dict

#: The fixed epoch DetTrace reports: Sun Aug  8 22:00:00 UTC 1993
#: (the date the artifact's `dettrace date` prints).
DETTRACE_EPOCH = 744847200

#: Cycles added per rdtsc execution.
RDTSC_STEP = 1000
RDTSC_BASE = 4_000_000_000


class LogicalClock:
    """Per-process logical clocks for time syscalls and rdtsc."""

    def __init__(self, epoch: int = DETTRACE_EPOCH):
        self.epoch = epoch
        self._time_calls: Dict[int, int] = {}
        self._rdtsc_calls: Dict[int, int] = {}

    # -- wall-clock style calls ----------------------------------------------

    def next_time(self, pid: int) -> int:
        """Integer seconds for time(2): epoch + number of prior calls."""
        count = self._time_calls.get(pid, 0)
        self._time_calls[pid] = count + 1
        return self.epoch + count

    def next_timeofday(self, pid: int) -> float:
        """Float seconds for gettimeofday/clock_gettime.

        Shares the per-process counter with :meth:`next_time` at the same
        one-second granularity so interleaved time()/gettimeofday() calls
        observe one consistent, strictly advancing clock.
        """
        count = self._time_calls.get(pid, 0)
        self._time_calls[pid] = count + 1
        return float(self.epoch + count)

    def next_monotonic(self, pid: int) -> float:
        count = self._time_calls.get(pid, 0)
        self._time_calls[pid] = count + 1
        return float(count)

    def time_calls(self, pid: int) -> int:
        return self._time_calls.get(pid, 0)

    # -- rdtsc ----------------------------------------------------------------

    def next_rdtsc(self, pid: int) -> int:
        count = self._rdtsc_calls.get(pid, 0)
        self._rdtsc_calls[pid] = count + 1
        return RDTSC_BASE + count * RDTSC_STEP

    def forget_process(self, pid: int) -> None:
        self._time_calls.pop(pid, None)
        self._rdtsc_calls.pop(pid, None)
