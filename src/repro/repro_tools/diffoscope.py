"""diffoscope analog: explainable bitwise comparison of artifact trees.

reprotest's verdict only needs the boolean, but the DRB workflow's value
is the *explanation* — so the comparator descends into our deb/tar
formats and reports which member and which header field or content byte
differs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from ..workloads.debian import archive


@dataclasses.dataclass
class Difference:
    path: str
    detail: str


@dataclasses.dataclass
class DiffReport:
    identical: bool
    differences: List[Difference]

    def summary(self, limit: int = 10) -> str:
        if self.identical:
            return "trees are bitwise identical"
        lines = ["%d difference(s):" % len(self.differences)]
        for diff in self.differences[:limit]:
            lines.append("  %s: %s" % (diff.path, diff.detail))
        if len(self.differences) > limit:
            lines.append("  ... and %d more" % (len(self.differences) - limit))
        return "\n".join(lines)


def _first_diff_offset(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


def _explain_tar(path: str, a: bytes, b: bytes, out: List[Difference]) -> None:
    try:
        ea, eb = archive.tar_unpack(a), archive.tar_unpack(b)
    except ValueError:
        off = _first_diff_offset(a, b)
        out.append(Difference(path, "content differs at byte %d" % off))
        return
    names_a = [e.name for e in ea]
    names_b = [e.name for e in eb]
    if names_a != names_b:
        out.append(Difference(path, "member order/set differs: %r vs %r"
                              % (names_a[:6], names_b[:6])))
        return
    for ma, mb in zip(ea, eb):
        for field in ("mode", "uid", "gid", "mtime"):
            va, vb = getattr(ma, field), getattr(mb, field)
            if va != vb:
                out.append(Difference("%s/%s" % (path, ma.name),
                                      "%s: %r vs %r" % (field, va, vb)))
        if ma.content != mb.content:
            off = _first_diff_offset(ma.content, mb.content)
            ctx_a = ma.content[max(0, off - 8):off + 24]
            ctx_b = mb.content[max(0, off - 8):off + 24]
            out.append(Difference("%s/%s" % (path, ma.name),
                                  "content at byte %d: %r vs %r"
                                  % (off, ctx_a, ctx_b)))


def _explain_file(path: str, a: bytes, b: bytes, out: List[Difference]) -> None:
    if a == b:
        return
    if a.startswith(archive.DEB_MAGIC) and b.startswith(archive.DEB_MAGIC):
        fields_a, data_a = archive.deb_unpack(a)
        fields_b, data_b = archive.deb_unpack(b)
        for key in sorted(set(fields_a) | set(fields_b)):
            va, vb = fields_a.get(key), fields_b.get(key)
            if va != vb:
                out.append(Difference("%s/control" % path,
                                      "%s: %r vs %r" % (key, va, vb)))
        if data_a != data_b:
            _explain_tar("%s/data.tar" % path, data_a, data_b, out)
        return
    if a.startswith(archive.TAR_MAGIC) and b.startswith(archive.TAR_MAGIC):
        _explain_tar(path, a, b, out)
        return
    off = _first_diff_offset(a, b)
    out.append(Difference(path, "content differs at byte %d (%r vs %r)"
                          % (off, a[off:off + 24], b[off:off + 24])))


def compare(tree_a: Dict[str, bytes], tree_b: Dict[str, bytes]) -> DiffReport:
    """Bitwise-compare two artifact trees; explain every difference."""
    differences: List[Difference] = []
    for path in sorted(set(tree_a) | set(tree_b)):
        if path not in tree_a:
            differences.append(Difference(path, "only in second tree"))
        elif path not in tree_b:
            differences.append(Difference(path, "only in first tree"))
        else:
            _explain_file(path, tree_a[path], tree_b[path], differences)
    return DiffReport(identical=not differences, differences=differences)
