"""reprotest's environment variations (paper §6.1).

reprotest builds each package twice under two *consistent but different*
configurations, perturbing exactly the knobs the paper lists: environment
variables, build path, ASLR, number of CPUs, time, user/groups, home
directory, locales, exec path and timezone.  (Domain/host, kernel and
file-ordering variations are off, matching the paper's configuration.)
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..cpu.machine import HostEnvironment, MachineSpec, SKYLAKE_CLOUDLAB

#: About 400 days, so the second build's wall clock is far away.
TIME_SHIFT = 400 * 86400.0


def first_build_host(machine: MachineSpec = SKYLAKE_CLOUDLAB,
                     seed: int = 101) -> HostEnvironment:
    """The consistent configuration used for every first build."""
    return HostEnvironment(
        machine=machine,
        boot_epoch=1_546_300_800.0,  # 2019-01-01
        entropy_seed=seed,
        pid_start=1200,
        inode_start=400_000,
        dirent_hash_salt=11,
        aslr_enabled=True,
        env={
            "PATH": "/usr/local/bin:/usr/bin:/bin",
            "HOME": "/root",
            "USER": "root",
            "SHELL": "/bin/sh",
            "LANG": "en_US.UTF-8",
            "TZ": "America/New_York",
        },
        tz_offset=-5 * 3600,
        build_path="/build/first",
        visible_cores=None,
    )


def second_build_host(machine: MachineSpec = SKYLAKE_CLOUDLAB,
                      seed: int = 202) -> HostEnvironment:
    """The consistent-but-different configuration for second builds."""
    return HostEnvironment(
        machine=machine,
        boot_epoch=1_546_300_800.0 + TIME_SHIFT,     # time variation
        entropy_seed=seed,                            # fresh entropy/ASLR
        pid_start=7421,                               # different PID space
        inode_start=902_000,                          # different inodes
        dirent_hash_salt=77,                          # different readdir order
        aslr_enabled=True,
        env={                                         # env/locale/tz/user vars
            "PATH": "/opt/bin:/usr/bin:/bin",         # exec path variation
            "HOME": "/home/builder2",                 # home variation
            "USER": "builder2",                       # user variation
            "SHELL": "/bin/bash",
            "LANG": "de_DE.UTF-8",                    # locale variation
            "TZ": "Europe/Berlin",                    # timezone variation
            "CAPTURE_ENVIRONMENT": "1",               # an extra variable
        },
        tz_offset=1 * 3600,
        build_path="/other/place/second-build",       # build-path variation
        visible_cores=2,                              # num_cpus variation
    )


def host_pair(machine: MachineSpec = SKYLAKE_CLOUDLAB, seed: int = 0):
    """The (first, second) build hosts reprotest uses, seed-shiftable."""
    return (first_build_host(machine, seed=101 + seed),
            second_build_host(machine, seed=202 + seed))


def same_host_pair(machine: MachineSpec = SKYLAKE_CLOUDLAB, seed: int = 0):
    """Two boots of an *unvaried* machine (for determinism-only checks):
    same configuration, different entropy/boot — what "running it twice
    on one machine" means."""
    first = first_build_host(machine, seed=101 + seed)
    second = dataclasses.replace(first, entropy_seed=909 + seed,
                                 boot_epoch=first.boot_epoch + 3600.0)
    return first, second
