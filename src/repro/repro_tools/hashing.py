"""hashdeep analog: recursive digests of output trees (paper §6.1)."""

from __future__ import annotations

import hashlib
from typing import Dict


def sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def hashdeep(tree: Dict[str, bytes]) -> Dict[str, str]:
    """Per-file digests, keyed by path."""
    return {path: sha256(data) for path, data in sorted(tree.items())}


def tree_digest(tree: Dict[str, bytes]) -> str:
    """One digest for the whole tree (paths + contents)."""
    h = hashlib.sha256()
    for path in sorted(tree):
        h.update(path.encode())
        h.update(b"\x00")
        h.update(tree[path])
        h.update(b"\x01")
    return h.hexdigest()
