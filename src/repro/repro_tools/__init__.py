"""Reproducibility tooling: reprotest, diffoscope, strip-nondeterminism,
hashdeep analogs (paper SS6.1)."""

from .diffoscope import DiffReport, Difference, compare
from .hashing import hashdeep, sha256, tree_digest
from .reprotest import (
    FAILED,
    IRREPRODUCIBLE,
    REPRODUCIBLE,
    TIMEOUT,
    UNSUPPORTED,
    ReprotestResult,
    reprotest_dettrace,
    reprotest_native,
    reprotest_portability,
)
from .strip_nondeterminism import strip_deb, strip_tar, strip_tree
from .variations import first_build_host, host_pair, same_host_pair, second_build_host

__all__ = [
    "DiffReport",
    "Difference",
    "FAILED",
    "IRREPRODUCIBLE",
    "REPRODUCIBLE",
    "ReprotestResult",
    "TIMEOUT",
    "UNSUPPORTED",
    "compare",
    "first_build_host",
    "hashdeep",
    "host_pair",
    "reprotest_dettrace",
    "reprotest_native",
    "reprotest_portability",
    "same_host_pair",
    "second_build_host",
    "sha256",
    "strip_deb",
    "strip_tar",
    "strip_tree",
    "tree_digest",
]
