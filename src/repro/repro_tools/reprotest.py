"""reprotest analog: double-build + bitwise comparison (paper §6.1).

``reprotest`` builds a package twice — once per consistent-but-different
host configuration — and compares the resulting .deb artifacts with
diffoscope.  For baseline (non-DetTrace) builds the tar-mtime workaround
is applied first, exactly as the paper's methodology does; DetTrace
builds are compared raw.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

from ..core.config import ContainerConfig
from ..cpu.machine import HostEnvironment, MachineSpec, SKYLAKE_CLOUDLAB
from ..parallel import fan_out
from ..workloads.debian.builder import BUILT, BuildRecord, build_dettrace, build_native
from ..workloads.debian.package import PackageSpec
from . import diffoscope, strip_nondeterminism
from .variations import host_pair

#: reprotest verdicts (also covering the paper's build-status categories).
REPRODUCIBLE = "reproducible"
IRREPRODUCIBLE = "irreproducible"
UNSUPPORTED = "unsupported"
TIMEOUT = "timeout"
FAILED = "failed"


@dataclasses.dataclass
class ReprotestResult:
    """Verdict of one double-build."""

    package: str
    verdict: str
    first: Optional[BuildRecord]
    second: Optional[BuildRecord]
    diff: Optional[diffoscope.DiffReport]
    #: First-divergence localization of an IRREPRODUCIBLE verdict (a
    #: :class:`repro.diag.DivergenceReport` over the two artifact
    #: trees); None for every other verdict.
    divergence: Optional[Any] = None

    @property
    def reproducible(self) -> bool:
        return self.verdict == REPRODUCIBLE


def _verdict_for_failure(record: BuildRecord) -> str:
    if record.status == "unsupported":
        return UNSUPPORTED
    if record.status == "timeout":
        return TIMEOUT
    return FAILED


def _build_one(kind, spec: PackageSpec, host: HostEnvironment,
               config: Optional[ContainerConfig]) -> BuildRecord:
    """Build dispatcher: *kind* is ``"native"``, ``"dettrace"``, or a
    custom ``(spec, host) -> BuildRecord`` callable (which must be
    picklable — module-level — to be used with ``jobs >= 2``)."""
    if kind == "native":
        return build_native(spec, host=host)
    if kind == "dettrace":
        return build_dettrace(spec, config=config, host=host)
    return kind(spec, host)


def _double_build(spec: PackageSpec,
                  kind,
                  hosts: Tuple[HostEnvironment, HostEnvironment],
                  strip: bool,
                  config: Optional[ContainerConfig] = None,
                  jobs: int = 1) -> ReprotestResult:
    if jobs >= 2:
        # Both builds are independent pure functions of (spec, host):
        # run them on two workers.  On a first-build failure the second
        # result is discarded so the ReprotestResult shape (second=None)
        # matches the serial short-circuit exactly.
        first, second = fan_out(
            _build_one,
            [(kind, spec, hosts[0], config), (kind, spec, hosts[1], config)],
            workers=2)
        if first.status != BUILT:
            return ReprotestResult(spec.name, _verdict_for_failure(first),
                                   first, None, None)
    else:
        first = _build_one(kind, spec, hosts[0], config)
        if first.status != BUILT:
            return ReprotestResult(spec.name, _verdict_for_failure(first),
                                   first, None, None)
        second = _build_one(kind, spec, hosts[1], config)
    if second.status != BUILT:
        return ReprotestResult(spec.name, _verdict_for_failure(second),
                               first, second, None)
    tree_a: Dict[str, bytes] = first.artifacts
    tree_b: Dict[str, bytes] = second.artifacts
    if strip:
        tree_a = strip_nondeterminism.strip_tree(tree_a)
        tree_b = strip_nondeterminism.strip_tree(tree_b)
    diff = diffoscope.compare(tree_a, tree_b)
    verdict = REPRODUCIBLE if diff.identical else IRREPRODUCIBLE
    divergence = None
    if verdict == IRREPRODUCIBLE:
        # Localize the first differing artifact path.  Lazy import so
        # the reprotest plane stays importable without repro.diag.
        from ..diag import diff_trees

        divergence = diff_trees(tree_a, tree_b,
                                labels=("first-build", "second-build"))
    return ReprotestResult(spec.name, verdict, first, second, diff,
                           divergence=divergence)


def reprotest_native(spec: PackageSpec,
                     machine: MachineSpec = SKYLAKE_CLOUDLAB,
                     seed: int = 0,
                     apply_tar_workaround: bool = True,
                     jobs: int = 1) -> ReprotestResult:
    """Baseline double-build under the full variation set."""
    hosts = host_pair(machine, seed=seed)
    return _double_build(spec, "native", hosts,
                         strip=apply_tar_workaround, jobs=jobs)


def reprotest_dettrace(spec: PackageSpec,
                       machine: MachineSpec = SKYLAKE_CLOUDLAB,
                       seed: int = 0,
                       config: Optional[ContainerConfig] = None,
                       jobs: int = 1) -> ReprotestResult:
    """DetTrace double-build: same variations, no workarounds.

    With ``jobs=2`` the two builds run on separate worker processes;
    the verdict is identical either way (serial/parallel identity).
    """
    hosts = host_pair(machine, seed=seed)
    return _double_build(spec, "dettrace", hosts, strip=False,
                         config=config, jobs=jobs)


def reprotest_portability(spec: PackageSpec,
                          machine_a: MachineSpec,
                          machine_b: MachineSpec,
                          config: Optional[ContainerConfig] = None,
                          seed: int = 0,
                          jobs: int = 1) -> ReprotestResult:
    """§7.3: DetTrace double-build across two different machines."""
    host_a = host_pair(machine_a, seed=seed)[0]
    host_b = host_pair(machine_b, seed=seed)[1]
    return _double_build(spec, "dettrace", (host_a, host_b), strip=False,
                         config=config, jobs=jobs)
