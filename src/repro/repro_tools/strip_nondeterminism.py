"""strip-nondeterminism analog (paper §6.1).

In a stock Wheezy system *zero* packages compare bitwise-reproducible,
because tar records an mtime for every member.  The paper's baseline
methodology therefore unpacks each .deb and clamps member timestamps
before comparing — so the baseline numbers measure the *other*
irreproducibility sources, not the universal tar-mtime one.  DetTrace
builds never need this workaround.
"""

from __future__ import annotations

from typing import Dict

from ..workloads.debian import archive


def strip_tar(data: bytes, clamp_mtime: float = 0.0) -> bytes:
    entries = archive.tar_unpack(data)
    for entry in entries:
        entry.mtime = min(entry.mtime, clamp_mtime)
    return archive.tar_pack(entries)


def strip_deb(data: bytes, clamp_mtime: float = 0.0) -> bytes:
    fields, data_tar = archive.deb_unpack(data)
    package = fields.pop("Package", "")
    version = fields.pop("Version", "")
    return archive.deb_pack(package, version, fields,
                            strip_tar(data_tar, clamp_mtime))


def strip_tree(tree: Dict[str, bytes], clamp_mtime: float = 0.0) -> Dict[str, bytes]:
    """Strip timestamps from every recognizable archive in a tree."""
    out: Dict[str, bytes] = {}
    for path, data in tree.items():
        if data.startswith(archive.DEB_MAGIC):
            out[path] = strip_deb(data, clamp_mtime)
        elif data.startswith(archive.TAR_MAGIC):
            out[path] = strip_tar(data, clamp_mtime)
        else:
            out[path] = data
    return out
