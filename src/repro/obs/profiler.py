"""Virtual-time profiler: attribute simulated cost to phases.

Every cost constant charged on the tracer's serial timeline
(:mod:`repro.kernel.costs`) belongs to one of four phases, mirroring the
way Figure 5 decomposes DetTrace overhead:

* ``interception`` — ptrace/seccomp stop context switches, tracee memory
  peeks/pokes, and irreproducible-instruction trap round trips;
* ``handler`` — the determinization handler's own work (including the
  execve vDSO rewrite);
* ``scheduler`` — reproducible-scheduler decisions and the replays of
  blocking syscalls converted to probes (§5.6.1);
* ``fs`` — simulated IO bandwidth charged by the kernel for read/write
  payloads.

Because every charge is a fixed constant from :mod:`repro.kernel.costs`
(or a pure function of payload size), phase totals are deterministic:
two runs of the same image and plan produce identical breakdowns even
across simulated machine boots, unlike the jittered virtual wall clock.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Phase names, in reporting order.
INTERCEPTION = "interception"
HANDLER = "handler"
SCHEDULER = "scheduler"
FS = "fs"

PHASES = (INTERCEPTION, HANDLER, SCHEDULER, FS)


class PhaseProfile:
    """Accumulated virtual seconds per phase."""

    __slots__ = ("totals",)

    def __init__(self):
        self.totals: Dict[str, float] = {phase: 0.0 for phase in PHASES}

    def charge(self, phase: str, seconds: float) -> None:
        self.totals[phase] = self.totals.get(phase, 0.0) + seconds

    def total(self) -> float:
        return sum(self.totals.values())

    def breakdown(self) -> List[Tuple[str, float, float]]:
        """(phase, seconds, fraction-of-attributed-total) rows."""
        grand = self.total()
        rows = []
        for phase in PHASES:
            seconds = self.totals.get(phase, 0.0)
            rows.append((phase, seconds, seconds / grand if grand else 0.0))
        for phase in sorted(self.totals):
            if phase not in PHASES:
                seconds = self.totals[phase]
                rows.append((phase, seconds, seconds / grand if grand else 0.0))
        return rows

    def as_dict(self) -> Dict[str, float]:
        return dict(sorted(self.totals.items()))

    def add(self, other: "PhaseProfile") -> None:
        for phase, seconds in other.totals.items():
            self.charge(phase, seconds)
