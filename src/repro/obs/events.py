"""The structured event schema shared by traces and crash forensics.

One :class:`ObsEvent` describes one observed occurrence — a syscall
dispatch, an instruction trap, a fault injection, a process spawn or
exit — keyed **exclusively on deterministic coordinates**: the thread's
deterministic logical timestamp (never the jittered simulated wall
clock), the container-namespace pid, and the per-process syscall index.
That keying is what lets two runs of the same image and plan produce
byte-identical event streams, and it is why the same type backs both
:class:`repro.faults.report.CrashReport` forensics and the Chrome-format
trace (:mod:`repro.obs.trace`): crash reports and traces are views of
one stream, not parallel bookkeeping.

This module sits at the bottom of the observability plane and must not
import any other ``repro`` package (the kernel imports it).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Dict, Iterator, List, Tuple

#: Event kinds.
SYSCALL = "syscall"
TRAP = "trap"
FAULT = "fault"
SPAWN = "spawn"
EXIT = "exit"
DEBUG = "debug"

#: vts value for events with no deterministic timestamp available (e.g.
#: filesystem-level disk-cap faults, which are keyed on bytes written).
NO_VTS = -1.0


@dataclasses.dataclass(frozen=True)
class ObsEvent:
    """One structured observation at a deterministic coordinate."""

    #: Deterministic logical timestamp in virtual seconds (the thread's
    #: det_clock / the container's logical time — never host wall clock,
    #: never the jittered simulated wall clock).  :data:`NO_VTS` when the
    #: source has no thread timeline (disk-cap faults).
    vts: float
    #: Container-namespace pid (deterministic under DetTrace).
    pid: int
    #: Per-process syscall index; -1 for non-syscall events.
    index: int
    #: One of SYSCALL/TRAP/FAULT/SPAWN/EXIT/DEBUG.
    kind: str
    #: Syscall or instruction name, fault kind, or executable path.
    name: str
    #: Free-form deterministic detail (disposition, rendered debug text).
    detail: str = ""

    # -- legacy (pid, index, name) triple compatibility ----------------

    def __getitem__(self, i: int):
        """Index like the historical ``(nspid, index, name)`` tuple."""
        return (self.pid, self.index, self.name)[i]

    def __iter__(self):
        return iter((self.pid, self.index, self.name))

    @property
    def coord(self):
        """The deterministic coordinate triple (pid, index, name)."""
        return (self.pid, self.index, self.name)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "vts": self.vts,
            "pid": self.pid,
            "index": self.index,
            "kind": self.kind,
            "name": self.name,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObsEvent":
        return cls(vts=data["vts"], pid=data["pid"], index=data["index"],
                   kind=data["kind"], name=data["name"],
                   detail=data.get("detail", ""))


#: Default capacity of the recent-events ring (crash forensics and
#: divergence-diagnosis context share this window).
RECENT_WINDOW = 32


class EventRing:
    """A bounded ring of compact event entries.

    This is the one "last N events" buffer in the tree: the kernel keeps
    its recent-syscall forensics in one (feeding
    :class:`repro.faults.report.CrashReport.last_syscalls`) and the
    divergence differ (:mod:`repro.diag.align`) keeps its per-side
    context windows in two more.  Entries stay whatever compact tuple or
    record the producer pushed — the per-syscall fast path must not
    allocate an :class:`ObsEvent` — and materialize into the shared
    event schema only on demand via :meth:`events`.
    """

    __slots__ = ("_entries",)

    def __init__(self, limit: int = RECENT_WINDOW):
        self._entries = deque(maxlen=max(1, int(limit)))

    def push(self, vts: float, pid: int, index: int, name: str) -> None:
        """Append one syscall coordinate tuple (the kernel's hot path)."""
        self._entries.append((vts, pid, index, name))

    def push_entry(self, entry: Any) -> None:
        """Append an arbitrary compact entry (e.g. a Chrome record)."""
        self._entries.append(entry)

    def entries(self) -> List[Any]:
        """The retained entries, oldest first."""
        return list(self._entries)

    def events(self) -> List[ObsEvent]:
        """Materialize ``(vts, pid, index, name)`` entries as ObsEvents."""
        return [ObsEvent(vts=vts, pid=pid, index=index, kind=SYSCALL,
                         name=name)
                for vts, pid, index, name in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    # Deques pickle fine, but slots-only classes need explicit state
    # hooks on protocol 1 paths; be explicit so snapshots never care.
    def __getstate__(self) -> Tuple[int, List[Any]]:
        return (self._entries.maxlen, list(self._entries))

    def __setstate__(self, state: Tuple[int, List[Any]]) -> None:
        limit, entries = state
        self._entries = deque(entries, maxlen=limit)
