"""The deterministic observability plane.

A record/replay-style system lives or dies by cheap, structured event
capture keyed on deterministic coordinates.  This package gives every
layer of the reproduction — kernel, tracer, scheduler, DetTrace core,
fault plane — one shared instrumentation substrate:

* :mod:`repro.obs.collector` — the per-run :class:`Collector`: typed
  counters, gauges, histograms, and the structured event stream;
* :mod:`repro.obs.events` — the :class:`ObsEvent` schema shared with
  crash forensics (:class:`repro.faults.report.CrashReport`);
* :mod:`repro.obs.trace` — Chrome ``trace_event`` JSON keyed only on
  deterministic virtual time and coordinates (byte-identical reruns);
* :mod:`repro.obs.profiler` — virtual-time cost attribution to the
  interception/handler/scheduler/fs phases (the Figure 5 breakdown);
* :mod:`repro.obs.metrics` — the :class:`Metrics` snapshot surfaced on
  ``ContainerResult.metrics``;
* :mod:`repro.obs.report` — Table-2-style rendering for ``--metrics``.

The hard invariant everywhere: the observer must not perturb the
observed.  Enabling or disabling observability never changes output
hashes, exit statuses, or virtual-time schedules.
"""

from .collector import Collector
from .events import (
    DEBUG,
    EXIT,
    FAULT,
    NO_VTS,
    RECENT_WINDOW,
    SPAWN,
    SYSCALL,
    TRAP,
    EventRing,
    ObsEvent,
)
from .jsonio import dumps_canonical, write_json_atomic
from .metrics import Metrics
from .profiler import FS, HANDLER, INTERCEPTION, PHASES, SCHEDULER, PhaseProfile
from .report import format_metrics, format_table2_summary
from .trace import Span, TraceLog

__all__ = [
    "Collector",
    "DEBUG",
    "EXIT",
    "EventRing",
    "FAULT",
    "FS",
    "HANDLER",
    "INTERCEPTION",
    "Metrics",
    "NO_VTS",
    "ObsEvent",
    "RECENT_WINDOW",
    "PHASES",
    "PhaseProfile",
    "SCHEDULER",
    "SPAWN",
    "SYSCALL",
    "Span",
    "TRAP",
    "TraceLog",
    "dumps_canonical",
    "format_metrics",
    "format_table2_summary",
    "write_json_atomic",
]
