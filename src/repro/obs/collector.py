"""The process-wide collector: typed metrics plus the structured stream.

One :class:`Collector` is created per container run (before the kernel
boots) and shared by every layer — kernel dispatch, the DetTrace tracer,
the reproducible scheduler, the fault injector.  It has two tiers:

* **aggregates** (counters, gauges, histograms, the phase profile) —
  always on; cheap, bounded memory, and deterministic, so every
  :class:`~repro.core.container.ContainerResult` carries metrics;

* **the event stream** (structured :class:`~repro.obs.events.ObsEvent`
  instants and tracer :class:`~repro.obs.trace.Span` records) — gated by
  ``ContainerConfig.observe`` (or ``debug`` for the compatibility debug
  log), because it grows with the run.

The collector is passive: it never reads clocks, never seeds randomness,
and never charges virtual time, so enabling or disabling it cannot
perturb the observed run (the observer-effect invariant, enforced by
``tests/obs`` and ``tests/properties/test_obs_props.py``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from .events import DEBUG, ObsEvent
from .profiler import PhaseProfile
from .trace import Span, TraceLog

#: Counter keys are tuples of strings, e.g. ("syscall", "read",
#: "passthrough") or ("fault", "eio").
CounterKey = Union[str, Tuple[str, ...]]


def _key(key: CounterKey) -> Tuple[str, ...]:
    return (key,) if isinstance(key, str) else tuple(key)


def _bucket(value: float) -> int:
    """Deterministic power-of-two histogram bucket (ceiling exponent)."""
    if value <= 0:
        return 0
    exp = 0
    bound = 1
    while bound < value:
        bound <<= 1
        exp += 1
    return exp


class Collector:
    """Typed counters, gauges, histograms, spans and events for one run."""

    def __init__(self, trace: bool = False, debug: int = 0):
        #: Record the structured event stream (spans + instants)?
        self.trace_enabled = bool(trace)
        #: Debug verbosity for the rendered-string compatibility view.
        self.debug_level = int(debug)
        self.counters: Dict[Tuple[str, ...], int] = {}
        #: Peak-tracked gauges (e.g. scheduler queue occupancy).
        self.gauges: Dict[str, float] = {}
        #: name -> {power-of-two bucket exponent -> count}.
        self.histograms: Dict[str, Dict[int, int]] = {}
        self.profile = PhaseProfile()
        self.events: List[ObsEvent] = []
        self.spans: List[Span] = []
        self.debug_events: List[ObsEvent] = []

    # -- aggregates (always on) ----------------------------------------

    def count(self, key: CounterKey, n: int = 1) -> None:
        k = _key(key)
        self.counters[k] = self.counters.get(k, 0) + n

    def gauge_max(self, name: str, value: float) -> None:
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.setdefault(name, {})
        bucket = _bucket(value)
        hist[bucket] = hist.get(bucket, 0) + 1

    def charge(self, phase: str, seconds: float) -> None:
        self.profile.charge(phase, seconds)

    # -- the event stream (gated) --------------------------------------

    def record(self, event: ObsEvent) -> None:
        if self.trace_enabled:
            self.events.append(event)

    def span(self, span: Span) -> None:
        if self.trace_enabled:
            self.spans.append(span)

    def debug(self, level: int, event: ObsEvent) -> None:
        """Record a debug-gated event (the --debug N compatibility view)."""
        if self.debug_level >= level:
            self.debug_events.append(event)

    # -- views ---------------------------------------------------------

    def render_debug(self) -> List[str]:
        """The historical ``--debug`` string lines, rendered on demand."""
        return ["[pid %d] %s" % (ev.pid, ev.detail or ev.name)
                for ev in self.debug_events]

    def trace_log(self) -> TraceLog:
        return TraceLog(self.events, self.spans)

    def tail_events(self, limit: int = 32) -> List[ObsEvent]:
        """The newest *limit* structured events (crash forensics)."""
        return self.events[-limit:]


#: A shared do-nothing-visible collector for components created outside a
#: container run (aggregates still accumulate but are never surfaced).
def null_collector() -> Collector:
    return Collector(trace=False, debug=0)


# Re-export for collector-centric call sites.
DEBUG_KIND = DEBUG
