"""The per-run metrics snapshot surfaced on ``ContainerResult.metrics``.

A :class:`Metrics` object is plain data assembled at the end of a run
(on *every* exit path, including crashes — see
``repro.core.container._finish``) from three deterministic sources: the
run's :class:`~repro.obs.collector.Collector` aggregates, the tracer's
Table-2 :class:`~repro.tracer.events.TraceCounters`, and the kernel's
:class:`~repro.kernel.kernel.KernelStats`.  It deliberately excludes
every jitter-bearing quantity (simulated wall time, host clocks): two
runs of the same image and plan produce equal metrics.

``add`` accumulates snapshots, which is how the Table-2 benchmark
aggregates per-package counts without recomputing them.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from .profiler import PhaseProfile

#: Bucket exponent -> human label ("<=2^k").
def _bucket_label(exp: int) -> str:
    return "<=%d" % (1 << exp)


@dataclasses.dataclass
class Metrics:
    """Deterministic per-run (or aggregated) observability snapshot."""

    #: Flattened collector counters: "syscall/read/passthrough" -> n.
    counters: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Peak gauges, e.g. scheduler queue occupancy.
    gauges: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: name -> {"<=2^k" bucket -> count}.
    histograms: Dict[str, Dict[str, int]] = dataclasses.field(default_factory=dict)
    #: Virtual-time phase attribution (interception/handler/scheduler/fs).
    profile: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: The paper's Table 2 rows (label -> count), from TraceCounters.
    table2: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Kernel-side dispatch counts by syscall name.
    syscalls_by_name: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Run totals: syscalls, events_processed, processes/threads spawned.
    totals: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: How many runs were accumulated into this snapshot.
    runs: int = 1

    @classmethod
    def from_run(cls, collector, trace_counters=None, stats=None) -> "Metrics":
        """Snapshot one run.  *collector* is a Collector; *trace_counters*
        a TraceCounters or None; *stats* a KernelStats or None (duck
        typed to keep this module import-free of the layers it observes).
        """
        counters = {"/".join(key): n
                    for key, n in sorted(collector.counters.items())}
        histograms = {
            name: {_bucket_label(exp): n for exp, n in sorted(hist.items())}
            for name, hist in sorted(collector.histograms.items())}
        table2: Dict[str, float] = {}
        if trace_counters is not None:
            table2 = dict(trace_counters.as_table2_rows())
            counters.setdefault("faults/injected",
                                trace_counters.faults_injected)
        by_name: Dict[str, int] = {}
        totals: Dict[str, int] = {}
        if stats is not None:
            by_name = dict(sorted(stats.syscalls_by_name.items()))
            totals = {
                "syscalls": stats.syscalls,
                "events_processed": stats.events_processed,
                "processes_spawned": stats.processes_spawned,
                "threads_spawned": stats.threads_spawned,
                "vdso_calls": stats.vdso_calls,
            }
        return cls(counters=counters, gauges=dict(sorted(collector.gauges.items())),
                   histograms=histograms, profile=collector.profile.as_dict(),
                   table2=table2, syscalls_by_name=by_name, totals=totals)

    # -- accumulation (bench aggregation) ------------------------------

    def add(self, other: "Metrics") -> None:
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
        for name, value in other.gauges.items():
            self.gauges[name] = max(self.gauges.get(name, float("-inf")), value)
        for name, hist in other.histograms.items():
            mine = self.histograms.setdefault(name, {})
            for bucket, n in hist.items():
                mine[bucket] = mine.get(bucket, 0) + n
        for phase, seconds in other.profile.items():
            self.profile[phase] = self.profile.get(phase, 0.0) + seconds
        for label, value in other.table2.items():
            self.table2[label] = self.table2.get(label, 0.0) + value
        for name, n in other.syscalls_by_name.items():
            self.syscalls_by_name[name] = self.syscalls_by_name.get(name, 0) + n
        for name, n in other.totals.items():
            self.totals[name] = self.totals.get(name, 0) + n
        self.runs += other.runs

    def table2_averages(self) -> Dict[str, float]:
        """Per-run averages of the Table 2 rows."""
        return {label: value / max(1, self.runs)
                for label, value in self.table2.items()}

    def phase_profile(self) -> PhaseProfile:
        profile = PhaseProfile()
        for phase, seconds in self.profile.items():
            profile.charge(phase, seconds)
        return profile

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {k: dict(sorted(v.items()))
                           for k, v in sorted(self.histograms.items())},
            "profile": dict(sorted(self.profile.items())),
            "table2": dict(self.table2.items()),
            "syscalls_by_name": dict(sorted(self.syscalls_by_name.items())),
            "totals": dict(sorted(self.totals.items())),
            "runs": self.runs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Metrics":
        """Rebuild a snapshot from :meth:`to_dict` output.

        The run cache stores metrics this way, so a cache hit surfaces
        the producing run's deterministic counters unchanged.
        """
        return cls(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms={k: dict(v)
                        for k, v in data.get("histograms", {}).items()},
            profile=dict(data.get("profile", {})),
            table2=dict(data.get("table2", {})),
            syscalls_by_name=dict(data.get("syscalls_by_name", {})),
            totals=dict(data.get("totals", {})),
            runs=int(data.get("runs", 1)),
        )
