"""Render Table-2-style summaries from :class:`~repro.obs.metrics.Metrics`.

The paper's Table 2 counts determinization events per benchmark; this
module renders the same shape for any run (or aggregate of runs) from
the observability plane's counters — the CLI's ``repro obs`` /
``--metrics`` output.
"""

from __future__ import annotations

from typing import List

from .metrics import Metrics
from .profiler import PHASES


def _table(headers: List[str], rows: List[List[str]], title: str = "") -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_table2_summary(metrics: Metrics) -> str:
    """The determinization-event summary (Table 2's rows, our counts)."""
    scale = max(1, metrics.runs)
    rows = [[label, "%.2f" % (value / scale)]
            for label, value in metrics.table2.items()]
    header = "avg/run" if metrics.runs > 1 else "count"
    return _table(["determinization event", header], rows,
                  title="Determinization events (Table 2 rows, %d run%s)"
                        % (metrics.runs, "s" if metrics.runs > 1 else ""))


def format_dispositions(metrics: Metrics, limit: int = 12) -> str:
    """Syscalls by disposition (passthrough/rewritten/injected/skipped)."""
    per_disposition = {}
    per_syscall = []
    for key, n in metrics.counters.items():
        parts = key.split("/")
        if parts[0] != "syscall" or len(parts) != 3:
            continue
        _, name, disposition = parts
        per_disposition[disposition] = per_disposition.get(disposition, 0) + n
        per_syscall.append((n, name, disposition))
    rows = [[d, str(per_disposition[d])] for d in sorted(per_disposition)]
    out = _table(["disposition", "syscalls"], rows,
                 title="Syscall dispositions")
    per_syscall.sort(key=lambda t: (-t[0], t[1], t[2]))
    top = [["%s (%s)" % (name, disposition), str(n)]
           for n, name, disposition in per_syscall[:limit]]
    if top:
        out += "\n" + _table(["top syscalls", "count"], top)
    return out


def format_profile(metrics: Metrics) -> str:
    """The Figure-5-style virtual-time overhead attribution."""
    profile = metrics.phase_profile()
    rows = []
    for phase, seconds, frac in profile.breakdown():
        rows.append([phase, "%.3f ms" % (seconds * 1e3), "%5.1f%%" % (frac * 100)])
    return _table(["phase", "virtual cost", "share"], rows,
                  title="Virtual-time overhead attribution")


def format_metrics(metrics: Metrics) -> str:
    """The full ``--metrics`` report."""
    sections = [format_table2_summary(metrics), format_dispositions(metrics)]
    faults = [(k, n) for k, n in sorted(metrics.counters.items())
              if k.startswith("fault/")]
    if faults:
        sections.append(_table(
            ["fault kind", "injections"],
            [[k.split("/", 1)[1], str(n)] for k, n in faults],
            title="Fault injections"))
    if any(metrics.profile.get(phase) for phase in PHASES):
        sections.append(format_profile(metrics))
    if metrics.gauges:
        sections.append(_table(
            ["gauge", "peak"],
            [[name, "%g" % value] for name, value in sorted(metrics.gauges.items())],
            title="Peak gauges"))
    return "\n\n".join(sections)
