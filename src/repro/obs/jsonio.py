"""Crash-consistent JSON persistence shared by structured reports.

``crash-report.json`` (:class:`repro.faults.report.CrashReport`) and
``divergence-report.json`` (:class:`repro.diag.report.DivergenceReport`)
use the same write discipline as the checkpoint journal: write to a
temp file in the same directory, flush, fsync, then atomically rename
over the final name.  A crash mid-write can leave a stale ``.tmp`` file
behind but never a truncated report at the destination path.

Like :mod:`repro.obs.events`, this module must stay dependency-free
within the tree (both the fault plane and the diagnosis plane import
it).
"""

from __future__ import annotations

import json
import os
from typing import Any


def dumps_canonical(data: Any) -> str:
    """Deterministic, human-diffable JSON text (sorted keys, trailing
    newline) — byte-identical for equal report contents."""
    return json.dumps(data, sort_keys=True, indent=2) + "\n"


def write_json_atomic(path: str, data: Any) -> str:
    """Persist *data* as canonical JSON at *path*, atomically."""
    text = dumps_canonical(data)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.rename(tmp, path)
    return path
