"""Chrome ``trace_event``-format export of the structured event stream.

The JSON produced here is loadable by ``chrome://tracing`` / Perfetto.
Its determinism contract is the tentpole invariant of the observability
plane:

* timestamps are **deterministic logical time** in microseconds — the
  servicing thread's det_clock / the container's logical clock — never
  the host clock and never the jitter-bearing simulated wall clock;
* ``pid``/``tid`` are container-namespace coordinates (nspid and the
  deterministic thread ordinal), never host pids;
* durations are sums of the fixed cost constants charged while
  servicing, which are pure functions of guest behaviour;
* events are canonically sorted and serialized with sorted keys and
  fixed separators.

Consequence: two runs of the same (image, config, fault plan) produce
byte-identical trace files, even across different simulated machine
boots — asserted by ``tests/obs`` and the ``scripts/check.sh`` identity
gate.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List

from .events import ObsEvent


def _us(vts: float) -> float:
    """Virtual seconds -> trace microseconds, deterministically rounded."""
    return round(vts * 1e6, 3)


@dataclasses.dataclass(frozen=True)
class Span:
    """One tracer-servicing interval (a Chrome complete event)."""

    name: str
    #: Category: the syscall's disposition (passthrough/rewritten/
    #: injected), "blocked" for would-block probes, "probe" for retries.
    cat: str
    pid: int
    tid: int
    #: Deterministic start timestamp in virtual seconds.
    vts: float
    #: Deterministic duration in virtual seconds (sum of cost constants).
    dur: float
    #: Per-process syscall index.
    index: int
    #: 1 for the first service of an instance, 2.. for probes/replays.
    attempt: int = 1

    def to_chrome(self) -> Dict[str, Any]:
        return {
            "ph": "X",
            "name": self.name,
            "cat": self.cat,
            "pid": self.pid,
            "tid": self.tid,
            "ts": _us(self.vts),
            "dur": _us(self.dur),
            "args": {"index": self.index, "attempt": self.attempt},
        }


def _instant_to_chrome(event: ObsEvent) -> Dict[str, Any]:
    return {
        "ph": "i",
        "s": "t",
        "name": "%s:%s" % (event.kind, event.name),
        "cat": event.kind,
        "pid": event.pid,
        "tid": 0,
        "ts": _us(event.vts),
        "args": {"index": event.index, "detail": event.detail},
    }


class TraceLog:
    """The per-run event stream, exportable as Chrome trace JSON."""

    def __init__(self, events: List[ObsEvent], spans: List[Span]):
        self.events = list(events)
        self.spans = list(spans)

    def __len__(self) -> int:
        return len(self.events) + len(self.spans)

    def to_chrome(self) -> Dict[str, Any]:
        """The trace_event JSON object (deterministically ordered)."""
        records = [span.to_chrome() for span in self.spans]
        records.extend(_instant_to_chrome(ev) for ev in self.events)
        # Canonical order: deterministic coordinates only.  Sorting (not
        # buffer order) is load-bearing: untraced syscalls execute at
        # jittered simulated times, so their *append* order may differ
        # across boots even though every coordinate is deterministic.
        records.sort(key=lambda r: (r["ts"], r["pid"], r["tid"],
                                    r["args"].get("index", -1),
                                    r["args"].get("attempt", 0),
                                    r["ph"], r["cat"], r["name"]))
        return {
            "traceEvents": records,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "deterministic-virtual"},
        }

    def to_json(self) -> str:
        """Canonical (byte-stable) JSON text of :meth:`to_chrome`."""
        return json.dumps(self.to_chrome(), sort_keys=True,
                          separators=(",", ":"))

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")
