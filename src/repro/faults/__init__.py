"""The deterministic fault-injection plane.

Fault plans (:mod:`repro.faults.plan`) describe environment failures —
ENOSPC/EIO/EINTR/EAGAIN storms, short reads and writes, fd exhaustion,
ENOMEM on process creation, signal storms, disk caps — keyed entirely on
deterministic coordinates.  The injector (:mod:`repro.faults.injector`)
applies them from the kernel's syscall dispatch and filesystem;
:mod:`repro.faults.verify` turns the paper's quasi-determinism claim into
an executable property over any plan.

``repro.faults.verify`` is intentionally *not* imported here: it depends
on :mod:`repro.core`, which itself imports this package.
"""

from .injector import ArmedFault, FaultInjector
from .plan import (
    ALL_FAULT_KINDS,
    DISK_FULL_FAULT,
    ERRNO_FAULTS,
    SHORT_IO_FAULTS,
    SIGNAL_FAULT,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    storm,
)
from .report import AttemptRecord, CrashReport

__all__ = [
    "ALL_FAULT_KINDS",
    "ArmedFault",
    "AttemptRecord",
    "CrashReport",
    "DISK_FULL_FAULT",
    "ERRNO_FAULTS",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "SHORT_IO_FAULTS",
    "SIGNAL_FAULT",
    "storm",
]
