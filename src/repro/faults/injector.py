"""The deterministic fault injector.

One :class:`FaultInjector` is installed per kernel boot (see
:meth:`repro.kernel.kernel.Kernel.install_faults`).  The kernel consults
it at exactly two choke points:

* **syscall dispatch** (:meth:`on_dispatch`) — called once per syscall
  *instance*, at the moment the per-process syscall index is assigned.
  The injector decides then and there — from the deterministic
  coordinates only — whether this instance is faulted, and arms the
  decision on the thread.  The syscall table consumes the armed decision
  on the instance's first execution (:meth:`consume`), so tracer probes
  and partial-IO retries of the *same* instance never re-fire it.

* **the filesystem** (:meth:`disk_charge`) — ``charge_disk`` asks the
  injector for the active ``disk_full`` cap, keyed on cumulative bytes
  written: a deterministic coordinate, unlike real free-space probes.

Every firing is appended to :attr:`trace` (the "fault trace" of crash
reports) and counted on the attached :class:`TraceCounters`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..kernel.errors import Errno, SyscallError
from ..obs.events import FAULT, NO_VTS, ObsEvent
from .plan import (
    DISK_FULL_FAULT,
    ERRNO_FAULTS,
    KILL_FAULT,
    SHORT_IO_FAULTS,
    SIGNAL_FAULT,
    FaultPlan,
    FaultRule,
)

#: args keys that name container paths (for path_prefix matching).
_PATH_ARGS = ("path", "old", "new", "target", "linkpath")


class KilledAtTick(RuntimeError):
    """An injected ``kill`` fault crashed the run at a fixed event tick
    (the deterministic stand-in for an OOM-kill or host preemption)."""

    def __init__(self, tick: int):
        super().__init__("run killed at event tick %d (injected)" % tick)
        self.tick = tick


class ArmedFault:
    """A fault decision bound to one specific syscall instance."""

    __slots__ = ("rule", "pid", "index", "syscall")

    def __init__(self, rule: FaultRule, pid: int, index: int, syscall: str):
        self.rule = rule
        self.pid = pid
        self.index = index
        self.syscall = syscall


class FaultInjector:
    """Consults a :class:`FaultPlan` at deterministic coordinates."""

    def __init__(self, plan: FaultPlan, attempt: int = 0):
        self.plan = plan
        self.attempt = attempt
        #: Per-(rule position, container pid) firing counts.
        self._fired: Dict[Tuple[int, int], int] = {}
        #: Chronological record of every injection: the fault trace.
        self.trace: List[Dict[str, Any]] = []
        #: Did any transient-classified rule fire this run?
        self.transient_fired = False
        #: TraceCounters of the attached tracer (None under NativeRunner).
        self.counters = None
        #: The run's observability collector (repro.obs); None until the
        #: container wires it in.
        self.obs = None

    # ------------------------------------------------------------------
    # syscall dispatch consult
    # ------------------------------------------------------------------

    def on_dispatch(self, kernel, thread, call, index: int,
                    vts: float = NO_VTS) -> None:
        """Arm any fault for the syscall instance at coordinate
        (process, *index*); deliver signal-storm rules immediately.

        *vts* is the instance's deterministic timestamp, threaded through
        to the structured fault events so crash forensics and traces
        share coordinates.
        """
        proc = thread.process
        thread.armed_fault = None
        thread.obs_faulted = False
        for pos, rule in enumerate(self.plan):
            if rule.fault in (DISK_FULL_FAULT, KILL_FAULT):
                # Consulted elsewhere: disk_full by the filesystem,
                # kill by the event loop.
                continue
            if not self._matches(rule, pos, proc, call, index):
                continue
            if rule.fault == SIGNAL_FAULT:
                # Signal storms fire independently of (and in addition
                # to) any syscall-level fault.
                self._record(rule, pos, proc.nspid, index, call.name, vts=vts)
                kernel.deliver_signal(proc, rule.signum)
                continue
            if thread.armed_fault is None:
                self._record(rule, pos, proc.nspid, index, call.name, vts=vts)
                thread.armed_fault = ArmedFault(rule, proc.nspid, index, call.name)
                thread.obs_faulted = True

    def _matches(self, rule: FaultRule, pos: int, proc, call, index: int) -> bool:
        if not rule.active_on_attempt(self.attempt):
            return False
        if rule.pid is not None and rule.pid != proc.nspid:
            return False
        names = rule.names()
        if names is not None and call.name not in names:
            return False
        if not rule.in_window(index, self._fired.get((pos, proc.nspid), 0)):
            return False
        if rule.path_prefix is not None and not self._path_matches(rule, proc, call):
            return False
        return True

    def _path_matches(self, rule: FaultRule, proc, call) -> bool:
        """Match the rule's path prefix against the call's path arguments
        (lexically, against the process's cwd) or, for fd-based calls,
        against the path the descriptor was opened with."""
        from ..kernel.filesystem import normalize

        prefix = rule.path_prefix
        for key in _PATH_ARGS:
            path = call.args.get(key)
            if not isinstance(path, str):
                continue
            abspath = normalize(path if path.startswith("/")
                                else proc.cwd_path + "/" + path)
            if abspath.startswith(prefix):
                return True
        fd = call.args.get("fd")
        if isinstance(fd, int) and proc.fdtable.has(fd):
            of_path = proc.fdtable.get(fd).path
            if of_path and of_path.startswith(prefix):
                return True
        return False

    def _record(self, rule: FaultRule, pos: int, nspid: int, index: int,
                syscall: str, vts: float = NO_VTS) -> None:
        key = (pos, nspid)
        self._fired[key] = self._fired.get(key, 0) + 1
        if rule.transient:
            self.transient_fired = True
        self.trace.append({
            "pid": nspid,
            "index": index,
            "syscall": syscall,
            "fault": rule.fault,
            "rule": pos,
        })
        if self.counters is not None:
            self.counters.faults_injected += 1
            if rule.fault == SIGNAL_FAULT:
                self.counters.signals_injected += 1
            elif rule.fault in SHORT_IO_FAULTS:
                self.counters.short_io_injected += 1
        if self.obs is not None:
            self.obs.count(("fault", rule.fault))
            self.obs.record(ObsEvent(vts=vts, pid=nspid, index=index,
                                     kind=FAULT, name=rule.fault,
                                     detail="%s rule=%d" % (syscall, pos)))

    # ------------------------------------------------------------------
    # syscall execution consult (the armed decision)
    # ------------------------------------------------------------------

    def consume(self, thread, call):
        """Apply any fault armed for this syscall instance.

        Returns the (possibly rewritten) call.  Raises
        :class:`SyscallError` for errno faults.  Consuming clears the
        armed slot, so retries of the same instance run unfaulted.
        """
        armed: Optional[ArmedFault] = getattr(thread, "armed_fault", None)
        if armed is None:
            return call
        thread.armed_fault = None
        rule = armed.rule
        err = rule.errno
        if err is not None:
            raise SyscallError(err, call.name, "fault injected at #%d" % armed.index)
        if rule.fault == "short_read":
            count = call.args.get("count")
            if isinstance(count, int) and count > rule.keep_bytes:
                args = dict(call.args)
                args["count"] = max(1, rule.keep_bytes)
                return type(call)(call.name, args)
            return call
        if rule.fault == "short_write":
            data = call.args.get("data")
            if isinstance(data, str):
                data = data.encode()
            if isinstance(data, (bytes, bytearray)) and len(data) > rule.keep_bytes:
                args = dict(call.args)
                args["data"] = bytes(data[:max(1, rule.keep_bytes)])
                return type(call)(call.name, args)
            return call
        return call

    # ------------------------------------------------------------------
    # event-loop consult (kill faults)
    # ------------------------------------------------------------------

    def next_kill_tick(self) -> Optional[int]:
        """The event tick at which an active kill rule crashes this
        attempt, or None."""
        return self.plan.kill_tick(self.attempt)

    def record_kill(self, tick: int) -> None:
        """Bookkeeping for a kill firing (the kernel raises the crash)."""
        for pos, rule in enumerate(self.plan):
            if (rule.fault == KILL_FAULT and rule.at_tick == tick
                    and rule.active_on_attempt(self.attempt)):
                self._record(rule, pos, 0, tick, "<event-loop>")
                break

    # ------------------------------------------------------------------
    # filesystem consult
    # ------------------------------------------------------------------

    def disk_charge(self, bytes_written: int) -> None:
        """Filesystem hook: raise ENOSPC past any active disk_full cap."""
        cap = self.plan.disk_cap(self.attempt)
        if cap is None or bytes_written <= cap:
            return
        for pos, rule in enumerate(self.plan):
            if rule.fault == DISK_FULL_FAULT and rule.active_on_attempt(self.attempt):
                # Bound trace growth: a busy guest may hit the cap on
                # every subsequent write; log only the first `count`.
                if self._fired.get((pos, 0), 0) < rule.count:
                    self._record(rule, pos, 0, bytes_written, "write")
                break
        raise SyscallError(Errno.ENOSPC, "write",
                           "fault injected past %d bytes" % cap)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def injected(self) -> int:
        return len(self.trace)
