"""Deterministic fault plans.

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s keyed exclusively
on *deterministic coordinates* — container pid (nspid), the per-process
syscall index, the syscall name, and container path prefixes.  Wall time
never appears anywhere in a plan: given the same image and the same plan,
every rule fires at exactly the same point of the guest's execution, which
is what makes an injected failure itself reproducible (the paper's
quasi-determinism guarantee, §2/§5.9, exercised as an executable
property by :mod:`repro.faults.verify`).

Plans serialize to/from JSON so the CLI can load them with
``--faults plan.json``::

    {"rules": [
        {"fault": "eio", "syscall": "write", "path_prefix": "/build",
         "start": 4, "count": 3},
        {"fault": "short_read", "syscall": "read", "keep_bytes": 1},
        {"fault": "signal", "signum": 10, "start": 7, "count": 2},
        {"fault": "disk_full", "bytes": 4096},
        {"fault": "eagain", "syscall": "read", "count": 5,
         "transient": true}
    ]}
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..kernel.errors import Errno

#: Fault kinds that inject an errno into the matched syscall.
ERRNO_FAULTS: Dict[str, Errno] = {
    "enospc": Errno.ENOSPC,
    "eio": Errno.EIO,
    "eintr": Errno.EINTR,
    "eagain": Errno.EAGAIN,
    "enfile": Errno.ENFILE,
    "emfile": Errno.EMFILE,
    "enomem": Errno.ENOMEM,
}

#: Fault kinds that truncate an IO transfer instead of failing it.
SHORT_IO_FAULTS = ("short_read", "short_write")

#: Fault kind that delivers a signal at the matched syscall dispatch.
SIGNAL_FAULT = "signal"

#: Fault kind consulted by the filesystem: a deterministic free-space cap
#: keyed on total bytes written (never on wall time).
DISK_FULL_FAULT = "disk_full"

#: Fault kind consulted by the event loop: crash the whole run (as a
#: simulated host kill — OOM, preemption, power loss) at a fixed event
#: tick.  The coordinate is the kernel's event counter, so the crash
#: point is as reproducible as any syscall-level fault; the checkpoint
#: plane (repro.ckpt) uses it to exercise crash-resume identity.
KILL_FAULT = "kill"

#: Every recognised kind, in a fixed documentation order.
ALL_FAULT_KINDS: Tuple[str, ...] = tuple(ERRNO_FAULTS) + SHORT_IO_FAULTS + (
    SIGNAL_FAULT, DISK_FULL_FAULT, KILL_FAULT)

#: Syscalls that ENOMEM targets by default (fork/mmap analogues).
NOMEM_SYSCALLS = ("spawn_process", "spawn_thread", "execve")

#: Syscalls that fd-exhaustion targets by default.
FD_SYSCALLS = ("open", "pipe", "dup", "dup2", "socket", "socketpair",
               "mkfifo", "inotify_init", "perf_event_open")

#: args keys that name container paths (for path_prefix matching).
_PATH_ARGS = ("path", "old", "new", "target", "linkpath", "script")


class FaultPlanError(ValueError):
    """A plan (or plan file) is malformed."""


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One deterministic injection rule.

    Coordinates (all optional filters; a rule with none matches every
    syscall dispatch of every process):

    * ``pid`` — container (namespace) pid;
    * ``syscall`` — a syscall name or tuple of names;
    * ``path_prefix`` — absolute container path prefix, matched against
      path arguments and against the opened path behind fd arguments;
    * ``start``/``stride``/``count`` — the storm window over the
      per-process syscall index: fire at indices ``start``,
      ``start + stride``, … at most ``count`` times per process.
    """

    fault: str
    pid: Optional[int] = None
    syscall: Optional[Tuple[str, ...]] = None
    path_prefix: Optional[str] = None
    start: int = 0
    stride: int = 1
    count: int = 1
    #: For ``signal`` faults: the signal number delivered.
    signum: int = 10
    #: For ``short_read``/``short_write``: bytes allowed through.
    keep_bytes: int = 1
    #: For ``disk_full``: the byte cap on cumulative written data.
    bytes: int = 0
    #: For ``kill``: the event tick at which the run crashes.
    at_tick: Optional[int] = None
    #: Transient rules stop firing after the attempt they are scoped to —
    #: the supervised-run layer's model of "the storm passed"; they make a
    #: failed attempt *retryable*.  ``attempts`` widens the scope: a
    #: transient rule fires on attempts 0..attempts-1.
    transient: bool = False
    attempts: int = 1

    def __post_init__(self):
        if self.fault not in ALL_FAULT_KINDS:
            raise FaultPlanError(
                "unknown fault kind %r (expected one of %s)"
                % (self.fault, ", ".join(ALL_FAULT_KINDS)))
        if self.stride < 1 or self.count < 1 or self.start < 0:
            raise FaultPlanError(
                "rule %r needs start >= 0, stride >= 1, count >= 1" % self.fault)
        if self.fault == DISK_FULL_FAULT and self.bytes <= 0:
            raise FaultPlanError("disk_full rule needs a positive 'bytes' cap")
        if self.fault == KILL_FAULT and (self.at_tick is None
                                         or self.at_tick < 0):
            raise FaultPlanError("kill rule needs 'at_tick' >= 0")
        if self.fault != KILL_FAULT and self.at_tick is not None:
            raise FaultPlanError("'at_tick' only applies to kill rules")

    # -- matching -------------------------------------------------------

    def names(self) -> Optional[Tuple[str, ...]]:
        """The syscall-name filter, defaulted per fault kind."""
        if self.syscall is not None:
            return self.syscall
        if self.fault == "enomem":
            return NOMEM_SYSCALLS
        if self.fault in ("enfile", "emfile"):
            return FD_SYSCALLS
        if self.fault == "short_read":
            return ("read",)
        if self.fault == "short_write":
            return ("write",)
        return None

    def in_window(self, index: int, fired: int) -> bool:
        """Does per-process syscall *index* fall in the storm window,
        given the rule already fired *fired* times for that process?"""
        if fired >= self.count:
            return False
        if index < self.start:
            return False
        return (index - self.start) % self.stride == 0

    def active_on_attempt(self, attempt: int) -> bool:
        """Transient rules model storms that pass: they are scoped to the
        first ``attempts`` supervised attempts only."""
        if not self.transient:
            return True
        return attempt < self.attempts

    @property
    def errno(self) -> Optional[Errno]:
        return ERRNO_FAULTS.get(self.fault)

    # -- (de)serialization ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"fault": self.fault}
        defaults = FaultRule(fault=self.fault, bytes=self.bytes or 1,
                             at_tick=self.at_tick)
        for field in dataclasses.fields(self):
            if field.name == "fault":
                continue
            value = getattr(self, field.name)
            if field.name == "bytes":
                if self.fault == DISK_FULL_FAULT:
                    out["bytes"] = value
                continue
            if field.name == "at_tick":
                if value is not None:
                    out["at_tick"] = value
                continue
            if value != getattr(defaults, field.name):
                out[field.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultRule":
        if not isinstance(raw, dict):
            raise FaultPlanError("fault rule must be an object, got %r" % (raw,))
        data = dict(raw)
        fault = data.pop("fault", None)
        if not isinstance(fault, str):
            raise FaultPlanError("fault rule missing its 'fault' kind: %r" % (raw,))
        syscall: Union[None, str, Sequence[str]] = data.pop("syscall", None)
        if isinstance(syscall, str):
            syscall = (syscall,)
        elif syscall is not None:
            syscall = tuple(str(s) for s in syscall)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError("unknown fault rule fields: %s"
                                 % ", ".join(sorted(unknown)))
        try:
            return cls(fault=fault, syscall=syscall, **data)
        except TypeError as err:
            raise FaultPlanError("bad fault rule %r: %s" % (raw, err))


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable set of fault rules.

    Rule order matters deterministically: for one syscall dispatch the
    first matching syscall-level rule wins (signal rules are independent
    and all fire).
    """

    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    def __bool__(self) -> bool:
        return bool(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    @property
    def has_transient(self) -> bool:
        return any(rule.transient for rule in self.rules)

    def disk_cap(self, attempt: int = 0) -> Optional[int]:
        """The tightest ``disk_full`` cap active on *attempt*, if any."""
        caps = [rule.bytes for rule in self.rules
                if rule.fault == DISK_FULL_FAULT and rule.active_on_attempt(attempt)]
        return min(caps) if caps else None

    def kill_tick(self, attempt: int = 0) -> Optional[int]:
        """The earliest ``kill`` tick active on *attempt*, if any."""
        ticks = [rule.at_tick for rule in self.rules
                 if rule.fault == KILL_FAULT and rule.at_tick is not None
                 and rule.active_on_attempt(attempt)]
        return min(ticks) if ticks else None

    # -- (de)serialization ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, raw: Any) -> "FaultPlan":
        if isinstance(raw, list):
            raw = {"rules": raw}
        if not isinstance(raw, dict):
            raise FaultPlanError("fault plan must be an object or list, got %r"
                                 % type(raw).__name__)
        rules = raw.get("rules", [])
        if not isinstance(rules, list):
            raise FaultPlanError("'rules' must be a list")
        return cls(rules=tuple(FaultRule.from_dict(r) for r in rules))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except ValueError as err:
            raise FaultPlanError("fault plan is not valid JSON: %s" % err)
        return cls.from_dict(raw)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


def storm(fault: str, **kwargs) -> FaultPlan:
    """Convenience: a single-rule plan."""
    return FaultPlan(rules=(FaultRule(fault=fault, **kwargs),))
