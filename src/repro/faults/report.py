"""Structured crash reports for supervised container runs.

A :class:`CrashReport` is graceful degradation made concrete: whatever
way a run ends — classified failure, injected storm, kernel panic — the
caller still gets the partial output tree on the
:class:`~repro.core.container.ContainerResult` *plus* this structured
account of what happened.  Everything in it derives from deterministic
state (statuses, fault coordinates, the syscall ring), so two runs of
the same image and plan produce byte-identical reports.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List

from ..obs.events import ObsEvent
from ..obs.jsonio import write_json_atomic


@dataclasses.dataclass
class AttemptRecord:
    """One supervised attempt, as seen by the retry loop."""

    attempt: int
    status: str
    exit_code: Any
    error: str
    faults_injected: int
    transient: bool
    #: Deterministic virtual-time backoff charged *before* this attempt.
    backoff: float


@dataclasses.dataclass
class CrashReport:
    """What a (possibly failed) run looked like, reproducibly."""

    status: str
    error: str
    #: Chronological fault injections: {pid, index, syscall, fault, rule}.
    fault_trace: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    #: The last N syscalls dispatched before the end, as structured
    #: :class:`repro.obs.events.ObsEvent` records — the same schema the
    #: trace uses, so crash forensics and traces share coordinates.
    #: (Events still index like the historical (nspid, index, name)
    #: triples for compatibility.)
    last_syscalls: List[ObsEvent] = dataclasses.field(default_factory=list)
    #: Supervised-run history (empty for plain DetTrace.run).
    attempt_log: List[AttemptRecord] = dataclasses.field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "error": self.error,
            "fault_trace": list(self.fault_trace),
            "last_syscalls": [entry.to_dict() for entry in self.last_syscalls],
            "attempt_log": [dataclasses.asdict(rec) for rec in self.attempt_log],
        }

    def write_json(self, path: str) -> None:
        """Persist the report crash-consistently (temp + fsync + rename
        via the shared :func:`repro.obs.jsonio.write_json_atomic`, the
        same discipline the checkpoint journal and divergence reports
        use)."""
        write_json_atomic(path, self.to_dict())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CrashReport":
        return cls(
            status=data["status"],
            error=data["error"],
            fault_trace=list(data.get("fault_trace", [])),
            last_syscalls=[ObsEvent.from_dict(entry)
                           for entry in data.get("last_syscalls", [])],
            attempt_log=[AttemptRecord(**rec)
                         for rec in data.get("attempt_log", [])],
        )

    def format(self) -> str:
        """Human-readable multi-line rendering for CLI error output."""
        lines = ["crash report: status=%s error=%s" % (self.status, self.error)]
        for rec in self.attempt_log:
            lines.append(
                "  attempt %d: %s (exit=%s, faults=%d%s, backoff=%g)"
                % (rec.attempt, rec.status, rec.exit_code, rec.faults_injected,
                   ", transient" if rec.transient else "", rec.backoff))
        if self.fault_trace:
            lines.append("  fault trace (%d injections):" % len(self.fault_trace))
            for entry in self.fault_trace[-8:]:
                lines.append("    pid %s syscall #%s %s <- %s"
                             % (entry.get("pid"), entry.get("index"),
                                entry.get("syscall"), entry.get("fault")))
        if self.last_syscalls:
            lines.append("  last syscalls:")
            for nspid, index, name in self.last_syscalls[-8:]:
                lines.append("    pid %d #%d %s" % (nspid, index, name))
        return "\n".join(lines)
