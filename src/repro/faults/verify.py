"""Quasi-determinism as an executable property (paper §2, §5.9).

The paper's guarantee is that a DetTrace run either produces a
bit-identical result or fails *reproducibly*.  With the fault plane this
becomes checkable for arbitrary environment misbehaviour:

* **replay identity** — same image + same :class:`FaultPlan`, run on two
  different simulated machine boots, must produce byte-identical
  fingerprints (status, exit code, error, stdout/stderr, output tree,
  counters, fault trace) — *including the failure*, when the plan makes
  the run fail;

* **empty-plan invariance** — wiring in an empty plan must be
  observationally identical to not wiring the fault plane in at all
  (the plane itself perturbs nothing).

This module is kept import-separate from :mod:`repro.faults` because it
depends on :mod:`repro.core` (which imports the faults package).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.config import ContainerConfig
from ..core.container import ContainerResult, DetTrace
from ..cpu.machine import HostEnvironment
from .plan import FaultPlan

#: Two deliberately different simulated boots: different entropy, epoch,
#: pid/inode bases and dirent hash salts (mirrors cli._host).
DEFAULT_BOOTS = (1, 2)


def boot_host(boot: int) -> HostEnvironment:
    """A distinct simulated machine boot per *boot* number."""
    return HostEnvironment(
        entropy_seed=boot,
        boot_epoch=1.6e9 + boot * 1009.0,
        pid_start=1000 + boot * 13,
        inode_start=100_000 + boot * 997,
        dirent_hash_salt=boot,
    )


def result_fingerprint(result: ContainerResult) -> Dict[str, Any]:
    """The determinized observable surface of a run, as plain data.

    Excludes wall time and the host description (virtual duration is
    jitter-dependent by design) and the debug log (a config toggle) —
    everything else must be a pure function of image + config + plan.
    """
    counters = (dataclasses.asdict(result.counters)
                if result.counters is not None else None)
    return {
        "status": result.status,
        "exit_code": result.exit_code,
        "error": result.error,
        "stdout": result.stdout,
        "stderr": result.stderr,
        "output_tree": {path: hashlib.sha256(content).hexdigest()
                        for path, content in sorted(result.output_tree.items())},
        "counters": counters,
        "syscall_count": result.syscall_count,
        "attempts": result.attempts,
        "transient_faults": result.transient_faults,
        "crash_report": (result.crash_report.to_dict()
                         if result.crash_report is not None else None),
    }


def fingerprint_digest(fingerprint: Dict[str, Any]) -> str:
    """A stable hash of a fingerprint (byte-identity in one string)."""
    canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def diff_fingerprints(a: Dict[str, Any], b: Dict[str, Any]) -> List[str]:
    """Top-level keys on which two fingerprints disagree."""
    return [key for key in a if a.get(key) != b.get(key)]


@dataclasses.dataclass
class Check:
    name: str
    ok: bool
    detail: str = ""


@dataclasses.dataclass
class VerifyReport:
    """Outcome of one quasi-determinism verification."""

    ok: bool
    checks: List[Check]
    #: Digest of the canonical (boot 1, with plan) fingerprint.
    digest: str

    def format(self) -> str:
        lines = ["quasi-determinism: %s" % ("PASS" if self.ok else "FAIL")]
        for check in self.checks:
            lines.append("  [%s] %s%s" % ("ok" if check.ok else "FAIL",
                                          check.name,
                                          (": " + check.detail) if check.detail else ""))
        lines.append("  fingerprint %s" % self.digest[:16])
        return "\n".join(lines)


def verify_quasi_determinism(
        image_factory: Callable[[], Any],
        command: str,
        plan: Optional[FaultPlan] = None,
        argv: Optional[List[str]] = None,
        config_factory: Optional[Callable[[], ContainerConfig]] = None,
        boots: Tuple[int, int] = DEFAULT_BOOTS,
        supervised: bool = False) -> VerifyReport:
    """Prove the quasi-determinism property for one (image, plan) pair.

    *image_factory*/*config_factory* are factories so every run gets a
    fresh, unshared instance.  With *supervised*, runs go through
    :meth:`DetTrace.run_supervised` (the retry loop must be just as
    reproducible as a single run).
    """
    plan = plan if plan is not None else FaultPlan()

    def run_once(fault_plan: Optional[FaultPlan], boot: int) -> ContainerResult:
        config = config_factory() if config_factory is not None else ContainerConfig()
        config = dataclasses.replace(config, fault_plan=fault_plan)
        container = DetTrace(config)
        runner = container.run_supervised if supervised else container.run
        return runner(image_factory(), command, argv=argv, host=boot_host(boot))

    checks: List[Check] = []

    # 1. Replay identity: same plan, two different boots, same bytes.
    fp_a = result_fingerprint(run_once(plan, boots[0]))
    fp_b = result_fingerprint(run_once(plan, boots[1]))
    delta = diff_fingerprints(fp_a, fp_b)
    checks.append(Check(
        "replay-identity (plan, boots %s vs %s)" % boots,
        not delta, "differs on: %s" % ", ".join(delta) if delta else ""))

    # 2. Rerun identity: literally the same inputs twice — guards against
    #    hidden global state inside the plane itself.
    fp_a2 = result_fingerprint(run_once(plan, boots[0]))
    delta = diff_fingerprints(fp_a, fp_a2)
    checks.append(Check(
        "rerun-identity (plan, boot %s twice)" % boots[0],
        not delta, "differs on: %s" % ", ".join(delta) if delta else ""))

    # 3. Empty-plan invariance: wiring an empty plane changes nothing
    #    relative to no plane at all.
    fp_empty = result_fingerprint(run_once(FaultPlan(), boots[0]))
    fp_none = result_fingerprint(run_once(None, boots[0]))
    delta = diff_fingerprints(fp_empty, fp_none)
    checks.append(Check(
        "empty-plan invariance (wired vs unwired)",
        not delta, "differs on: %s" % ", ".join(delta) if delta else ""))

    return VerifyReport(ok=all(c.ok for c in checks), checks=checks,
                        digest=fingerprint_digest(fp_a))
