"""Checkpoint bisection: localize a divergence to a barrier window.

Trace alignment (:mod:`repro.diag.align`) finds the first *observable*
divergence; bisection finds where the underlying *state* first departs,
which can be earlier (latent corruption) or pin an observable symptom
to the exact checkpoint interval it was born in.

The mechanism leans entirely on existing machinery:

* runs are re-executed with ``CheckpointConfig(every=N, keep=0)`` —
  ``keep=0`` disables journal pruning, so every barrier snapshot
  survives (the checkpoint plane was built for crash recovery; here it
  doubles as a state probe);
* each snapshot's guest-visible state is reduced to a deterministic
  sha256 via :func:`repro.ckpt.snapshot.state_fingerprint`
  (GUEST_SCOPE by default: tracer PRNG, host facts and observability
  state excluded, so two runs seeded differently fingerprint *equal*
  until the first tick at which a guest-visible difference exists);
* a coarse pass compares fingerprints at every ``coarse``-tick barrier
  to find the bracketing window, then binary probes re-run each side
  with ``every=mid`` to tighten it — each probe needs one fresh run per
  side, so the window narrows to a single tick in O(log) runs.

Timeline discipline: barriers are identified by **tick** (the kernel's
``events_processed`` count — exactly comparable across runs) and
annotated with the snapshot header's **vclock** (simulated wall clock —
comparable between two runs on the same host, but *not* on the trace's
det_clock axis).  Bisection results therefore never mix with trace
``ts`` values; the two coordinate systems meet only in the final
report, each labelled as itself.

Determinism of the *observed* runs is never at stake: checkpointing and
observation are obs-invariant by construction (asserted by the ckpt and
obs suites), so probe runs behave identically to the originals.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import tempfile
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..ckpt import GUEST_SCOPE, RecoveryManager
from ..core.config import CheckpointConfig, ContainerConfig
from ..core.container import DetTrace
from ..cpu.machine import HostEnvironment
from .align import CONTEXT_WINDOW, RunCapture, diff_captures
from .report import DivergenceReport

#: Coarse-pass barrier interval (ticks) when the caller has no opinion.
DEFAULT_COARSE = 16
#: Cap on binary probes (each probe = two fresh runs).
DEFAULT_MAX_PROBES = 10


@dataclasses.dataclass
class RunSpec:
    """Everything needed to (re-)execute one side of a comparison.

    The image is a *factory* so each re-execution gets a fresh guest
    program; configs are injected per-run with :func:`dataclasses.replace`
    so the caller's config object is never mutated.
    """

    image_factory: Callable[[], Any]
    command: str
    argv: Optional[List[str]] = None
    config: ContainerConfig = dataclasses.field(
        default_factory=ContainerConfig)
    host: Optional[HostEnvironment] = None
    label: str = "run"

    def run(self, observe: Optional[bool] = None,
            checkpoint: Optional[CheckpointConfig] = None):
        overrides: Dict[str, Any] = {}
        if observe is not None:
            overrides["observe"] = observe
        if checkpoint is not None:
            overrides["checkpoint"] = checkpoint
        cfg = (dataclasses.replace(self.config, **overrides)
               if overrides else self.config)
        return DetTrace(cfg).run(self.image_factory(), self.command,
                                 argv=self.argv, host=self.host)

    def capture(self) -> RunCapture:
        """One observed run, reduced to its comparable surface."""
        return RunCapture.from_result(self.run(observe=True), self.label)


@dataclasses.dataclass
class BisectResult:
    """The outcome of one bisection."""

    #: Did any compared surface or state fingerprint differ?
    diverged: bool
    #: Last tick at which state fingerprints were equal.
    lo: int
    #: First tick at which they differed (None = never at a barrier;
    #: any divergence lies after the last common barrier).
    hi: Optional[int]
    lo_vclock: float
    hi_vclock: Optional[float]
    #: Binary probes performed (re-runs beyond the coarse pass).
    probes: int
    #: Fingerprint scope used (guest/full).
    scope: str
    #: The event-level report from the final observed replay, with this
    #: bisection attached as ``report.bisect``.
    report: DivergenceReport

    def window(self) -> Tuple[int, Optional[int]]:
        return (self.lo, self.hi)

    def summary(self) -> str:
        if not self.diverged:
            return ("no divergence: state fingerprints equal at every "
                    "common barrier through tick %d" % self.lo)
        if self.hi is None:
            return ("divergence after the last common barrier (tick %d); "
                    "no snapshot window brackets it" % self.lo)
        return ("state first diverges in tick window (%d, %d] "
                "(%d probe(s), scope=%s)"
                % (self.lo, self.hi, self.probes, self.scope))

    def to_dict(self) -> Dict[str, Any]:
        return {"lo": self.lo, "hi": self.hi,
                "lo_vclock": self.lo_vclock, "hi_vclock": self.hi_vclock,
                "probes": self.probes, "scope": self.scope,
                "diverged": self.diverged}


@contextlib.contextmanager
def _workdir(path: Optional[str]):
    if path:
        os.makedirs(path, exist_ok=True)
        yield path
    else:
        with tempfile.TemporaryDirectory(prefix="repro-diag-") as tmp:
            yield tmp


def _barrier_fingerprints(spec: RunSpec, directory: str, every: int,
                          scope: str) -> Dict[int, Tuple[str, float]]:
    """Re-run *spec* snapshotting every *every* ticks; return
    {barrier tick: (state fingerprint, vclock)}."""
    spec.run(checkpoint=CheckpointConfig(directory=directory,
                                         every=every, keep=0))
    # fingerprint=None: the two sides may have different config
    # fingerprints (that difference is often the point), and the
    # journal's own checksum already guards integrity.  The incremental
    # Merkle cursor hashes each delta barrier in O(changed) instead of
    # rebuilding the whole canonical state per snapshot.
    return RecoveryManager(directory).chain_fingerprints(scope=scope)


def bisect_divergence(side_a: RunSpec, side_b: RunSpec,
                      coarse: int = DEFAULT_COARSE,
                      max_probes: int = DEFAULT_MAX_PROBES,
                      scope: str = GUEST_SCOPE,
                      context: int = CONTEXT_WINDOW,
                      workdir: Optional[str] = None) -> BisectResult:
    """Isolate the first tick window where the two sides' state
    fingerprints differ, then replay observed for an event-level
    report."""
    coarse = max(1, int(coarse))
    probes = 0
    with _workdir(workdir) as base:
        fps_a = _barrier_fingerprints(
            side_a, os.path.join(base, "coarse-a"), coarse, scope)
        fps_b = _barrier_fingerprints(
            side_b, os.path.join(base, "coarse-b"), coarse, scope)
        lo, lo_vclock = 0, 0.0
        hi: Optional[int] = None
        hi_vclock: Optional[float] = None
        for barrier in sorted(set(fps_a) & set(fps_b)):
            if fps_a[barrier][0] == fps_b[barrier][0]:
                lo, lo_vclock = barrier, fps_a[barrier][1]
            else:
                hi, hi_vclock = barrier, fps_a[barrier][1]
                break
        while hi is not None and hi - lo > 1 and probes < max_probes:
            mid = (lo + hi) // 2
            if mid <= 0:
                break
            probes += 1
            probe_a = _barrier_fingerprints(
                side_a, os.path.join(base, "probe-a-%d" % mid), mid,
                scope).get(mid)
            probe_b = _barrier_fingerprints(
                side_b, os.path.join(base, "probe-b-%d" % mid), mid,
                scope).get(mid)
            if probe_a is None or probe_b is None:
                # One side ended before the probe barrier; the coarse
                # window stands.
                break
            if probe_a[0] == probe_b[0]:
                lo, lo_vclock = mid, probe_a[1]
            else:
                hi, hi_vclock = mid, probe_a[1]
    # Final replay with event-level capture, for the minimal report.
    report = diff_captures(side_a.capture(), side_b.capture(),
                           context=context)
    result = BisectResult(
        diverged=report.diverged or hi is not None,
        lo=lo, hi=hi, lo_vclock=lo_vclock, hi_vclock=hi_vclock,
        probes=probes, scope=scope, report=report)
    report.bisect = result.to_dict()
    return result
