"""The structured :class:`DivergenceReport` schema.

A divergence report is to a failed identity compare what a crash report
is to a failed run: a deterministic, structured account of *where* the
comparison broke instead of a bare hash mismatch.  Everything in it
derives from deterministic coordinates (virtual-time trace records,
counter values, content digests, checkpoint barriers), so diagnosing
the same pair of runs twice produces byte-identical reports — and the
report is persisted with the same atomic-write discipline as
``crash-report.json`` (:func:`repro.obs.jsonio.write_json_atomic`).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from ..obs.jsonio import write_json_atomic

#: Classification values, in report-precedence order.
NONE = "none"
SCHEDULE = "schedule"
SYSCALL_RESULT = "syscall-result"
EXIT_STATUS = "exit-status"
FS_CONTENT = "fs-content"
STREAM_CONTENT = "stream-content"
COUNTERS = "counters"

CLASSIFICATIONS = (NONE, SCHEDULE, SYSCALL_RESULT, EXIT_STATUS,
                   FS_CONTENT, STREAM_CONTENT, COUNTERS)

#: Schema tag stamped into the JSON form.
REPORT_KIND = "repro.diag.divergence/1"


@dataclasses.dataclass
class DivergenceReport:
    """Where (and in what way) two runs first stopped being identical."""

    #: One of :data:`CLASSIFICATIONS`.
    classification: str = NONE
    #: One-line human statement of the finding.
    summary: str = ""
    #: Display labels for the two sides.
    labels: Tuple[str, str] = ("a", "b")
    #: First divergent virtual time in seconds (trace-level findings).
    vts: Optional[float] = None
    #: Index of the first divergent record in the aligned trace streams.
    position: Optional[int] = None
    #: The pair of first-divergent Chrome records: ``{"a": rec|None,
    #: "b": rec|None}`` (None = that side's stream ended first).
    divergent: Optional[Dict[str, Any]] = None
    #: Last-N-events context per side, from the shared
    #: :class:`repro.obs.events.EventRing` window.
    context: Dict[str, List[Any]] = dataclasses.field(default_factory=dict)
    #: Counter/total deltas: name -> [value_a, value_b] (differing only).
    counter_deltas: Dict[str, List[Any]] = dataclasses.field(
        default_factory=dict)
    #: Per-side outcome surface (status, exit code, content digests).
    surface: Dict[str, Dict[str, Any]] = dataclasses.field(
        default_factory=dict)
    #: First differing output-tree path (fs-content findings).
    first_path: str = ""
    #: Checkpoint-bisection window, when bisection ran: barrier ticks
    #: ``lo`` (states fingerprint equal) and ``hi`` (first differing),
    #: their virtual clocks, probe count and fingerprint scope.
    bisect: Optional[Dict[str, Any]] = None
    #: Free-form deterministic detail.
    detail: str = ""

    @property
    def diverged(self) -> bool:
        return self.classification != NONE

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": REPORT_KIND,
            "classification": self.classification,
            "summary": self.summary,
            "labels": list(self.labels),
            "vts": self.vts,
            "position": self.position,
            "divergent": self.divergent,
            "context": {side: list(recs)
                        for side, recs in sorted(self.context.items())},
            "counter_deltas": {name: list(pair) for name, pair in
                               sorted(self.counter_deltas.items())},
            "surface": {side: dict(sorted(info.items()))
                        for side, info in sorted(self.surface.items())},
            "first_path": self.first_path,
            "bisect": self.bisect,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DivergenceReport":
        labels = data.get("labels") or ["a", "b"]
        return cls(
            classification=data.get("classification", NONE),
            summary=data.get("summary", ""),
            labels=(labels[0], labels[1]),
            vts=data.get("vts"),
            position=data.get("position"),
            divergent=data.get("divergent"),
            context=dict(data.get("context", {})),
            counter_deltas=dict(data.get("counter_deltas", {})),
            surface=dict(data.get("surface", {})),
            first_path=data.get("first_path", ""),
            bisect=data.get("bisect"),
            detail=data.get("detail", ""),
        )

    def write_json(self, path: str) -> str:
        """Persist atomically (temp + fsync + rename), like
        ``crash-report.json``."""
        return write_json_atomic(path, self.to_dict())

    # -- rendering -----------------------------------------------------

    def format(self) -> str:
        """Human-readable multi-line rendering for CLI output."""
        if not self.diverged:
            lines = ["no divergence: runs are identical on every "
                     "compared surface"]
            if self.detail:
                lines.append("  " + self.detail)
            return "\n".join(lines)
        la, lb = self.labels
        lines = ["DIVERGENCE [%s]: %s" % (self.classification,
                                          self.summary)]
        if self.vts is not None:
            lines.append("  first divergent virtual time: %.9fs"
                         % self.vts)
        if self.position is not None:
            lines.append("  aligned-stream position: %d" % self.position)
        if self.divergent is not None:
            for side, label in (("a", la), ("b", lb)):
                lines.append("    %-12s %s"
                             % (label + ":",
                                _render_record(self.divergent.get(side))))
        if self.first_path:
            lines.append("  first differing path: %s" % self.first_path)
        for name, pair in sorted(self.counter_deltas.items())[:8]:
            lines.append("  counter %s: %s != %s" % (name, pair[0], pair[1]))
        for side, label in (("a", la), ("b", lb)):
            recs = self.context.get(side) or []
            if recs:
                lines.append("  last %d events before divergence (%s):"
                             % (len(recs), label))
                for rec in recs[-8:]:
                    lines.append("    " + _render_record(rec))
        if self.bisect is not None:
            b = self.bisect
            hi = b.get("hi")
            lines.append(
                "  bisected window: state fingerprints equal at barrier "
                "%s, first differ at %s (%d probe(s), scope=%s)"
                % (b.get("lo"), "end-of-run" if hi is None else hi,
                   b.get("probes", 0), b.get("scope", "guest")))
            if hi is not None and b.get("hi_vclock") is not None:
                lines.append("    vclock window: (%.9f, %.9f]"
                             % (b.get("lo_vclock", 0.0), b["hi_vclock"]))
        if self.detail:
            lines.append("  " + self.detail)
        return "\n".join(lines)


def _render_record(rec: Any) -> str:
    if rec is None:
        return "(stream ended)"
    if isinstance(rec, dict):
        args = rec.get("args") or {}
        return ("%s %s pid=%s tid=%s ts=%s dur=%s index=%s attempt=%s"
                % (rec.get("ph", "?"), rec.get("name", "?"),
                   rec.get("pid", "?"), rec.get("tid", "?"),
                   rec.get("ts", "?"), rec.get("dur", "-"),
                   args.get("index", "-"), args.get("attempt", "-")))
    return repr(rec)
