"""Synthetic divergence workloads for tests, demos and benchmarks.

A *leak writer* is a guest program that is deterministic everywhere
except one parameterized write: a pair of runs built with different
leak payloads models a real container with exactly one host-
nondeterminism leak, at a known virtual-time coordinate.  The demo gate
in ``scripts/check.sh`` and the diag test-suite both drive diagnosis
against this pair because the ground truth — which write leaked, and in
which tick window — is known by construction.

The leak is written in fixed-size chunks (one ``write_file`` per
chunk), which makes the two diagnosis regimes selectable by payload:

* payloads of different *length* take a different number of write
  syscalls, so the control-flow paths differ and trace alignment pins
  the first divergent record (the trace timeline is deliberately blind
  to IO payload bytes — det_clock advances per syscall, not per byte);
* equal-length payloads with different *bytes* are trace-invisible by
  construction: only filesystem state differs, which is exactly the
  case checkpoint bisection exists for.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.config import ContainerConfig
from ..core.image import Image
from ..cpu.machine import HostEnvironment
from .bisect import RunSpec

#: Deterministic writes on either side of the leak, so the divergence
#: sits mid-run (bisection has room on both flanks).
PADDING_WRITES = 12
#: Leak payloads are written one chunk per syscall.
LEAK_CHUNK = 8


def leak_writer_image(leak: bytes) -> Image:
    """An image whose only nondeterminism is the *leak* payload."""

    def _main(sys_):
        yield from sys_.mkdir_p("out")
        for i in range(PADDING_WRITES):
            yield from sys_.write_file("out/pre%02d.txt" % i,
                                       b"p" * (8 + i))
        for n, off in enumerate(range(0, len(leak), LEAK_CHUNK)):
            yield from sys_.write_file("out/leak%02d.bin" % n,
                                       leak[off:off + LEAK_CHUNK])
        for i in range(PADDING_WRITES):
            yield from sys_.write_file("out/post%02d.txt" % i,
                                       b"q" * (8 + i))
        yield from sys_.println("leak writer done")
        return 0

    image = Image()
    image.add_binary("/bin/main", _main)
    return image


def leak_spec(leak: bytes, label: str,
              config: Optional[ContainerConfig] = None,
              entropy_seed: int = 7) -> RunSpec:
    """One side of a leaky pair, pinned to a fixed host boot."""
    return RunSpec(
        image_factory=lambda: leak_writer_image(leak),
        command="/bin/main",
        config=config if config is not None else ContainerConfig(),
        host=HostEnvironment(entropy_seed=entropy_seed),
        label=label)


def leaky_pair(leak_a: bytes = b"A" * LEAK_CHUNK,
               leak_b: bytes = b"B" * (2 * LEAK_CHUNK),
               config: Optional[ContainerConfig] = None,
               ) -> Tuple[RunSpec, RunSpec]:
    """Two runs identical except for the leak payload.

    With the defaults the payloads differ in *length* (one chunk-write
    vs two), so the control-flow paths diverge at the leak and trace
    alignment localizes the first divergent record; pass equal-length
    payloads (see :func:`content_leak_pair`) to model a content-only
    leak that only filesystem state (bisection) can see.
    """
    return (leak_spec(leak_a, "run-a", config),
            leak_spec(leak_b, "run-b", config))


def content_leak_pair(config: Optional[ContainerConfig] = None,
                      ) -> Tuple[RunSpec, RunSpec]:
    """Equal-length, different-byte leaks: invisible to the (payload-
    blind) trace, visible to state fingerprints and tree digests."""
    return (leak_spec(b"A" * LEAK_CHUNK, "run-a", config),
            leak_spec(b"B" * LEAK_CHUNK, "run-b", config))


def identical_pair(leak: bytes = b"CCCC",
                   config: Optional[ContainerConfig] = None,
                   ) -> Tuple[RunSpec, RunSpec]:
    """Two byte-identical runs (the self-diff identity baseline)."""
    return (leak_spec(leak, "run-a", config),
            leak_spec(leak, "run-b", config))
