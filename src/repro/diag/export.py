"""Structured exporters for :class:`repro.obs.metrics.Metrics`.

Two formats, both streamed from one shared sample iterator so they can
never disagree on what a metric is called:

* ``prom`` — Prometheus text exposition format, for scraping the
  counters of a run (or a bench aggregate) into ordinary dashboards;
* ``jsonl`` — one JSON object per sample, for jq pipelines and
  append-only logs.

Determinism contract: the exporters are pure functions of the Metrics
snapshot — samples are emitted in sorted order with sorted labels, so
two identical runs export byte-identical text.  No timestamps are ever
attached (they would be host noise on a deterministic snapshot).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, Tuple

Sample = Tuple[str, Dict[str, str], Any]

FORMATS = ("prom", "jsonl")

_PREFIX = "repro"


def _samples(metrics) -> Iterator[Sample]:
    """Flatten a Metrics snapshot into (name, labels, value) samples in
    deterministic order."""
    for name, n in sorted(metrics.counters.items()):
        yield _PREFIX + "_counter", {"name": name}, n
    for name, value in sorted(metrics.gauges.items()):
        yield _PREFIX + "_gauge", {"name": name}, value
    for name, hist in sorted(metrics.histograms.items()):
        for bucket, n in sorted(hist.items()):
            yield (_PREFIX + "_histogram_bucket",
                   {"name": name, "le": bucket.lstrip("<=")}, n)
    for phase, seconds in sorted(metrics.profile.items()):
        yield _PREFIX + "_profile_seconds", {"phase": phase}, seconds
    for label, value in sorted(metrics.table2.items()):
        yield _PREFIX + "_table2", {"row": label}, value
    for name, n in sorted(metrics.syscalls_by_name.items()):
        yield _PREFIX + "_syscalls", {"syscall": name}, n
    for name, n in sorted(metrics.totals.items()):
        yield _PREFIX + "_total", {"name": name}, n
    yield _PREFIX + "_runs", {}, metrics.runs


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(metrics) -> str:
    """Prometheus text exposition of a Metrics snapshot."""
    lines = []
    seen_types = set()
    for name, labels, value in _samples(metrics):
        if name not in seen_types:
            seen_types.add(name)
            kind = "gauge" if name.endswith("_gauge") else "counter"
            lines.append("# TYPE %s %s" % (name, kind))
        if labels:
            rendered = ",".join('%s="%s"' % (key, _escape_label(str(val)))
                                for key, val in sorted(labels.items()))
            lines.append("%s{%s} %s" % (name, rendered,
                                        _format_value(value)))
        else:
            lines.append("%s %s" % (name, _format_value(value)))
    return "\n".join(lines) + "\n"


def metrics_jsonl(metrics) -> str:
    """One canonical JSON object per sample, newline-delimited."""
    lines = []
    for name, labels, value in _samples(metrics):
        record = {"metric": name, "labels": dict(sorted(labels.items())),
                  "value": value}
        lines.append(json.dumps(record, sort_keys=True,
                                separators=(",", ":")))
    return "\n".join(lines) + "\n"


def render_metrics(metrics, fmt: str) -> str:
    """Dispatch on an ``--export-metrics`` format name."""
    if fmt == "prom":
        return prometheus_text(metrics)
    if fmt == "jsonl":
        return metrics_jsonl(metrics)
    raise ValueError("unknown metrics export format: %r (expected one "
                     "of %s)" % (fmt, ", ".join(FORMATS)))
