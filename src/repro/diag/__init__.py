"""Divergence diagnosis for reproducible containers.

The determinism contract says two runs of the same (image, config,
fault plan) are byte-identical on every reproducible surface.  When a
comparison fails — a fuzz-matrix cell, a reprotest double-build, two
trace files from different machines — this package answers *where
first* instead of just *that they differ*:

* :mod:`repro.diag.align` — walk two runs' Chrome traces (which live on
  the shared deterministic virtual-time axis) and report the first
  divergent record with per-side context windows; classify the finding
  (schedule, syscall-result, exit-status, fs-content, stream-content,
  counters).
* :mod:`repro.diag.bisect` — binary-search ``repro.ckpt`` barrier
  snapshots by deterministic state fingerprint to isolate the tick
  window where state first departs, then replay observed for an
  event-level report.
* :mod:`repro.diag.report` — the structured
  :class:`~repro.diag.report.DivergenceReport`, persisted atomically
  like ``crash-report.json``.
* :mod:`repro.diag.export` — Prometheus-text / JSONL exporters for
  ``ContainerResult.metrics``.
* :mod:`repro.diag.harness` — synthetic single-leak workloads with
  known ground truth, for tests and the ``check.sh`` diag gate.

Obs invariant, inherited and preserved: diagnosis only *reads* results,
traces and snapshots — enabling it never perturbs the observed run.
"""

from .align import (
    CONTEXT_WINDOW,
    RunCapture,
    align_records,
    diff_captures,
    diff_trace_files,
    diff_trees,
    load_trace_records,
    record_key,
)
from .bisect import BisectResult, RunSpec, bisect_divergence
from .export import FORMATS, metrics_jsonl, prometheus_text, render_metrics
from .harness import (
    content_leak_pair,
    identical_pair,
    leak_spec,
    leak_writer_image,
    leaky_pair,
)
from .report import (
    CLASSIFICATIONS,
    COUNTERS,
    EXIT_STATUS,
    FS_CONTENT,
    NONE,
    SCHEDULE,
    STREAM_CONTENT,
    SYSCALL_RESULT,
    DivergenceReport,
)

__all__ = [
    "BisectResult",
    "CLASSIFICATIONS",
    "CONTEXT_WINDOW",
    "COUNTERS",
    "DivergenceReport",
    "EXIT_STATUS",
    "FORMATS",
    "FS_CONTENT",
    "NONE",
    "RunCapture",
    "RunSpec",
    "SCHEDULE",
    "STREAM_CONTENT",
    "SYSCALL_RESULT",
    "align_records",
    "bisect_divergence",
    "content_leak_pair",
    "diff_captures",
    "diff_trace_files",
    "diff_trees",
    "identical_pair",
    "leak_spec",
    "leak_writer_image",
    "leaky_pair",
    "load_trace_records",
    "metrics_jsonl",
    "prometheus_text",
    "record_key",
    "render_metrics",
]
