"""Trace alignment and first-divergence diffing.

Two runs of the same (image, config, fault plan) must be byte-identical
on every reproducible surface.  When they are not, this module answers
*where first*: both Chrome traces live on the same deterministic
virtual-time axis (det_clock microseconds, container-namespace
pids/tids, per-process syscall indices), so the two record streams can
be walked in canonical order and compared position by position.  The
first mismatching position *is* the first observable divergence, with a
deterministic coordinate attached.

Alignment keys vs. payloads:

* the **coordinate key** of a record is ``(ts, pid, tid, ph, name,
  args.index)`` — if the keys differ the two runs took different
  control-flow paths (classification ``schedule``);
* if the keys agree but the full records differ (duration, category,
  attempt, detail), the same syscall instance produced a different
  outcome (classification ``syscall-result``) — e.g. a write of a
  different length changes the span's io-proportional ``dur``.

Context windows reuse the same :class:`repro.obs.events.EventRing`
bounded ring that backs ``CrashReport.last_syscalls``, so crash
forensics and divergence forensics share one windowing mechanism.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Tuple

from ..obs.events import EventRing
from ..repro_tools.hashing import sha256, tree_digest
from .report import (
    COUNTERS,
    EXIT_STATUS,
    FS_CONTENT,
    SCHEDULE,
    STREAM_CONTENT,
    SYSCALL_RESULT,
    DivergenceReport,
)

#: Default number of pre-divergence records kept per side.
CONTEXT_WINDOW = 16

#: The canonical record order — identical to TraceLog.to_chrome's sort.
_SORT_KEY = lambda r: (r["ts"], r["pid"], r["tid"],  # noqa: E731
                       r.get("args", {}).get("index", -1),
                       r.get("args", {}).get("attempt", 0),
                       r["ph"], r.get("cat", ""), r["name"])


def record_key(rec: Dict[str, Any]) -> Tuple:
    """The deterministic coordinate of one Chrome record."""
    return (rec.get("ts"), rec.get("pid"), rec.get("tid"),
            rec.get("ph"), rec.get("name"),
            (rec.get("args") or {}).get("index"))


def load_trace_records(path: str) -> List[Dict[str, Any]]:
    """Load a Chrome trace file (object or bare list) in canonical
    order."""
    with open(path) as fh:
        data = json.load(fh)
    if isinstance(data, dict):
        records = data.get("traceEvents", [])
    else:
        records = data
    # Re-sort defensively: hand-edited or third-party traces may not be
    # in the canonical order TraceLog.write emits.
    return sorted(records, key=_SORT_KEY)


def align_records(records_a: List[Dict[str, Any]],
                  records_b: List[Dict[str, Any]],
                  labels: Tuple[str, str] = ("a", "b"),
                  context: int = CONTEXT_WINDOW,
                  ) -> Optional[DivergenceReport]:
    """Walk two canonical record streams; report the first divergence
    (or None if they are identical)."""
    ring_a: EventRing = EventRing(context)
    ring_b: EventRing = EventRing(context)
    n = min(len(records_a), len(records_b))
    for pos in range(n):
        rec_a, rec_b = records_a[pos], records_b[pos]
        if rec_a == rec_b:
            ring_a.push_entry(rec_a)
            ring_b.push_entry(rec_b)
            continue
        same_instance = record_key(rec_a) == record_key(rec_b)
        classification = SYSCALL_RESULT if same_instance else SCHEDULE
        if same_instance:
            summary = ("syscall instance %s (pid %s, #%s) produced "
                       "different outcomes at the same virtual time"
                       % (rec_a.get("name"), rec_a.get("pid"),
                          (rec_a.get("args") or {}).get("index")))
        else:
            summary = ("runs took different paths: %r vs %r at aligned "
                       "position %d" % (rec_a.get("name"),
                                        rec_b.get("name"), pos))
        return DivergenceReport(
            classification=classification,
            summary=summary,
            labels=labels,
            vts=_record_vts(rec_a, rec_b),
            position=pos,
            divergent={"a": rec_a, "b": rec_b},
            context={"a": ring_a.entries(), "b": ring_b.entries()},
        )
    if len(records_a) != len(records_b):
        longer = labels[0] if len(records_a) > len(records_b) else labels[1]
        extra = (records_a if len(records_a) > len(records_b)
                 else records_b)[n]
        return DivergenceReport(
            classification=SCHEDULE,
            summary=("trace streams agree for %d records, then %s "
                     "continues with %d more (first extra: %s)"
                     % (n, longer, abs(len(records_a) - len(records_b)),
                        extra.get("name"))),
            labels=labels,
            vts=(extra.get("ts", 0) or 0) / 1e6,
            position=n,
            divergent={"a": records_a[n] if len(records_a) > n else None,
                       "b": records_b[n] if len(records_b) > n else None},
            context={"a": ring_a.entries(), "b": ring_b.entries()},
        )
    return None


def _record_vts(rec_a: Dict[str, Any], rec_b: Dict[str, Any]) -> float:
    """Trace ``ts`` is det_clock microseconds; report virtual seconds
    (the earlier of the two sides, so the window is conservative)."""
    ts = min(rec_a.get("ts", 0) or 0, rec_b.get("ts", 0) or 0)
    return ts / 1e6


def diff_trace_files(path_a: str, path_b: str,
                     labels: Tuple[str, str] = ("a", "b"),
                     context: int = CONTEXT_WINDOW) -> DivergenceReport:
    """``repro diff`` backend: align two trace files on disk."""
    report = align_records(load_trace_records(path_a),
                           load_trace_records(path_b),
                           labels=labels, context=context)
    if report is None:
        report = DivergenceReport(
            labels=labels,
            detail="traces aligned record-for-record")
    return report


# -- whole-run capture diffing -----------------------------------------


@dataclasses.dataclass
class RunCapture:
    """The comparable surface of one run, reduced to plain data."""

    label: str
    status: str
    exit_code: Any
    stdout: str
    stderr: str
    tree_files: Dict[str, str]
    tree_digest: str
    counters: Dict[str, int]
    totals: Dict[str, int]
    records: List[Dict[str, Any]]

    @classmethod
    def from_result(cls, result, label: str) -> "RunCapture":
        """Reduce a :class:`~repro.core.container.ContainerResult`.

        Pure observation: reads the result, never mutates it — part of
        the obs invariant that diagnosing a run cannot perturb it.
        """
        tree_files = {path: sha256(data)
                      for path, data in sorted(result.output_tree.items())}
        counters: Dict[str, int] = {}
        totals: Dict[str, int] = {}
        if result.metrics is not None:
            counters = dict(result.metrics.counters)
            totals = dict(result.metrics.totals)
        elif result.counters is not None:
            counters = {field.name: getattr(result.counters, field.name)
                        for field in dataclasses.fields(result.counters)}
        records: List[Dict[str, Any]] = []
        if result.trace is not None:
            records = result.trace.to_chrome()["traceEvents"]
        return cls(label=label, status=result.status,
                   exit_code=result.exit_code, stdout=result.stdout,
                   stderr=result.stderr, tree_files=tree_files,
                   tree_digest=tree_digest(result.output_tree),
                   counters=counters, totals=totals, records=records)

    def surface(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "exit_code": self.exit_code,
            "stdout_sha256": sha256(self.stdout.encode()),
            "stderr_sha256": sha256(self.stderr.encode()),
            "tree_digest": self.tree_digest,
            "trace_records": len(self.records),
        }


def diff_captures(cap_a: RunCapture, cap_b: RunCapture,
                  context: int = CONTEXT_WINDOW) -> DivergenceReport:
    """First divergence between two whole-run captures.

    Precedence: the trace is the finest-grained surface, so a trace
    finding (with its virtual-time coordinate) wins; then exit status,
    filesystem content, stream content, and finally bare counters —
    each later class only reported when every earlier surface agrees.
    """
    labels = (cap_a.label, cap_b.label)
    surface = {"a": cap_a.surface(), "b": cap_b.surface()}
    report: Optional[DivergenceReport] = None
    if cap_a.records and cap_b.records:
        report = align_records(cap_a.records, cap_b.records,
                               labels=labels, context=context)
    if report is None and (cap_a.status != cap_b.status
                           or cap_a.exit_code != cap_b.exit_code):
        report = DivergenceReport(
            classification=EXIT_STATUS, labels=labels,
            summary=("exit surfaces differ: %s/%s vs %s/%s"
                     % (cap_a.status, cap_a.exit_code,
                        cap_b.status, cap_b.exit_code)))
    if report is None and cap_a.tree_files != cap_b.tree_files:
        first_path = _first_tree_difference(cap_a.tree_files,
                                            cap_b.tree_files)
        report = DivergenceReport(
            classification=FS_CONTENT, labels=labels,
            summary="output trees differ, first at %r" % first_path,
            first_path=first_path)
    if report is None and (cap_a.stdout != cap_b.stdout
                           or cap_a.stderr != cap_b.stderr):
        stream = "stdout" if cap_a.stdout != cap_b.stdout else "stderr"
        report = DivergenceReport(
            classification=STREAM_CONTENT, labels=labels,
            summary="%s contents differ (offset %d)"
            % (stream, _first_str_difference(
                getattr(cap_a, stream), getattr(cap_b, stream))))
    if report is None:
        deltas = _counter_deltas(cap_a, cap_b)
        if deltas:
            first = sorted(deltas)[0]
            report = DivergenceReport(
                classification=COUNTERS, labels=labels,
                summary=("observable surfaces match but %d counter(s) "
                         "differ, e.g. %s: %s != %s"
                         % (len(deltas), first, deltas[first][0],
                            deltas[first][1])),
                counter_deltas=deltas)
    if report is None:
        report = DivergenceReport(
            labels=labels,
            detail="status, streams, tree, counters and trace all agree")
    else:
        report.counter_deltas = report.counter_deltas or _counter_deltas(
            cap_a, cap_b)
    report.surface = surface
    return report


def _counter_deltas(cap_a: RunCapture,
                    cap_b: RunCapture) -> Dict[str, List[Any]]:
    deltas: Dict[str, List[Any]] = {}
    for prefix, da, db in (("counter/", cap_a.counters, cap_b.counters),
                           ("total/", cap_a.totals, cap_b.totals)):
        for name in sorted(set(da) | set(db)):
            va, vb = da.get(name), db.get(name)
            if va != vb:
                deltas[prefix + name] = [va, vb]
    return deltas


def _first_tree_difference(files_a: Dict[str, str],
                           files_b: Dict[str, str]) -> str:
    for path in sorted(set(files_a) | set(files_b)):
        if files_a.get(path) != files_b.get(path):
            return path
    return ""


def _first_str_difference(text_a: str, text_b: str) -> int:
    limit = min(len(text_a), len(text_b))
    for i in range(limit):
        if text_a[i] != text_b[i]:
            return i
    return limit


def diff_trees(tree_a: Dict[str, bytes], tree_b: Dict[str, bytes],
               labels: Tuple[str, str] = ("a", "b")) -> DivergenceReport:
    """Diff two raw output trees (the reprotest double-build hook)."""
    files_a = {path: sha256(data) for path, data in tree_a.items()}
    files_b = {path: sha256(data) for path, data in tree_b.items()}
    if files_a == files_b:
        return DivergenceReport(labels=labels,
                                detail="output trees are identical")
    first_path = _first_tree_difference(files_a, files_b)
    in_a, in_b = first_path in files_a, first_path in files_b
    if in_a and in_b:
        what = "content differs"
    elif in_a:
        what = "only in %s" % labels[0]
    else:
        what = "only in %s" % labels[1]
    return DivergenceReport(
        classification=FS_CONTENT,
        labels=labels,
        summary="trees differ at %r (%s)" % (first_path, what),
        first_path=first_path,
        surface={"a": {"tree_digest": tree_digest(tree_a),
                       "files": len(files_a)},
                 "b": {"tree_digest": tree_digest(tree_b),
                       "files": len(files_b)}},
    )
