"""The record side of the rr-analog baseline (paper §7.1.3).

The recorder is also a ptrace tracer, but it makes no attempt at
determinism: stops are serviced in arrival order, syscalls execute with
native semantics, and the (irreproducible) results are written to the
recording.  Its per-event cost is higher than DetTrace's because every
result payload is serialized to the trace file.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from ..kernel.costs import (
    TRACEE_WAKEUP_LATENCY,
    TRACER_HANDLER_COST,
    TRACER_REPLAY_COST,
)
from ..kernel.process import Process, Thread
from ..tracer.ptrace import TracerBase
from ..tracer.seccomp import SeccompFilter
from .trace import Recording, RnrCrash, TraceEvent

#: Per-event serialization cost on top of the stop cost: rr copies and
#: compresses the result payload into its trace, giving it a much higher
#: per-event constant than DetTrace's in-memory handlers (§7.1.3 measures
#: a 5.8x mean overhead for rr vs 3.49x for DetTrace).
RECORD_EVENT_COST = 70e-6
#: Payload serialization bandwidth (compression-dominated).
RECORD_BANDWIDTH = 5.0e7

#: ioctl requests rr 5.2.0 handles; anything else triggers the known
#: crash bug the paper hit on 46 of 81 packages.
SUPPORTED_IOCTLS = frozenset({"TIOCGWINSZ", "FIONREAD"})


class RnrRecorder(TracerBase):
    """Records one native execution of the container tree.

    Scope note: real rr forces all tracee threads onto one core so that
    the recorded thread interleaving can be reproduced; this analog does
    not model that, so recordings of multi-threaded processes may diverge
    on replay.  The §7.1.3 comparison therefore samples single-threaded
    packages (the paper's own rr experiment predates its thread story).
    """

    def __init__(self):
        super().__init__()
        self.recording = Recording()
        #: pid -> hierarchical spawn path, e.g. (0, 2, 1): replay-stable
        #: even when global spawn interleaving differs.
        self._proc_index: Dict[int, tuple] = {}
        self._child_counts: Dict[tuple, int] = {}
        self._blocked: Deque[Thread] = deque()
        self._pumping = False

    def attach(self, kernel) -> None:
        super().attach(kernel)
        self.seccomp = SeccompFilter(
            enabled=True, kernel_version=kernel.host.machine.kernel_version)

    # -- lifecycle -------------------------------------------------------

    def on_process_spawn(self, proc: Process) -> None:
        self.counters.process_spawns += 1
        if proc.parent is None:
            key = (0,)
        else:
            parent_key = self._proc_index.get(proc.parent.pid, (0,))
            ordinal = self._child_counts.get(parent_key, 0)
            self._child_counts[parent_key] = ordinal + 1
            key = parent_key + (ordinal,)
        self._proc_index[proc.pid] = key
        self.recording.spawn_argvs[key] = list(proc.argv)

    # -- instructions ------------------------------------------------------

    def traps_instruction(self, thread: Thread, name: str) -> bool:
        # rr records rdtsc via PR_SET_TSC so replay can inject it.
        return name in ("rdtsc", "rdtscp")

    def on_instruction(self, thread: Thread, name: str):
        value = self.kernel.cpu.execute(name, self.kernel.clock.now)
        index = self._proc_index.get(thread.process.pid, (-1,))
        self.recording.append(index, TraceEvent("instr:" + name, "value", value))
        finish = self.charge(RECORD_EVENT_COST / 2)
        return (value, finish)

    # -- stops -------------------------------------------------------------

    def on_trace_stop(self, thread: Thread) -> None:
        self.counters.syscall_events += 1
        self._service(thread)
        self._pump_blocked()

    def _service(self, thread: Thread) -> None:
        call = thread.current_syscall
        if call.name == "ioctl" and call.args.get("request") not in SUPPORTED_IOCTLS:
            raise RnrCrash("ioctl", repr(call.args.get("request")))
        self.charge(self.seccomp.stop_cost + TRACER_HANDLER_COST + RECORD_EVENT_COST)
        data = call.args.get("data")
        if isinstance(data, (bytes, str)):
            self.charge(len(data) / RECORD_BANDWIDTH)
        tag, payload = self.kernel.tracer_execute(thread, call, nonblocking=True)
        index = self._proc_index.get(thread.process.pid, (-1,))
        if tag == "block":
            self._blocked.append(thread)
            return
        if tag == "sleep":
            self.recording.append(index, TraceEvent(call.name, "value", 0))
            at = max(self.busy_until, self.kernel.clock.now + payload)
            self.kernel.tracer_resume(thread, at, value=0)
            return
        if tag in ("exit", "execve"):
            self.recording.append(index, TraceEvent(call.name, "value", None))
            if tag == "execve":
                self.kernel.tracer_execve(thread, payload, at=self.busy_until)
            return
        outcome = "value" if tag == "ok" else "error"
        self.recording.append(index, TraceEvent(call.name, outcome, payload))
        if isinstance(payload, (bytes, str)):
            self.charge(len(payload) / RECORD_BANDWIDTH)
        thread.pending_latency += TRACEE_WAKEUP_LATENCY
        if tag == "ok":
            self.kernel.tracer_resume(thread, self.busy_until, value=payload)
        else:
            self.kernel.tracer_resume(thread, self.busy_until, exc=payload)

    def _pump_blocked(self) -> None:
        if self._pumping:
            return
        self._pumping = True
        try:
            for _ in range(len(self._blocked)):
                thread = self._blocked.popleft()
                if not thread.alive:
                    continue
                self.charge(TRACER_REPLAY_COST)
                self.counters.replays_blocking += 1
                self._service_blocked(thread)
        finally:
            self._pumping = False

    def _service_blocked(self, thread: Thread) -> None:
        call = thread.current_syscall
        tag, payload = self.kernel.tracer_execute(thread, call, nonblocking=True)
        index = self._proc_index.get(thread.process.pid, (-1,))
        if tag == "block":
            self._blocked.append(thread)
            return
        outcome = "value" if tag == "ok" else "error"
        if tag in ("exit", "execve"):
            self.recording.append(index, TraceEvent(call.name, "value", None))
            if tag == "execve":
                self.kernel.tracer_execve(thread, payload, at=self.busy_until)
            return
        self.recording.append(index, TraceEvent(call.name, outcome, payload))
        thread.pending_latency += TRACEE_WAKEUP_LATENCY
        if tag == "ok":
            self.kernel.tracer_resume(thread, self.busy_until, value=payload)
        else:
            self.kernel.tracer_resume(thread, self.busy_until, exc=payload)

    def on_quiescent(self) -> bool:
        before = len(self._blocked)
        self._pump_blocked()
        return len(self._blocked) < before

    def on_busy_wait(self, thread: Thread) -> None:
        # rr does not care about busy-waiting; the kernel budget should be
        # disabled when recording, but tolerate it if set.
        pass
