"""Record-and-replay baseline (Mozilla rr analog, paper §7.1.3)."""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..cpu.machine import HostEnvironment
from ..kernel.errors import DeadlockError, SimTimeout
from ..kernel.kernel import Kernel
from ..core.container import _collect_output_tree
from .recorder import RnrRecorder, SUPPORTED_IOCTLS
from .replayer import RnrReplayer
from .trace import Recording, ReplayDivergence, RnrCrash, TraceEvent

__all__ = [
    "RecordResult",
    "Recording",
    "ReplayDivergence",
    "RnrCrash",
    "RnrRecorder",
    "RnrReplayer",
    "SUPPORTED_IOCTLS",
    "TraceEvent",
    "record",
    "replay",
]


@dataclasses.dataclass
class RecordResult:
    """Outcome of one recorded run."""

    status: str  # "ok" | "crash" | "timeout" | "deadlock"
    error: str
    exit_code: Optional[int]
    recording: Recording
    wall_time: float
    syscall_count: int
    output_tree: dict


def record(image, command: str, argv: Optional[List[str]] = None,
           host: Optional[HostEnvironment] = None,
           timeout: float = 7200.0) -> RecordResult:
    """Run *command* natively under the recorder."""
    host = host or HostEnvironment()
    kernel = Kernel(host)
    build_dir = host.build_path
    image.install(kernel, build_dir)
    recorder = RnrRecorder()
    recorder.attach(kernel)
    proc = kernel.boot(command, argv=argv, env=dict(host.env), uid=1000,
                       cwd_path=build_dir)
    status, error = "ok", ""
    try:
        kernel.run(deadline=timeout)
    except RnrCrash as err:
        status, error = "crash", str(err)
    except SimTimeout:
        status, error = "timeout", "deadline exceeded"
    except DeadlockError as err:
        status, error = "deadlock", str(err)
    exit_code = None
    if status == "ok" and proc.exit_status is not None:
        exit_code = (proc.exit_status >> 8) & 0xFF
    return RecordResult(
        status=status, error=error, exit_code=exit_code,
        recording=recorder.recording, wall_time=kernel.clock.now,
        syscall_count=kernel.stats.syscalls,
        output_tree=_collect_output_tree(kernel, build_dir))


def replay(image, command: str, recording: Recording,
           argv: Optional[List[str]] = None,
           host: Optional[HostEnvironment] = None,
           timeout: float = 7200.0) -> bool:
    """Replay a recording; returns True if it completed without divergence."""
    host = host or HostEnvironment()
    kernel = Kernel(host)
    image.install(kernel, host.build_path)
    replayer = RnrReplayer(recording)
    replayer.attach(kernel)
    kernel.boot(command, argv=argv, env=dict(host.env), uid=1000,
                cwd_path=host.build_path)
    kernel.run(deadline=timeout)
    return True
