"""Record-and-replay traces (paper §7.1.3).

A recording stores, per process, the result of every intercepted syscall
in execution order.  Replay injects those results back, so the replayed
run observes exactly the recorded world.  Unlike DetTrace, the trace is
an opaque artifact: it enables *replaying one past execution*, not
*reproducing the computation from source* — and it costs storage.
"""

from __future__ import annotations

import dataclasses
import pickle
from typing import Any, Dict, List


@dataclasses.dataclass
class TraceEvent:
    """One recorded syscall outcome for one process."""

    syscall: str
    outcome: str  # "value" | "error"
    payload: Any

    def storage_size(self) -> int:
        """Approximate on-disk bytes for this event."""
        try:
            return 16 + len(pickle.dumps(self.payload, protocol=4))
        except Exception:
            return 64


@dataclasses.dataclass
class Recording:
    """A full recording: per-process event streams, in spawn order."""

    #: hierarchical spawn path -> ordered events
    streams: Dict[tuple, List[TraceEvent]] = dataclasses.field(default_factory=dict)
    #: argv of each spawned process, for divergence diagnostics
    spawn_argvs: Dict[tuple, List[str]] = dataclasses.field(default_factory=dict)

    def append(self, proc_index: tuple, event: TraceEvent) -> None:
        self.streams.setdefault(proc_index, []).append(event)

    @property
    def event_count(self) -> int:
        return sum(len(s) for s in self.streams.values())

    def storage_size(self) -> int:
        """Total recording size in bytes — rr's storage cost."""
        return sum(ev.storage_size() for s in self.streams.values() for ev in s)


class RnrCrash(Exception):
    """The recorder hit an operation it cannot handle (the known
    unsupported-ioctl bug class from §7.1.3)."""

    def __init__(self, syscall: str, detail: str = ""):
        self.syscall = syscall
        super().__init__("rr crash: unsupported %s %s" % (syscall, detail))


class ReplayDivergence(Exception):
    """Replay executed a different syscall than the recording expected."""
