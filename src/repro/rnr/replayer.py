"""The replay side of the rr analog.

Replay re-runs the same program tree but *injects* every recorded syscall
result instead of executing against the kernel, so the guest re-observes
the recorded world exactly (including its irreproducible values).  A few
structural syscalls (spawn/exit/execve and thread creation) must really
execute so the process tree exists; their results are checked against the
recording instead.
"""

from __future__ import annotations

from typing import Dict

from ..kernel.costs import TRACER_HANDLER_COST
from ..kernel.errors import SyscallError
from ..kernel.process import Process, Thread
from ..tracer.ptrace import TracerBase
from ..tracer.seccomp import SeccompFilter
from .trace import Recording, ReplayDivergence

#: Syscalls replay must actually execute (world-structure, not data).
STRUCTURAL = frozenset({
    "spawn_process", "spawn_thread", "execve", "exit", "exit_thread",
})

REPLAY_EVENT_COST = 10e-6


class RnrReplayer(TracerBase):
    """Drives a replayed execution from a :class:`Recording`."""

    def __init__(self, recording: Recording):
        super().__init__()
        self.recording = recording
        self._proc_index: Dict[int, tuple] = {}
        self._child_counts: Dict[tuple, int] = {}
        self._cursor: Dict[tuple, int] = {}

    def attach(self, kernel) -> None:
        super().attach(kernel)
        self.seccomp = SeccompFilter(
            enabled=True, kernel_version=kernel.host.machine.kernel_version)

    def on_process_spawn(self, proc: Process) -> None:
        self.counters.process_spawns += 1
        if proc.parent is None:
            index = (0,)
        else:
            parent_key = self._proc_index.get(proc.parent.pid, (0,))
            ordinal = self._child_counts.get(parent_key, 0)
            self._child_counts[parent_key] = ordinal + 1
            index = parent_key + (ordinal,)
        self._proc_index[proc.pid] = index
        expected = self.recording.spawn_argvs.get(index)
        if expected is not None and expected[:1] != proc.argv[:1]:
            raise ReplayDivergence(
                "process %s ran %r, recording has %r"
                % (index, proc.argv[:1], expected[:1]))

    def _next_event(self, thread: Thread):
        index = self._proc_index.get(thread.process.pid, (-1,))
        stream = self.recording.streams.get(index, [])
        pos = self._cursor.get(index, 0)
        if pos >= len(stream):
            raise ReplayDivergence(
                "process %s ran past the end of its recorded stream" % (index,))
        self._cursor[index] = pos + 1
        return stream[pos]

    def traps_instruction(self, thread: Thread, name: str) -> bool:
        return name in ("rdtsc", "rdtscp")

    def on_instruction(self, thread: Thread, name: str):
        event = self._next_event(thread)
        if event.syscall != "instr:" + name:
            raise ReplayDivergence(
                "pid %d executed instruction %s, recording expected %s"
                % (thread.process.pid, name, event.syscall))
        finish = self.charge(REPLAY_EVENT_COST / 2)
        return (event.payload, finish)

    def on_trace_stop(self, thread: Thread) -> None:
        self.counters.syscall_events += 1
        call = thread.current_syscall
        self.charge(self.seccomp.stop_cost + TRACER_HANDLER_COST + REPLAY_EVENT_COST)
        event = self._next_event(thread)
        if event.syscall != call.name:
            raise ReplayDivergence(
                "pid %d executed %s, recording expected %s"
                % (thread.process.pid, call.name, event.syscall))
        if call.name in STRUCTURAL:
            tag, payload = self.kernel.tracer_execute(thread, call, nonblocking=True)
            if tag == "execve":
                self.kernel.tracer_execve(thread, payload, at=self.busy_until)
                return
            if tag == "exit":
                return
            if tag == "ok":
                # The call really executed (the process tree must exist),
                # but the guest must observe the *recorded* value: pid
                # allocation order can differ in replay, and every pid the
                # guest compares against later comes from the recording.
                value = event.payload if event.outcome == "value" else payload
                self.kernel.tracer_resume(thread, self.busy_until, value=value)
            else:
                self.kernel.tracer_resume(thread, self.busy_until, exc=payload)
            return
        # Pure injection: the kernel never sees the syscall.
        if event.outcome == "value":
            self.kernel.tracer_resume(thread, self.busy_until, value=event.payload)
        else:
            exc = event.payload
            if not isinstance(exc, BaseException):
                exc = SyscallError(int(exc), call.name)
            self.kernel.tracer_resume(thread, self.busy_until, exc=exc)

    def on_busy_wait(self, thread: Thread) -> None:
        pass
