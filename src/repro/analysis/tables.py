"""Render the paper's tables and figures as text.

Each benchmark computes raw rows/series; these helpers format them the
way the paper presents them, side by side with the paper's own numbers
where available.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Paper values for Table 1 (top): given baseline status, DetTrace status
#: fractions.
PAPER_TABLE1_TOP = {
    ("irreproducible", "reproducible"): 0.7265,
    ("irreproducible", "unsupported"): 0.1599,
    ("irreproducible", "timeout"): 0.1136,
    ("reproducible", "reproducible"): 0.9051,
    ("reproducible", "unsupported"): 0.0360,
    ("reproducible", "timeout"): 0.0589,
}

#: Paper values for Table 2.
PAPER_TABLE2 = {
    "System call events": 843_621.53,
    "User process memory reads": 396_474.88,
    "rdtsc intercepted": 33_487.55,
    "Requests for scheduling next process": 6_049.51,
    "Replays due to blocking system call": 1_283.72,
    "Process spawn events": 2_377.54,
    "read retries": 141.28,
    "/dev/urandom opens": 159.92,
    "write retries": 113.98,
}

#: Paper Figure 6 speedups: tool -> {mode -> [1, 4, 16 procs]}.
PAPER_FIG6 = {
    "clustal": {"native": [1.00, 1.98, 4.24], "dettrace": [0.85, 2.01, 4.17]},
    "hmmer": {"native": [1.00, 2.96, 7.46], "dettrace": [0.66, 2.24, 4.78]},
    "raxml": {"native": [1.00, 2.76, 6.88], "dettrace": [0.29, 0.86, 1.11]},
}

#: Paper §7.6 slowdowns.
PAPER_TF = {
    "alexnet": {"vs_parallel": 17.49, "vs_serial": 1.51},
    "cifar10": {"vs_parallel": 11.94, "vs_serial": 1.08},
}

#: Paper §7.4 aggregate build slowdown.
PAPER_BUILD_AGGREGATE = 3.49

#: Paper §7.1.3 rr numbers.
PAPER_RR = {"crash_fraction": 46 / 81, "mean_overhead": 5.8,
            "min_overhead": 3.3, "max_overhead": 22.7}


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """A plain fixed-width table."""
    cols = [[str(h)] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in cols]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_table1(matrix: Dict[Tuple[str, str], int]) -> str:
    """Render the measured BL->DT transition matrix next to the paper's."""
    bl_totals = {}
    for (bl, _dt), count in matrix.items():
        bl_totals[bl] = bl_totals.get(bl, 0) + count
    rows = []
    for bl in ("irreproducible", "reproducible"):
        for dt in ("reproducible", "unsupported", "timeout"):
            count = matrix.get((bl, dt), 0)
            total = bl_totals.get(bl, 0)
            frac = count / total if total else 0.0
            paper = PAPER_TABLE1_TOP.get((bl, dt), 0.0)
            rows.append(["BL %s" % bl, "DT %s" % dt, count,
                         "%.1f%%" % (100 * frac), "%.1f%%" % (100 * paper)])
    return format_table(
        ["given", "outcome", "count", "measured", "paper"], rows,
        title="Table 1 (top): build status moving from baseline to DetTrace")


def format_table2(averages: Dict[str, float], scale_note: str = "") -> str:
    rows = []
    for label, paper in PAPER_TABLE2.items():
        measured = averages.get(label, 0.0)
        rows.append([label, "%.2f" % measured, "%.2f" % paper])
    out = format_table(["event", "measured avg", "paper avg"], rows,
                       title="Table 2: per-package average tracer events")
    if scale_note:
        out += "\n" + scale_note
    return out


def format_fig6(speedups: Dict[str, Dict[str, List[float]]]) -> str:
    rows = []
    for tool in ("clustal", "hmmer", "raxml"):
        for mode in ("native", "dettrace"):
            ours = speedups.get(tool, {}).get(mode, [])
            paper = PAPER_FIG6[tool][mode]
            rows.append([
                tool, mode,
                " ".join("%.2f" % v for v in ours),
                " ".join("%.2f" % v for v in paper),
            ])
    return format_table(
        ["tool", "mode", "measured (1/4/16 procs)", "paper (1/4/16 procs)"],
        rows, title="Figure 6: bioinformatics speedup over sequential native")


def format_scatter(points: List[Tuple[float, float]], width: int = 64,
                   height: int = 16, log_y: bool = True,
                   title: str = "") -> str:
    """An ASCII scatter plot (Figure 5 style)."""
    import math

    if not points:
        return title + "\n(no data)"
    xs = [p[0] for p in points]
    ys = [math.log(max(p[1], 1e-9)) if log_y else p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = [title] if title else []
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(" x: %.0f..%.0f syscalls/s   y: %s slowdown %.2f..%.2f x"
                 % (x_lo, x_hi, "log" if log_y else "", min(p[1] for p in points),
                    max(p[1] for p in points)))
    return "\n".join(lines)
