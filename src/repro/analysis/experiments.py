"""The full evaluation, as a library (regenerates EXPERIMENTS.md).

Each ``*_section`` function runs one experiment for real and renders a
markdown section with measured-vs-paper numbers.  ``scripts/
run_experiments.py`` is a thin wrapper; ``generate(scale, out)`` is the
API (smoke-tested at a tiny scale in the test suite).
"""


import sys
import time
from collections import Counter

import numpy as np


def table1_section(scale):
    from repro.analysis import format_table, format_table1
    from repro.repro_tools import reprotest_dettrace, reprotest_native
    from repro.workloads.debian import generate_population

    n = max(40, int(80 * scale))
    specs = generate_population(n, seed=42)
    matrix = Counter()
    causes = Counter()
    stock = 0
    for spec in specs:
        bl = reprotest_native(spec)
        dt = reprotest_dettrace(spec)
        matrix[(bl.verdict, dt.verdict)] += 1
        if dt.verdict == "unsupported":
            for cause in spec.unsupported_causes:
                causes[cause] += 1
        if reprotest_native(spec, apply_tar_workaround=False).verdict == "reproducible":
            stock += 1
    bl_irr = sum(v for (b, _), v in matrix.items() if b == "irreproducible")
    rendered = matrix.get(("irreproducible", "reproducible"), 0)

    out = ["## Table 1 — build-status transitions (population: %d packages)" % n, ""]
    out.append("```")
    out.append(format_table1(matrix))
    out.append("```")
    out.append("")
    out.append("| §6.1 claim | measured | paper |")
    out.append("|---|---|---|")
    out.append("| stock system (no tar workaround) reproducible | %d/%d | 0 |" % (stock, n))
    out.append("| baseline reproducible (with workaround) | %.1f%% | 24.1%% |"
               % (100 * (n - bl_irr) / n))
    out.append("| BL-irreproducible rendered reproducible by DetTrace | %.1f%% | 72.65%% |"
               % (100 * rendered / max(1, bl_irr)))
    out.append("| reproducible→irreproducible regressions | %d | 0 |"
               % matrix.get(("reproducible", "irreproducible"), 0))
    out.append("| irreproducible under DetTrace | %d | 0 |"
               % matrix.get(("irreproducible", "irreproducible"), 0))
    out.append("")
    total_causes = sum(causes.values()) or 1
    out.append("§7.1.1 unsupported causes (paper: busy-wait 45.8%, sockets 15.8%, "
               "signals 4%, misc tail):")
    out.append("")
    for cause, count in causes.most_common():
        out.append("* %s: %d (%.0f%%)" % (cause, count, 100 * count / total_causes))
    out.append("")
    return "\n".join(out)


def table2_section(scale):
    from repro.repro_tools import first_build_host
    from repro.tracer.events import TraceCounters
    from repro.analysis import PAPER_TABLE2
    from repro.workloads.debian import build_dettrace, generate_population

    n = max(20, int(40 * scale))
    specs = [s for s in generate_population(n * 2, seed=7)
             if not s.expect_dt_unsupported and not s.syscall_storm][:n]
    total = TraceCounters()
    built = 0
    for spec in specs:
        rec = build_dettrace(spec, host=first_build_host())
        if rec.status == "built":
            built += 1
            total.add(rec.result.counters)
    out = ["## Table 2 — per-package average tracer events (%d builds)" % built, ""]
    out.append("| event | measured avg | paper avg |")
    out.append("|---|---|---|")
    for label, value in total.as_table2_rows():
        out.append("| %s | %.2f | %.2f |" % (label, value / max(1, built),
                                             PAPER_TABLE2[label]))
    out.append("")
    out.append("Our packages are ~10³× smaller than Debian's (hundreds of "
               "syscalls per build vs 843k), so compare the *mix*, not the "
               "magnitudes: syscalls ≫ memory reads ≫ rdtsc ≫ spawns ≫ IO "
               "retries, as in the paper.  One scale artifact: blocked-"
               "syscall replays are proportionally higher here because our "
               "builds spend most of their (short) lives with a parent "
               "blocked in wait4 while children run, and the scheduler "
               "re-probes the blocked call after every serviced syscall "
               "(§5.6.1); in the paper's hour-long builds that overhead "
               "amortizes to ~0.15% of events.")
    out.append("")
    return "\n".join(out)


def fig5_section(scale):
    from repro.analysis import format_scatter
    from repro.repro_tools import first_build_host
    from repro.workloads.debian import build_dettrace, build_native, generate_population

    n = max(25, int(40 * scale))
    specs = [s for s in generate_population(n * 2, seed=13)
             if not s.expect_dt_unsupported and not s.syscall_storm][:n]
    points, thr, nothr = [], [], []
    thr_flags = []
    walls = []
    for spec in specs:
        base = build_native(spec, host=first_build_host())
        det = build_dettrace(spec, host=first_build_host())
        if base.status != "built" or det.status != "built":
            continue
        rate = base.result.syscall_count / base.result.wall_time
        slow = det.result.wall_time / base.result.wall_time
        points.append((rate, slow))
        walls.append(base.result.wall_time)
        thr_flags.append(spec.uses_threads)
        (thr if spec.uses_threads else nothr).append(slow)
    rates = np.array([p[0] for p in points])
    slows = np.array([p[1] for p in points])
    w = np.array(walls)
    corr = float(np.corrcoef(rates, slows)[0, 1])
    aggregate = float((slows * w).sum() / w.sum())

    from .figures import figure5_svg
    with open("figure5.svg", "w") as fh:
        fh.write(figure5_svg(points, thr_flags))

    out = ["## Figure 5 — slowdown vs syscall rate (%d packages)" % len(points),
           "", "Rendered to `figure5.svg`.", ""]
    out.append("```")
    out.append(format_scatter(points, title=""))
    out.append("```")
    out.append("")
    out.append("| §7.4 claim | measured | paper |")
    out.append("|---|---|---|")
    out.append("| rate/slowdown correlation | %.2f | positive |" % corr)
    out.append("| aggregate slowdown | %.2fx | 3.49x |" % aggregate)
    out.append("| slowdown range | %.1f–%.1fx | ~1–30x |" % (slows.min(), slows.max()))
    if thr and nothr:
        out.append("| threaded vs non-threaded mean | %.2fx vs %.2fx | threaded slower |"
                   % (float(np.mean(thr)), float(np.mean(nothr))))
    out.append("")
    return "\n".join(out)


def fig6_section():
    from repro.analysis import PAPER_FIG6
    from repro.analysis.figures import figure6_svg
    from repro.cpu.machine import HASWELL_XEON, HostEnvironment
    from repro.workloads.bioinf import ALL_TOOLS, run_dettrace, run_native, tool_image

    out = ["## Figure 6 — bioinformatics speedups (1/4/16 processes)",
           "", "Rendered to `figure6.svg`.", ""]
    out.append("| tool | mode | measured | paper |")
    out.append("|---|---|---|---|")
    collected = {}
    for tool, spec in ALL_TOOLS.items():
        img = tool_image(spec)
        seq = None
        for mode, runner in (("native", run_native), ("dettrace", run_dettrace)):
            vals = []
            for nprocs in (1, 4, 16):
                host = HostEnvironment(machine=HASWELL_XEON, entropy_seed=nprocs * 7)
                r = runner(img, tool, nprocs, host=host)
                if mode == "native" and nprocs == 1:
                    seq = r.wall_time
                vals.append(seq / r.wall_time)
            out.append("| %s | %s | %s | %s |" % (
                tool, mode, " / ".join("%.2f" % v for v in vals),
                " / ".join("%.2f" % v for v in PAPER_FIG6[tool][mode])))
            collected.setdefault(tool, {})[mode] = vals
    with open("figure6.svg", "w") as fh:
        fh.write(figure6_svg(collected))
    out.append("")
    return "\n".join(out)


def tf_section():
    from repro.analysis import PAPER_TF
    from repro.cpu.machine import HASWELL_XEON, HostEnvironment
    from repro.workloads.ml import (ALEXNET, CIFAR10, losses_of, run_dettrace,
                                    run_parallel_native, run_serial_native)

    def host(seed, boot=0.0):
        return HostEnvironment(machine=HASWELL_XEON, entropy_seed=seed,
                               boot_epoch=1.7e9 + boot)

    out = ["## §7.6 — TensorFlow analog", ""]
    out.append("| model | DT vs parallel (paper) | DT vs serial (paper) | "
               "DT losses reproducible | native reproducible |")
    out.append("|---|---|---|---|---|")
    for cfg in (ALEXNET, CIFAR10):
        par = run_parallel_native(cfg, host=host(1))
        ser = run_serial_native(cfg, host=host(2))
        det = run_dettrace(cfg, host=host(3))
        det2 = run_dettrace(cfg, host=host(4, 500.0))
        par2 = run_parallel_native(cfg, host=host(5, 900.0))
        out.append("| %s | %.2fx (%.2fx) | %.2fx (%.2fx) | %s | %s |" % (
            cfg.name,
            det.wall_time / par.wall_time, PAPER_TF[cfg.name]["vs_parallel"],
            det.wall_time / ser.wall_time, PAPER_TF[cfg.name]["vs_serial"],
            losses_of(det) == losses_of(det2),
            losses_of(par) == losses_of(par2)))
    out.append("")
    return "\n".join(out)


def rr_section(scale):
    from repro.repro_tools import first_build_host
    from repro.rnr import record, replay
    from repro.workloads.debian import (TOOLS, build_native,
                                        generate_population, package_image)

    n = max(15, int(25 * scale))
    specs = [s for s in generate_population(n * 3, seed=29)
             if not s.syscall_storm and not s.busy_waits
             and not s.uses_threads and s.language != "java"][:n]
    crashes, overheads, sizes, replays_ok = 0, [], [], 0
    for spec in specs:
        base = build_native(spec, host=first_build_host())
        if base.status != "built":
            continue
        rec = record(package_image(spec), TOOLS["driver"],
                     argv=["dpkg-buildpackage", spec.name],
                     host=first_build_host())
        if rec.status == "crash":
            crashes += 1
            continue
        overheads.append(rec.wall_time / base.result.wall_time)
        sizes.append(rec.recording.storage_size())
        if replay(package_image(spec), TOOLS["driver"], rec.recording,
                  argv=["dpkg-buildpackage", spec.name],
                  host=first_build_host(seed=999)):
            replays_ok += 1
    o = np.array(overheads)
    out = ["## §7.1.3 — Mozilla rr baseline (%d packages)" % n, ""]
    out.append("| metric | measured | paper |")
    out.append("|---|---|---|")
    out.append("| crashed on unsupported ioctl | %d/%d (%.0f%%) | 46/81 (57%%) |"
               % (crashes, n, 100 * crashes / n))
    out.append("| mean record overhead | %.2fx | 5.8x |" % o.mean())
    out.append("| overhead range | %.1f–%.1fx | 3.3–22.7x |" % (o.min(), o.max()))
    out.append("| replays completed faithfully | %d/%d | n/a |"
               % (replays_ok, len(overheads)))
    out.append("| mean trace size | %.0f KB | 'much more than source' |"
               % (np.mean(sizes) / 1024))
    out.append("")
    return "\n".join(out)


def portability_section(scale):
    from repro.core import ablated
    from repro.cpu.machine import BROADWELL_XEON, SKYLAKE_CLOUDLAB
    from repro.repro_tools import reprotest_portability
    from repro.workloads.debian import generate_population

    n = max(12, int(20 * scale))
    specs = [s for s in generate_population(n * 3, seed=31)
             if not s.expect_dt_unsupported and not s.syscall_storm][:n]
    identical = sum(
        1 for s in specs
        if reprotest_portability(s, SKYLAKE_CLOUDLAB, BROADWELL_XEON).verdict
        == "reproducible")
    broken = sum(
        1 for s in specs
        if reprotest_portability(s, SKYLAKE_CLOUDLAB, BROADWELL_XEON,
                                 config=ablated("deterministic_dir_sizes")).verdict
        != "reproducible")
    out = ["## §7.3 — portability (Skylake/18.04 vs Broadwell/18.10)", ""]
    out.append("| metric | measured | paper |")
    out.append("|---|---|---|")
    out.append("| bitwise identical across machines | %d/%d | 1,000/1,000 |"
               % (identical, n))
    out.append("| broken with the directory-size extension ablated | %d/%d | "
               "extension was required |" % (broken, n))
    out.append("")
    return "\n".join(out)


def correctness_section():
    from repro.workloads.debian import PackageSpec, build_dettrace, build_native

    spec = PackageSpec(name="llvm", n_sources=8, parallel_jobs=4,
                       has_tests=True, embeds_timestamp=True,
                       embeds_random_symbols=True)
    native = build_native(spec)
    det = build_dettrace(spec)

    def outcome(rec):
        for line in rec.result.stdout.splitlines():
            if line.startswith("tests:"):
                return line
        return "?"

    out = ["## §7.2 — functional correctness", ""]
    out.append("The llvm-analog package's own test suite reports identical "
               "outcomes whether it was built natively or under DetTrace "
               "(the paper's LLVM self-host check):")
    out.append("")
    out.append("* native build: `%s`" % outcome(native))
    out.append("* DetTrace build: `%s`" % outcome(det))
    out.append("* match: **%s**" % (outcome(native) == outcome(det)))
    out.append("")
    return "\n".join(out)


SECTIONS = [
    ("table1", table1_section, True),
    ("table2", table2_section, True),
    ("fig5", fig5_section, True),
    ("fig6", lambda scale: fig6_section(), False),
    ("tf", lambda scale: tf_section(), False),
    ("rr", rr_section, True),
    ("portability", portability_section, True),
    ("correctness", lambda scale: correctness_section(), False),
]


HEADER = """# EXPERIMENTS — paper vs measured

Generated by `python scripts/run_experiments.py` (scale=%s).  Every
"measured" number comes from an actual run of this repository; "paper"
columns are transcribed from *Reproducible Containers* (ASPLOS 2020).
Absolute magnitudes are not comparable — the substrate is a simulator
and package sizes are scaled down ~10^3x (DESIGN.md, "Scaling note") —
the reproduced claims are the *shapes*: status transitions, event mixes,
correlations, speedup curves, crossovers and failure modes.

Per-experiment index (id → workload → modules → bench target) lives in
DESIGN.md.
"""


def generate(scale: float = 1.0, out: str = "EXPERIMENTS.md",
             sections=None, quiet: bool = False) -> str:
    """Run the evaluation and write *out*; returns the markdown text."""
    chosen = SECTIONS if sections is None else [
        s for s in SECTIONS if s[0] in sections]
    parts = [HEADER % scale]
    for name, fn, _takes_scale in chosen:
        t0 = time.time()
        if not quiet:
            sys.stderr.write("running %s...\n" % name)
        parts.append(fn(scale))
        if not quiet:
            sys.stderr.write("  done in %.1fs\n" % (time.time() - t0))
    text = "\n".join(parts)
    if out:
        with open(out, "w") as fh:
            fh.write(text)
    return text
