"""Evaluation analysis: formatting the paper's tables and figures."""

from .experiments import generate
from .figures import figure5_svg, figure6_svg, write_figures
from .tables import (
    PAPER_BUILD_AGGREGATE,
    PAPER_FIG6,
    PAPER_RR,
    PAPER_TABLE1_TOP,
    PAPER_TABLE2,
    PAPER_TF,
    format_fig6,
    format_scatter,
    format_table,
    format_table1,
    format_table2,
)

__all__ = [
    "figure5_svg",
    "figure6_svg",
    "generate",
    "write_figures",
    "PAPER_BUILD_AGGREGATE",
    "PAPER_FIG6",
    "PAPER_RR",
    "PAPER_TABLE1_TOP",
    "PAPER_TABLE2",
    "PAPER_TF",
    "format_fig6",
    "format_scatter",
    "format_table",
    "format_table1",
    "format_table2",
]
