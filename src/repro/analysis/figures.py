"""SVG renderers for the paper's figures (no plotting dependencies).

``scripts/run_experiments.py`` writes the data; these helpers turn the
same series into standalone SVG files so the reproduction's Figure 5
scatter and Figure 6 bars can be eyeballed next to the paper's.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

SVG_HEADER = ('<svg xmlns="http://www.w3.org/2000/svg" '
              'width="%d" height="%d" font-family="sans-serif" '
              'font-size="11">')

AXIS_COLOR = "#444444"
SERIES_COLORS = ["#1f77b4", "#ff7f0e", "#2ca02c", "#d62728"]


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / n
    return [lo + i * step for i in range(n + 1)]


class _Canvas:
    """Minimal SVG assembly with a margin-aware data transform."""

    def __init__(self, width: int = 560, height: int = 360,
                 margin: int = 52):
        self.width = width
        self.height = height
        self.margin = margin
        self.parts: List[str] = [SVG_HEADER % (width, height)]
        self.x_range = (0.0, 1.0)
        self.y_range = (0.0, 1.0)

    def set_ranges(self, x_range, y_range):
        self.x_range = x_range
        self.y_range = y_range

    def tx(self, x: float) -> float:
        lo, hi = self.x_range
        frac = (x - lo) / ((hi - lo) or 1.0)
        return self.margin + frac * (self.width - 2 * self.margin)

    def ty(self, y: float) -> float:
        lo, hi = self.y_range
        frac = (y - lo) / ((hi - lo) or 1.0)
        return self.height - self.margin - frac * (self.height - 2 * self.margin)

    def axes(self, x_label: str, y_label: str,
             y_formatter=lambda v: "%.1f" % v,
             x_formatter=lambda v: "%.0f" % v) -> None:
        m = self.margin
        self.parts.append(
            '<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s"/>'
            % (m, self.height - m, self.width - m, self.height - m, AXIS_COLOR))
        self.parts.append(
            '<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s"/>'
            % (m, m, m, self.height - m, AXIS_COLOR))
        for tick in _ticks(*self.x_range):
            x = self.tx(tick)
            self.parts.append(
                '<text x="%.1f" y="%d" text-anchor="middle">%s</text>'
                % (x, self.height - m + 16, x_formatter(tick)))
        for tick in _ticks(*self.y_range):
            y = self.ty(tick)
            self.parts.append(
                '<text x="%d" y="%.1f" text-anchor="end">%s</text>'
                % (m - 6, y + 4, y_formatter(tick)))
        self.parts.append(
            '<text x="%d" y="%d" text-anchor="middle">%s</text>'
            % (self.width // 2, self.height - 8, x_label))
        self.parts.append(
            '<text x="14" y="%d" transform="rotate(-90 14 %d)" '
            'text-anchor="middle">%s</text>'
            % (self.height // 2, self.height // 2, y_label))

    def title(self, text: str) -> None:
        self.parts.append(
            '<text x="%d" y="18" text-anchor="middle" font-size="13">%s'
            '</text>' % (self.width // 2, text))

    def finish(self) -> str:
        return "\n".join(self.parts + ["</svg>"])


def figure5_svg(points: Sequence[Tuple[float, float]],
                threaded: Sequence[bool] = ()) -> str:
    """The Figure 5 scatter: slowdown (log y) vs syscalls/sec."""
    canvas = _Canvas()
    xs = [p[0] for p in points]
    ys = [math.log10(max(p[1], 1e-3)) for p in points]
    canvas.set_ranges((0.0, max(xs) * 1.05), (0.0, max(max(ys) * 1.1, 0.5)))
    canvas.title("DetTrace slowdown vs system-call rate (Figure 5)")
    canvas.axes("system calls per second", "slowdown (x, log scale)",
                y_formatter=lambda v: "%.1f" % (10 ** v))
    flags = list(threaded) + [False] * (len(points) - len(threaded))
    for (x, y_raw), is_threaded in zip(points, flags):
        y = math.log10(max(y_raw, 1e-3))
        color = SERIES_COLORS[0] if is_threaded else SERIES_COLORS[1]
        canvas.parts.append(
            '<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s" '
            'fill-opacity="0.75"/>' % (canvas.tx(x), canvas.ty(y), color))
    return canvas.finish()


def figure6_svg(speedups: Dict[str, Dict[str, List[float]]]) -> str:
    """The Figure 6 grouped bars: per tool/procs, native vs DetTrace."""
    tools = ["clustal", "hmmer", "raxml"]
    procs = [1, 4, 16]
    canvas = _Canvas(width=640)
    peak = max(v for tool in speedups.values()
               for series in tool.values() for v in series)
    canvas.set_ranges((0.0, len(tools) * len(procs) * 2.0),
                      (0.0, peak * 1.15))
    canvas.title("Bioinformatics speedups over sequential native (Figure 6)")
    canvas.axes("", "speedup (x)", x_formatter=lambda v: "")
    slot = 0.0
    for tool in tools:
        for i, nprocs in enumerate(procs):
            for j, mode in enumerate(("native", "dettrace")):
                value = speedups[tool][mode][i]
                x0 = canvas.tx(slot + j * 0.85)
                x1 = canvas.tx(slot + j * 0.85 + 0.8)
                y0 = canvas.ty(value)
                y1 = canvas.ty(0.0)
                canvas.parts.append(
                    '<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" '
                    'fill="%s"/>' % (x0, y0, x1 - x0, y1 - y0,
                                     SERIES_COLORS[j]))
            canvas.parts.append(
                '<text x="%.1f" y="%d" text-anchor="middle">%s/%d</text>'
                % (canvas.tx(slot + 0.85), canvas.height - canvas.margin + 16,
                   tool[:4], nprocs))
            slot += 2.0
    legend_y = 34
    for j, label in enumerate(("native", "DetTrace")):
        canvas.parts.append(
            '<rect x="%d" y="%d" width="10" height="10" fill="%s"/>'
            % (canvas.width - 150, legend_y + j * 16 - 9, SERIES_COLORS[j]))
        canvas.parts.append(
            '<text x="%d" y="%d">%s</text>'
            % (canvas.width - 134, legend_y + j * 16, label))
    return canvas.finish()


def write_figures(fig5_points, fig5_threaded, fig6_speedups,
                  directory: str = ".") -> List[str]:
    """Write figure5.svg / figure6.svg into *directory*."""
    import os

    written = []
    for name, svg in (("figure5.svg", figure5_svg(fig5_points, fig5_threaded)),
                      ("figure6.svg", figure6_svg(fig6_speedups))):
        path = os.path.join(directory, name)
        with open(path, "w") as fh:
            fh.write(svg)
        written.append(path)
    return written
