"""The on-disk checkpoint journal: torn-write-proof snapshot files.

One snapshot is one file, ``ckpt-<barrier>.snap``::

    <header JSON>\\n<payload bytes>

The header is a single JSON line carrying the format version, the
config fingerprint, the barrier coordinates (event tick + virtual
clock) and a SHA-256 checksum + length of the payload.  Files are
written write-ahead style — to a temp file in the same directory,
flushed, fsynced, then atomically renamed over the final name, followed
by a directory fsync — so a crash mid-write leaves either the old state
or a temp file the scan ignores, never a torn ``.snap``.  A torn or
bit-rotted snapshot is *detected* (length/checksum mismatch) and the
recovery scan falls back to the next-newest valid one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple

#: On-disk format version; bumped on any incompatible payload change.
FORMAT_VERSION = 1

_PREFIX = "ckpt-"
_SUFFIX = ".snap"


class JournalError(ValueError):
    """A snapshot file is unreadable, torn, or from a different world."""


@dataclasses.dataclass
class SnapshotInfo:
    """One scanned journal entry (valid or not)."""

    path: str
    barrier: int = -1
    vclock: float = 0.0
    fingerprint: str = ""
    payload_len: int = 0
    valid: bool = False
    error: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def snapshot_path(directory: str, barrier: int) -> str:
    return os.path.join(directory, "%s%012d%s" % (_PREFIX, barrier, _SUFFIX))


def write_snapshot(directory: str, barrier: int, vclock: float,
                   fingerprint: str, payload: bytes) -> str:
    """Atomically persist *payload* as the snapshot for *barrier*."""
    os.makedirs(directory, exist_ok=True)
    header = json.dumps({
        "format": FORMAT_VERSION,
        "barrier": barrier,
        "vclock": vclock,
        "fingerprint": fingerprint,
        "payload_len": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }, sort_keys=True).encode("utf-8")
    final = snapshot_path(directory, barrier)
    tmp = os.path.join(directory, ".tmp-%s%012d%s" % (_PREFIX, barrier, _SUFFIX))
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, header + b"\n" + payload)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.rename(tmp, final)
    _fsync_dir(directory)
    return final


def _fsync_dir(directory: str) -> None:
    try:
        dfd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dfd)
    except OSError:
        pass
    finally:
        os.close(dfd)


def read_header(path: str) -> Dict[str, Any]:
    """Parse and sanity-check the header line of a snapshot file."""
    with open(path, "rb") as fh:
        line = fh.readline(1 << 20)
    if not line.endswith(b"\n"):
        raise JournalError("%s: truncated header" % path)
    try:
        header = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as err:
        raise JournalError("%s: unparsable header: %s" % (path, err))
    if not isinstance(header, dict):
        raise JournalError("%s: header is not an object" % path)
    if header.get("format") != FORMAT_VERSION:
        raise JournalError("%s: format %r, expected %d"
                           % (path, header.get("format"), FORMAT_VERSION))
    return header


def load_snapshot(path: str,
                  fingerprint: Optional[str] = None) -> Tuple[Dict[str, Any], bytes]:
    """Read and *validate* one snapshot; returns (header, payload).

    Raises :class:`JournalError` on any torn/corrupt/mismatched file.
    """
    header = read_header(path)
    with open(path, "rb") as fh:
        fh.readline(1 << 20)
        payload = fh.read()
    want_len = header.get("payload_len")
    if not isinstance(want_len, int) or len(payload) != want_len:
        raise JournalError("%s: payload length %d != header %r (torn write?)"
                           % (path, len(payload), want_len))
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise JournalError("%s: payload checksum mismatch (corrupt snapshot)"
                           % path)
    if fingerprint is not None and header.get("fingerprint") != fingerprint:
        raise JournalError(
            "%s: config fingerprint %s does not match this run's %s"
            % (path, header.get("fingerprint"), fingerprint))
    return header, payload


def scan(directory: str,
         fingerprint: Optional[str] = None) -> List[SnapshotInfo]:
    """Scan the journal, newest barrier first, validating every file."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    snaps = sorted((n for n in names
                    if n.startswith(_PREFIX) and n.endswith(_SUFFIX)),
                   reverse=True)
    out: List[SnapshotInfo] = []
    for name in snaps:
        path = os.path.join(directory, name)
        info = SnapshotInfo(path=path)
        try:
            header, _payload = load_snapshot(path, fingerprint=fingerprint)
            info.barrier = int(header.get("barrier", -1))
            info.vclock = float(header.get("vclock", 0.0))
            info.fingerprint = str(header.get("fingerprint", ""))
            info.payload_len = int(header.get("payload_len", 0))
            info.valid = True
        except JournalError as err:
            info.error = str(err)
            try:
                header = read_header(path)
                info.barrier = int(header.get("barrier", -1))
                info.fingerprint = str(header.get("fingerprint", ""))
            except JournalError:
                pass
        out.append(info)
    out.sort(key=lambda i: i.barrier, reverse=True)
    return out


def latest_valid(directory: str,
                 fingerprint: Optional[str] = None) -> Optional[SnapshotInfo]:
    """The newest snapshot that passes validation, or None."""
    for info in scan(directory, fingerprint=fingerprint):
        if info.valid:
            return info
    return None


def prune(directory: str, keep: int) -> List[str]:
    """Remove all but the newest *keep* valid snapshots (invalid files
    are always removed — they are unrecoverable dead weight)."""
    removed: List[str] = []
    kept = 0
    for info in scan(directory):
        if info.valid and kept < keep:
            kept += 1
            continue
        try:
            os.remove(info.path)
            removed.append(info.path)
        except OSError:
            pass
    if removed:
        _fsync_dir(directory)
    return removed
