"""The on-disk checkpoint journal: torn-write-proof snapshot files.

One snapshot is one file, ``ckpt-<barrier>.snap``::

    <header JSON>\\n<payload bytes>

The header is a single JSON line carrying the format version, the
config fingerprint, the barrier coordinates (event tick + virtual
clock) and a SHA-256 checksum + length of the payload.  Files are
written write-ahead style — to a temp file in the same directory,
flushed, fsynced, then atomically renamed over the final name, followed
by a directory fsync — so a crash mid-write leaves either the old state
or a temp file the scan ignores, never a torn ``.snap``.  A torn or
bit-rotted snapshot is *detected* (length/checksum mismatch) and the
recovery scan falls back to the next-newest valid one.

Format 2 adds **delta snapshots**: a file whose payload is a
:data:`repro.ckpt.snapshot.DELTA_KIND` record encoding only the state
changed since a *base* snapshot, named in the header by the base
payload's sha256 (``base_sha256``).  A delta is only usable when its
whole chain back to a full snapshot validates — the scan computes this
transitively (``chain_valid``), recovery falls back past torn chains to
the newest fully-valid one, and :func:`prune` keeps the transitive base
closure of everything it retains so a kept delta is never orphaned.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple

#: On-disk format version; bumped on any incompatible payload change.
FORMAT_VERSION = 2

#: Older formats the reader still accepts (full snapshots only).
_READABLE_FORMATS = (1, FORMAT_VERSION)

_PREFIX = "ckpt-"
_SUFFIX = ".snap"


class JournalError(ValueError):
    """A snapshot file is unreadable, torn, or from a different world."""


@dataclasses.dataclass
class SnapshotInfo:
    """One scanned journal entry (valid or not)."""

    path: str
    barrier: int = -1
    vclock: float = 0.0
    fingerprint: str = ""
    payload_len: int = 0
    valid: bool = False
    error: str = ""
    #: ``"full"`` or ``"delta"``.
    snapshot_kind: str = "full"
    #: For deltas: sha256 of the base snapshot's payload bytes.
    base_sha256: str = ""
    #: Number of deltas between this snapshot and its full base
    #: (0 for a full snapshot).
    chain_depth: int = 0
    #: sha256 of this file's payload bytes (how deltas name their base).
    payload_sha256: str = ""
    #: True when this file *and every base under it* validate: the only
    #: state a snapshot can actually be materialized from.  For a full
    #: snapshot ``chain_valid == valid``.
    chain_valid: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def snapshot_path(directory: str, barrier: int) -> str:
    return os.path.join(directory, "%s%012d%s" % (_PREFIX, barrier, _SUFFIX))


def write_snapshot(directory: str, barrier: int, vclock: float,
                   fingerprint: str, payload: bytes,
                   snapshot_kind: str = "full", base_sha256: str = "",
                   chain_depth: int = 0, durable: bool = True) -> str:
    """Atomically persist *payload* as the snapshot for *barrier*.

    ``durable=False`` skips both fsyncs (group commit): the write is
    still atomic-via-rename and checksummed, but a host crash may lose
    it — the next durable snapshot's directory fsync retroactively
    persists earlier renames.  The manager uses this for delta
    snapshots, whose loss recovery already tolerates: a missing or torn
    delta merely chain-breaks its descendants, and recovery falls back
    to the newest chain-valid snapshot.  Full snapshots are always
    durability barriers.
    """
    os.makedirs(directory, exist_ok=True)
    header = json.dumps({
        "format": FORMAT_VERSION,
        "barrier": barrier,
        "vclock": vclock,
        "fingerprint": fingerprint,
        "payload_len": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "snapshot_kind": snapshot_kind,
        "base_sha256": base_sha256,
        "chain_depth": chain_depth,
    }, sort_keys=True).encode("utf-8")
    final = snapshot_path(directory, barrier)
    tmp = os.path.join(directory, ".tmp-%s%012d%s" % (_PREFIX, barrier, _SUFFIX))
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, header + b"\n" + payload)
        if durable:
            os.fsync(fd)
    finally:
        os.close(fd)
    os.rename(tmp, final)
    if durable:
        _fsync_dir(directory)
    return final


def fsync_dir(directory: str) -> None:
    """Best-effort directory fsync: persists completed renames.

    Shared with :mod:`repro.cache.store`, whose entries use the same
    tmp + fsync + rename discipline as snapshot files.
    """
    try:
        dfd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dfd)
    except OSError:
        pass
    finally:
        os.close(dfd)


#: Backward-compatible alias (pre-cache name).
_fsync_dir = fsync_dir


def read_header(path: str) -> Dict[str, Any]:
    """Parse and sanity-check the header line of a snapshot file."""
    with open(path, "rb") as fh:
        line = fh.readline(1 << 20)
    if not line.endswith(b"\n"):
        raise JournalError("%s: truncated header" % path)
    try:
        header = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as err:
        raise JournalError("%s: unparsable header: %s" % (path, err))
    if not isinstance(header, dict):
        raise JournalError("%s: header is not an object" % path)
    if header.get("format") not in _READABLE_FORMATS:
        raise JournalError("%s: format %r, expected one of %s"
                           % (path, header.get("format"),
                              list(_READABLE_FORMATS)))
    # Format-1 files predate delta snapshots: they are always full.
    header.setdefault("snapshot_kind", "full")
    header.setdefault("base_sha256", "")
    header.setdefault("chain_depth", 0)
    return header


def load_snapshot(path: str,
                  fingerprint: Optional[str] = None) -> Tuple[Dict[str, Any], bytes]:
    """Read and *validate* one snapshot; returns (header, payload).

    Raises :class:`JournalError` on any torn/corrupt/mismatched file.
    """
    header = read_header(path)
    with open(path, "rb") as fh:
        fh.readline(1 << 20)
        payload = fh.read()
    want_len = header.get("payload_len")
    if not isinstance(want_len, int) or len(payload) != want_len:
        raise JournalError("%s: payload length %d != header %r (torn write?)"
                           % (path, len(payload), want_len))
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise JournalError("%s: payload checksum mismatch (corrupt snapshot)"
                           % path)
    if fingerprint is not None and header.get("fingerprint") != fingerprint:
        raise JournalError(
            "%s: config fingerprint %s does not match this run's %s"
            % (path, header.get("fingerprint"), fingerprint))
    return header, payload


def scan(directory: str,
         fingerprint: Optional[str] = None) -> List[SnapshotInfo]:
    """Scan the journal, newest barrier first, validating every file.

    Per-file validation (length/checksum/fingerprint) fills ``valid``;
    a second pass resolves every delta's base by ``base_sha256`` and
    fills ``chain_valid`` transitively, so callers can tell a readable
    delta from a *materializable* one.
    """
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    snaps = sorted((n for n in names
                    if n.startswith(_PREFIX) and n.endswith(_SUFFIX)),
                   reverse=True)
    out: List[SnapshotInfo] = []
    for name in snaps:
        path = os.path.join(directory, name)
        info = SnapshotInfo(path=path)
        try:
            header, _payload = load_snapshot(path, fingerprint=fingerprint)
            info.barrier = int(header.get("barrier", -1))
            info.vclock = float(header.get("vclock", 0.0))
            info.fingerprint = str(header.get("fingerprint", ""))
            info.payload_len = int(header.get("payload_len", 0))
            info.snapshot_kind = str(header.get("snapshot_kind", "full"))
            info.base_sha256 = str(header.get("base_sha256", ""))
            info.chain_depth = int(header.get("chain_depth", 0))
            info.payload_sha256 = str(header.get("payload_sha256", ""))
            info.valid = True
        except JournalError as err:
            info.error = str(err)
            try:
                header = read_header(path)
                info.barrier = int(header.get("barrier", -1))
                info.fingerprint = str(header.get("fingerprint", ""))
                info.snapshot_kind = str(header.get("snapshot_kind", "full"))
                info.base_sha256 = str(header.get("base_sha256", ""))
                info.chain_depth = int(header.get("chain_depth", 0))
            except JournalError:
                pass
        out.append(info)
    # Chain validity, oldest first so a base is resolved before any
    # delta that references it (a base always precedes its deltas).
    by_sha: Dict[str, SnapshotInfo] = {}
    for info in sorted(out, key=lambda i: i.barrier):
        if info.valid:
            if info.snapshot_kind != "delta":
                info.chain_valid = True
            else:
                base = by_sha.get(info.base_sha256)
                info.chain_valid = base is not None and base.chain_valid
            if info.payload_sha256:
                by_sha[info.payload_sha256] = info
    out.sort(key=lambda i: i.barrier, reverse=True)
    return out


def base_of(infos: List[SnapshotInfo],
            info: SnapshotInfo) -> Optional[SnapshotInfo]:
    """The base snapshot a delta *info* references, if present+valid."""
    if info.snapshot_kind != "delta":
        return None
    for cand in infos:
        if cand.valid and cand.payload_sha256 == info.base_sha256:
            return cand
    return None


def latest_valid(directory: str,
                 fingerprint: Optional[str] = None) -> Optional[SnapshotInfo]:
    """The newest *materializable* snapshot, or None.

    For a full snapshot that means it validates; for a delta, that its
    whole chain does — a readable delta over a torn base is skipped.
    """
    for info in scan(directory, fingerprint=fingerprint):
        if info.chain_valid:
            return info
    return None


def prune(directory: str, keep: int) -> List[str]:
    """Remove all but the newest *keep* materializable snapshots.

    Invalid and chain-broken files are always removed (they are
    unrecoverable dead weight); for every kept delta the transitive
    base closure is kept too, so pruning never orphans a delta it
    retains.
    """
    infos = scan(directory)
    by_sha = {i.payload_sha256: i for i in infos
              if i.valid and i.payload_sha256}
    keep_paths: set = set()
    kept = 0
    for info in infos:  # newest first
        if not info.chain_valid or kept >= keep:
            continue
        kept += 1
        node: Optional[SnapshotInfo] = info
        while node is not None and node.path not in keep_paths:
            keep_paths.add(node.path)
            node = (by_sha.get(node.base_sha256)
                    if node.snapshot_kind == "delta" else None)
    removed: List[str] = []
    for info in infos:
        if info.path in keep_paths:
            continue
        try:
            os.remove(info.path)
            removed.append(info.path)
        except OSError:
            pass
    if removed:
        _fsync_dir(directory)
    return removed
