"""The resume tape: replayable inputs for guest generator frames.

Guest programs are Python generators; their suspended stack frames are
the one piece of run state that cannot be serialized.  They *can* be
reconstructed, though, because guest code is pure between yields: it
touches only its own locals, ``proc.memory``, ``proc.argv`` and
``proc.env`` — never the kernel — so re-driving a fresh generator with
the exact sequence of values/exceptions the kernel originally sent it
lands it in an identical suspended frame.

The tape is that sequence, recorded in *global* order across all
threads (interleaving matters: guests read shared ``proc.memory``
between yields).  Entry kinds:

``("send", tid, value)`` / ``("throw", tid, exc)``
    One pass through the kernel's generator choke point.
``("push", tid, signum, saved_value, saved_exc)``
    A signal-handler frame push, with the (value, exc) pair the kernel
    parked in the ``_saved_<tid>`` mirror.
``("spawn", tid, path, argv, env)`` / ``("exec", tid, path, argv, env)``
    Root-frame creation at boot/fork-exec and at execve.  argv/env are
    copied *at record time*: replayed guest code must observe the
    historical values, not whatever a later execve installed.
``("tspawn", tid, caller_tid)``
    A sibling-thread spawn; the guest function is recovered during
    fast-forward from the caller's suspended ``spawn_thread`` op.
``("sigact", tid, signum)``
    A ``sigaction`` syscall *executed* (distinct from yielded: under the
    tracer the execution may happen well after the yield, or never).
    Fast-forward applies the handler update here and computes the old
    disposition itself — which is how unserializable handler callables
    round-trip (see :data:`OPAQUE`).

Values are recorded with a shallow copy (guests mutate received lists
in place, e.g. sorting a dirent batch) and *encoded* only at snapshot
time: exceptions become rebuildable capsules, callables/generators
become the :data:`OPAQUE` sentinel, which decode substitutes from
replay-derived state.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple


class _Opaque:
    """Sentinel for values that cannot cross a snapshot (callables,
    generators).  The only such value a guest ever receives back from
    the kernel is a previously-installed signal handler (the old
    disposition returned by ``sigaction``); restore substitutes it from
    the fast-forward's own handler reconstruction."""

    _instance: Optional["_Opaque"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<opaque>"

    def __reduce__(self):
        return (_Opaque, ())


OPAQUE = _Opaque()


def shallow_copy(value: Any) -> Any:
    """Record-time copy guarding against in-place guest mutation."""
    if isinstance(value, list):
        return list(value)
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, bytearray):
        return bytes(value)
    return value


def encode_value(value: Any) -> Any:
    """Snapshot-time encoding: make *value* picklable.

    Exceptions become ``("exc", module, qualname, args, dict)`` capsules
    rebuilt without calling ``__init__`` (kernel errors like
    ``SyscallError`` have custom constructor signatures).  Callables and
    generators become :data:`OPAQUE`.  Containers recurse shallowly.
    """
    if isinstance(value, BaseException):
        return ("exc", type(value).__module__, type(value).__qualname__,
                tuple(encode_value(a) for a in value.args),
                {k: encode_value(v) for k, v in vars(value).items()
                 if k not in ("__traceback__",)})
    if callable(value) or hasattr(value, "send"):
        return OPAQUE
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, tuple):
        return tuple(encode_value(v) for v in value)
    if isinstance(value, dict):
        return {k: encode_value(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return type(value)(encode_value(v) for v in value)
    if isinstance(value, bytearray):
        return bytes(value)
    return value


def _resolve_exc_class(module: str, qualname: str):
    import importlib

    try:
        mod = importlib.import_module(module)
        obj: Any = mod
        for part in qualname.split("."):
            obj = getattr(obj, part)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            return obj
    except Exception:
        pass
    return RuntimeError


def decode_value(value: Any, opaque_sub: Optional[Callable[[], Any]] = None) -> Any:
    """Invert :func:`encode_value`.

    *opaque_sub*, when given, supplies the live replacement for an
    :data:`OPAQUE` sentinel (the fast-forward's pending old-handler
    slot).  An OPAQUE with no substitution available is a checkpoint
    the restore cannot honour.
    """
    if value is OPAQUE or isinstance(value, _Opaque):
        if opaque_sub is None:
            raise ValueError("opaque value in snapshot with no substitution")
        return opaque_sub()
    if isinstance(value, tuple):
        if len(value) == 5 and value[0] == "exc" and isinstance(value[1], str):
            _tag, module, qualname, args, state = value
            cls = _resolve_exc_class(module, qualname)
            exc = cls.__new__(cls)
            exc.args = tuple(decode_value(a, opaque_sub) for a in args)
            for k, v in state.items():
                try:
                    setattr(exc, k, decode_value(v, opaque_sub))
                except Exception:
                    pass
            return exc
        return tuple(decode_value(v, opaque_sub) for v in value)
    if isinstance(value, list):
        return [decode_value(v, opaque_sub) for v in value]
    if isinstance(value, dict):
        return {k: decode_value(v, opaque_sub) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return type(value)(decode_value(v, opaque_sub) for v in value)
    return value


def encode_tape(entries: List[Tuple]) -> List[Tuple]:
    """Snapshot-time encoding of the whole tape."""
    out: List[Tuple] = []
    for entry in entries:
        kind = entry[0]
        if kind == "send":
            out.append(("send", entry[1], encode_value(entry[2])))
        elif kind == "throw":
            out.append(("throw", entry[1], encode_value(entry[2])))
        elif kind == "push":
            out.append(("push", entry[1], entry[2],
                        encode_value(entry[3]), encode_value(entry[4])))
        else:  # spawn / exec / tspawn / sigact: already plain data
            out.append(entry)
    return out
